//! # Bioformers — umbrella crate
//!
//! A from-scratch Rust reproduction of *Bioformers: Embedding Transformers
//! for Ultra-Low Power sEMG-based Gesture Recognition* (Burrello et al.,
//! DATE 2022). This crate re-exports the individual subsystem crates so that
//! examples and downstream users need a single dependency:
//!
//! * [`tensor`] — f32 tensors, matmul, conv1d, NN math primitives.
//! * [`simd`] — runtime-dispatched explicit-SIMD microkernels (AVX2 /
//!   FMA / VNNI) behind safe wrappers; the portable tier is the oracle.
//! * [`nn`] — layers with manual backprop, optimizers, training loop.
//! * [`semg`] — synthetic Ninapro-DB6-like sEMG data generator + datasets.
//! * [`core`] — the Bioformer architecture, TEMPONet baseline, the paper's
//!   training protocols and complexity accounting.
//! * [`quant`] — int8 quantization (QAT + I-BERT-style integer inference).
//! * [`gap8`] — analytical GAP8 MCU latency/energy/memory deployment model.
//!
//! # Quickstart
//!
//! ```
//! use bioformers::semg::{DatasetSpec, NinaproDb6};
//!
//! // A miniature synthetic DB6: 2 subjects, 2 sessions, deterministic.
//! let spec = DatasetSpec::tiny();
//! let db = NinaproDb6::generate(&spec);
//! assert_eq!(db.subjects().len(), 2);
//! ```
//!
//! # Serving
//!
//! The [`serve`] module unifies every precision behind one infer-only
//! trait, [`serve::GestureClassifier`] — the same trained network answers
//! as fp32 or as the fully-integer int8 pipeline the MCU runs, with no
//! model clones per request ([`nn::InferForward`]). Three engines sit on
//! top: the synchronous, micro-batching [`serve::InferenceEngine`]
//! (`examples/serve_batch.rs`); the concurrent [`serve::AsyncEngine`] — a
//! bounded MPSC queue + worker pool that coalesces requests from many
//! clients into shared micro-batches, with per-request deadlines,
//! backpressure and graceful shutdown (`examples/serve_async.rs`); and
//! the multi-replica [`serve::ShardedEngine`] — one submission API over N
//! heterogeneous replicas with latency-aware routing, adaptive linger,
//! quarantine with canary-probe re-admission and pool-level stats
//! (`examples/serve_sharded.rs`). All three implement the unified
//! [`serve::Engine`] trait, so clients are generic over topology, and the
//! [`serve::StreamSession`] layer turns a **raw sEMG sample stream** into
//! debounced [`serve::GestureEvent`] decisions through any engine —
//! bit-matching the offline batch path (`examples/serve_stream.rs`).
//! `docs/serving.md` is the architecture guide.
//!
//! See `examples/` for end-to-end training, quantization and deployment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;

pub use bioformer_core as core;
pub use bioformer_gap8 as gap8;
pub use bioformer_nn as nn;
pub use bioformer_quant as quant;
pub use bioformer_semg as semg;
pub use bioformer_simd as simd;
pub use bioformer_tensor as tensor;
