//! The bounded MPSC request queue feeding the [`AsyncEngine`] worker pool.
//!
//! Many client threads push requests concurrently (the **MP** side); the
//! engine's workers pop them (the **SC** side is generalised to a small
//! consumer pool — each request is still consumed exactly once). The queue
//! is bounded: when `capacity` requests are waiting, the blocking push
//! waits and the non-blocking push fails fast, which is the engine's
//! backpressure signal. Closing the queue wakes every waiter; pops drain
//! the remaining requests before reporting shutdown so no accepted request
//! is ever dropped.
//!
//! [`AsyncEngine`]: super::AsyncEngine

use bioformer_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Errors surfaced by the asynchronous serving path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is at capacity (backpressure): the client
    /// should retry later, shed load, or use the blocking submit path.
    QueueFull,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request's deadline passed before a worker started serving it.
    DeadlineExpired,
    /// The request was malformed (wrong rank, or a channel/sample shape
    /// that differs from what this engine is serving).
    BadRequest(String),
    /// The request was cancelled without being served: the backend
    /// panicked while executing its batch (the worker survives and keeps
    /// serving; see `AsyncStats::failed`), or the engine terminated
    /// abnormally. Graceful shutdown never cancels accepted requests.
    Cancelled,
    /// Every replica in a sharded pool is quarantined (dead workers or a
    /// run of consecutive backend failures), so there is nowhere left to
    /// route the request. See `ShardedEngine`. The multi-tenant
    /// `StreamServer` reuses this for a session pool with no free slot.
    Unavailable,
    /// The streaming session behind this handle was evicted by the
    /// server's idle timeout. Its state was checkpointed — reconnect with
    /// the session token to resume where it left off. See `StreamServer`.
    Evicted,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::DeadlineExpired => write!(f, "request deadline expired before service"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Cancelled => write!(f, "request cancelled without being served"),
            ServeError::Unavailable => {
                write!(f, "no healthy replica available to serve the request")
            }
            ServeError::Evicted => {
                write!(f, "session evicted by idle timeout; reconnect to resume")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The served result of one asynchronous request, delivered through
/// [`PendingResponse::wait`].
#[derive(Debug, Clone)]
pub struct RequestOutput {
    /// Logits `[n, classes]`, row-aligned with the request's windows.
    pub logits: Tensor,
    /// Argmax class per window.
    pub predictions: Vec<usize>,
    /// Time the request spent queued (enqueue → batch execution start).
    pub queue_wait: Duration,
    /// Number of requests coalesced into the shared batch this request
    /// rode in (1 means it was served alone).
    pub batch_requests: usize,
    /// Total windows in that shared batch.
    pub batch_windows: usize,
    /// Backend time spent executing that shared batch.
    pub batch_latency: Duration,
}

/// One queued inference request (engine-internal).
pub(crate) struct Request {
    /// Input windows `[n, channels, samples]` (`n` may be 0).
    pub(crate) windows: Tensor,
    /// If set, the instant after which the request must not be started.
    pub(crate) deadline: Option<Instant>,
    /// When the request entered the queue.
    pub(crate) enqueued: Instant,
    /// One-shot response channel back to the submitting client.
    pub(crate) respond: mpsc::Sender<Result<RequestOutput, ServeError>>,
}

impl Request {
    /// The request's `[channels, samples]` window shape.
    pub(crate) fn shape(&self) -> (usize, usize) {
        (self.windows.dims()[1], self.windows.dims()[2])
    }
}

/// Client-side handle to an in-flight request submitted to an
/// [`AsyncEngine`]; redeem it with [`PendingResponse::wait`].
///
/// [`AsyncEngine`]: super::AsyncEngine
#[derive(Debug)]
pub struct PendingResponse {
    pub(crate) rx: mpsc::Receiver<Result<RequestOutput, ServeError>>,
    pub(crate) windows: usize,
}

impl PendingResponse {
    /// Number of windows in the submitted request.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Blocks until the request is served (or rejected), consuming the
    /// handle. Returns [`ServeError::Cancelled`] if the engine died without
    /// responding.
    pub fn wait(self) -> Result<RequestOutput, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Cancelled))
    }

    /// Non-blocking poll: `Ok` with the response if the request has been
    /// served (or rejected), `Err(self)` with the still-usable handle if it
    /// is still in flight. A dead engine reads as
    /// [`ServeError::Cancelled`], exactly like [`PendingResponse::wait`].
    ///
    /// This is what lets a pipelining client (e.g. a streaming session
    /// with bounded lookahead) drain completed responses opportunistically
    /// without stalling on the oldest one.
    #[allow(clippy::result_large_err)]
    pub fn try_wait(self) -> Result<Result<RequestOutput, ServeError>, PendingResponse> {
        match self.rx.try_recv() {
            Ok(result) => Ok(result),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => Ok(Err(ServeError::Cancelled)),
        }
    }

    /// Bounded wait: blocks for at most `timeout`, then returns `Err(self)`
    /// with the still-usable handle if the request is still in flight. A
    /// dead engine reads as [`ServeError::Cancelled`], exactly like
    /// [`PendingResponse::wait`].
    ///
    /// This is the hedging primitive: the sharded router waits one hedge
    /// delay on the primary replica, and on timeout duplicates the request
    /// to a second replica while keeping this handle alive to race both.
    #[allow(clippy::result_large_err)]
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<RequestOutput, ServeError>, PendingResponse> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(result),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Err(ServeError::Cancelled)),
        }
    }
}

/// Queue interior: the deque plus the closed flag, under one mutex.
struct QueueState {
    deque: VecDeque<Request>,
    closed: bool,
}

/// A bounded multi-producer queue with blocking push/pop, linger-deadline
/// pops for batch coalescing, and drain-on-close shutdown semantics.
pub(crate) struct RequestQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl RequestQueue {
    /// Creates a queue that holds at most `capacity` waiting requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RequestQueue: capacity must be >= 1");
        RequestQueue {
            state: Mutex::new(QueueState {
                deque: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // A worker panicking mid-batch poisons nothing queue-related; keep
        // serving rather than cascading the panic into every client.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of requests currently waiting.
    pub(crate) fn len(&self) -> usize {
        self.lock().deque.len()
    }

    /// Maximum number of waiting requests.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking push: fails fast with [`ServeError::QueueFull`] when at
    /// capacity (the backpressure signal) or [`ServeError::ShuttingDown`]
    /// after [`RequestQueue::close`].
    pub(crate) fn try_push(&self, req: Request) -> Result<(), ServeError> {
        let mut st = self.lock();
        if st.closed {
            return Err(ServeError::ShuttingDown);
        }
        if st.deque.len() >= self.capacity {
            return Err(ServeError::QueueFull);
        }
        st.deque.push_back(req);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits while the queue is full; fails only once the
    /// queue is closed.
    pub(crate) fn push(&self, req: Request) -> Result<(), ServeError> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(ServeError::ShuttingDown);
            }
            if st.deque.len() < self.capacity {
                st.deque.push_back(req);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocking pop: waits for a request; returns `None` only once the
    /// queue is closed **and** drained, so accepted requests always reach a
    /// worker.
    pub(crate) fn pop(&self) -> Option<Request> {
        let mut st = self.lock();
        loop {
            if let Some(req) = st.deque.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(req);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pop with a linger deadline: returns an already-queued request
    /// immediately, otherwise waits until `until` for one to arrive.
    /// `None` means the linger window elapsed (or the queue closed empty) —
    /// the caller should flush its partial batch.
    pub(crate) fn pop_until(&self, until: Instant) -> Option<Request> {
        let mut st = self.lock();
        loop {
            if let Some(req) = st.deque.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(req);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= until {
                return None;
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(st, until - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`ServeError::ShuttingDown`], blocked pushers and poppers wake, and
    /// pops drain the backlog before reporting shutdown.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn dummy_request() -> (Request, PendingResponse) {
        let (tx, rx) = mpsc::channel();
        (
            Request {
                windows: Tensor::zeros(&[1, 2, 3]),
                deadline: None,
                enqueued: Instant::now(),
                respond: tx,
            },
            PendingResponse { rx, windows: 1 },
        )
    }

    #[test]
    fn try_push_reports_backpressure_at_capacity() {
        let q = RequestQueue::new(2);
        assert!(q.try_push(dummy_request().0).is_ok());
        assert!(q.try_push(dummy_request().0).is_ok());
        assert_eq!(q.try_push(dummy_request().0), Err(ServeError::QueueFull));
        assert_eq!(q.len(), 2);
        let _ = q.pop().unwrap();
        assert!(q.try_push(dummy_request().0).is_ok());
    }

    #[test]
    fn close_drains_backlog_then_stops() {
        let q = RequestQueue::new(4);
        q.try_push(dummy_request().0).unwrap();
        q.try_push(dummy_request().0).unwrap();
        q.close();
        assert_eq!(q.try_push(dummy_request().0), Err(ServeError::ShuttingDown));
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_until_grabs_backlog_without_waiting() {
        let q = RequestQueue::new(4);
        q.try_push(dummy_request().0).unwrap();
        // Deadline already passed: must still return the queued request.
        let past = Instant::now() - Duration::from_millis(5);
        assert!(q.pop_until(past).is_some());
        assert!(q
            .pop_until(Instant::now() + Duration::from_millis(1))
            .is_none());
    }

    #[test]
    fn wait_timeout_returns_handle_then_response() {
        let (req, pending) = dummy_request();
        // Nothing responded yet: the bounded wait hands the handle back.
        let pending = match pending.wait_timeout(Duration::from_millis(1)) {
            Err(p) => p,
            Ok(r) => panic!("unexpected early response: {r:?}"),
        };
        // Engine dies (sender dropped) -> Cancelled, like wait().
        drop(req);
        match pending.wait_timeout(Duration::from_millis(1)) {
            Ok(Err(ServeError::Cancelled)) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = Arc::new(RequestQueue::new(1));
        q.try_push(dummy_request().0).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(dummy_request().0).is_ok());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.len(), 1, "pusher must be blocked while full");
        let _ = q.pop().unwrap();
        assert!(pusher.join().unwrap());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_pusher() {
        let q = Arc::new(RequestQueue::new(1));
        q.try_push(dummy_request().0).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(dummy_request().0));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(ServeError::ShuttingDown));
    }
}
