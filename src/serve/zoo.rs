//! The model zoo: named model variants behind live selection, shadow/A-B
//! routing and promotion gating.
//!
//! A production gesture service never runs *one* model: the incumbent
//! serves users while candidates (a quantized build, a different
//! architecture, a retrained checkpoint) are evaluated **on live traffic**
//! before they are allowed to take over. [`ModelZoo`] is that registry:
//!
//! * Every variant is a named [`Engine`] (or replica pool) — e.g.
//!   `bioformer-fp32`, `bioformer-int8`, `temponet-fp32`,
//!   `waveformer-fp32`. Sessions select a model by name in the wire
//!   protocol's Hello frame (v2); v1 clients get the default.
//! * [`ModelZoo::start_experiment`] pairs an incumbent with a candidate
//!   under a [`RouteMode`]:
//!   - **Shadow** — the candidate receives a *duplicate* of every request
//!     routed to the incumbent; only the incumbent's response is ever
//!     returned, so the served timeline is bit-identical to running
//!     without the experiment (pinned by proptest in
//!     `tests/serving_zoo.rs`). Agreement and confidence deltas are
//!     measured window-by-window.
//!   - **Split(f)** — A/B: a deterministic fraction `f` of requests is
//!     *actually served* by the candidate; per-arm latency is measured,
//!     agreement cannot be (no duplication).
//! * [`PromotionPolicy`] gates [`ModelZoo::promote_if_ready`]: a candidate
//!   is promoted to default only after enough live evidence (compared
//!   windows, agreement rate, latency ratio, drop rate). Until then the
//!   incumbent keeps serving.
//! * [`ZooStats`] snapshots every model's [`EngineStats`] plus the live
//!   experiment counters, with the same rollup-consistency discipline as
//!   the rest of the serving stack ([`ZooStats::rollup_consistent`]).

use super::engine::{Engine, EngineStats};
use super::queue::{PendingResponse, RequestOutput, ServeError};
use super::stream::confidence;
use super::trace::{LatencyTrace, StageRecorder, StageSummary};
use bioformer_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How an experiment routes traffic between incumbent and candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteMode {
    /// Duplicate every incumbent request to the candidate; serve only the
    /// incumbent's response. Measures live agreement without any risk.
    Shadow,
    /// Serve a deterministic fraction `0.0..=1.0` of requests from the
    /// candidate (A/B). Measures per-arm latency under real load.
    Split(f32),
}

impl RouteMode {
    /// Validates the mode.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if let RouteMode::Split(f) = self {
            if !f.is_finite() || !(0.0..=1.0).contains(f) {
                return Err(format!("split fraction {f} must be in [0, 1]"));
            }
        }
        Ok(())
    }
}

/// Thresholds a candidate must clear on live traffic before
/// [`ModelZoo::promote_if_ready`] makes it the default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPolicy {
    /// Minimum windows compared (Shadow) or served by the candidate
    /// (Split) before any decision.
    pub min_windows: u64,
    /// Minimum window-level agreement rate with the incumbent (Shadow
    /// mode; ignored for Split, where agreement is unmeasurable).
    pub min_agreement: f64,
    /// Maximum candidate/incumbent p99 compute-latency ratio.
    pub max_latency_ratio: f64,
    /// Maximum fraction of duplicated requests the candidate dropped
    /// (queue-full or errors) — a candidate that cannot keep up with
    /// shadow traffic cannot keep up with real traffic.
    pub max_drop_rate: f64,
    /// How long the shadow collector waits for a candidate response before
    /// counting it dropped (never delays the incumbent's response).
    pub candidate_timeout: Duration,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        PromotionPolicy {
            min_windows: 100,
            min_agreement: 0.85,
            max_latency_ratio: 2.0,
            max_drop_rate: 0.05,
            candidate_timeout: Duration::from_secs(1),
        }
    }
}

/// The verdict of evaluating a [`PromotionPolicy`] against live evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum PromotionDecision {
    /// All gates cleared: the candidate may take over as default.
    Promote,
    /// At least one gate failed or lacks evidence; each entry names one
    /// unmet gate.
    Hold(Vec<String>),
}

impl PromotionPolicy {
    /// Evaluates the policy against an experiment snapshot.
    pub fn evaluate(&self, exp: &ExperimentStats) -> PromotionDecision {
        let mut unmet = Vec::new();
        let evidence = match exp.mode {
            RouteMode::Shadow => exp.compared_windows,
            RouteMode::Split(_) => exp.candidate_windows,
        };
        if evidence < self.min_windows {
            unmet.push(format!(
                "evidence: {evidence} windows < required {}",
                self.min_windows
            ));
        }
        if matches!(exp.mode, RouteMode::Shadow) && evidence > 0 {
            let agreement = exp.agreement_rate();
            if agreement < self.min_agreement {
                unmet.push(format!(
                    "agreement {agreement:.3} < required {:.3}",
                    self.min_agreement
                ));
            }
        }
        let drop_rate = exp.drop_rate();
        if drop_rate > self.max_drop_rate {
            unmet.push(format!(
                "drop rate {drop_rate:.3} > allowed {:.3}",
                self.max_drop_rate
            ));
        }
        let inc_p99 = exp.incumbent_stages.compute.p99;
        let cand_p99 = exp.candidate_stages.compute.p99;
        if inc_p99 > Duration::ZERO && cand_p99 > Duration::ZERO {
            let ratio = cand_p99.as_secs_f64() / inc_p99.as_secs_f64();
            if ratio > self.max_latency_ratio {
                unmet.push(format!(
                    "latency ratio {ratio:.2} > allowed {:.2}",
                    self.max_latency_ratio
                ));
            }
        }
        if unmet.is_empty() {
            PromotionDecision::Promote
        } else {
            PromotionDecision::Hold(unmet)
        }
    }
}

/// Monotonic experiment counters (all units are exact, never sampled).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct AbCounters {
    /// Requests duplicated to (Shadow) or routed to (Split) the candidate.
    candidate_requests: u64,
    /// Windows in those requests.
    candidate_windows: u64,
    /// Duplicated requests whose candidate response resolved and was
    /// compared (Shadow only).
    resolved: u64,
    /// Duplicated requests the candidate dropped: submission failed, the
    /// response errored, or it outwaited the collector's timeout.
    dropped: u64,
    /// Windows compared prediction-by-prediction (Shadow only).
    compared_windows: u64,
    /// Compared windows where both models predicted the same class.
    agreed_windows: u64,
    /// Sum over compared windows of candidate minus incumbent top-class
    /// confidence.
    confidence_delta_sum: f64,
    /// Requests served (Split: incumbent arm; Shadow: every request).
    incumbent_requests: u64,
}

/// Shared experiment state: counters plus per-arm stage recorders.
struct ShadowCore {
    counters: Mutex<AbCounters>,
    incumbent_stages: Mutex<StageRecorder>,
    candidate_stages: Mutex<StageRecorder>,
}

impl ShadowCore {
    fn new() -> Self {
        ShadowCore {
            counters: Mutex::new(AbCounters::default()),
            incumbent_stages: Mutex::new(StageRecorder::new()),
            candidate_stages: Mutex::new(StageRecorder::new()),
        }
    }

    fn lock_counters(&self) -> std::sync::MutexGuard<'_, AbCounters> {
        self.counters.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record_arm(&self, candidate: bool, out: &RequestOutput) {
        let rec = if candidate {
            &self.candidate_stages
        } else {
            &self.incumbent_stages
        };
        rec.lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(LatencyTrace {
                buffering: Duration::ZERO,
                queueing: out.queue_wait,
                compute: out.batch_latency,
                smoothing: Duration::ZERO,
            });
    }

    fn arm_summary(&self, candidate: bool) -> StageSummary {
        let rec = if candidate {
            &self.candidate_stages
        } else {
            &self.incumbent_stages
        };
        rec.lock().unwrap_or_else(|e| e.into_inner()).summary()
    }
}

/// One job for the shadow collector: forward the incumbent's response
/// untouched, then (if the duplicate was accepted) compare the candidate's.
enum CollectorJob {
    Compare {
        forward: mpsc::Sender<Result<RequestOutput, ServeError>>,
        incumbent: PendingResponse,
        candidate: Option<PendingResponse>,
    },
    /// Latency-only recording for a Split-arm response.
    RecordArm {
        forward: mpsc::Sender<Result<RequestOutput, ServeError>>,
        response: PendingResponse,
        candidate_arm: bool,
    },
    /// Barrier: ack once every job queued before it has been processed.
    Sync(mpsc::Sender<()>),
}

/// The [`Engine`] wrapper an experiment installs in front of the
/// incumbent.
///
/// For every submission the wrapper (a) submits to the incumbent exactly
/// as the bare engine would, (b) fire-and-forgets a duplicate to the
/// candidate via `try_submit` (Shadow) or routes the request to one arm
/// (Split), and (c) hands the caller a response handle that resolves to
/// the **incumbent's bytes, unmodified** — the collector thread forwards
/// the incumbent's `RequestOutput` before it even looks at the candidate,
/// so a slow or dead candidate can never distort what clients receive.
pub struct ShadowEngine {
    incumbent: Arc<dyn Engine>,
    candidate: Arc<dyn Engine>,
    mode: RouteMode,
    core: Arc<ShadowCore>,
    jobs: mpsc::Sender<CollectorJob>,
    /// Joined on drop so counters are final when the engine goes away.
    collector: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ShadowEngine {
    /// Wraps `incumbent` with duplication/splitting toward `candidate`.
    ///
    /// # Panics
    ///
    /// Panics if the two engines disagree on class count (their timelines
    /// would be incomparable) or the mode fails validation.
    pub fn new(
        incumbent: Arc<dyn Engine>,
        candidate: Arc<dyn Engine>,
        mode: RouteMode,
        policy: &PromotionPolicy,
    ) -> Self {
        assert_eq!(
            incumbent.num_classes(),
            candidate.num_classes(),
            "ShadowEngine: class-count mismatch between arms"
        );
        if let Err(e) = mode.validate() {
            panic!("invalid RouteMode: {e}");
        }
        let core = Arc::new(ShadowCore::new());
        let (tx, rx) = mpsc::channel::<CollectorJob>();
        let collector_core = Arc::clone(&core);
        let timeout = policy.candidate_timeout;
        let handle = std::thread::Builder::new()
            .name("zoo-shadow-collector".into())
            .spawn(move || collector_loop(rx, collector_core, timeout))
            .expect("spawn zoo-shadow-collector");
        ShadowEngine {
            incumbent,
            candidate,
            mode,
            core,
            jobs: tx,
            collector: Mutex::new(Some(handle)),
        }
    }

    /// Blocks until every response submitted before this call has been
    /// forwarded and its candidate comparison recorded — call before
    /// reading counters that must include in-flight work.
    pub fn sync(&self) {
        let (tx, rx) = mpsc::channel();
        if self.jobs.send(CollectorJob::Sync(tx)).is_ok() {
            let _ = rx.recv();
        }
    }

    /// Whether this submission (0-indexed `seq`) rides the candidate arm
    /// under `Split(f)`: deterministic, exact long-run fraction `f`.
    fn split_takes_candidate(f: f32, seq: u64) -> bool {
        let f = f as f64;
        ((seq + 1) as f64 * f).floor() > (seq as f64 * f).floor()
    }

    fn route(
        &self,
        windows: Tensor,
        submit: impl Fn(&dyn Engine, Tensor) -> Result<PendingResponse, ServeError>,
    ) -> Result<PendingResponse, ServeError> {
        let n = windows.dims()[0];
        match self.mode {
            RouteMode::Shadow => {
                let duplicate = windows.clone();
                let incumbent = submit(&*self.incumbent, windows)?;
                // The duplicate must never block or fail the real request:
                // try_submit only, and a refusal is just a dropped sample.
                let candidate = self.candidate.try_submit(duplicate).ok();
                {
                    let mut c = self.core.lock_counters();
                    c.incumbent_requests += 1;
                    c.candidate_requests += 1;
                    c.candidate_windows += n as u64;
                    if candidate.is_none() {
                        c.dropped += 1;
                    }
                }
                let (tx, rx) = mpsc::channel();
                let job = CollectorJob::Compare {
                    forward: tx,
                    incumbent,
                    candidate,
                };
                if self.jobs.send(job).is_err() {
                    // Collector is gone (engine dropped mid-flight): the
                    // caller sees Cancelled via the disconnected channel.
                }
                Ok(PendingResponse { rx, windows: n })
            }
            RouteMode::Split(f) => {
                let (candidate_arm, response) = {
                    let seq = {
                        let mut c = self.core.lock_counters();
                        let seq = c.incumbent_requests + c.candidate_requests;
                        let take = Self::split_takes_candidate(f, seq);
                        if take {
                            c.candidate_requests += 1;
                            c.candidate_windows += n as u64;
                        } else {
                            c.incumbent_requests += 1;
                        }
                        take
                    };
                    if seq {
                        (true, submit(&*self.candidate, windows)?)
                    } else {
                        (false, submit(&*self.incumbent, windows)?)
                    }
                };
                let (tx, rx) = mpsc::channel();
                let job = CollectorJob::RecordArm {
                    forward: tx,
                    response,
                    candidate_arm,
                };
                let _ = self.jobs.send(job);
                Ok(PendingResponse { rx, windows: n })
            }
        }
    }
}

impl Drop for ShadowEngine {
    fn drop(&mut self) {
        // Closing the job channel ends the collector loop after it drains.
        let handle = self
            .collector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        // Replace the sender with a dead one by dropping jobs implicitly:
        // mpsc senders close when all clones drop; ours drops with self,
        // but the collector must not outlive the join below, so signal by
        // sending nothing and joining after self.jobs is unusable. The
        // field drop order (jobs before collector) guarantees the loop's
        // recv errors out.
        if let Some(h) = handle {
            // Drop our sender first so the collector's recv() unblocks.
            let (dead_tx, _dead_rx) = mpsc::channel();
            self.jobs = dead_tx;
            let _ = h.join();
        }
    }
}

fn collector_loop(
    rx: mpsc::Receiver<CollectorJob>,
    core: Arc<ShadowCore>,
    candidate_timeout: Duration,
) {
    while let Ok(job) = rx.recv() {
        match job {
            CollectorJob::Compare {
                forward,
                incumbent,
                candidate,
            } => {
                let inc_result = incumbent.wait();
                // Forward FIRST: the incumbent's timeline must not wait on
                // the candidate.
                let inc_out = match inc_result {
                    Ok(out) => {
                        let _ = forward.send(Ok(out.clone()));
                        Some(out)
                    }
                    Err(e) => {
                        let _ = forward.send(Err(e));
                        None
                    }
                };
                let Some(inc_out) = inc_out else {
                    // The real request failed; the duplicate is moot.
                    if candidate.is_some() {
                        core.lock_counters().dropped += 1;
                    }
                    continue;
                };
                core.record_arm(false, &inc_out);
                let Some(candidate) = candidate else { continue };
                match candidate.wait_timeout(candidate_timeout) {
                    Ok(Ok(cand_out)) => {
                        core.record_arm(true, &cand_out);
                        let n = inc_out.predictions.len().min(cand_out.predictions.len());
                        let mut agreed = 0u64;
                        let mut delta = 0.0f64;
                        for i in 0..n {
                            if inc_out.predictions[i] == cand_out.predictions[i] {
                                agreed += 1;
                            }
                            let ic = confidence(inc_out.logits.row(i), inc_out.predictions[i]);
                            let cc = confidence(cand_out.logits.row(i), cand_out.predictions[i]);
                            delta += cc as f64 - ic as f64;
                        }
                        let mut c = core.lock_counters();
                        c.resolved += 1;
                        c.compared_windows += n as u64;
                        c.agreed_windows += agreed;
                        c.confidence_delta_sum += delta;
                    }
                    Ok(Err(_)) | Err(_) => {
                        core.lock_counters().dropped += 1;
                    }
                }
            }
            CollectorJob::RecordArm {
                forward,
                response,
                candidate_arm,
            } => match response.wait() {
                Ok(out) => {
                    let _ = forward.send(Ok(out.clone()));
                    core.record_arm(candidate_arm, &out);
                    if candidate_arm {
                        core.lock_counters().resolved += 1;
                    }
                }
                Err(e) => {
                    let _ = forward.send(Err(e));
                    if candidate_arm {
                        core.lock_counters().dropped += 1;
                    }
                }
            },
            CollectorJob::Sync(ack) => {
                let _ = ack.send(());
            }
        }
    }
}

impl Engine for ShadowEngine {
    fn kind(&self) -> &'static str {
        "shadow"
    }

    /// The incumbent's backends: shadowing is invisible to capacity
    /// planning of the serving arm ([`ZooStats`] exposes both arms).
    fn backends(&self) -> Vec<String> {
        self.incumbent.backends()
    }

    fn num_classes(&self) -> usize {
        self.incumbent.num_classes()
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        self.incumbent.input_shape()
    }

    fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        self.route(windows, |e, w| e.submit(w))
    }

    fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        self.route(windows, |e, w| e.try_submit(w))
    }

    fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        self.route(windows, move |e, w| e.submit_with_deadline(w, ttl))
    }

    fn engine_stats(&self) -> EngineStats {
        self.incumbent.engine_stats()
    }

    fn shutdown(self: Box<Self>) -> EngineStats {
        self.sync();
        self.incumbent.engine_stats()
    }
}

/// A snapshot of one live experiment.
#[derive(Debug, Clone)]
pub struct ExperimentStats {
    /// Name of the model serving real traffic (Shadow) / arm A (Split).
    pub incumbent: String,
    /// Name of the model under evaluation.
    pub candidate: String,
    /// Routing mode.
    pub mode: RouteMode,
    /// Requests the incumbent served.
    pub incumbent_requests: u64,
    /// Requests duplicated or routed to the candidate.
    pub candidate_requests: u64,
    /// Windows duplicated or routed to the candidate.
    pub candidate_windows: u64,
    /// Candidate responses resolved (compared in Shadow mode).
    pub resolved: u64,
    /// Candidate submissions dropped (refused, errored or timed out).
    pub dropped: u64,
    /// Windows compared prediction-by-prediction (Shadow only).
    pub compared_windows: u64,
    /// Compared windows where the two models agreed.
    pub agreed_windows: u64,
    /// Sum of per-window candidate−incumbent top-class confidence.
    pub confidence_delta_sum: f64,
    /// Per-stage latency of the incumbent arm (queueing + compute).
    pub incumbent_stages: StageSummary,
    /// Per-stage latency of the candidate arm.
    pub candidate_stages: StageSummary,
}

impl ExperimentStats {
    /// Fraction of compared windows where both arms agreed (0.0 before any
    /// comparison).
    pub fn agreement_rate(&self) -> f64 {
        if self.compared_windows == 0 {
            0.0
        } else {
            self.agreed_windows as f64 / self.compared_windows as f64
        }
    }

    /// Mean per-window candidate−incumbent confidence delta.
    pub fn mean_confidence_delta(&self) -> f64 {
        if self.compared_windows == 0 {
            0.0
        } else {
            self.confidence_delta_sum / self.compared_windows as f64
        }
    }

    /// Fraction of candidate submissions that never produced a comparable
    /// response.
    pub fn drop_rate(&self) -> f64 {
        if self.candidate_requests == 0 {
            0.0
        } else {
            self.dropped as f64 / self.candidate_requests as f64
        }
    }

    /// Internal-consistency check for the experiment counters: agreements
    /// never exceed comparisons, resolutions and drops never exceed
    /// duplications, and (in Shadow mode) every compared window rode a
    /// resolved duplicate.
    pub fn rollup_consistent(&self) -> bool {
        self.agreed_windows <= self.compared_windows
            && self.resolved + self.dropped <= self.candidate_requests
            && self.compared_windows <= self.candidate_windows
            && (!matches!(self.mode, RouteMode::Shadow)
                || self.candidate_requests == self.incumbent_requests)
    }
}

/// Per-model entry in a [`ZooStats`] snapshot.
#[derive(Debug, Clone)]
pub struct ModelStats {
    /// Registered model name.
    pub name: String,
    /// Whether this model is the current default.
    pub default: bool,
    /// The model engine's live statistics.
    pub engine: EngineStats,
}

/// A full zoo snapshot: every model plus the live experiment (if any).
#[derive(Debug, Clone)]
pub struct ZooStats {
    /// One entry per registered model, registration order.
    pub models: Vec<ModelStats>,
    /// The live experiment's counters, when one is running.
    pub experiment: Option<ExperimentStats>,
}

impl ZooStats {
    /// Rollup consistency: exactly one default model, and the experiment
    /// counters (when present) are internally consistent.
    pub fn rollup_consistent(&self) -> bool {
        self.models.iter().filter(|m| m.default).count() == 1
            && self
                .experiment
                .as_ref()
                .map(ExperimentStats::rollup_consistent)
                .unwrap_or(true)
    }
}

/// A live experiment installed on the zoo.
struct Experiment {
    incumbent: String,
    candidate: String,
    policy: PromotionPolicy,
    shadow: Arc<ShadowEngine>,
}

/// The registry of named model variants.
///
/// Registration happens at build time ([`ModelZoo::register`]); routing
/// state (default model, live experiment) may change while serving, so an
/// `Arc<ModelZoo>` shared with a [`StreamServer`](super::StreamServer) can
/// be experimented on live.
pub struct ModelZoo {
    entries: Vec<(String, Arc<dyn Engine>)>,
    by_name: BTreeMap<String, usize>,
    default_index: AtomicUsize,
    experiment: Mutex<Option<Experiment>>,
}

impl ModelZoo {
    /// An empty zoo.
    pub fn new() -> Self {
        ModelZoo {
            entries: Vec::new(),
            by_name: BTreeMap::new(),
            default_index: AtomicUsize::new(0),
            experiment: Mutex::new(None),
        }
    }

    /// A single-model zoo (how [`StreamServer::start`](super::StreamServer)
    /// wraps a bare engine).
    pub fn single(name: &str, engine: Arc<dyn Engine>) -> Self {
        let mut zoo = ModelZoo::new();
        zoo.register(name, engine)
            .expect("single: first registration cannot collide");
        zoo
    }

    /// Registers a model variant. The first registration becomes the
    /// default.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on an empty or duplicate name.
    pub fn register(&mut self, name: &str, engine: Arc<dyn Engine>) -> Result<(), ServeError> {
        if name.is_empty() {
            return Err(ServeError::BadRequest("model name is empty".into()));
        }
        if self.by_name.contains_key(name) {
            return Err(ServeError::BadRequest(format!(
                "model {name:?} is already registered"
            )));
        }
        if let Some((_, first)) = self.entries.first() {
            let first_classes = first.num_classes();
            if engine.num_classes() != first_classes {
                return Err(ServeError::BadRequest(format!(
                    "model {name:?} serves {} classes, zoo serves {first_classes}",
                    engine.num_classes()
                )));
            }
        }
        self.by_name.insert(name.to_string(), self.entries.len());
        self.entries.push((name.to_string(), engine));
        Ok(())
    }

    /// Registered model names, registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The current default model's name.
    ///
    /// # Panics
    ///
    /// Panics on an empty zoo.
    pub fn default_model(&self) -> &str {
        &self.entries[self.default_index.load(Ordering::Acquire)].0
    }

    /// Makes `name` the default model.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on an unknown name.
    pub fn set_default(&self, name: &str) -> Result<(), ServeError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown model {name:?}")))?;
        self.default_index.store(idx, Ordering::Release);
        Ok(())
    }

    /// Resolves a session's engine: `None` selects the default model. When
    /// a live experiment's incumbent is selected, the returned engine is
    /// the experiment's [`ShadowEngine`] wrapper, so the session's traffic
    /// feeds the experiment transparently.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on an unknown model name (the typed
    /// error the gateway converts into an Error frame — never a panic).
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<dyn Engine>, ServeError> {
        if self.entries.is_empty() {
            return Err(ServeError::Unavailable);
        }
        let resolved = match name {
            None => self.default_model().to_string(),
            Some(n) => {
                if !self.by_name.contains_key(n) {
                    return Err(ServeError::BadRequest(format!(
                        "unknown model {n:?} (registered: {})",
                        self.names().join(", ")
                    )));
                }
                n.to_string()
            }
        };
        let exp = self.experiment.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(exp) = exp.as_ref() {
            if exp.incumbent == resolved {
                return Ok(Arc::clone(&exp.shadow) as Arc<dyn Engine>);
            }
        }
        Ok(Arc::clone(&self.entries[self.by_name[&resolved]].1))
    }

    /// The bare engine registered under `name` (experiment-transparent).
    pub fn engine(&self, name: &str) -> Option<Arc<dyn Engine>> {
        self.by_name
            .get(name)
            .map(|&i| Arc::clone(&self.entries[i].1))
    }

    /// Starts an experiment: sessions on `incumbent` are served through a
    /// [`ShadowEngine`] duplicating (Shadow) or splitting (Split) toward
    /// `candidate`. At most one experiment runs at a time.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on unknown names, identical arms, an
    /// invalid mode, or an experiment already running.
    pub fn start_experiment(
        &self,
        incumbent: &str,
        candidate: &str,
        mode: RouteMode,
        policy: PromotionPolicy,
    ) -> Result<(), ServeError> {
        if incumbent == candidate {
            return Err(ServeError::BadRequest(
                "incumbent and candidate must differ".into(),
            ));
        }
        mode.validate().map_err(ServeError::BadRequest)?;
        let inc = self
            .engine(incumbent)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown model {incumbent:?}")))?;
        let cand = self
            .engine(candidate)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown model {candidate:?}")))?;
        let mut slot = self.experiment.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_some() {
            return Err(ServeError::BadRequest(
                "an experiment is already running".into(),
            ));
        }
        *slot = Some(Experiment {
            incumbent: incumbent.to_string(),
            candidate: candidate.to_string(),
            policy,
            shadow: Arc::new(ShadowEngine::new(inc, cand, mode, &policy)),
        });
        Ok(())
    }

    /// Stops the live experiment (if any), returning its final snapshot.
    pub fn stop_experiment(&self) -> Option<ExperimentStats> {
        let exp = self
            .experiment
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()?;
        exp.shadow.sync();
        Some(Self::snapshot_experiment(&exp))
    }

    /// The live experiment's snapshot (counters settled via the collector
    /// barrier first).
    pub fn experiment_stats(&self) -> Option<ExperimentStats> {
        let slot = self.experiment.lock().unwrap_or_else(|e| e.into_inner());
        let exp = slot.as_ref()?;
        exp.shadow.sync();
        Some(Self::snapshot_experiment(exp))
    }

    fn snapshot_experiment(exp: &Experiment) -> ExperimentStats {
        let c = *exp.shadow.core.lock_counters();
        ExperimentStats {
            incumbent: exp.incumbent.clone(),
            candidate: exp.candidate.clone(),
            mode: exp.shadow.mode,
            incumbent_requests: c.incumbent_requests,
            candidate_requests: c.candidate_requests,
            candidate_windows: c.candidate_windows,
            resolved: c.resolved,
            dropped: c.dropped,
            compared_windows: c.compared_windows,
            agreed_windows: c.agreed_windows,
            confidence_delta_sum: c.confidence_delta_sum,
            incumbent_stages: exp.shadow.core.arm_summary(false),
            candidate_stages: exp.shadow.core.arm_summary(true),
        }
    }

    /// Evaluates the live experiment against its [`PromotionPolicy`]; on
    /// [`PromotionDecision::Promote`] the candidate becomes the default
    /// model and the experiment ends. Sessions opened after promotion are
    /// served by the promoted model; running sessions keep their engine.
    ///
    /// Returns the decision, or `None` when no experiment is running.
    pub fn promote_if_ready(&self) -> Option<PromotionDecision> {
        let stats = self.experiment_stats()?;
        let decision = {
            let slot = self.experiment.lock().unwrap_or_else(|e| e.into_inner());
            slot.as_ref()?.policy.evaluate(&stats)
        };
        if decision == PromotionDecision::Promote {
            let candidate = stats.candidate.clone();
            let _ = self.stop_experiment();
            self.set_default(&candidate)
                .expect("promoted candidate is registered");
        }
        Some(decision)
    }

    /// A full statistics snapshot in the zoo's registration order.
    pub fn stats(&self) -> ZooStats {
        let default = self.default_index.load(Ordering::Acquire);
        ZooStats {
            models: self
                .entries
                .iter()
                .enumerate()
                .map(|(i, (name, engine))| ModelStats {
                    name: name.clone(),
                    default: i == default,
                    engine: engine.engine_stats(),
                })
                .collect(),
            experiment: self.experiment_stats(),
        }
    }
}

impl Default for ModelZoo {
    fn default() -> Self {
        ModelZoo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::InferenceEngine;
    use bioformer_core::{Bioformer, BioformerConfig, WaveFormer};

    fn small_bioformer() -> Arc<dyn Engine> {
        let cfg = BioformerConfig {
            heads: 2,
            depth: 1,
            head_dim: 8,
            hidden: 32,
            filter: 30,
            dropout: 0.0,
            ..BioformerConfig::bio1()
        };
        Arc::new(InferenceEngine::new(Box::new(Arc::new(Bioformer::new(
            &cfg,
        )))))
    }

    fn waveformer_engine() -> Arc<dyn Engine> {
        Arc::new(InferenceEngine::new(Box::new(Arc::new(WaveFormer::new(7)))))
    }

    fn window_batch(n: usize, seed: u64) -> Tensor {
        Tensor::from_fn(&[n, 14, 300], |i| {
            ((i as f32 * 0.37 + seed as f32 * 1.13).sin() * 0.8).clamp(-1.0, 1.0)
        })
    }

    #[test]
    fn registration_and_resolution() {
        let mut zoo = ModelZoo::new();
        zoo.register("bioformer-fp32", small_bioformer()).unwrap();
        zoo.register("waveformer-fp32", waveformer_engine())
            .unwrap();
        assert_eq!(zoo.default_model(), "bioformer-fp32");
        assert_eq!(zoo.names(), vec!["bioformer-fp32", "waveformer-fp32"]);
        assert!(zoo.resolve(None).is_ok());
        assert!(zoo.resolve(Some("waveformer-fp32")).is_ok());
        assert!(matches!(
            zoo.resolve(Some("nope")),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            zoo.register("bioformer-fp32", small_bioformer()),
            Err(ServeError::BadRequest(_))
        ));
        zoo.set_default("waveformer-fp32").unwrap();
        assert_eq!(zoo.default_model(), "waveformer-fp32");
    }

    #[test]
    fn shadow_preserves_incumbent_outputs_exactly() {
        let incumbent = small_bioformer();
        let mut zoo = ModelZoo::new();
        zoo.register("inc", Arc::clone(&incumbent)).unwrap();
        zoo.register("cand", waveformer_engine()).unwrap();
        zoo.start_experiment("inc", "cand", RouteMode::Shadow, PromotionPolicy::default())
            .unwrap();

        let shadowed = zoo.resolve(None).unwrap();
        assert_eq!(shadowed.kind(), "shadow");
        for seed in 0..4 {
            let batch = window_batch(3, seed);
            let bare = incumbent.classify(batch.clone()).unwrap();
            let via = shadowed.classify(batch).unwrap();
            assert_eq!(bare.predictions, via.predictions);
            assert!(bare.logits.allclose(&via.logits, 0.0), "logits diverge");
        }
        let exp = zoo.experiment_stats().unwrap();
        assert_eq!(exp.candidate_requests, 4);
        assert_eq!(exp.compared_windows, 12);
        assert!(exp.rollup_consistent(), "{exp:?}");
        assert!(exp.candidate_stages.compute.count > 0);
    }

    #[test]
    fn split_routes_exact_fraction() {
        let mut zoo = ModelZoo::new();
        zoo.register("a", small_bioformer()).unwrap();
        zoo.register("b", waveformer_engine()).unwrap();
        zoo.start_experiment("a", "b", RouteMode::Split(0.25), PromotionPolicy::default())
            .unwrap();
        let eng = zoo.resolve(Some("a")).unwrap();
        for s in 0..16 {
            let _ = eng.classify(window_batch(1, s)).unwrap();
        }
        let exp = zoo.experiment_stats().unwrap();
        assert_eq!(exp.candidate_requests, 4, "{exp:?}");
        assert_eq!(exp.incumbent_requests, 12);
        assert!(exp.rollup_consistent());
    }

    #[test]
    fn promotion_gates_on_agreement_and_promotes_identical_models() {
        // Identical architecture + identical seed => 100% agreement.
        let mut zoo = ModelZoo::new();
        zoo.register("inc", small_bioformer()).unwrap();
        zoo.register("cand", small_bioformer()).unwrap();
        let policy = PromotionPolicy {
            min_windows: 8,
            ..PromotionPolicy::default()
        };
        zoo.start_experiment("inc", "cand", RouteMode::Shadow, policy)
            .unwrap();
        let eng = zoo.resolve(None).unwrap();
        // Not enough evidence yet.
        let _ = eng.classify(window_batch(2, 0)).unwrap();
        match zoo.promote_if_ready().unwrap() {
            PromotionDecision::Hold(reasons) => {
                assert!(
                    reasons.iter().any(|r| r.contains("evidence")),
                    "{reasons:?}"
                )
            }
            d => panic!("expected Hold, got {d:?}"),
        }
        for s in 1..6 {
            let _ = eng.classify(window_batch(2, s)).unwrap();
        }
        assert_eq!(zoo.promote_if_ready().unwrap(), PromotionDecision::Promote);
        assert_eq!(zoo.default_model(), "cand");
        assert!(zoo.experiment_stats().is_none(), "experiment must end");
        let stats = zoo.stats();
        assert!(stats.rollup_consistent());
    }

    #[test]
    fn class_count_mismatch_is_rejected_at_registration() {
        struct TinyEngine;
        impl Engine for TinyEngine {
            fn kind(&self) -> &'static str {
                "inference"
            }
            fn backends(&self) -> Vec<String> {
                vec!["tiny".into()]
            }
            fn num_classes(&self) -> usize {
                3
            }
            fn input_shape(&self) -> Option<(usize, usize)> {
                None
            }
            fn submit(&self, _w: Tensor) -> Result<PendingResponse, ServeError> {
                Err(ServeError::Unavailable)
            }
            fn try_submit(&self, _w: Tensor) -> Result<PendingResponse, ServeError> {
                Err(ServeError::Unavailable)
            }
            fn submit_with_deadline(
                &self,
                _w: Tensor,
                _ttl: Duration,
            ) -> Result<PendingResponse, ServeError> {
                Err(ServeError::Unavailable)
            }
            fn engine_stats(&self) -> EngineStats {
                EngineStats {
                    engine: "inference",
                    backends: vec![],
                    tuning: vec![],
                    requests: 0,
                    expired: 0,
                    failed: 0,
                    rejected: 0,
                    batches: 0,
                    coalesced_batches: 0,
                    windows: 0,
                    latency: crate::serve::LatencyStats::from_samples(&mut [], 0),
                }
            }
            fn shutdown(self: Box<Self>) -> EngineStats {
                self.engine_stats()
            }
        }
        let mut zoo = ModelZoo::new();
        zoo.register("real", small_bioformer()).unwrap();
        assert!(matches!(
            zoo.register("tiny", Arc::new(TinyEngine)),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn split_fraction_is_deterministic_and_exact() {
        for f in [0.0f32, 0.1, 0.5, 0.9, 1.0] {
            let taken = (0..1000)
                .filter(|&s| ShadowEngine::split_takes_candidate(f, s))
                .count();
            let expected = (1000.0 * f as f64).floor() as usize;
            assert!(
                (taken as i64 - expected as i64).abs() <= 1,
                "f={f}: took {taken}, expected ~{expected}"
            );
        }
    }
}
