//! The multi-tenant streaming server and its TCP front door.
//!
//! [`StreamSession`] serves **one** electrode array; the ROADMAP's workload
//! is thousands of them multiplexed over a shared engine. [`StreamServer`]
//! is that multiplexer:
//!
//! * **N concurrent sessions, one engine** — every session streams through
//!   the same `Arc<dyn Engine>` (an inline
//!   [`InferenceEngine`](super::InferenceEngine), a coalescing
//!   [`AsyncEngine`](super::AsyncEngine), or a
//!   [`ShardedEngine`](super::ShardedEngine) pool — the server is
//!   topology-generic).
//! * **Bounded per-session inbound buffers + round-robin fairness** — each
//!   session may buffer at most [`StreamServerConfig::inbound_chunks`]
//!   chunks; the pump serves sessions in token order, at most
//!   [`StreamServerConfig::quantum`] chunks per session per round. A
//!   session flooding at 100× the others' rate saturates *its own* buffer
//!   (its sender blocks, or [`SessionHandle::try_send`] reports
//!   [`ServeError::QueueFull`]) while every other session keeps its
//!   schedule — flooding cannot starve the pool.
//! * **Session lifecycle** — connect / idle-timeout eviction / reconnect.
//!   Eviction and client-side disconnects both [`StreamSession::suspend`]
//!   the stream into a [`SessionCheckpoint`] parked under the session
//!   token; [`StreamServer::resume`] reopens it with the decision smoother,
//!   buffered tail samples, undelivered events and per-window history
//!   intact, so the resumed stream is bit-identical to an uninterrupted
//!   one — no duplicated and no lost [`GestureEvent`] across the seam.
//! * **Per-tenant statistics** — every counter is tracked per tenant and
//!   rolled up into pool totals ([`ServerStats`]), with the same
//!   totals-equal-sum-of-parts invariant the sharded engine's
//!   [`PoolStats`](super::PoolStats) keeps per replica
//!   ([`ServerStats::rollup_consistent`]).
//!
//! [`TcpGateway`] puts the wire on it: a `std::net` loopback listener
//! speaking the length-prefixed [`proto`](super::proto) frame protocol —
//! sample chunks in; [`GestureEvent`], summary and stats frames out;
//! explicit error frames for every failure. The matching client codec
//! lives in [`client`](super::client).
//!
//! `docs/serving.md` § "Gateway" has the frame diagram, the session
//! lifecycle state machine and the fairness semantics.

use super::engine::{Engine, EngineStats};
use super::proto::{encode_frame, ErrorCode, Frame, FrameDecoder};
use super::queue::ServeError;
use super::stream::{GestureEvent, SessionCheckpoint, StreamConfig, StreamSession, StreamSummary};
use super::trace::{LatencyBudget, LatencyTrace, StageRecorder, StageSummary};
use super::zoo::{ModelZoo, ZooStats};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for a [`StreamServer`].
#[derive(Debug, Clone)]
pub struct StreamServerConfig {
    /// The per-session stream template (shape, slide, lookahead, policy,
    /// normalizer). Every session the server opens uses this config.
    pub stream: StreamConfig,
    /// Maximum concurrently-open sessions; [`StreamServer::connect`] fails
    /// with [`ServeError::Unavailable`] beyond it. Parked (suspended)
    /// sessions do not occupy a slot.
    pub max_sessions: usize,
    /// Per-session inbound buffer capacity in chunks — the backpressure
    /// bound. A full buffer blocks [`SessionHandle::send`] and fails
    /// [`SessionHandle::try_send`] with [`ServeError::QueueFull`].
    pub inbound_chunks: usize,
    /// Chunks served per session per round-robin turn — the fairness
    /// quantum.
    pub quantum: usize,
    /// Evict sessions idle (no inbound traffic) for this long, suspending
    /// their state for resume. `None` disables eviction.
    pub idle_timeout: Option<Duration>,
    /// Drop parked checkpoints not resumed within this window. `None`
    /// parks them forever.
    pub resume_ttl: Option<Duration>,
    /// Default per-session decision-latency budget (SLO). Sessions whose
    /// per-session [`StageSummary`] blows the budget are flagged (counted
    /// in [`ServeCounters::slo_violations`]) and — when
    /// [`StreamServerConfig::slo_evict`] is set — evicted with their
    /// checkpoint parked, exactly like an idle-timeout eviction.
    /// [`SessionOptions::slo`] overrides it per session. `None` disables
    /// SLO enforcement.
    pub slo: Option<LatencyBudget>,
    /// Whether an SLO violation evicts the session (park + free the slot)
    /// or merely flags it.
    pub slo_evict: bool,
}

impl StreamServerConfig {
    /// A config serving `stream` with 32 session slots, 8-chunk buffers,
    /// a quantum of 4, no idle eviction and a 60 s resume window.
    pub fn new(stream: StreamConfig) -> Self {
        StreamServerConfig {
            stream,
            max_sessions: 32,
            inbound_chunks: 8,
            quantum: 4,
            idle_timeout: None,
            resume_ttl: Some(Duration::from_secs(60)),
            slo: None,
            slo_evict: false,
        }
    }

    /// Sets the session-slot count.
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    /// Sets the per-session inbound buffer capacity in chunks.
    pub fn with_inbound_chunks(mut self, inbound_chunks: usize) -> Self {
        self.inbound_chunks = inbound_chunks;
        self
    }

    /// Sets the round-robin quantum in chunks.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets (or disables) the idle-eviction timeout.
    pub fn with_idle_timeout(mut self, idle_timeout: Option<Duration>) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Sets (or disables) the parked-checkpoint TTL.
    pub fn with_resume_ttl(mut self, resume_ttl: Option<Duration>) -> Self {
        self.resume_ttl = resume_ttl;
        self
    }

    /// Sets the default per-session decision-latency budget (SLO).
    pub fn with_slo(mut self, slo: LatencyBudget) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Makes SLO violations evict (park) the offending session instead of
    /// only flagging it.
    pub fn with_slo_evict(mut self, slo_evict: bool) -> Self {
        self.slo_evict = slo_evict;
        self
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.max_sessions == 0 || self.inbound_chunks == 0 || self.quantum == 0 {
            return Err(ServeError::BadRequest(format!(
                "StreamServerConfig: max_sessions {}, inbound_chunks {}, quantum {} \
                 must all be >= 1",
                self.max_sessions, self.inbound_chunks, self.quantum
            )));
        }
        Ok(())
    }
}

/// Lifetime counters of one logical session or one tenant (identical
/// schema, so per-session counters roll into per-tenant counters roll into
/// pool totals by plain field-wise addition).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Sessions opened ([`StreamServer::connect`]; 1 for a session).
    pub sessions: u64,
    /// Successful [`StreamServer::resume`] reconnects.
    pub reconnects: u64,
    /// Idle-timeout evictions.
    pub evictions: u64,
    /// Client-side disconnects that parked a checkpoint (bye / dropped
    /// handle / socket loss).
    pub disconnects: u64,
    /// Streams finished cleanly.
    pub finished: u64,
    /// Streams failed by an engine error.
    pub failed: u64,
    /// Sample chunks absorbed.
    pub chunks: u64,
    /// Raw samples absorbed.
    pub samples: u64,
    /// Windows decided.
    pub windows: u64,
    /// Gesture events emitted.
    pub events: u64,
    /// Sessions flagged for blowing their decision-latency budget (one per
    /// session, on the first violating round). SLO-triggered evictions
    /// additionally count under `evictions`.
    pub slo_violations: u64,
}

impl ServeCounters {
    fn add(&mut self, other: &ServeCounters) {
        self.sessions += other.sessions;
        self.reconnects += other.reconnects;
        self.evictions += other.evictions;
        self.disconnects += other.disconnects;
        self.finished += other.finished;
        self.failed += other.failed;
        self.chunks += other.chunks;
        self.samples += other.samples;
        self.windows += other.windows;
        self.events += other.events;
        self.slo_violations += other.slo_violations;
    }
}

/// One tenant's rolled-up counters inside a [`ServerStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant name (from [`StreamServer::connect`]).
    pub tenant: String,
    /// The tenant's lifetime counters.
    pub counters: ServeCounters,
}

/// A snapshot of a [`StreamServer`]'s serving state: pool totals, the
/// per-tenant breakdown they roll up from, live/parked gauges and the
/// underlying engine's [`EngineStats`].
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Pool-wide totals; each field equals the sum over `per_tenant`.
    pub totals: ServeCounters,
    /// Per-tenant breakdown, tenant-name order.
    pub per_tenant: Vec<TenantStats>,
    /// Sessions currently open (attached or awaiting their end).
    pub live_sessions: usize,
    /// Suspended checkpoints currently parked for resume.
    pub parked_sessions: usize,
    /// Per-stage decision-latency percentiles (p50/p95/p99 for buffering /
    /// queueing / compute / smoothing) over the events emitted by **all**
    /// sessions, rolled up by the pump. Traces from a session's final
    /// finish/suspend drain live only in that session's
    /// [`StreamSummary::stages`] — the pump rolls up traces per served
    /// round, so the pool view can trail the per-session view by the few
    /// events a stream emits while closing.
    pub stages: StageSummary,
    /// The **default model's** engine statistics (kept for single-model
    /// deployments; the full per-model picture is in `zoo`).
    pub engine: EngineStats,
    /// The model zoo's snapshot: every registered model's [`EngineStats`]
    /// plus the live shadow/A-B experiment's counters, if one is running.
    pub zoo: ZooStats,
}

impl ServerStats {
    /// Whether every pool total equals the sum of its per-tenant
    /// counterparts — the same totals-equal-sum invariant
    /// [`PoolStats::rollup_consistent`](super::PoolStats::rollup_consistent)
    /// keeps per replica, one layer up.
    pub fn rollup_consistent(&self) -> bool {
        let mut sum = ServeCounters::default();
        for t in &self.per_tenant {
            sum.add(&t.counters);
        }
        sum == self.totals && self.zoo.rollup_consistent()
    }
}

/// Per-session options for [`StreamServer::connect_with`].
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Model variant to serve this session with (a name registered in the
    /// server's [`ModelZoo`]); `None` selects the zoo's default model —
    /// exactly what a v1 wire client gets.
    pub model: Option<String>,
    /// Per-session decision-latency budget, overriding
    /// [`StreamServerConfig::slo`].
    pub slo: Option<LatencyBudget>,
}

impl SessionOptions {
    /// Selects a model variant by name.
    pub fn with_model(mut self, model: &str) -> Self {
        self.model = Some(model.to_string());
        self
    }

    /// Sets the per-session latency budget.
    pub fn with_slo(mut self, slo: LatencyBudget) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// Per-session final counters reported by [`FinishReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sample chunks absorbed over the logical stream.
    pub chunks: u64,
    /// Raw samples absorbed.
    pub samples: u64,
    /// Windows decided.
    pub windows: u64,
    /// Gesture events emitted.
    pub events: u64,
}

/// What [`SessionHandle::finish`] returns: the stream summary plus the
/// session's final counters.
#[derive(Debug, Clone)]
pub struct FinishReport {
    /// The whole logical stream's summary; its `events` field carries every
    /// event **not** already returned by [`SessionHandle::poll_events`].
    pub summary: StreamSummary,
    /// The session's lifetime counters (reconnect seams included).
    pub stats: SessionStats,
}

/// How a session ended, parked in its slot until the handle consumes it.
#[derive(Debug)]
enum SessionEnd {
    /// Finished cleanly; the summary waits for [`SessionHandle::finish`].
    Finished(Box<StreamSummary>),
    /// Suspended and parked on client request (bye / detach).
    Parked,
    /// Suspended and parked by the idle timeout.
    Evicted,
    /// The engine failed the stream.
    Failed(ServeError),
}

/// A live session's registry phase.
#[derive(Debug)]
enum Phase {
    /// Streaming.
    Open,
    /// The client requested a clean finish; remaining inbound drains first.
    FinishRequested,
    /// The client requested suspension (bye, dropped handle, lost socket).
    ByeRequested,
    /// The stream ended; the handle consumes the outcome.
    Done(SessionEnd),
}

/// One open session's shared state (registry side).
struct Slot {
    tenant: String,
    /// The zoo model name this session was resolved against.
    model: String,
    /// The resolved engine the pump serves this session with. Resolution
    /// happens once, at connect/resume time — a mid-session promotion or
    /// experiment change never reroutes a live stream.
    engine: Arc<dyn Engine>,
    /// The session's decision-latency budget (per-session override or the
    /// server-wide default), if any.
    slo: Option<LatencyBudget>,
    /// Set once the first SLO violation was counted, so a session is
    /// flagged (and counted) at most once.
    slo_flagged: bool,
    phase: Phase,
    /// Bounded inbound chunk buffer (the backpressure bound).
    inbound: VecDeque<Vec<f32>>,
    /// Events decided but not yet polled by the handle.
    events: Vec<GestureEvent>,
    /// Set when the handle was dropped (nobody will consume the end).
    detached: bool,
    /// Consumed by the pump when it instantiates the `StreamSession`.
    resume_from: Option<SessionCheckpoint>,
    /// Windows decided over the logical stream, as last observed by the
    /// pump (drives the per-round `windows` counter delta).
    decided_seen: u64,
    /// Per-session counters (carried across reconnect seams).
    counters: SessionStats,
    last_activity: Instant,
}

/// A suspended session's parked state, keyed by its token.
struct Parked {
    tenant: String,
    /// The model the session was opened with; resume re-resolves it so the
    /// stream continues on the same variant it started on.
    model: String,
    checkpoint: SessionCheckpoint,
    /// Undelivered events, re-queued into the slot on resume.
    events: Vec<GestureEvent>,
    counters: SessionStats,
    decided_seen: u64,
    parked_at: Instant,
}

/// The mutable registry behind the mutex.
struct Registry {
    slots: BTreeMap<u64, Slot>,
    parked: BTreeMap<u64, Parked>,
    tenants: BTreeMap<String, ServeCounters>,
    totals: ServeCounters,
    /// Pool-wide decision-latency rollup, fed by the pump's write-back
    /// phase with the traces each round's sessions recorded.
    stages: StageRecorder,
}

impl Registry {
    /// Sessions occupying a pool slot (ended-but-unconsumed slots are
    /// zombies awaiting their handle and do not count).
    fn live(&self) -> usize {
        self.slots
            .values()
            .filter(|s| !matches!(s.phase, Phase::Done(_)))
            .count()
    }

    /// Applies a counter delta to one tenant and the pool totals — the one
    /// place the two are written, which is what keeps
    /// [`ServerStats::rollup_consistent`] true.
    fn tally(&mut self, tenant: &str, delta: &ServeCounters) {
        self.tenants
            .entry(tenant.to_string())
            .or_default()
            .add(delta);
        self.totals.add(delta);
    }
}

/// State shared between the server front, its handles and the pump thread.
struct Shared {
    cfg: StreamServerConfig,
    state: Mutex<Registry>,
    /// Signals the pump: inbound chunks or lifecycle requests are waiting.
    work: Condvar,
    /// Signals handles: buffer space freed, events or outcomes published.
    room: Condvar,
    next_token: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Registry> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The multi-tenant streaming server (see the [module docs](self)).
///
/// In-process clients use [`StreamServer::connect`] /
/// [`StreamServer::resume`] and the returned [`SessionHandle`]s directly;
/// [`TcpGateway`] exposes the same lifecycle over the wire.
///
/// The server is engine-agnostic, but the recommended deployment is over a
/// [`ShardedEngine`](super::ShardedEngine) pool rather than a single
/// [`InferenceEngine`](super::InferenceEngine): replicas absorb tenant
/// bursts independently, quarantine isolates a failing backend, and a mixed
/// fp32 + int8 pool can be capacity-planned with per-replica weights (see
/// `examples/serve_gateway.rs`).
pub struct StreamServer {
    shared: Arc<Shared>,
    zoo: Arc<ModelZoo>,
    pump: Mutex<Option<JoinHandle<()>>>,
}

impl StreamServer {
    /// Starts a server multiplexing sessions over a single `engine`,
    /// registered as the zoo's sole model under the name `"default"`.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on a zero `max_sessions`,
    /// `inbound_chunks` or `quantum`.
    pub fn start(engine: Arc<dyn Engine>, cfg: StreamServerConfig) -> Result<Self, ServeError> {
        Self::start_zoo(Arc::new(ModelZoo::single("default", engine)), cfg)
    }

    /// Starts a server over a [`ModelZoo`]: sessions pick a registered
    /// model by name (wire protocol v2 `Hello.model`, or
    /// [`SessionOptions::model`] in-process) and default to the zoo's
    /// current default variant.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on a zero `max_sessions`,
    /// `inbound_chunks`, `quantum`, or an empty zoo.
    pub fn start_zoo(zoo: Arc<ModelZoo>, cfg: StreamServerConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        if zoo.names().is_empty() {
            return Err(ServeError::BadRequest(
                "StreamServer requires a zoo with at least one model".into(),
            ));
        }
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(Registry {
                slots: BTreeMap::new(),
                parked: BTreeMap::new(),
                tenants: BTreeMap::new(),
                totals: ServeCounters::default(),
                stages: StageRecorder::new(),
            }),
            work: Condvar::new(),
            room: Condvar::new(),
            next_token: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let pump = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("stream-server-pump".into())
                .spawn(move || pump_loop(&shared))
                .expect("spawn stream-server pump")
        };
        Ok(StreamServer {
            shared,
            zoo,
            pump: Mutex::new(Some(pump)),
        })
    }

    /// The server's model zoo (register variants, run experiments, promote).
    pub fn zoo(&self) -> &Arc<ModelZoo> {
        &self.zoo
    }

    /// The per-session stream template.
    pub fn stream_config(&self) -> &StreamConfig {
        &self.shared.cfg.stream
    }

    /// Opens a new session for `tenant`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unavailable`] when all
    /// [`StreamServerConfig::max_sessions`] slots are occupied, and
    /// [`ServeError::ShuttingDown`] after [`StreamServer::shutdown`].
    pub fn connect(&self, tenant: &str) -> Result<SessionHandle, ServeError> {
        self.connect_with(tenant, SessionOptions::default())
    }

    /// Opens a new session with per-session [`SessionOptions`]: an explicit
    /// zoo model and/or a latency budget overriding
    /// [`StreamServerConfig::slo`].
    ///
    /// # Errors
    ///
    /// Everything [`StreamServer::connect`] returns, plus
    /// [`ServeError::BadRequest`] for a model name the zoo does not know.
    pub fn connect_with(
        &self,
        tenant: &str,
        opts: SessionOptions,
    ) -> Result<SessionHandle, ServeError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // Resolve before taking a slot so an unknown model costs nothing.
        let model = opts
            .model
            .unwrap_or_else(|| self.zoo.default_model().to_string());
        let engine = self.zoo.resolve(Some(&model))?;
        let slo = opts.slo.or(self.shared.cfg.slo);
        let mut reg = self.shared.lock();
        if reg.live() >= self.shared.cfg.max_sessions {
            return Err(ServeError::Unavailable);
        }
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        reg.slots.insert(
            token,
            Slot {
                tenant: tenant.to_string(),
                model,
                engine,
                slo,
                slo_flagged: false,
                phase: Phase::Open,
                inbound: VecDeque::new(),
                events: Vec::new(),
                detached: false,
                resume_from: None,
                decided_seen: 0,
                counters: SessionStats::default(),
                last_activity: Instant::now(),
            },
        );
        reg.tally(
            tenant,
            &ServeCounters {
                sessions: 1,
                ..ServeCounters::default()
            },
        );
        drop(reg);
        self.shared.work.notify_all();
        Ok(SessionHandle {
            shared: Arc::clone(&self.shared),
            token,
            tenant: tenant.to_string(),
            consumed: false,
        })
    }

    /// Reconnects to a suspended session: the parked checkpoint (decision
    /// smoother, buffered tail samples, per-window history) and any
    /// undelivered events move into a fresh slot, and the stream continues
    /// bit-identically to one that was never interrupted. The returned
    /// handle carries a **new** token (the old one may still be held by an
    /// evicted handle); park/resume again with the new one.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an unknown/expired token or a tenant
    /// mismatch, [`ServeError::Unavailable`] when no slot is free,
    /// [`ServeError::ShuttingDown`] after shutdown.
    pub fn resume(&self, tenant: &str, token: u64) -> Result<SessionHandle, ServeError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let mut reg = self.shared.lock();
        if reg.live() >= self.shared.cfg.max_sessions {
            return Err(ServeError::Unavailable);
        }
        let parked = reg.parked.remove(&token).ok_or_else(|| {
            ServeError::BadRequest(format!("unknown or expired resume token {token}"))
        })?;
        if parked.tenant != tenant {
            let owner = parked.tenant.clone();
            reg.parked.insert(token, parked);
            return Err(ServeError::BadRequest(format!(
                "resume token {token} belongs to tenant {owner:?}, not {tenant:?}"
            )));
        }
        // Re-resolve the model the session started on: the stream must
        // continue on the same variant, but an experiment started while it
        // was parked may wrap it in a fresh shadow route.
        let engine = match self.zoo.resolve(Some(&parked.model)) {
            Ok(engine) => engine,
            Err(e) => {
                reg.parked.insert(token, parked);
                return Err(e);
            }
        };
        // A fresh token: the old one may still name an evicted zombie slot
        // whose handle has not observed the eviction yet.
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        reg.slots.insert(
            token,
            Slot {
                tenant: parked.tenant,
                model: parked.model,
                engine,
                slo: self.shared.cfg.slo,
                slo_flagged: false,
                phase: Phase::Open,
                inbound: VecDeque::new(),
                events: parked.events,
                detached: false,
                resume_from: Some(parked.checkpoint),
                decided_seen: parked.decided_seen,
                counters: parked.counters,
                last_activity: Instant::now(),
            },
        );
        reg.tally(
            tenant,
            &ServeCounters {
                reconnects: 1,
                ..ServeCounters::default()
            },
        );
        drop(reg);
        self.shared.work.notify_all();
        Ok(SessionHandle {
            shared: Arc::clone(&self.shared),
            token,
            tenant: tenant.to_string(),
            consumed: false,
        })
    }

    /// A live snapshot of the server's statistics.
    pub fn stats(&self) -> ServerStats {
        let reg = self.shared.lock();
        ServerStats {
            totals: reg.totals.clone(),
            per_tenant: reg
                .tenants
                .iter()
                .map(|(tenant, counters)| TenantStats {
                    tenant: tenant.clone(),
                    counters: counters.clone(),
                })
                .collect(),
            live_sessions: reg.live(),
            parked_sessions: reg.parked.len(),
            stages: reg.stages.summary(),
            engine: self
                .zoo
                .engine(self.zoo.default_model())
                .expect("zoo default model is always registered")
                .engine_stats(),
            zoo: self.zoo.stats(),
        }
    }

    /// Stops the pump: open sessions fail with
    /// [`ServeError::ShuttingDown`], parked checkpoints are dropped, and
    /// the final statistics are returned. The engine itself is left
    /// running — it belongs to the caller.
    pub fn shutdown(&self) -> ServerStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        if let Some(pump) = self.pump.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = pump.join();
        }
        self.stats()
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl std::fmt::Debug for StreamServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.shared.lock();
        f.debug_struct("StreamServer")
            .field("default_model", &self.zoo.default_model())
            .field("models", &self.zoo.names())
            .field("live_sessions", &reg.live())
            .field("parked_sessions", &reg.parked.len())
            .field("max_sessions", &self.shared.cfg.max_sessions)
            .finish()
    }
}

/// A client's handle to one open server-side session.
///
/// Dropping a handle without [`SessionHandle::finish`] or
/// [`SessionHandle::disconnect`] counts as a mid-stream disconnect: the
/// server suspends the session, parks its checkpoint under
/// [`SessionHandle::token`] and frees the slot.
pub struct SessionHandle {
    shared: Arc<Shared>,
    token: u64,
    tenant: String,
    consumed: bool,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("token", &self.token)
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl SessionHandle {
    /// The session token — the resume key after a disconnect or eviction.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Phase/end check shared by the mutating entry points.
    fn check_open(slot: &Slot) -> Result<(), ServeError> {
        match &slot.phase {
            Phase::Open => Ok(()),
            Phase::FinishRequested | Phase::ByeRequested => Err(ServeError::BadRequest(
                "session is already finishing or disconnecting".into(),
            )),
            Phase::Done(SessionEnd::Evicted) => Err(ServeError::Evicted),
            Phase::Done(SessionEnd::Failed(e)) => Err(e.clone()),
            Phase::Done(_) => Err(ServeError::BadRequest("session already ended".into())),
        }
    }

    /// Queues one chunk of raw interleaved samples, blocking while the
    /// session's bounded inbound buffer is full (cooperative backpressure).
    ///
    /// # Errors
    ///
    /// [`ServeError::Evicted`] after an idle-timeout eviction (resume with
    /// the token), the stream's failure error after an engine fault,
    /// [`ServeError::ShuttingDown`] on server shutdown.
    pub fn send(&self, samples: &[f32]) -> Result<(), ServeError> {
        let mut reg = self.shared.lock();
        loop {
            let slot = reg.slots.get(&self.token).ok_or(ServeError::ShuttingDown)?;
            Self::check_open(slot)?;
            if slot.inbound.len() < self.shared.cfg.inbound_chunks {
                break;
            }
            reg = self
                .shared
                .room
                .wait_timeout(reg, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
        }
        let slot = reg.slots.get_mut(&self.token).expect("checked above");
        slot.inbound.push_back(samples.to_vec());
        slot.last_activity = Instant::now();
        drop(reg);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Non-blocking [`SessionHandle::send`]: a full inbound buffer fails
    /// fast with [`ServeError::QueueFull`] — the per-session backpressure
    /// signal a flooding client observes while everyone else streams on.
    pub fn try_send(&self, samples: &[f32]) -> Result<(), ServeError> {
        let mut reg = self.shared.lock();
        let slot = reg
            .slots
            .get_mut(&self.token)
            .ok_or(ServeError::ShuttingDown)?;
        Self::check_open(slot)?;
        if slot.inbound.len() >= self.shared.cfg.inbound_chunks {
            return Err(ServeError::QueueFull);
        }
        slot.inbound.push_back(samples.to_vec());
        slot.last_activity = Instant::now();
        drop(reg);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Takes the gesture events decided since the last poll (possibly
    /// none).
    ///
    /// # Errors
    ///
    /// Once the pending events are drained: [`ServeError::Evicted`] after
    /// an eviction, the failure error after an engine fault.
    pub fn poll_events(&self) -> Result<Vec<GestureEvent>, ServeError> {
        let mut reg = self.shared.lock();
        let slot = reg
            .slots
            .get_mut(&self.token)
            .ok_or(ServeError::ShuttingDown)?;
        if !slot.events.is_empty() {
            return Ok(std::mem::take(&mut slot.events));
        }
        match &slot.phase {
            Phase::Done(SessionEnd::Evicted) => Err(ServeError::Evicted),
            Phase::Done(SessionEnd::Failed(e)) => Err(e.clone()),
            _ => Ok(Vec::new()),
        }
    }

    /// Ends the stream cleanly: waits for every queued chunk to be served,
    /// closes the final decision and returns the [`FinishReport`]. The
    /// report's summary covers the **whole logical stream**, reconnect
    /// seams included; its `events` carry everything not already polled.
    ///
    /// # Errors
    ///
    /// [`ServeError::Evicted`] if the idle timeout won the race, the
    /// stream's failure error after an engine fault,
    /// [`ServeError::ShuttingDown`] on server shutdown.
    pub fn finish(mut self) -> Result<FinishReport, ServeError> {
        let mut reg = self.shared.lock();
        {
            let slot = reg
                .slots
                .get_mut(&self.token)
                .ok_or(ServeError::ShuttingDown)?;
            Self::check_open(slot)?;
            slot.phase = Phase::FinishRequested;
        }
        self.shared.work.notify_all();
        loop {
            {
                let slot = reg
                    .slots
                    .get_mut(&self.token)
                    .ok_or(ServeError::ShuttingDown)?;
                if let Phase::Done(_) = slot.phase {
                    break;
                }
            }
            reg = self
                .shared
                .room
                .wait_timeout(reg, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        let slot = reg.slots.remove(&self.token).expect("checked above");
        self.consumed = true;
        match slot.phase {
            Phase::Done(SessionEnd::Finished(summary)) => Ok(FinishReport {
                summary: *summary,
                stats: slot.counters,
            }),
            Phase::Done(SessionEnd::Evicted) => Err(ServeError::Evicted),
            Phase::Done(SessionEnd::Failed(e)) => Err(e),
            phase => unreachable!("finish woke on non-final phase {phase:?}"),
        }
    }

    /// Detaches without finishing: the server suspends the session, parks
    /// its checkpoint (undelivered events included) and frees the slot.
    /// Returns the token to [`StreamServer::resume`] with. If the session
    /// was already evicted, the checkpoint is already parked and the token
    /// comes back immediately.
    ///
    /// # Errors
    ///
    /// The stream's failure error after an engine fault,
    /// [`ServeError::ShuttingDown`] on server shutdown.
    pub fn disconnect(mut self) -> Result<u64, ServeError> {
        let mut reg = self.shared.lock();
        {
            let slot = reg
                .slots
                .get_mut(&self.token)
                .ok_or(ServeError::ShuttingDown)?;
            match &slot.phase {
                Phase::Open => slot.phase = Phase::ByeRequested,
                Phase::Done(SessionEnd::Evicted) => {
                    // Already suspended and parked by the idle timeout.
                    reg.slots.remove(&self.token);
                    self.consumed = true;
                    return Ok(self.token);
                }
                Phase::Done(SessionEnd::Failed(e)) => {
                    let e = e.clone();
                    reg.slots.remove(&self.token);
                    self.consumed = true;
                    return Err(e);
                }
                _ => {
                    return Err(ServeError::BadRequest(
                        "session is already finishing or ended".into(),
                    ))
                }
            }
        }
        self.shared.work.notify_all();
        loop {
            {
                let slot = reg
                    .slots
                    .get_mut(&self.token)
                    .ok_or(ServeError::ShuttingDown)?;
                if let Phase::Done(_) = slot.phase {
                    break;
                }
            }
            reg = self
                .shared
                .room
                .wait_timeout(reg, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        let slot = reg.slots.remove(&self.token).expect("checked above");
        self.consumed = true;
        match slot.phase {
            Phase::Done(SessionEnd::Parked) | Phase::Done(SessionEnd::Evicted) => Ok(self.token),
            Phase::Done(SessionEnd::Failed(e)) => Err(e),
            phase => unreachable!("disconnect woke on non-final phase {phase:?}"),
        }
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        if self.consumed {
            return;
        }
        let mut reg = self.shared.lock();
        let Some(slot) = reg.slots.get_mut(&self.token) else {
            return;
        };
        match slot.phase {
            // Mid-stream disconnect: suspend + park, free the slot.
            Phase::Open => {
                slot.detached = true;
                slot.phase = Phase::ByeRequested;
                drop(reg);
                self.shared.work.notify_all();
            }
            Phase::FinishRequested | Phase::ByeRequested => slot.detached = true,
            // Nobody left to consume the outcome: drop the zombie slot.
            Phase::Done(_) => {
                reg.slots.remove(&self.token);
            }
        }
    }
}

/// One round's worth of work for one session, snapshotted under the lock.
struct Work {
    token: u64,
    tenant: String,
    /// The session's resolved engine (an `Arc` clone of the slot's).
    engine: Arc<dyn Engine>,
    /// The session's latency budget, checked after each served round.
    slo: Option<LatencyBudget>,
    resume_from: Option<SessionCheckpoint>,
    chunks: Vec<Vec<f32>>,
    end: Option<EndKind>,
    detached: bool,
}

enum EndKind {
    Finish,
    Park,
    Evict,
}

/// What the pump writes back after serving one session's round.
struct RoundResult {
    token: u64,
    tenant: String,
    chunks: u64,
    samples: u64,
    /// Windows decided over the logical stream after this round.
    decided_after: u64,
    events: Vec<GestureEvent>,
    /// Decision-latency traces the session recorded this round, for the
    /// pool-level rollup.
    traces: Vec<LatencyTrace>,
    /// Set when the session's per-window stage summary blew its budget
    /// this round.
    slo_violation: bool,
    outcome: Option<RoundEnd>,
    detached: bool,
}

enum RoundEnd {
    Finished(Box<StreamSummary>),
    Parked(Box<SessionCheckpoint>),
    Evicted(Box<SessionCheckpoint>),
    Failed(ServeError),
}

/// The pump thread: owns every live [`StreamSession`], serves sessions
/// round-robin in token order with a bounded per-round quantum, and applies
/// lifecycle transitions (finish / park / evict / fail).
fn pump_loop(shared: &Arc<Shared>) {
    let cfg = &shared.cfg;
    // Sessions own an `Arc` of their slot's resolved engine — different
    // sessions may run different zoo models.
    let mut sessions: BTreeMap<u64, StreamSession> = BTreeMap::new();
    let poll = cfg
        .idle_timeout
        .map(|t| (t / 4).clamp(Duration::from_millis(1), Duration::from_millis(20)))
        .unwrap_or(Duration::from_millis(25));
    loop {
        // Phase 1 — snapshot work under the lock.
        let mut reg = shared.lock();
        if shared.shutdown.load(Ordering::SeqCst) {
            for slot in reg.slots.values_mut() {
                if !matches!(slot.phase, Phase::Done(_)) {
                    slot.phase = Phase::Done(SessionEnd::Failed(ServeError::ShuttingDown));
                }
            }
            reg.parked.clear();
            drop(reg);
            shared.room.notify_all();
            return;
        }
        let now = Instant::now();
        if let Some(ttl) = cfg.resume_ttl {
            reg.parked
                .retain(|_, p| now.duration_since(p.parked_at) < ttl);
        }
        let mut batch: Vec<Work> = Vec::new();
        for (&token, slot) in reg.slots.iter_mut() {
            if matches!(slot.phase, Phase::Done(_)) {
                continue;
            }
            // Finishing/parting sessions drain their whole (bounded)
            // buffer; open sessions get the fairness quantum.
            let budget = match slot.phase {
                Phase::Open => cfg.quantum,
                _ => usize::MAX,
            };
            let mut chunks = Vec::new();
            while chunks.len() < budget {
                let Some(chunk) = slot.inbound.pop_front() else {
                    break;
                };
                chunks.push(chunk);
            }
            let end = match slot.phase {
                Phase::FinishRequested if slot.inbound.is_empty() => Some(EndKind::Finish),
                Phase::ByeRequested if slot.inbound.is_empty() => Some(EndKind::Park),
                Phase::Open
                    if chunks.is_empty()
                        && cfg
                            .idle_timeout
                            .is_some_and(|t| now.duration_since(slot.last_activity) >= t) =>
                {
                    Some(EndKind::Evict)
                }
                _ => None,
            };
            let needs_session = !sessions.contains_key(&token);
            if chunks.is_empty() && end.is_none() && !needs_session {
                continue;
            }
            batch.push(Work {
                token,
                tenant: slot.tenant.clone(),
                engine: Arc::clone(&slot.engine),
                slo: if slot.slo_flagged && !cfg.slo_evict {
                    // Already flagged and not evicting: stop re-checking.
                    None
                } else {
                    slot.slo
                },
                resume_from: if needs_session {
                    slot.resume_from.take()
                } else {
                    None
                },
                chunks,
                end,
                detached: slot.detached,
            });
        }
        if batch.is_empty() {
            drop(
                shared
                    .work
                    .wait_timeout(reg, poll)
                    .unwrap_or_else(|e| e.into_inner())
                    .0,
            );
            continue;
        }
        drop(reg);

        // Phase 2 — serve without the lock (inference may be slow; clients
        // keep queueing into their buffers meanwhile).
        let mut results: Vec<RoundResult> = Vec::with_capacity(batch.len());
        for work in batch {
            results.push(serve_round(cfg, &mut sessions, work));
        }

        // Phase 3 — write back events, counters and outcomes.
        let mut reg = shared.lock();
        for r in results {
            // Roll traces into the pool-wide recorder before the slot
            // lookup so a finished/evicted session's last round still
            // counts.
            for t in &r.traces {
                reg.stages.record(*t);
            }
            let Some(slot) = reg.slots.get_mut(&r.token) else {
                continue;
            };
            let windows_delta = r.decided_after.saturating_sub(slot.decided_seen);
            slot.decided_seen = r.decided_after;
            slot.counters.chunks += r.chunks;
            slot.counters.samples += r.samples;
            slot.counters.windows += windows_delta;
            slot.counters.events += r.events.len() as u64;
            let mut delta = ServeCounters {
                chunks: r.chunks,
                samples: r.samples,
                windows: windows_delta,
                events: r.events.len() as u64,
                ..ServeCounters::default()
            };
            if r.slo_violation && !slot.slo_flagged {
                slot.slo_flagged = true;
                delta.slo_violations = 1;
            }
            slot.events.extend(r.events);
            // Detachment may have happened while serving; honour the
            // freshest flag.
            let detached = r.detached || slot.detached;
            match r.outcome {
                None => {}
                Some(RoundEnd::Finished(mut summary)) => {
                    delta.finished = 1;
                    // The report's events = everything not yet polled, in
                    // decision order.
                    let mut events = std::mem::take(&mut slot.events);
                    events.extend(std::mem::take(&mut summary.events));
                    summary.events = events;
                    slot.phase = Phase::Done(SessionEnd::Finished(summary));
                    if detached {
                        reg.slots.remove(&r.token);
                    }
                }
                Some(RoundEnd::Parked(checkpoint)) => {
                    delta.disconnects = 1;
                    let parked = Parked {
                        tenant: slot.tenant.clone(),
                        model: slot.model.clone(),
                        checkpoint: *checkpoint,
                        events: std::mem::take(&mut slot.events),
                        counters: slot.counters.clone(),
                        decided_seen: slot.decided_seen,
                        parked_at: Instant::now(),
                    };
                    slot.phase = Phase::Done(SessionEnd::Parked);
                    reg.parked.insert(r.token, parked);
                    if detached {
                        reg.slots.remove(&r.token);
                    }
                }
                Some(RoundEnd::Evicted(checkpoint)) => {
                    delta.evictions = 1;
                    let parked = Parked {
                        tenant: slot.tenant.clone(),
                        model: slot.model.clone(),
                        checkpoint: *checkpoint,
                        events: std::mem::take(&mut slot.events),
                        counters: slot.counters.clone(),
                        decided_seen: slot.decided_seen,
                        parked_at: Instant::now(),
                    };
                    slot.phase = Phase::Done(SessionEnd::Evicted);
                    reg.parked.insert(r.token, parked);
                    if detached {
                        reg.slots.remove(&r.token);
                    }
                }
                Some(RoundEnd::Failed(e)) => {
                    delta.failed = 1;
                    slot.phase = Phase::Done(SessionEnd::Failed(e));
                    if detached {
                        reg.slots.remove(&r.token);
                    }
                }
            }
            reg.tally(&r.tenant, &delta);
        }
        drop(reg);
        shared.room.notify_all();
    }
}

/// Serves one session's round: instantiate the session if needed, push the
/// snapshotted chunks, check the latency budget, apply the lifecycle
/// transition.
fn serve_round(
    cfg: &StreamServerConfig,
    sessions: &mut BTreeMap<u64, StreamSession>,
    work: Work,
) -> RoundResult {
    let mut result = RoundResult {
        token: work.token,
        tenant: work.tenant,
        chunks: 0,
        samples: 0,
        decided_after: 0,
        events: Vec::new(),
        traces: Vec::new(),
        slo_violation: false,
        outcome: None,
        detached: work.detached,
    };
    if let std::collections::btree_map::Entry::Vacant(entry) = sessions.entry(work.token) {
        let engine = Arc::clone(&work.engine);
        let made = match work.resume_from {
            Some(checkpoint) => StreamSession::resume(engine, cfg.stream.clone(), checkpoint),
            None => StreamSession::new(engine, cfg.stream.clone()),
        };
        match made {
            Ok(session) => {
                result.decided_after = session.windows_decided() as u64;
                entry.insert(session);
            }
            Err(e) => {
                result.outcome = Some(RoundEnd::Failed(e));
                return result;
            }
        }
    }
    let session = sessions.get_mut(&work.token).expect("inserted above");
    for chunk in &work.chunks {
        result.chunks += 1;
        result.samples += chunk.len() as u64;
        match session.push_samples(chunk) {
            Ok(events) => result.events.extend(events),
            Err(e) => {
                sessions.remove(&work.token);
                result.outcome = Some(RoundEnd::Failed(e));
                return result;
            }
        }
    }
    result.decided_after = session.windows_decided() as u64;
    session.drain_new_traces(&mut result.traces);
    // SLO enforcement: compare the session's lifetime stage summary against
    // its budget once it has decided at least one window.
    if let Some(budget) = work.slo {
        let summary = session.stage_stats();
        if summary.count() > 0 && !budget.evaluate(&summary).fits {
            result.slo_violation = true;
            if cfg.slo_evict && work.end.is_none() {
                // Evict-on-violation: suspend like an idle eviction so the
                // client can resume (perhaps against a cheaper model).
                let session = sessions.remove(&work.token).expect("present");
                match session.suspend() {
                    Ok((checkpoint, events)) => {
                        result.decided_after = checkpoint.windows_decided() as u64;
                        result.events.extend(events);
                        result.outcome = Some(RoundEnd::Evicted(Box::new(checkpoint)));
                    }
                    Err(e) => result.outcome = Some(RoundEnd::Failed(e)),
                }
                return result;
            }
        }
    }
    match work.end {
        None => {}
        Some(EndKind::Finish) => {
            let session = sessions.remove(&work.token).expect("present");
            match session.finish() {
                Ok(summary) => {
                    result.decided_after = summary.windows as u64;
                    result.outcome = Some(RoundEnd::Finished(Box::new(summary)));
                }
                Err(e) => result.outcome = Some(RoundEnd::Failed(e)),
            }
        }
        Some(kind @ (EndKind::Park | EndKind::Evict)) => {
            let session = sessions.remove(&work.token).expect("present");
            match session.suspend() {
                Ok((checkpoint, events)) => {
                    result.decided_after = checkpoint.windows_decided() as u64;
                    result.events.extend(events);
                    result.outcome = Some(match kind {
                        EndKind::Park => RoundEnd::Parked(Box::new(checkpoint)),
                        _ => RoundEnd::Evicted(Box::new(checkpoint)),
                    });
                }
                Err(e) => result.outcome = Some(RoundEnd::Failed(e)),
            }
        }
    }
    result
}

/// Maps a session-layer error onto its wire error code.
fn error_code(e: &ServeError) -> ErrorCode {
    match e {
        ServeError::BadRequest(why) if why.contains("resume token") => ErrorCode::UnknownToken,
        ServeError::BadRequest(_) => ErrorCode::BadRequest,
        ServeError::Unavailable | ServeError::QueueFull => ErrorCode::PoolFull,
        ServeError::Evicted => ErrorCode::Evicted,
        ServeError::ShuttingDown => ErrorCode::ShuttingDown,
        ServeError::DeadlineExpired | ServeError::Cancelled => ErrorCode::Internal,
    }
}

/// The TCP front door: a `std::net` loopback listener translating the
/// [`proto`](super::proto) frame protocol into [`StreamServer`] session
/// calls, one thread per connection.
///
/// Failure semantics the fault-injection tests pin down:
///
/// * A dropped socket (EOF, reset) mid-stream is a **disconnect**: the
///   session is suspended and parked, the slot freed — a later connection
///   resuming with the token continues the stream seamlessly.
/// * Garbage, truncated or oversized frames get a best-effort
///   [`Frame::Error`] with [`ErrorCode::Protocol`] and the connection is
///   closed (the session parked); the gateway itself never goes down from
///   one misbehaving peer.
/// * Session-layer failures (pool full, unknown token, eviction, engine
///   faults) are explicit [`Frame::Error`]s with their typed code.
pub struct TcpGateway {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpGateway {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and starts accepting connections for `server`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(server: Arc<StreamServer>, addr: &str) -> std::io::Result<TcpGateway> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("gateway-accept".into())
                .spawn(move || {
                    let mut conns: Vec<JoinHandle<()>> = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((sock, _peer)) => {
                                let server = Arc::clone(&server);
                                let stop = Arc::clone(&stop);
                                let conn = std::thread::Builder::new()
                                    .name("gateway-conn".into())
                                    .spawn(move || serve_connection(&server, sock, &stop))
                                    .expect("spawn gateway connection thread");
                                conns.push(conn);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => break,
                        }
                        conns.retain(|c| !c.is_finished());
                    }
                    for conn in conns {
                        let _ = conn.join();
                    }
                })
                .expect("spawn gateway accept thread")
        };
        Ok(TcpGateway {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every connection thread. Open sessions
    /// are disconnected (parked), not finished.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for TcpGateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for TcpGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpGateway")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Encodes and writes one frame; `false` on a dead socket.
fn send_frame(sock: &mut TcpStream, scratch: &mut Vec<u8>, frame: &Frame) -> bool {
    scratch.clear();
    if encode_frame(frame, scratch).is_err() {
        return false;
    }
    sock.write_all(scratch).is_ok()
}

/// Best-effort error frame.
fn send_error(sock: &mut TcpStream, scratch: &mut Vec<u8>, code: ErrorCode, message: String) {
    let _ = send_frame(sock, scratch, &Frame::Error { code, message });
}

/// Drains the handle's pending events onto the wire. `Ok(false)` means the
/// socket died; `Err` carries a session-layer failure.
fn flush_events(
    sock: &mut TcpStream,
    scratch: &mut Vec<u8>,
    handle: &SessionHandle,
) -> Result<bool, ServeError> {
    for event in handle.poll_events()? {
        if !send_frame(sock, scratch, &Frame::Event(event)) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Serves one TCP connection end-to-end (see [`TcpGateway`] for the
/// failure semantics).
fn serve_connection(server: &StreamServer, mut sock: TcpStream, stop: &AtomicBool) {
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(Duration::from_millis(5)));
    let mut decoder = FrameDecoder::new();
    let mut scratch = Vec::new();
    let mut handle: Option<SessionHandle> = None;
    let mut buf = [0u8; 16 * 1024];
    // Parks the session (if any) on the way out.
    macro_rules! bail {
        () => {{
            if let Some(h) = handle.take() {
                let _ = h.disconnect();
            }
            return;
        }};
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            bail!();
        }
        // Push decided events out before reading more input.
        if let Some(h) = &handle {
            match flush_events(&mut sock, &mut scratch, h) {
                Ok(true) => {}
                Ok(false) => bail!(),
                Err(e) => {
                    send_error(&mut sock, &mut scratch, error_code(&e), e.to_string());
                    // Evicted/failed sessions are already parked or dead —
                    // consume the slot and drop the connection.
                    if let Some(h) = handle.take() {
                        let _ = h.disconnect();
                    }
                    return;
                }
            }
        }
        match sock.read(&mut buf) {
            Ok(0) => bail!(), // EOF: mid-stream disconnect → park.
            Ok(n) => decoder.feed(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => bail!(),
        }
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(proto_err) => {
                    send_error(
                        &mut sock,
                        &mut scratch,
                        ErrorCode::Protocol,
                        proto_err.to_string(),
                    );
                    bail!();
                }
            };
            match frame {
                Frame::Hello {
                    tenant,
                    resume,
                    model,
                } if handle.is_none() => {
                    let opened = match resume {
                        None => server.connect_with(&tenant, SessionOptions { model, slo: None }),
                        // On resume the parked session's model governs —
                        // the stream must continue on the variant it
                        // started on, so any model in the frame is ignored.
                        Some(token) => server.resume(&tenant, token),
                    };
                    match opened {
                        Ok(h) => {
                            let stream = server.stream_config();
                            let ack = Frame::HelloAck {
                                token: h.token(),
                                channels: stream.channels as u16,
                                window: stream.window as u32,
                                slide: stream.slide as u32,
                            };
                            handle = Some(h);
                            if !send_frame(&mut sock, &mut scratch, &ack) {
                                bail!();
                            }
                        }
                        Err(e) => {
                            send_error(&mut sock, &mut scratch, error_code(&e), e.to_string());
                            return;
                        }
                    }
                }
                Frame::Samples(samples) => {
                    let Some(h) = &handle else {
                        send_error(
                            &mut sock,
                            &mut scratch,
                            ErrorCode::Protocol,
                            "samples before hello".into(),
                        );
                        return;
                    };
                    if let Err(e) = h.send(&samples) {
                        send_error(&mut sock, &mut scratch, error_code(&e), e.to_string());
                        if let Some(h) = handle.take() {
                            let _ = h.disconnect();
                        }
                        return;
                    }
                }
                Frame::Finish => {
                    let Some(h) = handle.take() else {
                        send_error(
                            &mut sock,
                            &mut scratch,
                            ErrorCode::Protocol,
                            "finish before hello".into(),
                        );
                        return;
                    };
                    match h.finish() {
                        Ok(report) => {
                            for event in &report.summary.events {
                                if !send_frame(
                                    &mut sock,
                                    &mut scratch,
                                    &Frame::Event(event.clone()),
                                ) {
                                    return;
                                }
                            }
                            let predictions = report
                                .summary
                                .predictions
                                .iter()
                                .zip(&report.summary.confidences)
                                .map(|(&class, &conf)| (class as u64, conf))
                                .collect();
                            let _ = send_frame(
                                &mut sock,
                                &mut scratch,
                                &Frame::Summary {
                                    windows: report.summary.windows as u64,
                                    predictions,
                                },
                            );
                            let _ = send_frame(
                                &mut sock,
                                &mut scratch,
                                &Frame::Stats(report.summary.stages),
                            );
                            let _ = send_frame(
                                &mut sock,
                                &mut scratch,
                                &Frame::SessionStats {
                                    windows: report.stats.windows,
                                    chunks: report.stats.chunks,
                                    samples: report.stats.samples,
                                    events: report.stats.events,
                                },
                            );
                        }
                        Err(e) => {
                            send_error(&mut sock, &mut scratch, error_code(&e), e.to_string())
                        }
                    }
                    return;
                }
                Frame::Bye => {
                    if let Some(h) = handle.take() {
                        let _ = h.disconnect();
                    }
                    return;
                }
                Frame::Hello { .. } => {
                    send_error(
                        &mut sock,
                        &mut scratch,
                        ErrorCode::Protocol,
                        "duplicate hello on an open session".into(),
                    );
                    bail!();
                }
                // Server-to-client frames arriving at the server are a
                // protocol violation.
                Frame::HelloAck { .. }
                | Frame::Event(_)
                | Frame::Summary { .. }
                | Frame::Stats(_)
                | Frame::SessionStats { .. }
                | Frame::Error { .. } => {
                    send_error(
                        &mut sock,
                        &mut scratch,
                        ErrorCode::Protocol,
                        "server-to-client frame sent by client".into(),
                    );
                    bail!();
                }
            }
        }
    }
}
