//! Streaming sessions: raw sEMG samples in, debounced gesture decisions
//! out.
//!
//! The paper's deployment target is *continuous* recognition — firmware
//! slides a 150 ms window over the live electrode stream and smooths the
//! per-window predictions into stable gesture decisions. The batch engines
//! in this module's siblings leave all of that to the caller;
//! [`StreamSession`] makes it part of the serving API:
//!
//! 1. **Online windowing** — [`StreamSession::push_samples`] ingests raw
//!    `[channels]`-interleaved samples in arbitrary chunk sizes and
//!    extracts sliding windows incrementally
//!    ([`bioformer_semg::windowing::OnlineWindower`]), bit-identical to
//!    the offline extractor on the same signal.
//! 2. **Per-channel normalization** — the training-time
//!    [`Normalizer`] statistics are applied per window with the exact
//!    dataset-path arithmetic.
//! 3. **Inference through any [`Engine`]** — windows are submitted
//!    one-per-request; a bounded **lookahead** keeps several windows in
//!    flight through the concurrent engines (pipelining, and food for
//!    their cross-request coalescing) while `lookahead = 0` serves each
//!    window inline.
//! 4. **Decision smoothing** — per-window predictions run through a
//!    majority-vote/debounce policy ([`DecisionPolicy`]) that emits typed
//!    [`GestureEvent`]s instead of a twitchy per-window class signal.
//!
//! **Offline equivalence:** for the same signal, the streamed per-window
//! predictions bit-match the offline path (extract every window with
//! [`bioformer_semg::windowing::extract_all_into`], normalize, run one
//! `predict_batch`) regardless of how the stream was chunked, which engine
//! served it, or the precision of the backend. The decision layer is a
//! deterministic function of those predictions ([`DecisionSmoother`] is
//! public precisely so offline pipelines can reuse it), so streamed
//! decisions bit-match batch decisions too. `tests/serving_stream.rs`
//! holds the property tests.

use super::engine::Engine;
use super::queue::{RequestOutput, ServeError};
use super::trace::{LatencyTrace, StageRecorder, StageSummary};
use bioformer_semg::windowing::OnlineWindower;
use bioformer_semg::{CalibrationConfig, Gesture, Normalizer, SessionCalibrator};
use bioformer_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimum absorbed-window marks a session retains for attributing an
/// emitted event back to its triggering window's stage timings (grown to
/// cover the vote depth when the policy needs more).
const MARK_WINDOW: usize = 64;

/// Fresh [`LatencyTrace`]s buffered between
/// [`StreamSession::drain_new_traces`] calls; beyond this the oldest
/// undrained trace is dropped (the session's own [`StageRecorder`] has
/// already absorbed it).
const TRACE_BACKLOG: usize = 256;

/// The softmax probability of class `class` under `logits` — the
/// confidence the decision layer feeds on.
///
/// Deterministic f32 arithmetic (max-subtracted exponentials, summed in
/// index order), shared by the streaming and offline paths so their
/// confidences are bit-identical.
///
/// Hardened against degenerate logits: when the result is non-finite —
/// NaN logits poison the max-subtraction, or every shifted exponential
/// underflows to a 0/0 — the window reports confidence **0.0**, so it
/// *abstains* under any `confidence_floor` instead of a NaN silently
/// passing the `conf < floor` comparison (NaN compares false) and voting
/// with garbage. Finite extreme logits (±1e30) are already safe: the
/// max-subtraction keeps every exponent ≤ 0.
///
/// # Panics
///
/// Panics if `class` is out of range or `logits` is empty.
pub fn confidence(logits: &[f32], class: usize) -> f32 {
    assert!(class < logits.len(), "confidence: class out of range");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for &l in logits {
        sum += (l - max).exp();
    }
    let p = (logits[class] - max).exp() / sum;
    if p.is_finite() {
        p
    } else {
        0.0
    }
}

/// How per-window predictions are smoothed into gesture decisions.
///
/// Raw per-window argmaxes flicker — confusable grasps swap on single
/// windows, and transitions smear across window boundaries. The policy is
/// the classic majority-vote debounce the paper's deployment story implies:
///
/// * **Confidence floor** — windows whose top-class softmax probability is
///   below `confidence_floor` *abstain*: they cast no vote and do not age
///   the hold counter. (0.0 disables the floor.)
/// * **Vote depth `K`** — the last `vote_depth` voting windows form the
///   electorate; a class becomes the *candidate* when it holds a strict
///   majority (> half) of the buffered votes.
/// * **Min-hold** — an active decision must have held for at least
///   `min_hold` voting windows before a different candidate may replace
///   it, suppressing single-window flicker even when the vote buffer is
///   short.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionPolicy {
    /// Majority-vote depth `K` (≥ 1): the number of most recent voting
    /// windows considered.
    pub vote_depth: usize,
    /// Voting windows a decision must hold before it can be replaced.
    pub min_hold: usize,
    /// Minimum top-class softmax probability for a window to vote, in
    /// `[0, 1)`; `0.0` lets every window vote.
    pub confidence_floor: f32,
}

impl Default for DecisionPolicy {
    /// `K = 5`, `min_hold = 3`, no confidence floor.
    fn default() -> Self {
        DecisionPolicy {
            vote_depth: 5,
            min_hold: 3,
            confidence_floor: 0.0,
        }
    }
}

impl DecisionPolicy {
    /// Validates the policy.
    fn validate(&self) -> Result<(), ServeError> {
        if self.vote_depth == 0 {
            return Err(ServeError::BadRequest(
                "DecisionPolicy: vote_depth must be >= 1".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.confidence_floor) {
            return Err(ServeError::BadRequest(format!(
                "DecisionPolicy: confidence_floor {} outside [0, 1)",
                self.confidence_floor
            )));
        }
        Ok(())
    }
}

/// A debounced gesture decision emitted by the smoothing layer.
///
/// Classes are plain `usize` labels (engines may serve vocabularies other
/// than DB6's 8 gestures); [`GestureEvent::gesture`] maps a label into the
/// typed DB6 [`Gesture`] when it fits.
#[derive(Debug, Clone, PartialEq)]
pub enum GestureEvent {
    /// A new gesture decision took effect at (0-based) window `window`.
    Started {
        /// The decided class label.
        class: usize,
        /// Window index at which the decision took effect.
        window: usize,
        /// Mean confidence of the buffered votes that elected the class.
        confidence: f32,
    },
    /// The active gesture decision ended at window `window` (because a new
    /// decision replaced it, or the stream finished).
    Ended {
        /// The class label that had been active.
        class: usize,
        /// Window index at which the decision ended.
        window: usize,
        /// Voting windows the decision was held for.
        held: usize,
    },
}

impl GestureEvent {
    /// The event's class label.
    pub fn class(&self) -> usize {
        match self {
            GestureEvent::Started { class, .. } | GestureEvent::Ended { class, .. } => *class,
        }
    }

    /// The window index the event anchors to.
    pub fn window(&self) -> usize {
        match self {
            GestureEvent::Started { window, .. } | GestureEvent::Ended { window, .. } => *window,
        }
    }

    /// The typed DB6 gesture, when the label is in the 8-class vocabulary.
    pub fn gesture(&self) -> Option<Gesture> {
        Gesture::try_from_label(self.class())
    }
}

impl std::fmt::Display for GestureEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = |class: usize| {
            Gesture::try_from_label(class)
                .map(|g| g.name().to_string())
                .unwrap_or_else(|| format!("class {class}"))
        };
        match self {
            GestureEvent::Started {
                class,
                window,
                confidence,
            } => write!(
                f,
                "window {window}: {} started (confidence {confidence:.2})",
                name(*class)
            ),
            GestureEvent::Ended {
                class,
                window,
                held,
            } => write!(
                f,
                "window {window}: {} ended after {held} windows",
                name(*class)
            ),
        }
    }
}

/// The majority-vote/debounce state machine behind [`StreamSession`],
/// public so offline pipelines can replay recorded predictions through the
/// **same** decision logic (the streamed-equals-batch guarantee depends on
/// both paths sharing this type).
///
/// Feed per-window `(class, confidence)` pairs in window order with
/// [`DecisionSmoother::push`]; call [`DecisionSmoother::flush`] at end of
/// stream to close the final decision.
///
/// ```
/// use bioformers::serve::{DecisionPolicy, DecisionSmoother, GestureEvent};
///
/// let policy = DecisionPolicy { vote_depth: 3, min_hold: 1, confidence_floor: 0.0 };
/// let mut smoother = DecisionSmoother::new(policy).unwrap();
/// let mut events = Vec::new();
/// for class in [0, 0, 0, 1, 0, 0] {
///     smoother.push(class, 1.0, &mut events);
/// }
/// smoother.flush(&mut events);
/// // The lone class-1 window never wins a majority: one decision, start to end.
/// assert_eq!(events.len(), 2);
/// assert!(matches!(events[0], GestureEvent::Started { class: 0, .. }));
/// assert!(matches!(events[1], GestureEvent::Ended { class: 0, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct DecisionSmoother {
    policy: DecisionPolicy,
    /// Ring of the last `vote_depth` voting windows' `(class, confidence)`.
    votes: VecDeque<(usize, f32)>,
    /// The active decision, if any.
    current: Option<usize>,
    /// Voting windows the active decision has held.
    held: usize,
    /// Windows pushed so far (abstentions included) — the event clock.
    processed: usize,
}

impl DecisionSmoother {
    /// Creates a smoother; fails on an invalid policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `vote_depth == 0` or the confidence
    /// floor is outside `[0, 1)`.
    pub fn new(policy: DecisionPolicy) -> Result<Self, ServeError> {
        policy.validate()?;
        Ok(DecisionSmoother {
            votes: VecDeque::with_capacity(policy.vote_depth),
            policy,
            current: None,
            held: 0,
            processed: 0,
        })
    }

    /// The policy in force.
    pub fn policy(&self) -> &DecisionPolicy {
        &self.policy
    }

    /// The active decision's class label, if any.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// Windows pushed so far (abstaining windows included).
    pub fn windows_seen(&self) -> usize {
        self.processed
    }

    /// The class with a strict majority of the buffered votes and the mean
    /// confidence of its votes, if any class has one.
    fn majority(&self) -> Option<(usize, f32)> {
        // Class counts over the buffer (tiny K: a linear scan beats a map).
        let mut best: Option<(usize, usize, f32)> = None; // (class, count, conf_sum)
        for &(class, _) in &self.votes {
            if best.is_some_and(|(c, _, _)| c == class) {
                continue;
            }
            let mut count = 0usize;
            let mut conf_sum = 0.0f32;
            for &(c, conf) in &self.votes {
                if c == class {
                    count += 1;
                    conf_sum += conf;
                }
            }
            // Deterministic tie-break: first class reaching the best count
            // in buffer order wins (ties cannot hold a strict majority
            // anyway, so this only orders the scan).
            if best.is_none_or(|(_, n, _)| count > n) {
                best = Some((class, count, conf_sum));
            }
        }
        let (class, count, conf_sum) = best?;
        (count * 2 > self.votes.len()).then(|| (class, conf_sum / count as f32))
    }

    /// Feeds one window's prediction; any resulting events are appended to
    /// `events`. Windows below the confidence floor abstain (no vote, no
    /// hold aging).
    pub fn push(&mut self, class: usize, confidence: f32, events: &mut Vec<GestureEvent>) {
        let window = self.processed;
        self.processed += 1;
        if confidence < self.policy.confidence_floor {
            return;
        }
        if self.votes.len() == self.policy.vote_depth {
            self.votes.pop_front();
        }
        self.votes.push_back((class, confidence));
        if self.current.is_some() {
            self.held += 1;
        }
        let Some((candidate, mean_conf)) = self.majority() else {
            return;
        };
        match self.current {
            None => {
                self.current = Some(candidate);
                self.held = 0;
                events.push(GestureEvent::Started {
                    class: candidate,
                    window,
                    confidence: mean_conf,
                });
            }
            Some(active) if active != candidate && self.held >= self.policy.min_hold => {
                events.push(GestureEvent::Ended {
                    class: active,
                    window,
                    held: self.held,
                });
                self.current = Some(candidate);
                self.held = 0;
                events.push(GestureEvent::Started {
                    class: candidate,
                    window,
                    confidence: mean_conf,
                });
            }
            Some(_) => {}
        }
    }

    /// Ends the stream: emits the closing [`GestureEvent::Ended`] for the
    /// active decision, if any, and fully resets the smoother — the window
    /// clock restarts at 0, so one smoother can replay recording after
    /// recording with correctly anchored event indices.
    pub fn flush(&mut self, events: &mut Vec<GestureEvent>) {
        if let Some(active) = self.current.take() {
            events.push(GestureEvent::Ended {
                class: active,
                window: self.processed,
                held: self.held,
            });
        }
        self.votes.clear();
        self.held = 0;
        self.processed = 0;
    }
}

/// Configuration for a [`StreamSession`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Electrode channels in the interleaved stream.
    pub channels: usize,
    /// Window length in frames (samples per channel).
    pub window: usize,
    /// Frames between consecutive window starts.
    pub slide: usize,
    /// Maximum windows kept in flight through the engine after a
    /// `push_samples` call returns. `0` serves every window inline
    /// (synchronous); larger values pipeline submissions through the
    /// concurrent engines — and give their coalescing workers concurrent
    /// windows to batch — at the cost of decision latency of up to
    /// `lookahead` windows.
    pub lookahead: usize,
    /// How many times a window whose request comes back
    /// [`ServeError::Cancelled`] (a backend panicked mid-batch) is
    /// re-submitted before the error surfaces. Re-submission goes back
    /// through the engine's routing, so over a sharded pool a retried
    /// window lands on a healthy replica — a live stream survives the
    /// same transient faults the batch `classify` path re-routes around.
    /// `0` fails the session on the first cancellation.
    pub retries: usize,
    /// The vote/debounce policy turning window predictions into events.
    pub policy: DecisionPolicy,
    /// Per-channel normalization applied to each extracted window
    /// (training-time statistics). `None` streams raw windows.
    pub normalizer: Option<Normalizer>,
    /// Per-session user calibration: when set, the session fits a
    /// session-adapted affine transform from its first
    /// [`CalibrationConfig::warmup_windows`] raw windows (DB6 sessions open
    /// with rest repetitions, so this is classic rest-period calibration)
    /// and uses it in place of the frozen `normalizer` from then on. The
    /// frozen `normalizer` is the calibration baseline: it applies
    /// unchanged during warm-up and is blended into the adapted transform
    /// by [`CalibrationConfig::blend`].
    pub calibration: Option<CalibrationConfig>,
}

impl StreamConfig {
    /// A config for `[channels, window]` backends with non-overlapping
    /// windows, no normalization, lookahead 4 and the default policy.
    pub fn new(channels: usize, window: usize) -> Self {
        StreamConfig {
            channels,
            window,
            slide: window,
            lookahead: 4,
            retries: 2,
            policy: DecisionPolicy::default(),
            normalizer: None,
            calibration: None,
        }
    }

    /// The paper's DB6 deployment shape: 14 channels × 300 samples
    /// (150 ms @ 2 kHz), 15 ms slide (30 frames).
    pub fn db6() -> Self {
        StreamConfig::new(bioformer_semg::CHANNELS, bioformer_semg::WINDOW).with_slide(30)
    }

    /// Sets the slide in frames.
    pub fn with_slide(mut self, slide: usize) -> Self {
        self.slide = slide;
        self
    }

    /// Sets the in-flight lookahead.
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Sets the per-window re-submission budget for cancelled requests.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the decision policy.
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-channel normalizer (training-time statistics).
    pub fn with_normalizer(mut self, normalizer: Normalizer) -> Self {
        self.normalizer = Some(normalizer);
        self
    }

    /// Enables per-session user calibration (see
    /// [`StreamConfig::calibration`]).
    pub fn with_calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.calibration = Some(calibration);
        self
    }
}

/// The portable state of a suspended [`StreamSession`], produced by
/// [`StreamSession::suspend`] and consumed by [`StreamSession::resume`].
///
/// A checkpoint carries everything a reconnecting client needs for the
/// resumed stream to behave **exactly** as if the session had never been
/// interrupted: the online windower (buffered tail samples included, so
/// windows spanning the seam are not lost), the [`DecisionSmoother`] with
/// its active decision, vote buffer and window clock, and the per-window
/// prediction/confidence history that the final [`StreamSummary`] reports.
/// No window is served twice and no event is duplicated or dropped across
/// the seam — the multi-tenant [`StreamServer`](super::StreamServer) uses
/// checkpoints for both idle-timeout eviction and client reconnects.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    windower: OnlineWindower,
    smoother: DecisionSmoother,
    predictions: Vec<usize>,
    confidences: Vec<f32>,
    /// Decision-latency recorder, carried across the seam so per-session
    /// [`StageSummary`] percentiles survive park/resume. (Transient
    /// attribution state — in-flight marks and undrained traces — is
    /// timing of a stream that no longer exists, and is dropped.)
    recorder: StageRecorder,
    /// Per-session calibration state (warm-up accumulators or the frozen
    /// adapted transform), carried across the seam: a resumed session
    /// normalizes exactly like one that was never suspended.
    calibrator: Option<SessionCalibrator>,
}

impl SessionCheckpoint {
    /// Electrode channels of the suspended stream.
    pub fn channels(&self) -> usize {
        self.windower.channels()
    }

    /// Window length in frames of the suspended stream.
    pub fn window(&self) -> usize {
        self.windower.window()
    }

    /// Slide in frames of the suspended stream.
    pub fn slide(&self) -> usize {
        self.windower.slide()
    }

    /// Windows decided before the suspension.
    pub fn windows_decided(&self) -> usize {
        self.predictions.len()
    }

    /// The active gesture decision's class label at suspension, if any.
    pub fn current_class(&self) -> Option<usize> {
        self.smoother.current()
    }

    /// Whether the suspended stream's calibration had frozen its adapted
    /// transform (`None` when the session ran without calibration).
    pub fn calibration_ready(&self) -> Option<bool> {
        self.calibrator.as_ref().map(SessionCalibrator::is_ready)
    }
}

/// Final summary of a finished [`StreamSession`].
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Windows extracted and served.
    pub windows: usize,
    /// Per-window argmax predictions, in window order.
    pub predictions: Vec<usize>,
    /// Per-window top-class confidences, aligned with `predictions`.
    pub confidences: Vec<f32>,
    /// Events emitted at finish time (tail windows drained after the last
    /// `push_samples`, plus the closing `Ended`). Events already returned
    /// by earlier `push_samples` calls are not repeated.
    pub events: Vec<GestureEvent>,
    /// Per-stage decision-latency percentiles over the session's emitted
    /// events (buffering / queueing / compute / smoothing), from the
    /// session's [`StageRecorder`]. All zeros when no event was emitted.
    pub stages: StageSummary,
}

/// One submitted window: the response handle plus what is needed to
/// re-submit it if the engine cancels (a bounded copy — at most
/// `lookahead + 1` windows are retained).
struct Inflight {
    pending: super::PendingResponse,
    /// The normalized window tensor, kept for re-submission — `None` when
    /// the session's retry budget is 0, so retry-disabled sessions don't
    /// pay a per-window copy.
    window: Option<Tensor>,
    retries_left: usize,
    /// Time the window's samples spent buffering before it was complete
    /// (carried through retries into the decision-latency trace).
    buffering: Duration,
}

/// Stage timings of one absorbed window, retained until the decision
/// layer emits the event it supports (bounded ring; see [`MARK_WINDOW`]).
#[derive(Debug, Clone, Copy)]
struct WindowMark {
    /// 0-based window index (the smoother's event clock).
    window: usize,
    /// The window's argmax class (its vote).
    class: usize,
    buffering: Duration,
    queueing: Duration,
    compute: Duration,
    /// When the window's prediction was absorbed into the decision layer.
    absorbed: Instant,
}

/// A client-facing streaming session over any [`Engine`]: push raw
/// interleaved sEMG samples, get debounced [`GestureEvent`]s back.
///
/// The session **owns** its engine handle (`Arc<dyn Engine>`), so sessions
/// can outlive the scope that resolved the engine — the model-zoo layer
/// hands each session the `Arc` of whichever model variant it selected
/// (possibly a [`ShadowEngine`](super::ShadowEngine) while an experiment is
/// live), and the multi-tenant server keeps sessions in plain owned maps.
///
/// ```
/// use std::sync::Arc;
/// use bioformers::core::{Bioformer, BioformerConfig};
/// use bioformers::serve::{InferenceEngine, StreamConfig, StreamSession};
///
/// let engine = Arc::new(InferenceEngine::new(Box::new(Bioformer::new(&BioformerConfig::bio1()))));
/// let cfg = StreamConfig::db6().with_slide(300).with_lookahead(0);
/// let mut session = StreamSession::new(engine, cfg).unwrap();
/// // One 150 ms frame burst: 300 frames × 14 channels, interleaved.
/// let burst = vec![0.0f32; 300 * 14];
/// let events = session.push_samples(&burst).unwrap();
/// // Decisions are debounced: one window cannot out-vote the default
/// // policy's vote buffer by itself unless it is the very first majority.
/// for event in &events {
///     println!("{event}");
/// }
/// let summary = session.finish().unwrap();
/// assert_eq!(summary.windows, 1);
/// assert_eq!(summary.predictions.len(), 1);
/// ```
pub struct StreamSession {
    engine: Arc<dyn Engine>,
    channels: usize,
    window: usize,
    lookahead: usize,
    retries: usize,
    windower: OnlineWindower,
    normalizer: Option<Normalizer>,
    /// Per-session calibration; when set it **replaces** the bare
    /// normalizer on the window path (the normalizer is its baseline).
    calibrator: Option<SessionCalibrator>,
    smoother: DecisionSmoother,
    /// In-flight window requests, oldest first; absorbed strictly in
    /// order so decisions are deterministic.
    inflight: VecDeque<Inflight>,
    predictions: Vec<usize>,
    confidences: Vec<f32>,
    /// When the currently-buffering window started waiting for samples
    /// (armed on the first push, re-armed each time a window completes).
    buffer_from: Option<Instant>,
    /// Recent absorbed-window stage timings for event attribution
    /// (bounded at `mark_cap`; preallocated, never grown).
    marks: VecDeque<WindowMark>,
    mark_cap: usize,
    /// Per-event decision-latency rollup (fixed rings; zero-alloc record).
    recorder: StageRecorder,
    /// Traces not yet handed to [`StreamSession::drain_new_traces`]
    /// (bounded at [`TRACE_BACKLOG`]; preallocated, never grown).
    pending_traces: VecDeque<LatencyTrace>,
}

impl StreamSession {
    /// Opens a session over `engine`.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the config is invalid (zero
    /// channels/window/slide, bad policy, an invalid calibration config, a
    /// normalizer whose channel count differs from the stream's) or when
    /// the engine declares an input shape that differs from
    /// `[channels, window]`.
    pub fn new(engine: Arc<dyn Engine>, cfg: StreamConfig) -> Result<Self, ServeError> {
        if cfg.channels == 0 || cfg.window == 0 || cfg.slide == 0 {
            return Err(ServeError::BadRequest(format!(
                "StreamConfig: channels {}, window {}, slide {} must all be >= 1",
                cfg.channels, cfg.window, cfg.slide
            )));
        }
        if let Some((ec, es)) = engine.input_shape() {
            if (cfg.channels, cfg.window) != (ec, es) {
                return Err(ServeError::BadRequest(format!(
                    "stream shape [{}, {}] does not match engine shape [{ec}, {es}]",
                    cfg.channels, cfg.window
                )));
            }
        }
        if let Some(norm) = &cfg.normalizer {
            if norm.mean().len() != cfg.channels {
                return Err(ServeError::BadRequest(format!(
                    "normalizer covers {} channels, stream has {}",
                    norm.mean().len(),
                    cfg.channels
                )));
            }
        }
        let calibrator = match cfg.calibration {
            Some(cal) => {
                cal.validate().map_err(|e| {
                    ServeError::BadRequest(format!("invalid CalibrationConfig: {e}"))
                })?;
                Some(SessionCalibrator::new(
                    cfg.channels,
                    cfg.normalizer.clone(),
                    cal,
                ))
            }
            None => None,
        };
        // Enough marks to attribute a `Started` event back to its earliest
        // supporting vote, whatever the vote depth.
        let mark_cap = MARK_WINDOW.max(cfg.policy.vote_depth + 1);
        Ok(StreamSession {
            engine,
            channels: cfg.channels,
            window: cfg.window,
            lookahead: cfg.lookahead,
            retries: cfg.retries,
            windower: OnlineWindower::new(cfg.channels, cfg.window, cfg.slide),
            normalizer: cfg.normalizer,
            calibrator,
            smoother: DecisionSmoother::new(cfg.policy)?,
            inflight: VecDeque::new(),
            predictions: Vec::new(),
            confidences: Vec::new(),
            buffer_from: None,
            marks: VecDeque::with_capacity(mark_cap),
            mark_cap,
            recorder: StageRecorder::new(),
            pending_traces: VecDeque::with_capacity(TRACE_BACKLOG),
        })
    }

    /// Windows extracted and submitted so far.
    pub fn windows_submitted(&self) -> usize {
        self.windower.windows_emitted()
    }

    /// Windows whose predictions have been absorbed into decisions.
    pub fn windows_decided(&self) -> usize {
        self.predictions.len()
    }

    /// Window requests currently in flight through the engine.
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// The active gesture decision's class label, if any.
    pub fn current_class(&self) -> Option<usize> {
        self.smoother.current()
    }

    /// The active gesture decision as a typed DB6 [`Gesture`], when the
    /// label fits the 8-class vocabulary.
    pub fn current_gesture(&self) -> Option<Gesture> {
        self.current_class().and_then(Gesture::try_from_label)
    }

    /// Per-window predictions absorbed so far (window order).
    pub fn predictions(&self) -> &[usize] {
        &self.predictions
    }

    /// Per-window top-class confidences absorbed so far.
    pub fn confidences(&self) -> &[f32] {
        &self.confidences
    }

    /// Per-stage decision-latency percentiles over the events this session
    /// has emitted so far (one [`LatencyTrace`] is recorded per event into
    /// a fixed-capacity [`StageRecorder`]; the steady-state record path
    /// performs no heap allocations).
    pub fn stage_stats(&self) -> StageSummary {
        self.recorder.summary()
    }

    /// The per-session calibrator, when calibration is enabled — `None`
    /// for sessions normalizing with the frozen training statistics only.
    pub fn calibrator(&self) -> Option<&SessionCalibrator> {
        self.calibrator.as_ref()
    }

    /// Moves the traces recorded since the last call into `out` (the
    /// [`StreamServer`](super::StreamServer) pump uses this to roll
    /// per-session traces into the per-server recorder). The session's own
    /// recorder keeps them regardless; at most 256 undrained traces are
    /// retained.
    pub fn drain_new_traces(&mut self, out: &mut Vec<LatencyTrace>) {
        out.extend(self.pending_traces.drain(..));
    }

    /// Ingests raw interleaved samples (`samples[k]` belongs to channel
    /// `k % channels`; any chunk length is fine, including ones that split
    /// a frame), extracting/normalizing/submitting every completed window
    /// and returning the gesture events decided so far.
    ///
    /// With `lookahead = 0` every window is served before the call
    /// returns; otherwise up to `lookahead` windows stay in flight and
    /// their events surface on a later call (or at [`StreamSession::finish`]).
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeError`] from the engine (backpressure
    /// waits instead of erroring — submission uses the blocking path;
    /// cancelled windows are re-submitted up to [`StreamConfig::retries`]
    /// times first). On error the session drops its remaining in-flight
    /// windows; the stream's decision state is no longer meaningful and
    /// the session should be discarded.
    pub fn push_samples(&mut self, samples: &[f32]) -> Result<Vec<GestureEvent>, ServeError> {
        let mut events = Vec::new();
        // Arm the buffering clock on the stream's first samples; completed
        // windows re-arm it in `submit_window`.
        if self.buffer_from.is_none() && !samples.is_empty() {
            self.buffer_from = Some(Instant::now());
        }
        self.windower.push_interleaved(samples);
        loop {
            let window = {
                let Some(w) = self.windower.next_window() else {
                    break;
                };
                w.to_vec()
            };
            self.submit_window(window)?;
            self.drain(false, &mut events)?;
        }
        self.drain(false, &mut events)?;
        Ok(events)
    }

    /// Ends the stream: waits out every in-flight window, closes the final
    /// decision and returns the summary. Samples of an incomplete tail
    /// window are discarded (exactly like the offline extractor).
    pub fn finish(mut self) -> Result<StreamSummary, ServeError> {
        let mut events = Vec::new();
        self.drain(true, &mut events)?;
        let flushed_from = events.len();
        self.smoother.flush(&mut events);
        let now = Instant::now();
        for event in &events[flushed_from..] {
            self.trace_event(event, now);
        }
        Ok(StreamSummary {
            windows: self.predictions.len(),
            predictions: std::mem::take(&mut self.predictions),
            confidences: std::mem::take(&mut self.confidences),
            events,
            stages: self.recorder.summary(),
        })
    }

    /// Suspends the stream **without** closing it: waits out every
    /// in-flight window, then exports the session's complete state as a
    /// [`SessionCheckpoint`] plus any gesture events the drained windows
    /// decided. Unlike [`StreamSession::finish`] the active decision stays
    /// open (no closing [`GestureEvent::Ended`] is emitted) and buffered
    /// tail samples are **kept** in the checkpoint, so a session resumed
    /// from it continues bit-identically to one that was never suspended.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error from draining the in-flight
    /// windows, exactly like `finish`.
    pub fn suspend(mut self) -> Result<(SessionCheckpoint, Vec<GestureEvent>), ServeError> {
        let mut events = Vec::new();
        self.drain(true, &mut events)?;
        Ok((
            SessionCheckpoint {
                windower: self.windower.clone(),
                smoother: self.smoother.clone(),
                predictions: std::mem::take(&mut self.predictions),
                confidences: std::mem::take(&mut self.confidences),
                recorder: self.recorder.clone(),
                calibrator: self.calibrator.clone(),
            },
            events,
        ))
    }

    /// Reopens a suspended stream over `engine` (not necessarily the one it
    /// was suspended from): windowing continues from the checkpoint's
    /// buffered tail, the decision state machine keeps its active decision
    /// and window clock, and the eventual [`StreamSummary`] covers the
    /// whole logical stream, pre- and post-suspension windows alike.
    ///
    /// The checkpoint overrides `cfg.policy` (the smoother resumes as
    /// suspended) **and** `cfg.calibration` (the calibrator resumes with
    /// its warm-up accumulators or frozen adapted transform — a reconnect
    /// must not restart calibration), while `lookahead`, `retries` and the
    /// normalizer are taken from `cfg` — operational knobs may change
    /// across a reconnect, stream semantics may not.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `cfg`'s channels/window/slide
    /// disagree with the checkpoint's, or on the same config/engine
    /// mismatches [`StreamSession::new`] rejects.
    pub fn resume(
        engine: Arc<dyn Engine>,
        cfg: StreamConfig,
        checkpoint: SessionCheckpoint,
    ) -> Result<Self, ServeError> {
        if (cfg.channels, cfg.window, cfg.slide)
            != (
                checkpoint.channels(),
                checkpoint.window(),
                checkpoint.slide(),
            )
        {
            return Err(ServeError::BadRequest(format!(
                "resume shape [channels {}, window {}, slide {}] does not match \
                 checkpoint [channels {}, window {}, slide {}]",
                cfg.channels,
                cfg.window,
                cfg.slide,
                checkpoint.channels(),
                checkpoint.window(),
                checkpoint.slide()
            )));
        }
        let mut session = StreamSession::new(engine, cfg)?;
        // The checkpoint's policy governs the resumed stream; re-fit the
        // attribution ring to its vote depth.
        let mark_cap = MARK_WINDOW.max(checkpoint.smoother.policy().vote_depth + 1);
        if mark_cap != session.mark_cap {
            session.marks = VecDeque::with_capacity(mark_cap);
            session.mark_cap = mark_cap;
        }
        session.windower = checkpoint.windower;
        session.smoother = checkpoint.smoother;
        session.predictions = checkpoint.predictions;
        session.confidences = checkpoint.confidences;
        session.recorder = checkpoint.recorder;
        session.calibrator = checkpoint.calibrator;
        Ok(session)
    }

    /// Normalizes and submits one extracted window.
    fn submit_window(&mut self, mut window: Vec<f32>) -> Result<(), ServeError> {
        // Buffering stage: how long samples waited for this window to
        // fill. Re-arm the clock for the next window.
        let now = Instant::now();
        let buffering = self
            .buffer_from
            .replace(now)
            .map(|from| now.saturating_duration_since(from))
            .unwrap_or_default();
        match (&mut self.calibrator, &self.normalizer) {
            // Calibration subsumes the normalizer: it observes the raw
            // window, then applies the adapted transform (or the baseline
            // normalizer during warm-up).
            (Some(cal), _) => cal.normalize_window(&mut window),
            (None, Some(norm)) => norm.apply_window(&mut window),
            (None, None) => {}
        }
        let tensor = Tensor::from_vec(window, &[1, self.channels, self.window]);
        // Keep a retry copy only when a retry could ever use it.
        let retry_copy = (self.retries > 0).then(|| tensor.clone());
        let pending = self.engine.submit(tensor)?;
        self.inflight.push_back(Inflight {
            pending,
            window: retry_copy,
            retries_left: self.retries,
            buffering,
        });
        Ok(())
    }

    /// Handles one resolved front-of-queue response: absorb it, or — on a
    /// cancellation with retry budget left — re-submit the window through
    /// the engine's routing and put it back at the **front**, so window
    /// order (and with it decision determinism) is preserved.
    fn resolve(
        &mut self,
        result: Result<RequestOutput, ServeError>,
        window: Option<Tensor>,
        retries_left: usize,
        buffering: Duration,
        events: &mut Vec<GestureEvent>,
    ) -> Result<(), ServeError> {
        match (result, window) {
            (Ok(out), _) => {
                self.absorb(out, buffering, events);
                Ok(())
            }
            (Err(ServeError::Cancelled), Some(window)) if retries_left > 0 => {
                let pending = self.engine.submit(window.clone())?;
                self.inflight.push_front(Inflight {
                    pending,
                    window: Some(window),
                    retries_left: retries_left - 1,
                    buffering,
                });
                Ok(())
            }
            (Err(e), _) => Err(e),
        }
    }

    /// Absorbs completed responses from the front of the in-flight queue —
    /// opportunistically (non-blocking) while within the lookahead budget,
    /// blocking when over it or when `drain_all` is set.
    fn drain(&mut self, drain_all: bool, events: &mut Vec<GestureEvent>) -> Result<(), ServeError> {
        while let Some(Inflight {
            pending,
            window,
            retries_left,
            buffering,
        }) = self.inflight.pop_front()
        {
            let must_wait = drain_all || self.inflight.len() >= self.lookahead;
            if must_wait {
                let result = pending.wait();
                self.resolve(result, window, retries_left, buffering, events)?;
            } else {
                match pending.try_wait() {
                    Ok(result) => self.resolve(result, window, retries_left, buffering, events)?,
                    Err(pending) => {
                        self.inflight.push_front(Inflight {
                            pending,
                            window,
                            retries_left,
                            buffering,
                        });
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Feeds one served window into the decision layer, marking its stage
    /// timings so any event it triggers can be traced.
    fn absorb(&mut self, out: RequestOutput, buffering: Duration, events: &mut Vec<GestureEvent>) {
        debug_assert_eq!(out.predictions.len(), 1, "stream requests hold one window");
        let class = out.predictions[0];
        let conf = confidence(out.logits.row(0), class);
        if self.marks.len() == self.mark_cap {
            self.marks.pop_front();
        }
        self.marks.push_back(WindowMark {
            window: self.predictions.len(),
            class,
            buffering,
            queueing: out.queue_wait,
            compute: out.batch_latency,
            absorbed: Instant::now(),
        });
        self.predictions.push(class);
        self.confidences.push(conf);
        let before = events.len();
        self.smoother.push(class, conf, events);
        let now = Instant::now();
        for event in &events[before..] {
            self.trace_event(event, now);
        }
    }

    /// Attributes one emitted event back to its triggering window's stage
    /// marks and records the resulting [`LatencyTrace`]. Steady-state
    /// zero-allocation: ring scans and ring writes only.
    fn trace_event(&mut self, event: &GestureEvent, now: Instant) {
        let Some(&latest) = self.marks.back() else {
            return;
        };
        // Events anchor to a window index; fall back to the latest mark
        // for events past the marked range (e.g. the flush-time `Ended`,
        // anchored one window past the last absorbed one).
        let mark = self
            .marks
            .iter()
            .rev()
            .find(|m| m.window == event.window())
            .copied()
            .unwrap_or(latest);
        let smoothing = match event {
            GestureEvent::Started { class, .. } => {
                // A decision is enabled by its supporting votes: anchor
                // the smoothing delay at the earliest vote for this class
                // within the last `vote_depth` absorbed windows — that is
                // the debounce delay a user feels.
                let depth = self.smoother.policy().vote_depth;
                let mut anchor = mark.absorbed;
                for m in self.marks.iter().rev().take(depth) {
                    if m.class == *class {
                        anchor = m.absorbed;
                    }
                }
                now.saturating_duration_since(anchor)
            }
            // `Ended` is emitted synchronously with the window (or flush)
            // that closed the decision.
            GestureEvent::Ended { .. } => now.saturating_duration_since(mark.absorbed),
        };
        let trace = LatencyTrace {
            buffering: mark.buffering,
            queueing: mark.queueing,
            compute: mark.compute,
            smoothing,
        };
        self.recorder.record(trace);
        if self.pending_traces.len() == TRACE_BACKLOG {
            self.pending_traces.pop_front();
        }
        self.pending_traces.push_back(trace);
    }
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("engine", &self.engine.kind())
            .field("channels", &self.channels)
            .field("window", &self.window)
            .field("slide", &self.windower.slide())
            .field("lookahead", &self.lookahead)
            .field("submitted", &self.windower.windows_emitted())
            .field("decided", &self.predictions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(vote_depth: usize, min_hold: usize, floor: f32) -> DecisionPolicy {
        DecisionPolicy {
            vote_depth,
            min_hold,
            confidence_floor: floor,
        }
    }

    fn run(policy_: DecisionPolicy, classes: &[usize]) -> Vec<GestureEvent> {
        let mut s = DecisionSmoother::new(policy_).unwrap();
        let mut events = Vec::new();
        for &c in classes {
            s.push(c, 1.0, &mut events);
        }
        s.flush(&mut events);
        events
    }

    #[test]
    fn first_majority_starts_a_decision() {
        let events = run(policy(3, 0, 0.0), &[2, 2]);
        // One vote of K=3 is already a strict majority of a 1-deep buffer.
        assert!(matches!(
            events[0],
            GestureEvent::Started {
                class: 2,
                window: 0,
                ..
            }
        ));
        assert!(matches!(
            events.last().unwrap(),
            GestureEvent::Ended { class: 2, .. }
        ));
    }

    #[test]
    fn single_window_flicker_is_suppressed() {
        // 0 0 0 1 0 0 — the lone 1 never reaches a majority of the K=3
        // buffer, so the decision never changes.
        let events = run(policy(3, 1, 0.0), &[0, 0, 0, 1, 0, 0]);
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].class(), 0);
    }

    #[test]
    fn sustained_change_switches_after_majority_and_hold() {
        let events = run(policy(3, 2, 0.0), &[0, 0, 0, 1, 1, 1, 1]);
        // 1 gains a 2/3 majority at window 4; hold (>= 2) is satisfied.
        assert_eq!(
            events,
            vec![
                GestureEvent::Started {
                    class: 0,
                    window: 0,
                    confidence: 1.0
                },
                GestureEvent::Ended {
                    class: 0,
                    window: 4,
                    held: 4
                },
                GestureEvent::Started {
                    class: 1,
                    window: 4,
                    confidence: 1.0
                },
                GestureEvent::Ended {
                    class: 1,
                    window: 7,
                    held: 2
                },
            ]
        );
    }

    #[test]
    fn min_hold_delays_a_switch() {
        // Class 1 wins its majority at window 4 (held = 4 by then), but
        // min_hold = 6 postpones the switch until window 6.
        let events = run(policy(3, 6, 0.0), &[0, 0, 0, 1, 1, 1, 1]);
        let switched_at = events
            .iter()
            .find_map(|e| match e {
                GestureEvent::Started {
                    class: 1, window, ..
                } => Some(*window),
                _ => None,
            })
            .expect("must eventually switch");
        assert_eq!(switched_at, 6);
    }

    #[test]
    fn low_confidence_windows_abstain() {
        let mut s = DecisionSmoother::new(policy(3, 0, 0.5)).unwrap();
        let mut events = Vec::new();
        // Confident zeros, then a burst of unconfident ones: no switch.
        for _ in 0..3 {
            s.push(0, 0.9, &mut events);
        }
        for _ in 0..5 {
            s.push(1, 0.2, &mut events);
        }
        assert_eq!(s.current(), Some(0));
        // Confident ones do switch.
        for _ in 0..3 {
            s.push(1, 0.9, &mut events);
        }
        assert_eq!(s.current(), Some(1));
        assert_eq!(s.windows_seen(), 11);
    }

    /// `flush` must reset the window clock too, so one smoother can
    /// replay recording after recording with correctly anchored events.
    #[test]
    fn flush_resets_the_window_clock_for_reuse() {
        let mut s = DecisionSmoother::new(policy(3, 0, 0.0)).unwrap();
        let mut events = Vec::new();
        for _ in 0..4 {
            s.push(2, 1.0, &mut events);
        }
        s.flush(&mut events);
        assert_eq!(s.windows_seen(), 0);
        assert_eq!(s.current(), None);
        events.clear();
        s.push(1, 1.0, &mut events);
        assert!(
            matches!(
                events[0],
                GestureEvent::Started {
                    class: 1,
                    window: 0,
                    ..
                }
            ),
            "second recording must anchor at window 0, got {events:?}"
        );
    }

    #[test]
    fn confidence_is_a_softmax_probability() {
        let logits = [1.0f32, 2.0, 0.5, -1.0];
        let p: Vec<f32> = (0..4).map(|c| confidence(&logits, c)).collect();
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[1] > p[0] && p[0] > p[2] && p[2] > p[3]);
    }

    /// Regression: a backend emitting non-finite or extreme logits must
    /// not produce a NaN confidence — NaN compares false against any
    /// `confidence_floor`, so a poisoned window would *vote* instead of
    /// abstaining. Degenerate inputs now read as confidence 0.0.
    #[test]
    fn confidence_survives_extreme_and_nan_logits() {
        // Finite but huge: naive softmax overflows exp(1e30); the
        // max-subtracted form stays exact.
        let huge = [1e30f32, 0.0, -1e30];
        let p = confidence(&huge, 0);
        assert!((p - 1.0).abs() < 1e-6, "got {p}");
        assert_eq!(confidence(&huge, 2), 0.0);

        // Finite but hugely negative everywhere: every shifted exponential
        // is exp(0) or exp(-inf); still a valid distribution.
        let lows = [-1e30f32, -1e30];
        let p = confidence(&lows, 0);
        assert!(p.is_finite() && p > 0.0, "got {p}");

        // A NaN logit poisons max-subtraction (max = NaN): the hardened
        // path reports 0.0, never NaN.
        let nan = [f32::NAN, 1.0, 2.0];
        for c in 0..3 {
            let p = confidence(&nan, c);
            assert_eq!(p, 0.0, "class {c} got {p}");
            // The abstention contract: 0.0 fails any positive floor.
            assert!(p < 0.01, "NaN-derived confidence must abstain");
        }
        // +inf logits collapse to a 0/0 or inf/inf — also 0.0, not NaN.
        let infs = [f32::INFINITY, f32::INFINITY];
        assert_eq!(confidence(&infs, 0), 0.0);
    }

    #[test]
    fn zero_vote_depth_is_rejected() {
        assert!(DecisionSmoother::new(policy(0, 0, 0.0)).is_err());
        assert!(DecisionSmoother::new(policy(3, 0, 1.5)).is_err());
    }
}
