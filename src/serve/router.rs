//! Sharded multi-replica serving: one submission API fanning out over N
//! backend replicas with policy-driven, latency-aware routing.
//!
//! The paper's deployment story is one Bioformer at several precisions —
//! fp32 where accuracy matters, fully-integer int8 where latency and
//! energy do. [`ShardedEngine`] turns that Pareto picture into a serving
//! topology: each replica is a full `Replica` (bounded queue + coalescing
//! worker pool + stats, the component inside
//! [`AsyncEngine`](super::AsyncEngine)), and the router picks a replica
//! per request according to a [`RoutingPolicy`]. Replicas whose workers
//! die or whose backend fails repeatedly are **quarantined** — new traffic
//! routes around them, and [`ShardedEngine::classify`] transparently
//! re-routes a request cancelled by a failing replica. Shutdown drains
//! every replica in parallel before joining.
//!
//! Two tail-latency levers ride on top of routing:
//!
//! - **Hedged requests** ([`HedgeConfig`], opt-in): when a classify call
//!   has waited longer than the pool's running p95 estimate, the request
//!   is duplicated to a second healthy replica and the first answer wins —
//!   one slow replica stops defining the pool's p99.
//! - **Replica weights** ([`ShardedEngineBuilder::add_replica_weighted`]):
//!   an explicit capacity multiplier dividing the
//!   [`RoutingPolicy::LatencyAware`] score, so a deliberately
//!   under-provisioned fp32 replica in a mostly-int8 pool can be held to a
//!   planned share of traffic before its latency EWMA has converged.

use super::queue::{PendingResponse, RequestOutput, ServeError};
use super::worker::{AsyncEngineConfig, AsyncStats, Replica, WorkerInner};
use super::{GestureClassifier, LatencyStats};
use bioformer_tensor::backend::ComputeBackend;
use bioformer_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often the hedged race polls each of the two in-flight copies.
const HEDGE_POLL: Duration = Duration::from_micros(200);

/// How the router picks a replica for each submission. Only healthy
/// (non-quarantined) replicas are ever candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Cycle through the healthy replicas in order. Fair, oblivious to
    /// load — the baseline policy.
    RoundRobin,
    /// Pick the replica with the fewest queued requests, breaking ties
    /// round-robin. Adapts to load imbalance but not to heterogeneous
    /// replica speed.
    LeastQueueDepth,
    /// Pick the replica minimising `(inflight + 1) ×` its per-window
    /// batch-latency EWMA — an estimate of time-to-service that accounts
    /// for both outstanding load and how fast the replica actually is, so
    /// an fp32 replica naturally yields traffic to a faster int8 sibling
    /// under load. The latency signal is the batch EWMA normalised per
    /// window (a replica is not punished for absorbing bigger coalesced
    /// batches), and the load signal counts in-flight requests rather
    /// than queue depth (which reads zero while a worker holds the whole
    /// backlog in its forming batch). Replicas with no latency history
    /// yet score zero and are probed first.
    #[default]
    LatencyAware,
}

/// Tuning knobs for [`ShardedEngine`] (per-replica knobs live in each
/// replica's [`AsyncEngineConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedEngineConfig {
    /// The routing policy.
    pub policy: RoutingPolicy,
    /// Consecutive backend failures (panicking batches) after which a
    /// replica is quarantined (≥ 1). A replica whose workers have all died
    /// is quarantined regardless.
    pub quarantine_after: usize,
    /// Maximum times [`ShardedEngine::classify`] re-routes a request to
    /// another replica after a [`ServeError::Cancelled`] response.
    pub max_reroutes: usize,
    /// How often a quarantined replica is probed with a canary request
    /// (a single zero window of the replica's served shape). On a
    /// successful canary answer the replica is **re-admitted** to the
    /// routing pool, so a transiently failing replica rejoins instead of
    /// staying evicted forever. `None` restores the pre-recovery sticky
    /// quarantine. Probing piggybacks on routing decisions — an idle pool
    /// sends no canaries — and replicas whose workers have all died are
    /// never probed (a dead worker pool cannot answer).
    pub probe_interval: Option<Duration>,
    /// Request hedging for [`ShardedEngine::classify`]. `None` (the
    /// default) disables hedging entirely — the classify path is then
    /// byte-for-byte the pre-hedging re-route loop.
    pub hedge: Option<HedgeConfig>,
}

impl Default for ShardedEngineConfig {
    fn default() -> Self {
        ShardedEngineConfig {
            policy: RoutingPolicy::LatencyAware,
            quarantine_after: 2,
            max_reroutes: 3,
            probe_interval: Some(Duration::from_millis(250)),
            hedge: None,
        }
    }
}

/// Hedged-request tuning for [`ShardedEngine::classify`].
///
/// A hedge fires when the primary replica has not answered within the
/// **hedge delay**: the request is duplicated (non-blocking) to a second
/// healthy replica and the first answer wins. The delay tracks the pool's
/// observed p95 classify latency via a constant-space frugal-streaming
/// estimator, clamped to `[min_delay, max_delay]`; before any latency has
/// been observed, `initial_delay` is used. Tying the delay to p95 bounds
/// the duplicate-work overhead at roughly 5 % of requests while still
/// cutting off the slowest tail — the classic "tail at scale" trade.
///
/// The losing copy is **cancelled, not un-counted**: its response handle
/// is dropped (the worker's send fails silently), but the work still shows
/// up in the losing replica's counters, so
/// [`PoolStats::rollup_consistent`] keeps holding. Pool-level
/// [`PoolStats::hedges_fired`] / [`PoolStats::hedges_won`] count the
/// duplicates separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Hedge delay used before the p95 estimator has seen any sample.
    pub initial_delay: Duration,
    /// Lower clamp on the hedge delay (guards against a cold or
    /// pathologically low estimate hedging every request).
    pub min_delay: Duration,
    /// Upper clamp on the hedge delay (guards against a spike poisoning
    /// the estimate into never hedging again).
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            initial_delay: Duration::from_millis(20),
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(250),
        }
    }
}

/// In-flight canary probe bookkeeping for one quarantined replica.
#[derive(Default)]
struct ProbeState {
    /// The outstanding canary's response handle, polled (never blocked on)
    /// during health refreshes.
    inflight: Option<PendingResponse>,
    /// When the last canary was submitted (or resolved unsuccessfully);
    /// the next probe waits out `probe_interval` from here.
    last: Option<Instant>,
}

/// One replica plus its quarantine flag and canary-probe state. The flag is
/// set by health refreshes on the routing path; it is cleared again only by
/// a successful canary probe (see [`ShardedEngineConfig::probe_interval`]),
/// so a replica that keeps failing stays out of rotation while a
/// transiently failing one rejoins. Queued work of a quarantined replica is
/// still drained on shutdown.
struct ReplicaSlot {
    replica: Replica,
    quarantined: AtomicBool,
    probe: Mutex<ProbeState>,
    /// Routing weight: the [`RoutingPolicy::LatencyAware`] score is
    /// divided by this, so a weight-2 replica is offered roughly twice the
    /// traffic of a weight-1 sibling at equal observed latency.
    weight: f64,
}

/// A snapshot of one replica's serving state inside a [`PoolStats`].
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// Replica index (0-based, in `add_replica` order).
    pub replica: usize,
    /// The replica backend's name, e.g. `"bioformer-int8"`.
    pub backend: String,
    /// Whether the router has quarantined this replica.
    pub quarantined: bool,
    /// The replica's routing weight (1.0 unless set via
    /// [`ShardedEngineBuilder::add_replica_weighted`]).
    pub weight: f64,
    /// Requests waiting in this replica's queue at snapshot time.
    pub queue_depth: usize,
    /// EWMA of this replica's coalesced-batch backend latency. `None`
    /// before the first executed batch.
    pub ewma_batch_latency: Option<Duration>,
    /// EWMA of this replica's per-window backend latency — the signal
    /// [`RoutingPolicy::LatencyAware`] routes on. `None` before the first
    /// executed batch.
    pub ewma_window_latency: Option<Duration>,
    /// The replica's full per-worker statistics.
    pub stats: AsyncStats,
}

/// Pool-level statistics for a [`ShardedEngine`]: every replica's counters
/// rolled up, plus the per-replica breakdown. Counter semantics match
/// [`AsyncStats`]; each total equals the sum over `per_replica`.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Requests served across the pool.
    pub requests: usize,
    /// Requests expired for missing their deadline.
    pub expired: usize,
    /// Requests cancelled because a backend panicked mid-batch.
    pub failed: usize,
    /// Requests rejected by a worker's defence-in-depth shape check.
    pub rejected: usize,
    /// Batches executed across the pool (backend actually invoked).
    pub batches: usize,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: usize,
    /// Total windows served.
    pub windows: usize,
    /// Micro-batch latency summary across every replica's workers (exact
    /// count/total/mean/min/max; percentiles estimated over recent-sample
    /// windows).
    pub latency: LatencyStats,
    /// Hedged duplicates fired by [`ShardedEngine::classify`]. A
    /// **pool-level** counter, deliberately outside the per-replica sums:
    /// the duplicate itself is counted as an ordinary request in the hedge
    /// replica's stats, so [`PoolStats::rollup_consistent`] still holds.
    pub hedges_fired: usize,
    /// Hedged duplicates whose answer was the one returned to the caller
    /// (the primary lost the race or failed). Pool-level, like
    /// [`PoolStats::hedges_fired`].
    pub hedges_won: usize,
    /// Per-replica breakdown.
    pub per_replica: Vec<ReplicaStats>,
}

impl PoolStats {
    /// Windows served per second of backend time (0.0 before any work).
    pub fn throughput(&self) -> f64 {
        self.latency.throughput()
    }

    /// Mean requests per executed batch across the pool (0.0 before any
    /// work).
    pub fn requests_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Whether every pool total equals the sum of its per-replica
    /// counterparts — the rollup invariant `tests/serving_sharded.rs` pins,
    /// and the shape the multi-tenant gateway's
    /// [`ServerStats`](super::ServerStats) per-tenant rollup mirrors.
    pub fn rollup_consistent(&self) -> bool {
        let sum =
            |f: &dyn Fn(&ReplicaStats) -> usize| -> usize { self.per_replica.iter().map(f).sum() };
        self.requests == sum(&|r| r.stats.requests)
            && self.expired == sum(&|r| r.stats.expired)
            && self.failed == sum(&|r| r.stats.failed)
            && self.rejected == sum(&|r| r.stats.rejected)
            && self.batches == sum(&|r| r.stats.batches)
            && self.coalesced_batches == sum(&|r| r.stats.coalesced_batches)
            && self.windows == sum(&|r| r.stats.windows)
    }
}

/// Builder for a [`ShardedEngine`]: collect heterogeneous replicas, then
/// [`ShardedEngineBuilder::build`].
pub struct ShardedEngineBuilder {
    cfg: ShardedEngineConfig,
    replica_cfg: AsyncEngineConfig,
    replicas: Vec<(Box<dyn GestureClassifier>, Option<AsyncEngineConfig>, f64)>,
}

impl ShardedEngineBuilder {
    fn new() -> Self {
        ShardedEngineBuilder {
            cfg: ShardedEngineConfig::default(),
            // One worker per replica is the norm, and the router derives
            // each replica's linger from its observed traffic by default.
            replica_cfg: AsyncEngineConfig::default()
                .with_workers(1)
                .with_adaptive_linger(Duration::from_millis(5)),
            replicas: Vec::new(),
        }
    }

    /// Sets the routing policy.
    pub fn with_policy(mut self, policy: RoutingPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the consecutive-failure count that quarantines a replica.
    ///
    /// # Panics
    ///
    /// Panics if `after` is 0.
    pub fn with_quarantine_after(mut self, after: usize) -> Self {
        assert!(after > 0, "ShardedEngine: quarantine_after must be >= 1");
        self.cfg.quarantine_after = after;
        self
    }

    /// Sets how many times [`ShardedEngine::classify`] re-routes a
    /// cancelled request to another replica (0 disables re-routing).
    pub fn with_max_reroutes(mut self, reroutes: usize) -> Self {
        self.cfg.max_reroutes = reroutes;
        self
    }

    /// Sets how often quarantined replicas are probed with canary requests
    /// for re-admission (see [`ShardedEngineConfig::probe_interval`]).
    pub fn with_probe_interval(mut self, interval: Duration) -> Self {
        self.cfg.probe_interval = Some(interval);
        self
    }

    /// Disables canary probing: quarantine becomes sticky for the
    /// engine's lifetime (the pre-recovery behaviour).
    pub fn without_probe_recovery(mut self) -> Self {
        self.cfg.probe_interval = None;
        self
    }

    /// Enables request hedging on [`ShardedEngine::classify`] (see
    /// [`HedgeConfig`]). Off by default.
    pub fn with_hedging(mut self, hedge: HedgeConfig) -> Self {
        self.cfg.hedge = Some(hedge);
        self
    }

    /// Sets the default per-replica config used by
    /// [`ShardedEngineBuilder::add_replica`] (replicas already added keep
    /// theirs).
    pub fn with_replica_config(mut self, cfg: AsyncEngineConfig) -> Self {
        self.replica_cfg = cfg;
        self
    }

    /// Adds a replica serving `backend` with the builder's default replica
    /// config.
    pub fn add_replica(mut self, backend: Box<dyn GestureClassifier>) -> Self {
        self.replicas.push((backend, None, 1.0));
        self
    }

    /// Adds a replica with an explicit routing weight. Under
    /// [`RoutingPolicy::LatencyAware`] the replica's score is divided by
    /// `weight`, so a weight-2 replica attracts roughly twice the traffic
    /// of a weight-1 sibling at equal observed latency — the knob for
    /// capacity-planning a heterogeneous fp32 + int8 pool before (and
    /// independently of) the latency EWMAs converging.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is finite and > 0.
    pub fn add_replica_weighted(
        mut self,
        backend: Box<dyn GestureClassifier>,
        weight: f64,
    ) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "ShardedEngine: replica weight must be finite and > 0, got {weight}"
        );
        self.replicas.push((backend, None, weight));
        self
    }

    /// Adds a replica with an explicit per-replica config — e.g. more
    /// workers for a big-core fp32 replica, a larger micro-batch for an
    /// accelerator-offload replica.
    pub fn add_replica_with(
        mut self,
        backend: Box<dyn GestureClassifier>,
        cfg: AsyncEngineConfig,
    ) -> Self {
        self.replicas.push((backend, Some(cfg), 1.0));
        self
    }

    /// Adds a replica with an explicit [`ComputeBackend`] installed before
    /// it is shared with the worker pool — e.g. one built from a persisted
    /// [`TuneTable`](bioformer_tensor::tune::TuneTable). The install is a
    /// no-op for backends without a compute seam.
    pub fn add_replica_with_compute(
        self,
        mut backend: Box<dyn GestureClassifier>,
        compute: Arc<dyn ComputeBackend>,
    ) -> Self {
        backend.install_compute(compute);
        self.add_replica(backend)
    }

    /// Adds a replica whose compute backend is autotuned for the model's
    /// GEMM shapes (honouring `BIOFORMER_TUNE`) before the worker pool
    /// spawns. Mixing `add_tuned_replica` and `add_replica` in one pool
    /// yields tuned and default replicas side by side — compare them via
    /// [`EngineStats::tuning`](super::EngineStats) and the per-replica
    /// latency breakdown.
    pub fn add_tuned_replica(self, mut backend: Box<dyn GestureClassifier>) -> Self {
        let (compute, _table) = super::tuned_compute(backend.as_ref());
        backend.install_compute(compute);
        self.add_replica(backend)
    }

    /// Spawns every replica's worker pool and returns the engine.
    ///
    /// # Panics
    ///
    /// Panics if no replica was added, if replicas disagree on the class
    /// count (they must serve the same task), or if any replica config is
    /// invalid.
    pub fn build(self) -> ShardedEngine {
        assert!(
            !self.replicas.is_empty(),
            "ShardedEngine: at least one replica is required"
        );
        let default_cfg = self.replica_cfg;
        let replicas: Vec<ReplicaSlot> = self
            .replicas
            .into_iter()
            .map(|(backend, cfg, weight)| ReplicaSlot {
                replica: Replica::new(backend, cfg.unwrap_or_else(|| default_cfg.clone())),
                quarantined: AtomicBool::new(false),
                probe: Mutex::new(ProbeState::default()),
                weight,
            })
            .collect();
        let classes = replicas[0].replica.num_classes();
        for slot in &replicas {
            assert_eq!(
                slot.replica.num_classes(),
                classes,
                "ShardedEngine: replica {} serves {} classes, expected {}",
                slot.replica.backend_name(),
                slot.replica.num_classes(),
                classes
            );
        }
        ShardedEngine {
            replicas,
            rr: AtomicUsize::new(0),
            cfg: self.cfg,
            classes,
            hedges_fired: AtomicUsize::new(0),
            hedges_won: AtomicUsize::new(0),
            hedge_p95_ns: AtomicU64::new(0),
        }
    }
}

/// A sharded multi-replica serving engine: one submission API over N
/// backend replicas, each with its own bounded queue and coalescing worker
/// pool, with policy-driven routing, replica quarantine and pool-level
/// statistics.
///
/// Replicas may be heterogeneous — the intended deployment is the paper's
/// fp32/int8 Pareto front, e.g. one fp32 `Bioformer` replica on big cores
/// plus int8 `QuantBioformer` replicas elsewhere — as long as they serve
/// the same class count. Each replica derives its own linger from observed
/// traffic by default ([`LingerPolicy::Adaptive`](super::LingerPolicy)).
///
/// # Example
///
/// ```
/// use bioformers::core::{Bioformer, BioformerConfig};
/// use bioformers::serve::{RoutingPolicy, ShardedEngine};
/// use bioformers::tensor::Tensor;
///
/// let pool = ShardedEngine::builder()
///     .with_policy(RoutingPolicy::LatencyAware)
///     .add_replica(Box::new(Bioformer::new(&BioformerConfig::bio1())))
///     .add_replica(Box::new(Bioformer::new(&BioformerConfig::bio1())))
///     .build();
/// let out = pool.classify(Tensor::zeros(&[2, 14, 300])).unwrap();
/// assert_eq!(out.logits.dims(), &[2, 8]);
/// let stats = pool.shutdown();
/// assert_eq!(stats.requests, 1);
/// assert_eq!(stats.per_replica.len(), 2);
/// ```
pub struct ShardedEngine {
    replicas: Vec<ReplicaSlot>,
    /// Round-robin cursor; also rotates tie-breaks for the other policies.
    rr: AtomicUsize,
    cfg: ShardedEngineConfig,
    classes: usize,
    /// Hedged duplicates fired (pool-level; see [`PoolStats::hedges_fired`]).
    hedges_fired: AtomicUsize,
    /// Hedged duplicates whose answer won the race.
    hedges_won: AtomicUsize,
    /// Running p95 estimate of classify latency in nanos (frugal
    /// streaming: asymmetric ±steps at a 19:1 ratio converge on the 95th
    /// percentile in constant space). 0 = no sample yet.
    hedge_p95_ns: AtomicU64,
}

impl ShardedEngine {
    /// Starts building a pool.
    pub fn builder() -> ShardedEngineBuilder {
        ShardedEngineBuilder::new()
    }

    /// The pool's configuration.
    pub fn config(&self) -> &ShardedEngineConfig {
        &self.cfg
    }

    /// Number of replicas (healthy or quarantined).
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The shared class count every replica serves.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// The replica backend names, in `add_replica` order.
    pub fn backend_names(&self) -> Vec<String> {
        self.replicas
            .iter()
            .map(|s| s.replica.backend_name().to_string())
            .collect()
    }

    /// The replica compute reports (tuning state at spawn), parallel to
    /// [`ShardedEngine::backend_names`].
    pub fn compute_reports(&self) -> Vec<String> {
        self.replicas
            .iter()
            .map(|s| s.replica.compute_report().to_string())
            .collect()
    }

    /// The `[channels, samples]` window shape the pool serves, when every
    /// replica agrees on one (declared by its backend or pinned by
    /// traffic); `None` when unknown or inconsistent.
    pub fn input_shape(&self) -> Option<(usize, usize)> {
        let mut shape = None;
        for slot in &self.replicas {
            match (shape, slot.replica.served_shape()) {
                (_, None) => return None,
                (None, got) => shape = got,
                (Some(expect), Some(got)) if expect != got => return None,
                _ => {}
            }
        }
        shape
    }

    /// Re-evaluates every replica's health: marks dead or persistently
    /// failing replicas as quarantined, and drives the canary-probe cycle
    /// that re-admits quarantined replicas once they answer again. Runs on
    /// every routing decision; cheap (a few atomic loads per replica, and
    /// canaries are only submitted every `probe_interval`).
    fn refresh_health(&self) {
        for slot in &self.replicas {
            if !slot.quarantined.load(Ordering::Relaxed) {
                let shared = slot.replica.shared();
                if shared.alive_workers() == 0
                    || shared.consecutive_failures() >= self.cfg.quarantine_after
                {
                    slot.quarantined.store(true, Ordering::Relaxed);
                }
                continue;
            }
            if let Some(interval) = self.cfg.probe_interval {
                self.probe_quarantined(slot, interval);
            }
        }
    }

    /// One non-blocking step of the canary cycle for a quarantined
    /// replica: poll an outstanding canary (re-admit on success), or
    /// submit a fresh one once `interval` has passed since the last.
    fn probe_quarantined(&self, slot: &ReplicaSlot, interval: Duration) {
        // A replica with no live workers can never answer a canary; it
        // stays quarantined without wasting probe traffic.
        if slot.replica.shared().alive_workers() == 0 {
            return;
        }
        // Skip on contention: another router call is already probing.
        let Ok(mut probe) = slot.probe.try_lock() else {
            return;
        };
        if let Some(pending) = probe.inflight.take() {
            match pending.try_wait() {
                Ok(Ok(_)) => {
                    // The backend answered. The canary's response is sent
                    // from inside the batch, *before* the worker's own
                    // success accounting resets the failure counter — so
                    // clear it here, or the next health refresh would
                    // re-quarantine the healthy replica off stale state.
                    slot.replica.shared().reset_failures();
                    slot.quarantined.store(false, Ordering::Relaxed);
                    probe.last = Some(Instant::now());
                }
                Ok(Err(_)) => {
                    // Canary failed or was cancelled: stay quarantined and
                    // retry after the interval.
                    probe.last = Some(Instant::now());
                }
                Err(pending) => {
                    // Still in flight; keep polling on later refreshes.
                    probe.inflight = Some(pending);
                }
            }
            return;
        }
        let due = probe.last.is_none_or(|t| t.elapsed() >= interval);
        if !due {
            return;
        }
        // A canary needs the replica's served shape; a replica that never
        // saw traffic and declares none cannot be probed (nothing could
        // have been routed to it anyway, so it cannot be quarantined by
        // backend failures — only by worker death, which is unrecoverable).
        let Some((c, s)) = slot.replica.served_shape() else {
            return;
        };
        match slot.replica.try_submit(Tensor::zeros(&[1, c, s])) {
            Ok(pending) => probe.inflight = Some(pending),
            Err(_) => probe.last = Some(Instant::now()),
        }
    }

    /// Picks a replica for the next request, skipping quarantined replicas
    /// and the explicitly `excluded` indices (already-tried replicas during
    /// a re-route).
    fn route(&self, excluded: &[usize]) -> Result<usize, ServeError> {
        self.refresh_health();
        let healthy: Vec<usize> = (0..self.replicas.len())
            .filter(|i| !self.replicas[*i].quarantined.load(Ordering::Relaxed))
            .filter(|i| !excluded.contains(i))
            .collect();
        if healthy.is_empty() {
            return Err(ServeError::Unavailable);
        }
        // One cursor bump per decision: round-robin rotation, and a
        // rotating tie-break start for the load-aware policies.
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % healthy.len();
        let pick = match self.cfg.policy {
            RoutingPolicy::RoundRobin => healthy[start],
            RoutingPolicy::LeastQueueDepth => select_min(&healthy, start, |i| {
                self.replicas[i].replica.queue_depth() as f64
            }),
            RoutingPolicy::LatencyAware => select_min(&healthy, start, |i| {
                let r = &self.replicas[i].replica;
                let shared = r.shared();
                let win = shared
                    .ewma_window_latency()
                    .map_or(0.0, |d| d.as_secs_f64());
                let batch = shared.ewma_batch_latency().map_or(0.0, |d| d.as_secs_f64());
                // Expected time-to-service: the requests already waiting
                // (queued or in a forming batch — riders of an executing
                // batch finish with it and don't add future work) plus
                // this request, at the replica's per-window rate, plus the
                // expected remainder of any batch executing right now
                // (½ the batch EWMA per busy worker). Divided by the
                // replica's explicit weight: a weight-w replica looks w×
                // cheaper, attracting a proportional share of traffic.
                ((shared.waiting() + 1) as f64 * win + shared.busy_workers() as f64 * batch / 2.0)
                    / self.replicas[i].weight
            }),
        };
        Ok(pick)
    }

    /// Submits a request to the routed replica, blocking while that
    /// replica's queue is full (cooperative backpressure). Returns the
    /// replica's response handle.
    pub fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        let idx = self.route(&[])?;
        self.replicas[idx].replica.submit(windows)
    }

    /// Submits without blocking: if the routed replica's queue is full, the
    /// other healthy replicas are tried in routing order before failing
    /// with [`ServeError::QueueFull`] — spillover load balancing.
    pub fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        let mut tried = Vec::new();
        let mut windows = windows;
        loop {
            let idx = match self.route(&tried) {
                Ok(idx) => idx,
                // All replicas tried and full -> report backpressure, not
                // unavailability (quarantine exhaustion still surfaces).
                Err(ServeError::Unavailable) if !tried.is_empty() => {
                    return Err(ServeError::QueueFull)
                }
                Err(e) => return Err(e),
            };
            // Keep a spillover copy of the tensor only while another
            // replica remains to spill to; the last (and the single-
            // replica) attempt moves it, clone-free.
            let retry = (tried.len() + 1 < self.replicas.len()).then(|| windows.clone());
            match (self.replicas[idx].replica.try_submit(windows), retry) {
                (Err(ServeError::QueueFull), Some(copy)) => {
                    tried.push(idx);
                    windows = copy;
                }
                (Err(ServeError::QueueFull), None) => return Err(ServeError::QueueFull),
                (other, _) => return other,
            }
        }
    }

    /// Submits a request that must **start** being served within `ttl` on
    /// the routed replica.
    pub fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        let idx = self.route(&[])?;
        self.replicas[idx]
            .replica
            .submit_with_deadline(windows, ttl)
    }

    /// Routes, submits and waits — re-routing to another healthy replica
    /// (up to [`ShardedEngineConfig::max_reroutes`] times) when a replica
    /// cancels the request because its backend panicked. This is how a
    /// dying replica's traffic is re-routed rather than dropped.
    ///
    /// With [`ShardedEngineConfig::hedge`] set, a request that outlives the
    /// hedge delay is additionally duplicated to a second replica and the
    /// first answer wins (see [`HedgeConfig`]); with `hedge: None` (the
    /// default) this is exactly the plain re-route loop.
    pub fn classify(&self, windows: Tensor) -> Result<RequestOutput, ServeError> {
        match self.cfg.hedge {
            Some(h) => self.classify_hedged(windows, h),
            None => self.classify_unhedged(windows),
        }
    }

    /// The pre-hedging classify path: route, submit, wait, re-route on
    /// cancellation.
    fn classify_unhedged(&self, windows: Tensor) -> Result<RequestOutput, ServeError> {
        let mut tried = Vec::new();
        let mut windows = windows;
        loop {
            let idx = self.route(&tried)?;
            // Keep a retry copy of the tensor only while another re-route
            // is actually possible (budget left and an untried replica to
            // go to); otherwise the submission moves it, clone-free.
            let rerouteable =
                tried.len() < self.cfg.max_reroutes && self.replicas.len() > tried.len() + 1;
            let retry = rerouteable.then(|| windows.clone());
            let pending = self.replicas[idx].replica.submit(windows)?;
            match (pending.wait(), retry) {
                (Err(ServeError::Cancelled), Some(copy)) => {
                    tried.push(idx);
                    windows = copy;
                }
                (Err(ServeError::Cancelled), None) if tried.len() < self.cfg.max_reroutes => {
                    // Re-route budget remains but there was no untried
                    // replica to keep a retry copy for. Escalate to
                    // pool-level unavailability only when no healthy
                    // replica is left at all; a transient failure on a
                    // still-healthy replica stays a plain cancellation.
                    return match self.route(&[]) {
                        Err(e) => Err(e),
                        Ok(_) => Err(ServeError::Cancelled),
                    };
                }
                (other, _) => return other,
            }
        }
    }

    /// The hedged classify path: submit to the routed primary, wait out
    /// the hedge delay, then duplicate to a second healthy replica and
    /// race the two copies. The losing copy's response handle is dropped —
    /// the worker still executes and counts it, but nobody waits for it.
    ///
    /// Failure semantics are deliberately simple: the hedge *is* the
    /// retry. If one copy errors the call blocks on the other; if both
    /// error the surviving copy's error is returned. The unhedged
    /// re-route loop is not layered on top.
    fn classify_hedged(
        &self,
        windows: Tensor,
        h: HedgeConfig,
    ) -> Result<RequestOutput, ServeError> {
        let started = Instant::now();
        let primary_idx = self.route(&[])?;
        let copy = windows.clone();
        let mut primary = self.replicas[primary_idx].replica.submit(windows)?;
        match primary.wait_timeout(self.hedge_delay(&h)) {
            Ok(result) => return self.hedged_outcome(result, started, false),
            Err(pending) => primary = pending,
        }
        // The primary outlived the delay: duplicate to a second healthy
        // replica, never the primary, without blocking — a full hedge
        // queue means "no hedge this time", not backpressure.
        let hedged = self
            .route(&[primary_idx])
            .ok()
            .and_then(|idx| self.replicas[idx].replica.try_submit(copy).ok());
        let Some(mut hedge) = hedged else {
            return self.hedged_outcome(primary.wait(), started, false);
        };
        self.hedges_fired.fetch_add(1, Ordering::Relaxed);
        loop {
            match primary.wait_timeout(HEDGE_POLL) {
                Ok(Ok(out)) => return self.hedged_outcome(Ok(out), started, false),
                Ok(Err(_)) => return self.hedged_outcome(hedge.wait(), started, true),
                Err(pending) => primary = pending,
            }
            match hedge.try_wait() {
                Ok(Ok(out)) => return self.hedged_outcome(Ok(out), started, true),
                Ok(Err(_)) => return self.hedged_outcome(primary.wait(), started, false),
                Err(pending) => hedge = pending,
            }
        }
    }

    /// Accounts for a finished hedged classify: bumps the win counter when
    /// the hedge's answer was used, and feeds the p95 estimator on success.
    fn hedged_outcome(
        &self,
        result: Result<RequestOutput, ServeError>,
        started: Instant,
        won_by_hedge: bool,
    ) -> Result<RequestOutput, ServeError> {
        if result.is_ok() {
            if won_by_hedge {
                self.hedges_won.fetch_add(1, Ordering::Relaxed);
            }
            self.note_latency(started.elapsed());
        }
        result
    }

    /// The hedge delay for the next request: the running p95 estimate,
    /// clamped to the config's bounds ([`HedgeConfig::initial_delay`]
    /// before any sample).
    fn hedge_delay(&self, h: &HedgeConfig) -> Duration {
        let est = self.hedge_p95_ns.load(Ordering::Relaxed);
        let raw = if est == 0 {
            h.initial_delay
        } else {
            Duration::from_nanos(est)
        };
        raw.clamp(h.min_delay, h.max_delay)
    }

    /// Frugal-streaming p95 update: step up 19 units on a sample above the
    /// estimate, down 1 unit below it — at the 95th percentile up- and
    /// down-steps balance (5 % × 19 = 95 % × 1). The unit is a 1/256th of
    /// the current estimate, so convergence is multiplicative and scale-
    /// free. Lossy under concurrent updates by design (it is an estimate).
    fn note_latency(&self, sample: Duration) {
        let s = (sample.as_nanos().min(u64::MAX as u128) as u64).max(1);
        let cur = self.hedge_p95_ns.load(Ordering::Relaxed);
        let next = if cur == 0 {
            s
        } else {
            let unit = (cur >> 8).max(1);
            if s > cur {
                cur.saturating_add(19 * unit)
            } else {
                cur.saturating_sub(unit).max(1)
            }
        };
        self.hedge_p95_ns.store(next, Ordering::Relaxed);
    }

    /// A live snapshot of pool-level + per-replica statistics. Every pool
    /// total is the sum of the corresponding per-replica counters.
    ///
    /// The `quarantined` flags reflect the router's decisions so far (the
    /// flag is evaluated on the routing path, not here — a drained pool's
    /// idle workers are not retroactively declared dead). Canary probe
    /// requests sent to quarantined replicas are counted like client
    /// requests in that replica's stats.
    pub fn stats(&self) -> PoolStats {
        let mut merged = WorkerInner::default();
        let mut per_replica = Vec::with_capacity(self.replicas.len());
        for (i, slot) in self.replicas.iter().enumerate() {
            // One snapshot per replica feeds both the pool rollup and the
            // per-replica view, so the totals sum exactly even mid-traffic.
            let (replica_merged, per_worker) = slot.replica.snapshot();
            merged.merge_from(&replica_merged);
            per_replica.push(ReplicaStats {
                replica: i,
                backend: slot.replica.backend_name().to_string(),
                quarantined: slot.quarantined.load(Ordering::Relaxed),
                weight: slot.weight,
                queue_depth: slot.replica.queue_depth(),
                ewma_batch_latency: slot.replica.shared().ewma_batch_latency(),
                ewma_window_latency: slot.replica.shared().ewma_window_latency(),
                stats: replica_merged.into_stats(per_worker),
            });
        }
        let pool = merged.into_stats(Vec::new());
        PoolStats {
            requests: pool.requests,
            expired: pool.expired,
            failed: pool.failed,
            rejected: pool.rejected,
            batches: pool.batches,
            coalesced_batches: pool.coalesced_batches,
            windows: pool.windows,
            latency: pool.latency,
            hedges_fired: self.hedges_fired.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            per_replica,
        }
    }

    /// Graceful shutdown: closes every replica's queue (so they drain in
    /// parallel), joins all workers, and returns the final pool statistics.
    /// Accepted requests are always served; dropping the engine does the
    /// same minus the stats.
    pub fn shutdown(mut self) -> PoolStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        // Close all queues first: replicas drain concurrently instead of
        // serially waiting on each other's backlog.
        for slot in &self.replicas {
            slot.replica.close();
        }
        for slot in &mut self.replicas {
            slot.replica.join();
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backends: Vec<&str> = self
            .replicas
            .iter()
            .map(|s| s.replica.backend_name())
            .collect();
        f.debug_struct("ShardedEngine")
            .field("replicas", &backends)
            .field("policy", &self.cfg.policy)
            .field("quarantine_after", &self.cfg.quarantine_after)
            .finish()
    }
}

/// Picks the index in `healthy` minimising `score`, scanning from `start`
/// so ties rotate instead of always landing on the first replica.
fn select_min(healthy: &[usize], start: usize, score: impl Fn(usize) -> f64) -> usize {
    let mut best = healthy[start];
    let mut best_score = score(best);
    for k in 1..healthy.len() {
        let idx = healthy[(start + k) % healthy.len()];
        let s = score(idx);
        if s < best_score {
            best = idx;
            best_score = s;
        }
    }
    best
}
