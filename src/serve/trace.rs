//! Decision-latency tracing: the per-stage breakdown of what a user
//! actually feels — sample arrival → emitted [`GestureEvent`].
//!
//! The serving stack already measures per-micro-batch *compute* time
//! ([`LatencyStats`]), but a streamed gesture decision spends time in four
//! places, and only one of them is the backend:
//!
//! ```text
//!  samples arrive      window full      batch starts     batch done
//!       │  buffering       │  queueing       │  compute       │  smoothing
//!       ▼──────────────────▼─────────────────▼────────────────▼────────────▶
//!                                                              GestureEvent
//! ```
//!
//! * **buffering** — samples waiting for enough new frames to complete the
//!   next window (scales with the stream's `slide`);
//! * **queueing** — window submitted → batch execution starts (engine queue
//!   wait: linger, backlog, busy workers);
//! * **compute** — the coalesced batch's backend execution;
//! * **smoothing** — decision available → debounced emission (the majority
//!   vote / min-hold delay, plus any lookahead pipelining).
//!
//! [`StreamSession`](super::StreamSession) records one [`LatencyTrace`] per
//! emitted event into a [`StageRecorder`] — fixed-capacity rings, so the
//! steady-state record path performs **zero heap allocations**
//! (`tests/arena_alloc.rs` proves it with a counting global allocator) —
//! and [`StreamServer`](super::StreamServer) rolls per-session traces into
//! a per-server recorder surfaced through
//! [`ServerStats`](super::ServerStats) and the gateway `Stats` frame.
//! [`LatencyBudget`] turns a [`StageSummary`] into an actionable verdict
//! against a UX target (e.g. 100 ms): which stage blows the budget and
//! which knob — `slide`, linger/workers, precision, `vote_depth` /
//! `lookahead` — would make it fit.
//!
//! [`GestureEvent`]: super::GestureEvent
//! [`LatencyStats`]: super::LatencyStats

use std::fmt;
use std::time::Duration;

/// Default number of recent traces a [`StageRecorder`] retains per stage.
/// Percentiles are estimated over this sliding window (like the engines'
/// `LATENCY_WINDOW`), so a long-lived session's memory stays constant.
pub const DEFAULT_TRACE_WINDOW: usize = 1024;

/// The per-stage latency breakdown of one emitted gesture event: how long
/// the decision spent in each pipeline stage on its way from raw samples
/// to a debounced [`GestureEvent`](super::GestureEvent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyTrace {
    /// Samples waiting for the triggering window to fill (window cadence).
    pub buffering: Duration,
    /// Triggering window's submit → batch execution start (queue wait).
    pub queueing: Duration,
    /// Triggering window's coalesced-batch backend execution.
    pub compute: Duration,
    /// Decision available → event emitted (vote/debounce delay; measured
    /// from the earliest supporting vote's absorption for `Started`).
    pub smoothing: Duration,
}

impl LatencyTrace {
    /// Total sample-to-event latency: the sum of all four stages.
    pub fn total(&self) -> Duration {
        self.buffering + self.queueing + self.compute + self.smoothing
    }
}

/// Percentile summary of one pipeline stage over recent traces.
///
/// `count` is exact over the recorder's lifetime; the percentiles are
/// estimated over the recorder's sliding window using the same
/// nearest-rank rule as [`LatencyStats`](super::LatencyStats)
/// (`ceil(n·q) − 1` on the sorted samples).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Traces recorded (lifetime; the percentile window may be smaller).
    pub count: u64,
    /// Median stage latency.
    pub p50: Duration,
    /// 95th-percentile stage latency.
    pub p95: Duration,
    /// 99th-percentile stage latency.
    pub p99: Duration,
}

/// Per-stage percentile rollup of the decision-latency pipeline: one
/// [`StageStats`] per stage, in pipeline order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSummary {
    /// Samples waiting for a full window.
    pub buffering: StageStats,
    /// Window submission → batch start.
    pub queueing: StageStats,
    /// Coalesced-batch backend execution.
    pub compute: StageStats,
    /// Decision → debounced emission.
    pub smoothing: StageStats,
}

impl StageSummary {
    /// The stages in pipeline order, with their names — for display,
    /// budget analysis, and wire encoding.
    pub fn stages(&self) -> [(&'static str, StageStats); 4] {
        [
            ("buffering", self.buffering),
            ("queueing", self.queueing),
            ("compute", self.compute),
            ("smoothing", self.smoothing),
        ]
    }

    /// Traces summarised (every stage records once per trace).
    pub fn count(&self) -> u64 {
        self.buffering.count
    }

    /// Sum of the four stages' p99s: a conservative upper bound on the
    /// end-to-end p99 (stages are positively correlated at worst).
    pub fn total_p99(&self) -> Duration {
        self.buffering.p99 + self.queueing.p99 + self.compute.p99 + self.smoothing.p99
    }

    /// Sum of the four stages' p50s: a typical end-to-end latency.
    pub fn total_p50(&self) -> Duration {
        self.buffering.p50 + self.queueing.p50 + self.compute.p50 + self.smoothing.p50
    }
}

impl fmt::Display for StageSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} traces:", self.count())?;
        for (name, s) in self.stages() {
            write!(
                f,
                " {name} p50={:.1?}/p95={:.1?}/p99={:.1?}",
                s.p50, s.p95, s.p99
            )?;
        }
        Ok(())
    }
}

/// Fixed-capacity recorder of [`LatencyTrace`]s with per-stage percentile
/// summaries.
///
/// [`StageRecorder::record`] writes into preallocated rings and touches no
/// allocator — the invariant the streaming hot path relies on (and
/// `tests/arena_alloc.rs` pins). [`StageRecorder::summary`] copies the
/// rings into scratch buffers to sort; it is a reporting call and may
/// allocate freely.
#[derive(Debug, Clone)]
pub struct StageRecorder {
    /// One ring per stage, nanosecond samples, in pipeline order.
    rings: [Vec<u64>; 4],
    /// Next ring slot to overwrite once the rings are full.
    next: usize,
    /// Samples currently held (≤ window).
    len: usize,
    /// Ring capacity.
    window: usize,
    /// Lifetime trace count.
    count: u64,
}

impl StageRecorder {
    /// A recorder retaining the most recent [`DEFAULT_TRACE_WINDOW`]
    /// traces for percentile estimation.
    pub fn new() -> Self {
        StageRecorder::with_window(DEFAULT_TRACE_WINDOW)
    }

    /// A recorder with an explicit sliding-window capacity (≥ 1). All
    /// ring storage is allocated here, up front — never on `record`.
    pub fn with_window(window: usize) -> Self {
        let window = window.max(1);
        StageRecorder {
            rings: std::array::from_fn(|_| vec![0u64; window]),
            next: 0,
            len: 0,
            window,
            count: 0,
        }
    }

    /// Records one trace. Zero heap allocations: four ring writes.
    pub fn record(&mut self, trace: LatencyTrace) {
        let stages = [
            trace.buffering,
            trace.queueing,
            trace.compute,
            trace.smoothing,
        ];
        for (ring, d) in self.rings.iter_mut().zip(stages) {
            ring[self.next] = d.as_nanos().min(u64::MAX as u128) as u64;
        }
        self.next = (self.next + 1) % self.window;
        self.len = (self.len + 1).min(self.window);
        self.count += 1;
    }

    /// Traces recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-stage percentile summary over the sliding window. Reporting
    /// path: copies and sorts each ring (allocates; not the hot path).
    pub fn summary(&self) -> StageSummary {
        let stats = |ring: &Vec<u64>| -> StageStats {
            if self.len == 0 {
                return StageStats::default();
            }
            let mut samples: Vec<u64> = ring[..self.len].to_vec();
            samples.sort_unstable();
            let pct = |q: f64| {
                // Nearest-rank: the ceil(n·q)-th smallest, 1-indexed —
                // the same rule as `LatencyStats::from_samples`.
                let n = samples.len();
                let rank = ((n as f64) * q).ceil() as usize;
                Duration::from_nanos(samples[rank.saturating_sub(1).min(n - 1)])
            };
            StageStats {
                count: self.count,
                p50: pct(0.50),
                p95: pct(0.95),
                p99: pct(0.99),
            }
        };
        StageSummary {
            buffering: stats(&self.rings[0]),
            queueing: stats(&self.rings[1]),
            compute: stats(&self.rings[2]),
            smoothing: stats(&self.rings[3]),
        }
    }
}

impl Default for StageRecorder {
    fn default() -> Self {
        StageRecorder::new()
    }
}

/// A decision-latency budget: turns a [`StageSummary`] into a verdict
/// against a UX target and names the knob to turn.
///
/// ```
/// use bioformers::serve::trace::{LatencyBudget, StageRecorder, LatencyTrace};
/// use std::time::Duration;
///
/// let mut rec = StageRecorder::new();
/// rec.record(LatencyTrace {
///     buffering: Duration::from_millis(60),
///     queueing: Duration::from_millis(2),
///     compute: Duration::from_millis(55),
///     smoothing: Duration::from_millis(10),
/// });
/// let report = LatencyBudget::new(Duration::from_millis(100)).evaluate(&rec.summary());
/// assert!(!report.fits);
/// assert_eq!(report.worst, Some("buffering"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBudget {
    target: Duration,
}

/// The verdict of [`LatencyBudget::evaluate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetReport {
    /// The end-to-end target evaluated against.
    pub target: Duration,
    /// Conservative end-to-end p99: the sum of the stage p99s.
    pub p99_total: Duration,
    /// Whether `p99_total` fits inside `target`.
    pub fits: bool,
    /// The stage with the largest p99 (`None` before any trace).
    pub worst: Option<&'static str>,
    /// One knob suggestion per over-budget stage, worst first. Empty when
    /// the budget fits.
    pub advice: Vec<String>,
}

impl fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fits {
            write!(
                f,
                "p99 {:.1?} fits the {:.1?} budget",
                self.p99_total, self.target
            )
        } else {
            write!(
                f,
                "p99 {:.1?} blows the {:.1?} budget",
                self.p99_total, self.target
            )?;
            for line in &self.advice {
                write!(f, "\n  - {line}")?;
            }
            Ok(())
        }
    }
}

impl LatencyBudget {
    /// A budget with an end-to-end decision-latency target.
    pub fn new(target: Duration) -> Self {
        LatencyBudget { target }
    }

    /// The target this budget evaluates against.
    pub fn target(&self) -> Duration {
        self.target
    }

    /// Evaluates `stages` against the target: the summed stage p99s must
    /// fit. When they don't, every stage exceeding an equal share of the
    /// target gets a knob suggestion (the stages are independent knobs:
    /// `slide` for buffering, linger/workers for queueing, precision /
    /// `micro_batch` for compute, `vote_depth` / `lookahead` for
    /// smoothing), ordered worst first.
    pub fn evaluate(&self, stages: &StageSummary) -> BudgetReport {
        let p99_total = stages.total_p99();
        let fits = p99_total <= self.target;
        let named = stages.stages();
        let worst = named
            .iter()
            .filter(|(_, s)| s.count > 0)
            .max_by_key(|(_, s)| s.p99)
            .map(|(name, _)| *name);
        let mut advice = Vec::new();
        if !fits {
            // Equal-share heuristic: a stage is an offender once its p99
            // alone eats more than a quarter of the end-to-end target.
            let share = self.target / 4;
            let mut offenders: Vec<(&'static str, StageStats)> = named
                .iter()
                .copied()
                .filter(|(_, s)| s.p99 > share)
                .collect();
            offenders.sort_by_key(|(_, s)| std::cmp::Reverse(s.p99));
            for (name, s) in offenders {
                let over = format!("p99 {:.1?} > share {:.1?}", s.p99, share);
                advice.push(match name {
                    "buffering" => format!(
                        "buffering {over}: reduce the stream `slide` (window hop) — \
                         buffering tracks the hop interval, so a ~{:.1}× smaller hop \
                         would fit the share",
                        ratio(s.p99, share)
                    ),
                    "queueing" => format!(
                        "queueing {over}: reduce replica `linger` (or use adaptive \
                         linger), add workers, or add replicas — the engine queue is \
                         the bottleneck"
                    ),
                    "compute" => format!(
                        "compute {over}: route to an int8 replica, shrink the model, \
                         or lower `micro_batch` so batches finish sooner"
                    ),
                    _ => format!(
                        "smoothing {over}: lower `vote_depth`/`min_hold` (fewer \
                         windows per decision) and keep `lookahead` small"
                    ),
                });
            }
        }
        BudgetReport {
            target: self.target,
            p99_total,
            fits,
            worst,
            advice,
        }
    }
}

/// `a / b` as a float ratio, saturating at 1.0 from below.
fn ratio(a: Duration, b: Duration) -> f64 {
    if b.is_zero() {
        1.0
    } else {
        (a.as_secs_f64() / b.as_secs_f64()).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn trace_total_sums_all_stages() {
        let t = LatencyTrace {
            buffering: ms(10),
            queueing: ms(20),
            compute: ms(30),
            smoothing: ms(40),
        };
        assert_eq!(t.total(), ms(100));
    }

    #[test]
    fn recorder_percentiles_use_nearest_rank_per_stage() {
        let mut rec = StageRecorder::new();
        // 100 traces: buffering 1..=100 ms, the rest constant.
        for i in 1..=100u64 {
            rec.record(LatencyTrace {
                buffering: ms(i),
                queueing: ms(5),
                compute: ms(7),
                smoothing: Duration::ZERO,
            });
        }
        let s = rec.summary();
        assert_eq!(s.count(), 100);
        // Nearest-rank over 1..=100: p50 -> 50th, p95 -> 95th, p99 -> 99th.
        assert_eq!(s.buffering.p50, ms(50));
        assert_eq!(s.buffering.p95, ms(95));
        assert_eq!(s.buffering.p99, ms(99));
        assert_eq!(s.queueing.p50, ms(5));
        assert_eq!(s.queueing.p99, ms(5));
        assert_eq!(s.compute.p95, ms(7));
        assert_eq!(s.smoothing.p99, Duration::ZERO);
        assert_eq!(s.total_p99(), ms(99 + 5 + 7));
    }

    #[test]
    fn recorder_window_slides_but_count_is_exact() {
        let mut rec = StageRecorder::with_window(4);
        for i in 1..=10u64 {
            rec.record(LatencyTrace {
                compute: ms(i),
                ..LatencyTrace::default()
            });
        }
        let s = rec.summary();
        // Lifetime count is exact; percentiles see only the last 4 samples
        // (7, 8, 9, 10 ms).
        assert_eq!(s.count(), 10);
        assert_eq!(s.compute.p50, ms(8));
        assert_eq!(s.compute.p99, ms(10));
    }

    #[test]
    fn empty_recorder_summarises_to_zeros() {
        let rec = StageRecorder::new();
        assert!(rec.is_empty());
        let s = rec.summary();
        assert_eq!(s, StageSummary::default());
        assert_eq!(s.count(), 0);
        assert_eq!(s.total_p99(), Duration::ZERO);
    }

    #[test]
    fn budget_fits_when_stage_p99s_sum_under_target() {
        let mut rec = StageRecorder::new();
        rec.record(LatencyTrace {
            buffering: ms(15),
            queueing: ms(1),
            compute: Duration::from_micros(300),
            smoothing: ms(30),
        });
        let report = LatencyBudget::new(ms(100)).evaluate(&rec.summary());
        assert!(report.fits);
        assert!(report.advice.is_empty());
        assert_eq!(report.worst, Some("smoothing"));
    }

    #[test]
    fn budget_names_the_offending_stage_and_knob() {
        let mut rec = StageRecorder::new();
        rec.record(LatencyTrace {
            buffering: ms(5),
            queueing: ms(2),
            compute: ms(120),
            smoothing: ms(10),
        });
        let report = LatencyBudget::new(ms(100)).evaluate(&rec.summary());
        assert!(!report.fits);
        assert_eq!(report.p99_total, ms(137));
        assert_eq!(report.worst, Some("compute"));
        assert_eq!(report.advice.len(), 1, "only compute exceeds target/4");
        assert!(report.advice[0].contains("int8"), "{}", report.advice[0]);
        let shown = format!("{report}");
        assert!(shown.contains("blows"), "{shown}");
    }

    #[test]
    fn budget_orders_multiple_offenders_worst_first() {
        let mut rec = StageRecorder::new();
        rec.record(LatencyTrace {
            buffering: ms(60),
            queueing: ms(40),
            compute: ms(90),
            smoothing: ms(1),
        });
        let report = LatencyBudget::new(ms(100)).evaluate(&rec.summary());
        assert!(!report.fits);
        assert_eq!(report.advice.len(), 3);
        assert!(report.advice[0].starts_with("compute"));
        assert!(report.advice[1].starts_with("buffering"));
        assert!(report.advice[2].starts_with("queueing"));
    }

    #[test]
    fn empty_summary_evaluates_without_a_worst_stage() {
        let report = LatencyBudget::new(ms(100)).evaluate(&StageSummary::default());
        assert!(report.fits);
        assert_eq!(report.worst, None);
    }
}
