//! The unified serving-engine contract: one trait over every topology.
//!
//! The three engines grew up with divergent entry points — the synchronous
//! [`InferenceEngine`] had a bespoke `serve` returning a `ServeOutcome`,
//! while [`AsyncEngine`] and [`ShardedEngine`] spoke
//! `submit`/`classify`. [`Engine`] unifies them: **submit / classify /
//! stats / shutdown with one [`ServeError`] surface**, so callers, tests
//! and higher layers (the streaming [`StreamSession`](super::StreamSession)
//! in particular) are generic over backend topology — swap a single-caller
//! inline engine for a sharded heterogeneous pool without touching client
//! code.
//!
//! ```
//! use bioformers::core::{Bioformer, BioformerConfig};
//! use bioformers::serve::{AsyncEngine, Engine, InferenceEngine, ShardedEngine};
//! use bioformers::tensor::Tensor;
//! use std::sync::Arc;
//!
//! let model = Arc::new(Bioformer::new(&BioformerConfig::bio1()));
//! let engines: Vec<Box<dyn Engine>> = vec![
//!     Box::new(InferenceEngine::new(Box::new(Arc::clone(&model)))),
//!     Box::new(AsyncEngine::new(Box::new(Arc::clone(&model)))),
//!     Box::new(ShardedEngine::builder()
//!         .add_replica(Box::new(Arc::clone(&model)))
//!         .build()),
//! ];
//! for engine in engines {
//!     let out = engine.classify(Tensor::zeros(&[2, 14, 300])).unwrap();
//!     assert_eq!(out.logits.dims(), &[2, 8]);
//!     assert_eq!(engine.shutdown().requests, 1);
//! }
//! ```

use super::queue::{PendingResponse, RequestOutput, ServeError};
use super::router::{PoolStats, ShardedEngine};
use super::worker::{AsyncEngine, AsyncStats};
use super::{InferenceEngine, LatencyStats};
use bioformer_tensor::Tensor;
use std::time::Duration;

/// One serving summary schema for every engine topology, so dashboards and
/// generic callers need a single type. Counter semantics match
/// [`AsyncStats`] (for the synchronous engine, each `serve`/`classify`
/// call is one request and one executed batch).
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// The engine topology: `"inference"`, `"async"` or `"sharded"`.
    pub engine: &'static str,
    /// Backend name per replica (one entry for the single-backend engines).
    pub backends: Vec<String>,
    /// Compute-backend report per replica, parallel to `backends` —
    /// `"default"` for untuned replicas, or the tuned table summary
    /// (kernel tier plus per-shape winners) for replicas built through the
    /// autotuner.
    pub tuning: Vec<String>,
    /// Requests served (responses delivered with logits).
    pub requests: usize,
    /// Requests expired for missing their deadline.
    pub expired: usize,
    /// Requests cancelled because a backend panicked mid-batch.
    pub failed: usize,
    /// Requests rejected by validation (bad rank or window shape).
    pub rejected: usize,
    /// Batches executed (the backend was actually invoked).
    pub batches: usize,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: usize,
    /// Total windows served.
    pub windows: usize,
    /// Micro-batch latency summary across all workers/replicas.
    pub latency: LatencyStats,
}

impl EngineStats {
    /// Windows served per second of backend time (0.0 before any work).
    pub fn throughput(&self) -> f64 {
        self.latency.throughput()
    }

    /// Mean requests per executed batch (0.0 before any work).
    pub fn requests_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Flattens an [`AsyncStats`] into the unified schema.
pub(crate) fn stats_from_async(
    engine: &'static str,
    backends: Vec<String>,
    tuning: Vec<String>,
    s: AsyncStats,
) -> EngineStats {
    EngineStats {
        engine,
        backends,
        tuning,
        requests: s.requests,
        expired: s.expired,
        failed: s.failed,
        rejected: s.rejected,
        batches: s.batches,
        coalesced_batches: s.coalesced_batches,
        windows: s.windows,
        latency: s.latency,
    }
}

/// Flattens a [`PoolStats`] into the unified schema.
fn stats_from_pool(backends: Vec<String>, tuning: Vec<String>, s: PoolStats) -> EngineStats {
    EngineStats {
        engine: "sharded",
        backends,
        tuning,
        requests: s.requests,
        expired: s.expired,
        failed: s.failed,
        rejected: s.rejected,
        batches: s.batches,
        coalesced_batches: s.coalesced_batches,
        windows: s.windows,
        latency: s.latency,
    }
}

/// The unified serving contract implemented by all three engines
/// ([`InferenceEngine`], [`AsyncEngine`], [`ShardedEngine`]).
///
/// The trait is object-safe: `&dyn Engine` / `Box<dyn Engine>` let tests
/// and clients switch serving topology at runtime. Every method reports
/// failures through the one [`ServeError`] surface — no panicking entry
/// points, no engine-specific error enums.
///
/// Semantics worth knowing when writing engine-generic code:
///
/// * [`Engine::submit`] on the synchronous engine **serves inline** —
///   the returned [`PendingResponse`] is already resolved by the time you
///   get it, and `try_submit`/`submit_with_deadline` behave like `submit`
///   (there is no queue to be full and service starts immediately, so a
///   positive deadline cannot expire).
/// * The concurrent engines validate shapes at submission and may make a
///   caller of `submit` wait when the bounded queue is full; `try_submit`
///   fails fast with [`ServeError::QueueFull`] instead.
/// * [`Engine::shutdown`] always drains accepted work before returning
///   the final statistics.
pub trait Engine: Send + Sync {
    /// The engine topology: `"inference"`, `"async"` or `"sharded"`.
    fn kind(&self) -> &'static str;

    /// Backend name per replica (single-element for one-backend engines).
    fn backends(&self) -> Vec<String>;

    /// Number of output classes (the width of the logit rows).
    fn num_classes(&self) -> usize;

    /// The `[channels, samples]` window shape this engine serves, when
    /// known — declared by the backend(s) or pinned by traffic. `None`
    /// when unknown or (for a sharded pool) when replicas disagree.
    fn input_shape(&self) -> Option<(usize, usize)>;

    /// Submits a request batch `[n, channels, samples]`, blocking while a
    /// bounded queue is full (cooperative backpressure); returns a handle
    /// to redeem with [`PendingResponse::wait`].
    fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError>;

    /// Submits without blocking: fails fast with [`ServeError::QueueFull`]
    /// when the engine cannot accept the request right now.
    fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError>;

    /// Submits a request that must **start** being served within `ttl`.
    fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError>;

    /// Submit-and-wait convenience; engines with retry logic (the sharded
    /// pool's re-routing) hook it here.
    fn classify(&self, windows: Tensor) -> Result<RequestOutput, ServeError> {
        self.submit(windows)?.wait()
    }

    /// A live snapshot of the engine's serving statistics in the unified
    /// [`EngineStats`] schema.
    fn engine_stats(&self) -> EngineStats;

    /// Graceful shutdown: stops accepting requests, drains and serves
    /// everything already accepted, and returns the final statistics.
    fn shutdown(self: Box<Self>) -> EngineStats;
}

impl Engine for InferenceEngine {
    fn kind(&self) -> &'static str {
        "inference"
    }

    fn backends(&self) -> Vec<String> {
        vec![self.backend_name().to_string()]
    }

    fn num_classes(&self) -> usize {
        InferenceEngine::num_classes(self)
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        InferenceEngine::input_shape(self)
    }

    /// Serves inline on the calling thread; the returned handle is already
    /// resolved.
    fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        let outcome = self.serve_checked(&windows)?;
        let n = windows.dims()[0];
        let (tx, rx) = std::sync::mpsc::channel();
        let _ = tx.send(Ok(RequestOutput {
            logits: outcome.logits,
            predictions: outcome.predictions,
            queue_wait: Duration::ZERO,
            batch_requests: 1,
            batch_windows: n,
            batch_latency: outcome.stats.total,
        }));
        Ok(PendingResponse { rx, windows: n })
    }

    /// Identical to [`Engine::submit`]: the inline engine has no queue to
    /// be full.
    fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        Engine::submit(self, windows)
    }

    /// Identical to [`Engine::submit`]: service starts immediately, so a
    /// deadline in the future cannot expire before service.
    fn submit_with_deadline(
        &self,
        windows: Tensor,
        _ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        Engine::submit(self, windows)
    }

    fn engine_stats(&self) -> EngineStats {
        self.stats()
    }

    fn shutdown(self: Box<Self>) -> EngineStats {
        self.stats()
    }
}

impl Engine for AsyncEngine {
    fn kind(&self) -> &'static str {
        "async"
    }

    fn backends(&self) -> Vec<String> {
        vec![self.backend_name().to_string()]
    }

    fn num_classes(&self) -> usize {
        AsyncEngine::num_classes(self)
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        AsyncEngine::input_shape(self)
    }

    fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        AsyncEngine::submit(self, windows)
    }

    fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        AsyncEngine::try_submit(self, windows)
    }

    fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        AsyncEngine::submit_with_deadline(self, windows, ttl)
    }

    fn engine_stats(&self) -> EngineStats {
        stats_from_async(
            "async",
            Engine::backends(self),
            vec![self.compute_report().to_string()],
            self.stats(),
        )
    }

    fn shutdown(self: Box<Self>) -> EngineStats {
        let backends = Engine::backends(self.as_ref());
        let tuning = vec![self.compute_report().to_string()];
        let this = *self;
        stats_from_async("async", backends, tuning, AsyncEngine::shutdown(this))
    }
}

impl Engine for ShardedEngine {
    fn kind(&self) -> &'static str {
        "sharded"
    }

    fn backends(&self) -> Vec<String> {
        self.backend_names()
    }

    fn num_classes(&self) -> usize {
        ShardedEngine::num_classes(self)
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        ShardedEngine::input_shape(self)
    }

    fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        ShardedEngine::submit(self, windows)
    }

    fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        ShardedEngine::try_submit(self, windows)
    }

    fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        ShardedEngine::submit_with_deadline(self, windows, ttl)
    }

    /// Routes through the pool's re-routing `classify`, so a replica
    /// cancellation costs a retry on another healthy replica rather than
    /// surfacing to the generic caller.
    fn classify(&self, windows: Tensor) -> Result<RequestOutput, ServeError> {
        ShardedEngine::classify(self, windows)
    }

    fn engine_stats(&self) -> EngineStats {
        stats_from_pool(self.backend_names(), self.compute_reports(), self.stats())
    }

    fn shutdown(self: Box<Self>) -> EngineStats {
        let backends = self.backend_names();
        let tuning = self.compute_reports();
        let this = *self;
        stats_from_pool(backends, tuning, ShardedEngine::shutdown(this))
    }
}
