//! The serving layer: one inference API over every model precision.
//!
//! The paper's deployment story is that the *same* Bioformer runs as fp32
//! during training and as a fully-integer int8 pipeline on the MCU. This
//! module makes that a first-class property of the codebase:
//!
//! * [`GestureClassifier`] — the infer-only contract every backend
//!   implements: fp32 [`Bioformer`], fp32 [`TempoNet`] and integer-only
//!   [`QuantBioformer`]. All impls run through the shared-state
//!   [`bioformer_nn::InferForward`] path, so no backend clones model
//!   weights per request.
//! * [`InferenceEngine`] — the synchronous engine: owns a boxed backend,
//!   splits arbitrarily-sized request batches into model-sized
//!   micro-batches and reports per-batch latency statistics. One caller,
//!   one request at a time.
//! * [`AsyncEngine`] — the concurrent engine: a bounded MPSC request
//!   [`queue`] feeding a [`worker`] pool that **coalesces requests from
//!   many clients into shared micro-batches** (flush on batch-full or a
//!   configurable linger deadline), with per-request deadlines,
//!   backpressure and graceful shutdown.
//! * [`ShardedEngine`] — the multi-replica engine: one submission API
//!   fanning out over N backend replicas (each its own queue + worker
//!   pool, possibly different precisions), with policy-driven
//!   [`router`]-level routing ([`RoutingPolicy`]), quarantine of dead or
//!   failing replicas, adaptive per-replica linger, and pool-level
//!   statistics rollup.
//!
//! All three engines implement the unified [`Engine`] trait
//! (submit / classify / stats / shutdown over one [`ServeError`] surface),
//! so callers can be generic over topology; the [`StreamSession`] layer
//! builds on that to turn a **raw sEMG sample stream** into debounced
//! [`GestureEvent`] decisions through any engine. One level up,
//! [`StreamServer`] multiplexes N concurrent sessions over one shared
//! engine with bounded per-session buffers, round-robin fairness,
//! idle-timeout eviction and checkpointed reconnects, and [`TcpGateway`]
//! serves it over TCP loopback with the hand-rolled length-prefixed
//! [`proto`] frame protocol ([`GatewayClient`] is the matching client
//! codec).
//!
//! `docs/serving.md` is the end-to-end architecture guide for this module.
//!
//! ```
//! use bioformers::core::{Bioformer, BioformerConfig};
//! use bioformers::serve::{Engine, InferenceEngine};
//! use bioformers::tensor::Tensor;
//!
//! let engine = InferenceEngine::new(Box::new(Bioformer::new(&BioformerConfig::bio1())))
//!     .with_micro_batch(8);
//! let out = engine.classify(Tensor::zeros(&[3, 14, 300])).unwrap();
//! assert_eq!(out.logits.dims(), &[3, 8]);
//! assert_eq!(out.predictions.len(), 3);
//! assert_eq!(engine.engine_stats().requests, 1);
//! ```

pub mod client;
pub mod engine;
pub mod proto;
pub mod queue;
pub mod router;
pub mod server;
pub mod stream;
pub mod trace;
pub mod worker;
pub mod zoo;

pub use client::{ClientSessionStats, ClientSummary, GatewayClient, GatewayError};
pub use engine::{Engine, EngineStats};
pub use proto::{ErrorCode, Frame, FrameDecoder, ProtoError};
pub use queue::{PendingResponse, RequestOutput, ServeError};
pub use router::{
    HedgeConfig, PoolStats, ReplicaStats, RoutingPolicy, ShardedEngine, ShardedEngineBuilder,
    ShardedEngineConfig,
};
pub use server::{
    FinishReport, ServeCounters, ServerStats, SessionHandle, SessionOptions, SessionStats,
    StreamServer, StreamServerConfig, TcpGateway, TenantStats,
};
pub use stream::{
    DecisionPolicy, DecisionSmoother, GestureEvent, SessionCheckpoint, StreamConfig, StreamSession,
    StreamSummary,
};
pub use trace::{
    BudgetReport, LatencyBudget, LatencyTrace, StageRecorder, StageStats, StageSummary,
};
pub use worker::{AsyncEngine, AsyncEngineConfig, AsyncStats, LingerPolicy, WorkerStats};
pub use zoo::{
    ExperimentStats, ModelStats, ModelZoo, PromotionDecision, PromotionPolicy, RouteMode,
    ShadowEngine, ZooStats,
};

/// The serving prelude: one `use` for engine-generic code.
///
/// ```
/// use bioformers::serve::prelude::*;
/// ```
pub mod prelude {
    pub use super::client::{ClientSummary, GatewayClient, GatewayError};
    pub use super::engine::{Engine, EngineStats};
    pub use super::queue::{PendingResponse, RequestOutput, ServeError};
    pub use super::router::{PoolStats, RoutingPolicy, ShardedEngine};
    pub use super::server::{
        ServerStats, SessionHandle, SessionOptions, StreamServer, StreamServerConfig, TcpGateway,
    };
    pub use super::stream::{
        DecisionPolicy, DecisionSmoother, GestureEvent, SessionCheckpoint, StreamConfig,
        StreamSession, StreamSummary,
    };
    pub use super::trace::{LatencyBudget, LatencyTrace, StageStats, StageSummary};
    pub use super::worker::{AsyncEngine, AsyncEngineConfig, AsyncStats, LingerPolicy};
    pub use super::zoo::{ModelZoo, PromotionDecision, PromotionPolicy, RouteMode, ZooStats};
    pub use super::{
        tuned_compute, GestureClassifier, InferenceEngine, LatencyStats, ServeOutcome,
    };
}

use bioformer_core::{Bioformer, TempoNet, WaveFormer};
use bioformer_nn::InferForward;
use bioformer_quant::QuantBioformer;
use bioformer_semg::GESTURE_CLASSES;
use bioformer_tensor::backend::{ComputeBackend, PackedCpuBackend};
use bioformer_tensor::tune::{tune, GemmShape, TuneTable};
use bioformer_tensor::{Tensor, TensorArena};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// An inference-only gesture classifier: maps a batch of sEMG windows
/// `[n, channels, samples]` to logits `[n, classes]`.
///
/// Unlike [`bioformer_nn::Model`] this trait is object-safe and takes
/// `&self`, so heterogeneous trained backends (fp32, int8, …) can sit
/// behind one `Box<dyn GestureClassifier>` in a serving engine and be
/// shared across threads.
pub trait GestureClassifier: Send + Sync {
    /// Runs inference on `windows` (`[n, channels, samples]`, `n` may be 0)
    /// and returns logits `[n, classes]`.
    fn predict_batch(&self, windows: &Tensor) -> Tensor;

    /// Arena variant of [`GestureClassifier::predict_batch`]: scratch
    /// tensors come from `arena` so a worker that reuses one arena across
    /// batches performs no steady-state heap allocations inside the model
    /// forward. The returned logits may be arena-owned — callers that keep
    /// them past the next call must copy them out (engines recycle them
    /// after scattering per-request responses).
    ///
    /// The default ignores the arena and delegates, so backends with their
    /// own scratch management (e.g. the integer pipeline) stay correct.
    fn predict_batch_in(&self, windows: &Tensor, arena: &mut TensorArena) -> Tensor {
        let _ = arena;
        self.predict_batch(windows)
    }

    /// Number of output classes (the width of the logit rows).
    fn num_classes(&self) -> usize;

    /// Human-readable backend name, e.g. `"bioformer-fp32"`.
    fn name(&self) -> &str;

    /// The `[channels, samples]` window shape this backend serves, when
    /// fixed and known. Engines use it to reject malformed requests at
    /// submission time; `None` (the default) makes the async engine fall
    /// back to pinning the shape of the first successfully queued request.
    fn input_shape(&self) -> Option<(usize, usize)> {
        None
    }

    /// Installs a [`ComputeBackend`] on the model's GEMM-bearing layers
    /// (e.g. an autotuned one from [`tuned_compute`]). The default is a
    /// no-op for backends without a compute seam; model impls forward to
    /// their `set_backend`.
    fn install_compute(&mut self, compute: Arc<dyn ComputeBackend>) {
        let _ = compute;
    }

    /// One-line description of the compute backend the model routes
    /// through (tuning state included) — surfaced per replica in
    /// [`EngineStats::tuning`]. Backends without a compute seam report
    /// `"default"`.
    fn compute_report(&self) -> String {
        "default".to_string()
    }

    /// The distinct GEMM shapes this backend's inference path executes —
    /// the autotuner's work-list. Empty (the default) means nothing to
    /// tune.
    fn gemm_shapes(&self) -> Vec<GemmShape> {
        Vec::new()
    }
}

/// Autotunes a compute backend for `classifier`'s GEMM shapes (honouring
/// `BIOFORMER_TUNE`; with `BIOFORMER_TUNE=off` the table is empty and the
/// backend behaves exactly like the default). Returns the backend plus the
/// tuning table — persist the table with [`TuneTable::to_json`], or read
/// its decision log for why each shape kept the default.
pub fn tuned_compute(classifier: &dyn GestureClassifier) -> (Arc<dyn ComputeBackend>, TuneTable) {
    let table = tune(&classifier.gemm_shapes());
    (Arc::new(PackedCpuBackend::with_table(table.clone())), table)
}

/// Delegation through `Arc`, so one shared model instance can back any
/// number of engines (or replicas of a sharded pool) without cloning
/// weights: `Box::new(Arc::clone(&model))` is a valid backend.
impl<T: GestureClassifier + ?Sized> GestureClassifier for Arc<T> {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        (**self).predict_batch(windows)
    }

    fn predict_batch_in(&self, windows: &Tensor, arena: &mut TensorArena) -> Tensor {
        (**self).predict_batch_in(windows, arena)
    }

    fn num_classes(&self) -> usize {
        (**self).num_classes()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        (**self).input_shape()
    }

    /// Intentionally a no-op: the model behind an `Arc` is shared with
    /// other engines/replicas, so one replica must not swap its kernels
    /// under the others. Install a compute backend on the owned model
    /// *before* sharing it.
    fn install_compute(&mut self, compute: Arc<dyn ComputeBackend>) {
        let _ = compute;
    }

    fn compute_report(&self) -> String {
        (**self).compute_report()
    }

    fn gemm_shapes(&self) -> Vec<GemmShape> {
        (**self).gemm_shapes()
    }
}

impl GestureClassifier for Bioformer {
    /// Eval-mode forward through the zero-clone [`InferForward`] path: one
    /// model instance serves arbitrarily many concurrent callers without
    /// copying weights.
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        self.forward_infer(windows)
    }

    /// Arena-threaded forward: packed weights plus recycled scratch make
    /// steady-state forwards allocation-free.
    fn predict_batch_in(&self, windows: &Tensor, arena: &mut TensorArena) -> Tensor {
        self.forward_infer_in(windows, arena)
    }

    fn num_classes(&self) -> usize {
        self.config().classes
    }

    fn name(&self) -> &str {
        "bioformer-fp32"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((self.config().channels, self.config().window))
    }

    fn install_compute(&mut self, compute: Arc<dyn ComputeBackend>) {
        self.set_backend(compute);
    }

    fn compute_report(&self) -> String {
        Bioformer::compute_report(self)
    }

    fn gemm_shapes(&self) -> Vec<GemmShape> {
        Bioformer::gemm_shapes(self)
    }
}

impl GestureClassifier for TempoNet {
    /// Eval-mode forward through the zero-clone [`InferForward`] path.
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        self.forward_infer(windows)
    }

    fn num_classes(&self) -> usize {
        GESTURE_CLASSES
    }

    fn name(&self) -> &str {
        "temponet-fp32"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((bioformer_semg::CHANNELS, bioformer_semg::WINDOW))
    }

    fn install_compute(&mut self, compute: Arc<dyn ComputeBackend>) {
        self.set_backend(compute);
    }

    fn compute_report(&self) -> String {
        TempoNet::compute_report(self)
    }

    fn gemm_shapes(&self) -> Vec<GemmShape> {
        TempoNet::gemm_shapes(self)
    }
}

impl GestureClassifier for WaveFormer {
    /// Eval-mode forward through the zero-clone [`InferForward`] path; the
    /// fixed Haar front-end has no weights to share, so the model-zoo
    /// variant serves through the same seam as the paper's models.
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        self.forward_infer(windows)
    }

    fn num_classes(&self) -> usize {
        GESTURE_CLASSES
    }

    fn name(&self) -> &str {
        "waveformer-fp32"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((bioformer_semg::CHANNELS, bioformer_semg::WINDOW))
    }

    fn install_compute(&mut self, compute: Arc<dyn ComputeBackend>) {
        self.set_backend(compute);
    }

    fn compute_report(&self) -> String {
        WaveFormer::compute_report(self)
    }

    fn gemm_shapes(&self) -> Vec<GemmShape> {
        WaveFormer::gemm_shapes(self)
    }
}

impl GestureClassifier for QuantBioformer {
    /// Integer-only inference; already `&self` and batch-parallel.
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        self.forward_batch(windows)
    }

    fn num_classes(&self) -> usize {
        self.config().classes
    }

    fn name(&self) -> &str {
        "bioformer-int8"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((self.config().channels, self.config().window))
    }

    fn install_compute(&mut self, compute: Arc<dyn ComputeBackend>) {
        self.set_backend(compute);
    }

    fn compute_report(&self) -> String {
        QuantBioformer::compute_report(self)
    }

    fn gemm_shapes(&self) -> Vec<GemmShape> {
        QuantBioformer::gemm_shapes(self)
    }
}

/// Default micro-batch size: large enough to amortise per-call overhead,
/// small enough to bound per-request latency.
pub const DEFAULT_MICRO_BATCH: usize = 32;

/// Latency statistics over the micro-batches of one
/// [`InferenceEngine::serve_checked`] call. Durations cover the backend's
/// `predict_batch` only (splitting and reassembly are excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of micro-batches executed (0 for an empty request).
    pub micro_batches: usize,
    /// Total windows served.
    pub windows: usize,
    /// Sum of micro-batch latencies.
    pub total: Duration,
    /// Mean micro-batch latency (zero for an empty request).
    pub mean: Duration,
    /// Fastest micro-batch.
    pub min: Duration,
    /// Slowest micro-batch.
    pub max: Duration,
    /// Median micro-batch latency.
    pub p50: Duration,
    /// 95th-percentile micro-batch latency.
    pub p95: Duration,
    /// 99th-percentile micro-batch latency (nearest rank, like p50/p95).
    pub p99: Duration,
}

impl LatencyStats {
    /// Builds the summary from raw per-micro-batch latency samples (sorts
    /// `samples` in place) over `windows` total served windows.
    ///
    /// ```
    /// use bioformers::serve::LatencyStats;
    /// use std::time::Duration;
    ///
    /// let mut samples = vec![Duration::from_micros(20), Duration::from_micros(10)];
    /// let stats = LatencyStats::from_samples(&mut samples, 8);
    /// assert_eq!(stats.micro_batches, 2);
    /// assert_eq!(stats.min, Duration::from_micros(10));
    /// ```
    pub fn from_samples(samples: &mut [Duration], windows: usize) -> Self {
        if samples.is_empty() {
            return LatencyStats {
                micro_batches: 0,
                windows,
                total: Duration::ZERO,
                mean: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
                p50: Duration::ZERO,
                p95: Duration::ZERO,
                p99: Duration::ZERO,
            };
        }
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        let n = samples.len();
        // Nearest-rank percentile: the q-quantile of n sorted samples is
        // the ⌈n·q⌉-th smallest (1-based), i.e. index ⌈n·q⌉ − 1. The naive
        // `(n·q) as usize` reads one sample too high whenever n·q is an
        // integer (p95 of 100 samples read the 96th) and relied on a clamp
        // to avoid indexing past the end at q → 1.0.
        let pct = |q: f64| {
            let rank = ((n as f64) * q).ceil() as usize;
            samples[rank.saturating_sub(1).min(n - 1)]
        };
        LatencyStats {
            micro_batches: n,
            windows,
            total,
            mean: total / n as u32,
            min: samples[0],
            max: samples[n - 1],
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }

    /// Windows served per second of backend time (0.0 for empty requests).
    pub fn throughput(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.windows as f64 / self.total.as_secs_f64()
        }
    }
}

/// The result of serving one request batch.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Logits `[n, classes]`, row-aligned with the request windows.
    pub logits: Tensor,
    /// Argmax class per window.
    pub predictions: Vec<usize>,
    /// Micro-batch latency statistics for this request.
    pub stats: LatencyStats,
}

/// A micro-batching inference engine over one [`GestureClassifier`] backend.
///
/// Requests of any size are split into micro-batches of at most
/// [`InferenceEngine::micro_batch`] windows; results are reassembled in
/// request order, so serving is batch-size invariant: the logits equal a
/// single full-batch `predict_batch` call bar float associativity.
///
/// This is the synchronous member of the [`Engine`] family: requests are
/// served **inline on the calling thread** ([`Engine::submit`] returns an
/// already-resolved handle), which makes it the right engine for offline
/// evaluation, batch jobs, and single-caller streaming. Use
/// [`InferenceEngine::serve_checked`] directly when you want the
/// per-request [`ServeOutcome`] with micro-batch latency statistics.
pub struct InferenceEngine {
    backend: Box<dyn GestureClassifier>,
    micro_batch: usize,
    /// Scratch arena reused across `serve` calls (one caller at a time, so
    /// a mutex — workers in the async engines own per-thread arenas
    /// instead).
    arena: Mutex<TensorArena>,
    /// Lifetime counters behind the [`Engine::engine_stats`] view; the
    /// per-call [`ServeOutcome::stats`] stay per-call.
    totals: Mutex<worker::WorkerInner>,
}

impl InferenceEngine {
    /// Wraps `backend` with the [`DEFAULT_MICRO_BATCH`] size.
    pub fn new(backend: Box<dyn GestureClassifier>) -> Self {
        InferenceEngine {
            backend,
            micro_batch: DEFAULT_MICRO_BATCH,
            arena: Mutex::new(TensorArena::new()),
            totals: Mutex::new(worker::WorkerInner::default()),
        }
    }

    /// Sets the micro-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `micro_batch` is 0.
    pub fn with_micro_batch(mut self, micro_batch: usize) -> Self {
        assert!(micro_batch > 0, "InferenceEngine: micro_batch must be >= 1");
        self.micro_batch = micro_batch;
        self
    }

    /// The configured micro-batch size.
    pub fn micro_batch(&self) -> usize {
        self.micro_batch
    }

    /// Installs a [`ComputeBackend`] on the backend model (no-op for
    /// backends without a compute seam — including `Arc`-shared models,
    /// which must be tuned before sharing).
    pub fn with_compute(mut self, compute: Arc<dyn ComputeBackend>) -> Self {
        self.backend.install_compute(compute);
        self
    }

    /// Autotunes a compute backend for the model's GEMM shapes (honouring
    /// `BIOFORMER_TUNE`) and installs it. Use [`tuned_compute`] directly
    /// when you also want the [`TuneTable`] (to persist it as JSON or read
    /// the decision log).
    pub fn with_tuned_compute(self) -> Self {
        let (compute, _table) = tuned_compute(self.backend.as_ref());
        self.with_compute(compute)
    }

    /// The backend model's compute report (tuning state included).
    pub fn compute_report(&self) -> String {
        self.backend.compute_report()
    }

    /// The backend's name.
    pub fn backend_name(&self) -> &str {
        self.backend.name()
    }

    /// The backend's class count.
    pub fn num_classes(&self) -> usize {
        self.backend.num_classes()
    }

    /// The `[channels, samples]` window shape this engine serves, when the
    /// backend declares one.
    pub fn input_shape(&self) -> Option<(usize, usize)> {
        self.backend.input_shape()
    }

    /// Serves a request batch `[n, channels, samples]` (`n` may be 0, and
    /// need not divide the micro-batch size), returning the per-request
    /// [`ServeOutcome`] with micro-batch latency statistics.
    ///
    /// Concurrent callers run their backend forwards in parallel: the
    /// engine's shared scratch arena is taken with `try_lock`, and a
    /// contending caller falls back to a throwaway arena (paying that
    /// call's allocations) rather than serialising on the lock.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `windows` is not rank-3 or its
    /// `[channels, samples]` differ from the backend's declared
    /// [`GestureClassifier::input_shape`] — the same validation surface as
    /// the concurrent engines.
    ///
    /// # Panics
    ///
    /// Panics if the backend returns logits of the wrong shape (backend
    /// contract violation).
    pub fn serve_checked(&self, windows: &Tensor) -> Result<ServeOutcome, ServeError> {
        if windows.dims().len() != 3 {
            self.totals
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .note_rejected();
            return Err(ServeError::BadRequest(format!(
                "windows must be [n, channels, samples], got {:?}",
                windows.dims()
            )));
        }
        let (n, c, s) = (windows.dims()[0], windows.dims()[1], windows.dims()[2]);
        if let Some((ec, es)) = self.backend.input_shape() {
            if (c, s) != (ec, es) {
                self.totals
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .note_rejected();
                return Err(ServeError::BadRequest(format!(
                    "window shape [{c}, {s}] does not match engine shape [{ec}, {es}]"
                )));
            }
        }
        // Reuse the engine arena when free; never block a concurrent
        // caller on it — scratch reuse is an optimisation, not a
        // serialisation point.
        let mut guard = match self.arena.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        let mut local = TensorArena::new();
        let arena = guard.as_deref_mut().unwrap_or(&mut local);
        let (logits, mut latencies) =
            predict_chunked(self.backend.as_ref(), windows, self.micro_batch, arena);
        drop(guard);
        let predictions = if n == 0 {
            Vec::new()
        } else {
            logits.argmax_rows()
        };
        self.totals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .note_served(n, &latencies);
        Ok(ServeOutcome {
            logits,
            predictions,
            stats: LatencyStats::from_samples(&mut latencies, n),
        })
    }

    /// Lifetime serving statistics in the unified [`EngineStats`] schema
    /// (each `serve_checked`/`classify` call that reached the backend is
    /// one request and one executed batch).
    pub fn stats(&self) -> EngineStats {
        let inner = self
            .totals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        engine::stats_from_async(
            "inference",
            vec![self.backend.name().to_string()],
            vec![self.backend.compute_report()],
            inner.into_stats(Vec::new()),
        )
    }
}

/// Runs `windows` (`[n, channels, samples]`) through `backend` in chunks of
/// at most `micro` rows, reassembling logits in request order and recording
/// one backend latency sample per chunk. Shared by the sync engine and the
/// async worker pool so both have identical micro-batch semantics.
///
/// Scratch (chunk copies, per-chunk logits, and the backend's internal
/// intermediates) comes from `arena`; the returned logits tensor may be
/// arena-owned, so callers that hold it past their next arena use should
/// copy it out and [`TensorArena::recycle`] it.
///
/// # Panics
///
/// Panics if the backend returns logits of the wrong shape.
pub(crate) fn predict_chunked(
    backend: &dyn GestureClassifier,
    windows: &Tensor,
    micro: usize,
    arena: &mut TensorArena,
) -> (Tensor, Vec<Duration>) {
    let n = windows.dims()[0];
    let (channels, samples) = (windows.dims()[1], windows.dims()[2]);
    let classes = backend.num_classes();
    let sample_len = channels * samples;

    // Single-chunk fast path: the whole request fits one micro-batch, so
    // serve it from the caller's tensor without the chunk copy.
    if n > 0 && n <= micro {
        let t0 = Instant::now();
        let out = backend.predict_batch_in(windows, arena);
        let latencies = vec![t0.elapsed()];
        assert_eq!(
            out.dims(),
            &[n, classes],
            "backend {} returned bad logits shape",
            backend.name()
        );
        return (out, latencies);
    }

    let mut logits = arena.tensor(&[n, classes]);
    let mut latencies = Vec::with_capacity(n.div_ceil(micro.max(1)));
    let mut chunk_buf = arena.alloc(micro.min(n) * sample_len);
    let mut start = 0usize;
    while start < n {
        let end = (start + micro).min(n);
        let rows = end - start;
        chunk_buf.truncate(rows * sample_len);
        chunk_buf.copy_from_slice(&windows.data()[start * sample_len..end * sample_len]);
        let chunk = Tensor::from_vec(std::mem::take(&mut chunk_buf), &[rows, channels, samples]);
        let t0 = Instant::now();
        let out = backend.predict_batch_in(&chunk, arena);
        latencies.push(t0.elapsed());
        chunk_buf = chunk.into_vec();
        assert_eq!(
            out.dims(),
            &[rows, classes],
            "backend {} returned bad logits shape",
            backend.name()
        );
        logits.data_mut()[start * classes..end * classes].copy_from_slice(out.data());
        arena.recycle(out);
        start = end;
    }
    arena.recycle_vec(chunk_buf);
    (logits, latencies)
}

impl std::fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("backend", &self.backend.name())
            .field("micro_batch", &self.micro_batch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::{Arc, Mutex};

    /// A backend that records the micro-batch sizes it was asked for.
    struct Probe {
        classes: usize,
        seen: Arc<Mutex<Vec<usize>>>,
    }

    impl GestureClassifier for Probe {
        fn predict_batch(&self, windows: &Tensor) -> Tensor {
            let n = windows.dims()[0];
            self.seen.lock().unwrap().push(n);
            // Logit = window index within the micro-batch, so reassembly
            // errors are visible in the output.
            Tensor::from_fn(&[n, self.classes], |i| (i / self.classes) as f32)
        }

        fn num_classes(&self) -> usize {
            self.classes
        }

        fn name(&self) -> &str {
            "probe"
        }
    }

    fn probe_engine(micro: usize) -> (InferenceEngine, Arc<Mutex<Vec<usize>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let engine = InferenceEngine::new(Box::new(Probe {
            classes: 4,
            seen: Arc::clone(&seen),
        }))
        .with_micro_batch(micro);
        (engine, seen)
    }

    #[test]
    fn splits_non_divisible_batches() {
        let (engine, seen) = probe_engine(3);
        let out = engine.serve_checked(&Tensor::zeros(&[7, 2, 5])).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![3, 3, 1]);
        assert_eq!(out.stats.micro_batches, 3);
        assert_eq!(out.stats.windows, 7);
        assert_eq!(out.logits.dims(), &[7, 4]);
        // Last micro-batch has 1 window; its logit row must be 0.
        assert_eq!(out.logits.row(6), &[0.0; 4]);
    }

    #[test]
    fn empty_batch_is_served_without_backend_calls() {
        let (engine, seen) = probe_engine(4);
        let out = engine.serve_checked(&Tensor::zeros(&[0, 2, 5])).unwrap();
        assert!(seen.lock().unwrap().is_empty());
        assert_eq!(out.logits.dims(), &[0, 4]);
        assert!(out.predictions.is_empty());
        assert_eq!(out.stats.micro_batches, 0);
        assert_eq!(out.stats.throughput(), 0.0);
    }

    #[test]
    fn batch_smaller_than_micro_batch_is_one_call() {
        let (engine, seen) = probe_engine(100);
        let out = engine.serve_checked(&Tensor::zeros(&[5, 2, 5])).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![5]);
        assert_eq!(out.stats.micro_batches, 1);
        assert_eq!(out.predictions.len(), 5);
    }

    #[test]
    #[should_panic(expected = "micro_batch must be >= 1")]
    fn zero_micro_batch_is_rejected() {
        let _ = probe_engine(0).0;
    }

    #[test]
    fn non_rank3_requests_are_rejected() {
        let (engine, _seen) = probe_engine(4);
        let err = engine.serve_checked(&Tensor::zeros(&[4, 10])).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "got {err:?}");
        assert_eq!(engine.stats().rejected, 1);
    }

    /// `serve_checked` counts requests and windows in the lifetime stats.
    #[test]
    fn serve_checked_counts_requests_and_windows() {
        let (engine, _seen) = probe_engine(4);
        let out = engine.serve_checked(&Tensor::zeros(&[3, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[3, 4]);
        assert_eq!(engine.stats().requests, 1);
        assert_eq!(engine.stats().windows, 3);
    }

    /// Backends without a compute seam report the default compute state.
    #[test]
    fn probe_backend_reports_default_compute() {
        let (engine, _seen) = probe_engine(4);
        assert_eq!(engine.compute_report(), "default");
        assert_eq!(engine.stats().tuning, vec!["default".to_string()]);
    }

    /// Lifetime stats accumulate across calls in the unified schema.
    #[test]
    fn inference_engine_stats_accumulate() {
        let (engine, _seen) = probe_engine(2);
        for n in [3usize, 0, 5] {
            let _ = engine.serve_checked(&Tensor::zeros(&[n, 2, 5])).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.engine, "inference");
        assert_eq!(stats.backends, vec!["probe".to_string()]);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.windows, 8);
        // The n=0 request never invoked the backend: 2 executed batches.
        assert_eq!(stats.batches, 2);
        // ceil(3/2) + ceil(5/2) micro-batches.
        assert_eq!(stats.latency.micro_batches, 5);
    }

    /// Regression (percentile off-by-one): the old `(n·q) as usize` index
    /// read one sample too high whenever n·q landed on an integer — p95 of
    /// exactly 100 samples reported the 96th-smallest — and only the
    /// `.min(n-1)` clamp hid the out-of-bounds read at q → 1.0. Nearest
    /// rank (⌈n·q⌉ − 1) pins every boundary case.
    #[test]
    fn percentiles_use_nearest_rank() {
        let micros = |k: u64| Duration::from_micros(k);
        // n = 1: every percentile is the single sample.
        let mut one = vec![micros(7)];
        let s = LatencyStats::from_samples(&mut one, 1);
        assert_eq!((s.p50, s.p95, s.p99), (micros(7), micros(7), micros(7)));

        // n = 2: p50 is the 1st sample (⌈1.0⌉−1 = 0), not the 2nd; p95 and
        // p99 are the 2nd (⌈1.9⌉−1 = ⌈1.98⌉−1 = 1).
        let mut two = vec![micros(10), micros(20)];
        let s = LatencyStats::from_samples(&mut two, 2);
        assert_eq!((s.p50, s.p95, s.p99), (micros(10), micros(20), micros(20)));

        // n = 20 over 1..=20 µs: p50 = 10th sample, p95 = 19th sample,
        // p99 = 20th (⌈19.8⌉−1 = 19).
        let mut twenty: Vec<Duration> = (1..=20).map(micros).collect();
        let s = LatencyStats::from_samples(&mut twenty, 20);
        assert_eq!((s.p50, s.p95, s.p99), (micros(10), micros(19), micros(20)));

        // n = 100 over 1..=100 µs: p50 = 50th, p95 = 95th, p99 = 99th —
        // the old index read the 51st and 96th here, and would read the
        // 100th for p99.
        let mut hundred: Vec<Duration> = (1..=100).map(micros).collect();
        let s = LatencyStats::from_samples(&mut hundred, 100);
        assert_eq!((s.p50, s.p95, s.p99), (micros(50), micros(95), micros(99)));
    }

    #[test]
    fn latency_stats_are_consistent() {
        let mut samples = vec![
            Duration::from_micros(50),
            Duration::from_micros(10),
            Duration::from_micros(30),
        ];
        let stats = LatencyStats::from_samples(&mut samples, 9);
        assert_eq!(stats.micro_batches, 3);
        assert_eq!(stats.min, Duration::from_micros(10));
        assert_eq!(stats.max, Duration::from_micros(50));
        assert_eq!(stats.p50, Duration::from_micros(30));
        assert_eq!(stats.p95, Duration::from_micros(50));
        assert_eq!(stats.p99, Duration::from_micros(50));
        assert_eq!(stats.total, Duration::from_micros(90));
        assert_eq!(stats.mean, Duration::from_micros(30));
        assert!((stats.throughput() - 100_000.0).abs() < 1.0);
    }
}
