//! The gateway's client codec: a blocking `std::net` client for the
//! [`proto`](super::proto) frame protocol served by
//! [`TcpGateway`](super::TcpGateway).
//!
//! [`GatewayClient`] drives one session over one TCP connection: handshake
//! ([`GatewayClient::connect`] / [`GatewayClient::resume`]), chunked
//! sample upload ([`GatewayClient::send_samples`], which also drains any
//! [`GestureEvent`] frames the server has pushed), and the closing
//! exchange ([`GatewayClient::finish`] for the summary,
//! [`GatewayClient::bye`] to detach with resume state kept server-side).
//!
//! Every server [`Frame::Error`] surfaces as a typed
//! [`GatewayError::Server`], every codec violation as
//! [`GatewayError::Proto`] — the client never panics on hostile bytes.

use super::proto::{encode_frame, ErrorCode, Frame, FrameDecoder, ProtoError};
use super::stream::GestureEvent;
use super::trace::StageSummary;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Errors surfaced by the gateway client.
#[derive(Debug)]
pub enum GatewayError {
    /// The TCP connection failed.
    Io(std::io::Error),
    /// The server's byte stream violated the wire protocol.
    Proto(ProtoError),
    /// The server reported a typed failure frame.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server sent a well-formed frame that is invalid at this point
    /// of the session (e.g. a second `HelloAck`).
    UnexpectedFrame(String),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "gateway i/o error: {e}"),
            GatewayError::Proto(e) => write!(f, "gateway protocol error: {e}"),
            GatewayError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            GatewayError::UnexpectedFrame(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<std::io::Error> for GatewayError {
    fn from(e: std::io::Error) -> Self {
        GatewayError::Io(e)
    }
}

impl From<ProtoError> for GatewayError {
    fn from(e: ProtoError) -> Self {
        GatewayError::Proto(e)
    }
}

/// The finished stream as seen from the client side of the wire.
#[derive(Debug, Clone)]
pub struct ClientSummary {
    /// Windows decided over the whole logical stream.
    pub windows: u64,
    /// Per-window `(argmax class, top-class confidence)` in window order.
    pub predictions: Vec<(u64, f32)>,
    /// Every gesture event the session emitted, in decision order —
    /// events streamed during upload and events delivered at finish,
    /// combined (no duplicates).
    pub events: Vec<GestureEvent>,
    /// The server's final per-session counters.
    pub stats: ClientSessionStats,
    /// Per-stage decision-latency percentiles for this session, as
    /// reported by the server's [`Frame::Stats`] at finish (all zeros if
    /// the server predates the frame).
    pub stages: StageSummary,
}

/// The [`Frame::SessionStats`] counters, client-side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientSessionStats {
    /// Windows decided.
    pub windows: u64,
    /// Sample chunks absorbed.
    pub chunks: u64,
    /// Raw samples absorbed.
    pub samples: u64,
    /// Gesture events emitted.
    pub events: u64,
}

/// One streaming session over one TCP connection to a
/// [`TcpGateway`](super::TcpGateway).
#[derive(Debug)]
pub struct GatewayClient {
    sock: TcpStream,
    decoder: FrameDecoder,
    scratch: Vec<u8>,
    token: u64,
    channels: u16,
    window: u32,
    slide: u32,
    /// Events received so far (drained into the [`ClientSummary`]).
    events: Vec<GestureEvent>,
}

impl GatewayClient {
    /// Opens a new session for `tenant`.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Server`] with [`ErrorCode::PoolFull`] when no slot
    /// is free; I/O and protocol failures as their variants.
    pub fn connect(addr: SocketAddr, tenant: &str) -> Result<Self, GatewayError> {
        Self::open(
            addr,
            Frame::Hello {
                tenant: tenant.to_string(),
                resume: None,
                model: None,
            },
        )
    }

    /// Opens a new session for `tenant` served by a specific model variant
    /// from the server's zoo (wire protocol v2 `Hello.model`).
    ///
    /// # Errors
    ///
    /// Everything [`GatewayClient::connect`] returns, plus
    /// [`GatewayError::Server`] with [`ErrorCode::BadRequest`] for a model
    /// name the server's zoo does not know.
    pub fn connect_with_model(
        addr: SocketAddr,
        tenant: &str,
        model: &str,
    ) -> Result<Self, GatewayError> {
        Self::open(
            addr,
            Frame::Hello {
                tenant: tenant.to_string(),
                resume: None,
                model: Some(model.to_string()),
            },
        )
    }

    /// Reconnects to a suspended session (after a disconnect, a dropped
    /// socket, or an idle-timeout eviction) and continues its stream.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Server`] with [`ErrorCode::UnknownToken`] for an
    /// unknown or expired token.
    pub fn resume(addr: SocketAddr, tenant: &str, token: u64) -> Result<Self, GatewayError> {
        Self::open(
            addr,
            Frame::Hello {
                tenant: tenant.to_string(),
                resume: Some(token),
                // The parked session's model governs on resume.
                model: None,
            },
        )
    }

    fn open(addr: SocketAddr, hello: Frame) -> Result<Self, GatewayError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        let mut client = GatewayClient {
            sock,
            decoder: FrameDecoder::new(),
            scratch: Vec::new(),
            token: 0,
            channels: 0,
            window: 0,
            slide: 0,
            events: Vec::new(),
        };
        client.write_frame(&hello)?;
        match client.read_frame(Some(Duration::from_secs(10)))? {
            Frame::HelloAck {
                token,
                channels,
                window,
                slide,
            } => {
                client.token = token;
                client.channels = channels;
                client.window = window;
                client.slide = slide;
                Ok(client)
            }
            Frame::Error { code, message } => Err(GatewayError::Server { code, message }),
            other => Err(GatewayError::UnexpectedFrame(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// The session token — the resume key.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Electrode channels the server expects in the interleaved stream.
    pub fn channels(&self) -> usize {
        self.channels as usize
    }

    /// Window length in frames, as declared by the server.
    pub fn window(&self) -> usize {
        self.window as usize
    }

    /// Frames between consecutive window starts, as declared by the server.
    pub fn slide(&self) -> usize {
        self.slide as usize
    }

    /// Uploads one chunk of raw interleaved samples, then drains any
    /// [`GestureEvent`] frames the server has pushed so far and returns
    /// them (they are also retained for the final [`ClientSummary`]).
    ///
    /// # Errors
    ///
    /// A server [`Frame::Error`] (eviction, engine fault, …) surfaces as
    /// [`GatewayError::Server`].
    pub fn send_samples(&mut self, samples: &[f32]) -> Result<Vec<GestureEvent>, GatewayError> {
        self.write_frame(&Frame::Samples(samples.to_vec()))?;
        let before = self.events.len();
        self.drain_pending()?;
        Ok(self.events[before..].to_vec())
    }

    /// Ends the stream: sends [`Frame::Finish`] and reads the closing
    /// exchange (remaining events, summary, stats).
    ///
    /// # Errors
    ///
    /// Server failures as [`GatewayError::Server`]; a connection that dies
    /// before the full closing exchange as [`GatewayError::Io`] /
    /// [`GatewayError::Proto`].
    pub fn finish(mut self) -> Result<ClientSummary, GatewayError> {
        self.write_frame(&Frame::Finish)?;
        let mut summary: Option<(u64, Vec<(u64, f32)>)> = None;
        let mut stages = StageSummary::default();
        loop {
            match self.read_frame(Some(Duration::from_secs(30)))? {
                Frame::Event(event) => self.events.push(event),
                Frame::Summary {
                    windows,
                    predictions,
                } => summary = Some((windows, predictions)),
                Frame::Stats(s) => stages = s,
                Frame::SessionStats {
                    windows,
                    chunks,
                    samples,
                    events,
                } => {
                    let (total_windows, predictions) = summary.ok_or_else(|| {
                        GatewayError::UnexpectedFrame("stats before summary".into())
                    })?;
                    return Ok(ClientSummary {
                        windows: total_windows,
                        predictions,
                        events: self.events,
                        stats: ClientSessionStats {
                            windows,
                            chunks,
                            samples,
                            events,
                        },
                        stages,
                    });
                }
                Frame::Error { code, message } => {
                    return Err(GatewayError::Server { code, message })
                }
                other => {
                    return Err(GatewayError::UnexpectedFrame(format!(
                        "unexpected frame in finish exchange: {other:?}"
                    )))
                }
            }
        }
    }

    /// Detaches without finishing: the server parks the session's state
    /// under [`GatewayClient::token`] for a later
    /// [`GatewayClient::resume`]. Returns the token and the events
    /// received so far (the server re-delivers nothing — undelivered
    /// events travel server-side with the checkpoint).
    ///
    /// # Errors
    ///
    /// I/O failures writing the bye frame.
    pub fn bye(mut self) -> Result<(u64, Vec<GestureEvent>), GatewayError> {
        self.write_frame(&Frame::Bye)?;
        Ok((self.token, self.events))
    }

    /// The events received so far, in decision order.
    pub fn events(&self) -> &[GestureEvent] {
        &self.events
    }

    fn write_frame(&mut self, frame: &Frame) -> Result<(), GatewayError> {
        self.scratch.clear();
        encode_frame(frame, &mut self.scratch)?;
        self.sock.write_all(&self.scratch)?;
        Ok(())
    }

    /// Reads one frame, blocking up to `timeout` (`None` = indefinitely).
    fn read_frame(&mut self, timeout: Option<Duration>) -> Result<Frame, GatewayError> {
        self.sock.set_read_timeout(timeout)?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            match self.sock.read(&mut buf) {
                Ok(0) => {
                    self.decoder.check_eof()?;
                    return Err(GatewayError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before the expected frame",
                    )));
                }
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e) => return Err(GatewayError::Io(e)),
            }
        }
    }

    /// Non-blocking drain of whatever the server has already pushed:
    /// event frames are retained; an error frame fails the session.
    fn drain_pending(&mut self) -> Result<(), GatewayError> {
        self.sock.set_read_timeout(Some(Duration::from_millis(1)))?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.sock.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) => return Err(GatewayError::Io(e)),
            }
        }
        while let Some(frame) = self.decoder.next_frame()? {
            match frame {
                Frame::Event(event) => self.events.push(event),
                Frame::Error { code, message } => {
                    return Err(GatewayError::Server { code, message })
                }
                other => {
                    return Err(GatewayError::UnexpectedFrame(format!(
                        "unexpected mid-stream frame: {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }
}
