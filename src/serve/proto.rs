//! The gateway wire protocol: a hand-rolled, versioned, length-prefixed
//! binary framing for streaming sEMG over a byte stream (TCP).
//!
//! Design constraints, in order:
//!
//! 1. **No deps** — `std` only, every field hand-serialized little-endian.
//! 2. **A malicious or broken peer must never panic the decoder.** Every
//!    parse failure is a typed [`ProtoError`]; truncated input is simply
//!    "not enough bytes yet"; garbage and oversized frames are rejected
//!    before any allocation proportional to the claimed length beyond the
//!    hard [`MAX_FRAME`] cap.
//! 3. **Chunking-independence** — [`FrameDecoder`] is incremental: bytes
//!    may arrive split at any boundary (mid-magic, mid-length, mid-payload)
//!    and frames decode identically. `tests/serving_gateway.rs` proptests
//!    encode→decode identity under arbitrary splits.
//!
//! # Frame layout
//!
//! ```text
//! ┌──────┬──────┬─────────────┬─────┬──────┬────────────────┐
//! │ 0xB1 │ 0x05 │ LEN u32 LE  │ VER │ TYPE │ PAYLOAD        │
//! ├──────┴──────┼─────────────┼─────┼──────┼────────────────┤
//! │ magic (2 B) │ bytes after │ 1 B │ 1 B  │ LEN − 2 bytes  │
//! │             │ this field  │     │      │                │
//! └─────────────┴─────────────┴─────┴──────┴────────────────┘
//! ```
//!
//! `LEN` counts the version byte, the type byte and the payload, so a
//! decoder can skip to the next frame boundary without understanding the
//! frame type. `LEN < 2` and `LEN > `[`MAX_FRAME`] are protocol errors.
//!
//! # Frame types
//!
//! Client → server: [`Frame::Hello`] (open or resume a session),
//! [`Frame::Samples`] (one chunk of interleaved f32 samples),
//! [`Frame::Finish`] (close the stream and request the summary),
//! [`Frame::Bye`] (detach, keeping server-side resume state).
//!
//! Server → client: [`Frame::HelloAck`] (session token + stream shape),
//! [`Frame::Event`] (one debounced [`GestureEvent`]), [`Frame::Summary`]
//! (per-window predictions at finish), [`Frame::Stats`] (per-stage
//! decision-latency percentiles), [`Frame::SessionStats`] (final
//! per-session counters), [`Frame::Error`] (typed failure).

use super::stream::GestureEvent;
use super::trace::{StageStats, StageSummary};
use std::time::Duration;

/// The two magic bytes every frame starts with. Chosen to be invalid
/// UTF-8 ASCII so accidental text traffic fails fast.
pub const MAGIC: [u8; 2] = [0xB1, 0x05];

/// The protocol version this build speaks (and writes on every frame).
///
/// History:
/// * **1** — initial framing.
/// * **2** — [`Frame::Hello`] carries an optional model name, selecting
///   which model-zoo entry serves the session. A v1 Hello (no model field)
///   still decodes — the model defaults to the server's incumbent — so old
///   clients keep working against new servers.
pub const VERSION: u8 = 2;

/// The oldest protocol version this build still decodes.
pub const MIN_VERSION: u8 = 1;

/// Hard cap on `LEN` (version + type + payload, in bytes): 1 MiB, i.e.
/// ~262k samples per chunk — far beyond any sane DMA burst. Frames
/// claiming more are rejected with [`ProtoError::Oversized`] **before**
/// the decoder waits for (or allocates) the claimed bytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes before the version byte: magic (2) + length (4).
const PRELUDE: usize = 6;

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed request at the session layer (bad shape, bad config).
    BadRequest = 1,
    /// The session pool has no free slot.
    PoolFull = 2,
    /// The resume token is unknown or its checkpoint expired.
    UnknownToken = 3,
    /// The session was evicted by the idle timeout (resume to continue).
    Evicted = 4,
    /// The peer violated the wire protocol (bad frame, wrong sequence).
    Protocol = 5,
    /// The server failed internally while serving the session.
    Internal = 6,
    /// The server is shutting down.
    ShuttingDown = 7,
}

impl ErrorCode {
    /// Decodes a wire byte into a code.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::PoolFull,
            3 => ErrorCode::UnknownToken,
            4 => ErrorCode::Evicted,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::Internal,
            7 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// One protocol frame, either direction.
///
/// `class`/`window`/`held` ride as u64 on the wire, so any in-process
/// `usize` value round-trips regardless of platform width.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open a session for `tenant`, or — when `resume`
    /// carries a token from a previous [`Frame::HelloAck`] — reconnect to
    /// a suspended session and continue its stream.
    Hello {
        /// The tenant this session belongs to (stats are rolled up per
        /// tenant).
        tenant: String,
        /// Resume token of a suspended session, if reconnecting.
        resume: Option<u64>,
        /// Model-zoo entry to serve this session (v2+). `None` — and every
        /// v1 Hello — selects the server's default (incumbent) model. An
        /// unknown name is answered with a typed [`Frame::Error`]
        /// ([`ErrorCode::BadRequest`]), never a panic.
        model: Option<String>,
    },
    /// Client → server: one chunk of raw `[channels]`-interleaved samples
    /// (any length, frame-splitting allowed — windowing is server-side).
    Samples(Vec<f32>),
    /// Client → server: end of stream; the server replies with the
    /// remaining [`Frame::Event`]s, one [`Frame::Summary`] and one
    /// [`Frame::SessionStats`], then closes.
    Finish,
    /// Client → server: detach without finishing. The server checkpoints
    /// the session for later resume and frees the connection.
    Bye,
    /// Server → client: the session is open.
    HelloAck {
        /// Token identifying the session for reconnects.
        token: u64,
        /// Electrode channels the server expects in the interleaved stream.
        channels: u16,
        /// Window length in frames.
        window: u32,
        /// Frames between consecutive window starts.
        slide: u32,
    },
    /// Server → client: one debounced gesture decision.
    Event(GestureEvent),
    /// Server → client: the finished stream's per-window results.
    Summary {
        /// Windows decided over the whole logical stream (reconnects
        /// included).
        windows: u64,
        /// Per-window `(argmax class, top-class confidence)`, window order.
        predictions: Vec<(u64, f32)>,
    },
    /// Server → client: the finished session's per-stage decision-latency
    /// percentiles (buffering / queueing / compute / smoothing, each with
    /// trace count and p50/p95/p99 in nanoseconds on the wire). Sent
    /// between [`Frame::Summary`] and [`Frame::SessionStats`].
    Stats(StageSummary),
    /// Server → client: final per-session counters.
    SessionStats {
        /// Windows decided.
        windows: u64,
        /// Sample chunks absorbed.
        chunks: u64,
        /// Raw samples absorbed.
        samples: u64,
        /// Gesture events emitted.
        events: u64,
    },
    /// Server → client: a typed failure. The connection closes after an
    /// error frame.
    Error {
        /// What went wrong, as a stable wire code.
        code: ErrorCode,
        /// Human-readable detail (best-effort, may be empty).
        message: String,
    },
}

impl Frame {
    /// The frame's wire type byte.
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Samples(_) => 0x02,
            Frame::Finish => 0x03,
            Frame::Bye => 0x04,
            Frame::HelloAck { .. } => 0x81,
            Frame::Event(_) => 0x82,
            Frame::Summary { .. } => 0x83,
            Frame::SessionStats { .. } => 0x84,
            Frame::Stats(_) => 0x85,
            Frame::Error { .. } => 0x8F,
        }
    }
}

/// Errors surfaced by the wire codec. Every variant is a *peer* problem —
/// the decoder itself never panics on any input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream does not start with [`MAGIC`] — the peer is not speaking
    /// this protocol (or the stream desynchronized).
    BadMagic([u8; 2]),
    /// The frame declares a version this build does not speak.
    UnsupportedVersion(u8),
    /// The frame's type byte is not one this build knows.
    UnknownFrameType(u8),
    /// The frame's declared length exceeds [`MAX_FRAME`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The frame's declared length cannot even hold the version and type
    /// bytes (`LEN < 2`).
    Undersized {
        /// The declared length.
        len: usize,
    },
    /// A complete frame's payload failed to parse (truncated fields,
    /// trailing bytes, invalid values) — the frame type is reported so the
    /// peer can be told what it got wrong.
    Malformed {
        /// The offending frame's type byte.
        frame: u8,
        /// What failed.
        why: String,
    },
    /// The byte stream ended (EOF) in the middle of a frame.
    TruncatedStream {
        /// Bytes of the partial frame that were buffered at EOF.
        have: usize,
    },
    /// An encodable value was out of the wire format's range (e.g. a
    /// tenant name longer than `u16::MAX` bytes).
    Unencodable(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(got) => {
                write!(f, "bad magic {got:02x?}, expected {MAGIC:02x?}")
            }
            ProtoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {MIN_VERSION}..={VERSION})"
                )
            }
            ProtoError::UnknownFrameType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            ProtoError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::Undersized { len } => {
                write!(
                    f,
                    "frame length {len} cannot hold the version and type bytes"
                )
            }
            ProtoError::Malformed { frame, why } => {
                write!(f, "malformed frame 0x{frame:02x}: {why}")
            }
            ProtoError::TruncatedStream { have } => {
                write!(f, "stream ended mid-frame with {have} buffered bytes")
            }
            ProtoError::Unencodable(why) => write!(f, "unencodable frame: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Encodes one frame, appending its bytes to `out`.
///
/// # Errors
///
/// [`ProtoError::Unencodable`] when a field exceeds its wire width (tenant
/// or error message longer than `u16::MAX` bytes, a samples chunk or
/// summary that would overflow [`MAX_FRAME`]). Never panics.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&[0; 4]); // length, patched below
    out.push(VERSION);
    out.push(frame.type_byte());
    match frame {
        Frame::Hello {
            tenant,
            resume,
            model,
        } => {
            let name = tenant.as_bytes();
            if name.len() > u16::MAX as usize {
                return Err(ProtoError::Unencodable(format!(
                    "tenant name is {} bytes, max {}",
                    name.len(),
                    u16::MAX
                )));
            }
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            match resume {
                None => out.push(0),
                Some(token) => {
                    out.push(1);
                    out.extend_from_slice(&token.to_le_bytes());
                }
            }
            // v2 field: model selector.
            match model {
                None => out.push(0),
                Some(m) => {
                    let m = m.as_bytes();
                    if m.len() > u16::MAX as usize {
                        return Err(ProtoError::Unencodable(format!(
                            "model name is {} bytes, max {}",
                            m.len(),
                            u16::MAX
                        )));
                    }
                    out.push(1);
                    out.extend_from_slice(&(m.len() as u16).to_le_bytes());
                    out.extend_from_slice(m);
                }
            }
        }
        Frame::Samples(samples) => {
            out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
            for s in samples {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        Frame::Finish | Frame::Bye => {}
        Frame::HelloAck {
            token,
            channels,
            window,
            slide,
        } => {
            out.extend_from_slice(&token.to_le_bytes());
            out.extend_from_slice(&channels.to_le_bytes());
            out.extend_from_slice(&window.to_le_bytes());
            out.extend_from_slice(&slide.to_le_bytes());
        }
        Frame::Event(event) => match *event {
            GestureEvent::Started {
                class,
                window,
                confidence,
            } => {
                out.push(0);
                out.extend_from_slice(&(class as u64).to_le_bytes());
                out.extend_from_slice(&(window as u64).to_le_bytes());
                out.extend_from_slice(&confidence.to_le_bytes());
            }
            GestureEvent::Ended {
                class,
                window,
                held,
            } => {
                out.push(1);
                out.extend_from_slice(&(class as u64).to_le_bytes());
                out.extend_from_slice(&(window as u64).to_le_bytes());
                out.extend_from_slice(&(held as u64).to_le_bytes());
            }
        },
        Frame::Summary {
            windows,
            predictions,
        } => {
            out.extend_from_slice(&windows.to_le_bytes());
            out.extend_from_slice(&(predictions.len() as u32).to_le_bytes());
            for (class, conf) in predictions {
                out.extend_from_slice(&class.to_le_bytes());
                out.extend_from_slice(&conf.to_le_bytes());
            }
        }
        Frame::SessionStats {
            windows,
            chunks,
            samples,
            events,
        } => {
            for v in [windows, chunks, samples, events] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Stats(stages) => {
            // Durations ride as u64 nanoseconds (saturating); 4 stages ×
            // (count, p50, p95, p99) = a fixed 128-byte payload.
            let nanos = |d: Duration| d.as_nanos().min(u64::MAX as u128) as u64;
            for (_, s) in stages.stages() {
                out.extend_from_slice(&s.count.to_le_bytes());
                for p in [s.p50, s.p95, s.p99] {
                    out.extend_from_slice(&nanos(p).to_le_bytes());
                }
            }
        }
        Frame::Error { code, message } => {
            let msg = message.as_bytes();
            if msg.len() > u16::MAX as usize {
                return Err(ProtoError::Unencodable(format!(
                    "error message is {} bytes, max {}",
                    msg.len(),
                    u16::MAX
                )));
            }
            out.push(*code as u8);
            out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            out.extend_from_slice(msg);
        }
    }
    let len = out.len() - start - PRELUDE;
    if len > MAX_FRAME {
        out.truncate(start);
        return Err(ProtoError::Unencodable(format!(
            "frame body is {len} bytes, max {MAX_FRAME}"
        )));
    }
    out[start + 2..start + PRELUDE].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

/// Bounds-checked little-endian payload reader; every overrun is a typed
/// [`ProtoError::Malformed`], never a panic or a slice-index abort.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    frame: u8,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], frame: u8) -> Self {
        Reader {
            bytes,
            at: 0,
            frame,
        }
    }

    fn fail(&self, why: impl Into<String>) -> ProtoError {
        ProtoError::Malformed {
            frame: self.frame,
            why: why.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(self.fail(format!(
                "payload truncated reading {what}: need {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len()
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32(&mut self, what: &str) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Rejects trailing bytes: a well-formed peer never pads payloads, so
    /// extra bytes mean a desynchronized or corrupted stream.
    fn done(self) -> Result<(), ProtoError> {
        if self.at != self.bytes.len() {
            let trailing = self.bytes.len() - self.at;
            return Err(self.fail(format!("{trailing} trailing payload bytes")));
        }
        Ok(())
    }
}

/// Parses one complete frame body (`version` and `type` already split
/// off). `version` is the frame's wire version: the only body whose layout
/// it changes is Hello, which grew a model-selector field in v2.
fn decode_body(version: u8, ty: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = Reader::new(payload, ty);
    let frame = match ty {
        0x01 => {
            let n = r.u16("tenant length")? as usize;
            let name = r.take(n, "tenant name")?;
            let tenant = std::str::from_utf8(name)
                .map_err(|_| r.fail("tenant name is not valid UTF-8"))?
                .to_string();
            let resume = match r.u8("resume flag")? {
                0 => None,
                1 => Some(r.u64("resume token")?),
                other => return Err(r.fail(format!("resume flag must be 0 or 1, got {other}"))),
            };
            // v1 Hello ends here (`done()` rejects trailing bytes, so the
            // model field must only be read when the frame declares v2+).
            let model = if version >= 2 {
                match r.u8("model flag")? {
                    0 => None,
                    1 => {
                        let n = r.u16("model length")? as usize;
                        let m = r.take(n, "model name")?;
                        Some(
                            std::str::from_utf8(m)
                                .map_err(|_| r.fail("model name is not valid UTF-8"))?
                                .to_string(),
                        )
                    }
                    other => return Err(r.fail(format!("model flag must be 0 or 1, got {other}"))),
                }
            } else {
                None
            };
            Frame::Hello {
                tenant,
                resume,
                model,
            }
        }
        0x02 => {
            let n = r.u32("sample count")? as usize;
            // The count must agree with the frame length before any
            // allocation: a frame lying about its count is malformed, not
            // an allocation request.
            if n.checked_mul(4) != Some(payload.len().saturating_sub(4)) {
                return Err(r.fail(format!(
                    "sample count {n} disagrees with payload of {} bytes",
                    payload.len()
                )));
            }
            let mut samples = Vec::with_capacity(n);
            for i in 0..n {
                samples.push(r.f32(&format!("sample {i}"))?);
            }
            Frame::Samples(samples)
        }
        0x03 => Frame::Finish,
        0x04 => Frame::Bye,
        0x81 => Frame::HelloAck {
            token: r.u64("token")?,
            channels: r.u16("channels")?,
            window: r.u32("window")?,
            slide: r.u32("slide")?,
        },
        0x82 => {
            let kind = r.u8("event kind")?;
            let class = r.u64("class")? as usize;
            let window = r.u64("window")? as usize;
            match kind {
                0 => Frame::Event(GestureEvent::Started {
                    class,
                    window,
                    confidence: r.f32("confidence")?,
                }),
                1 => Frame::Event(GestureEvent::Ended {
                    class,
                    window,
                    held: r.u64("held")? as usize,
                }),
                other => return Err(r.fail(format!("event kind must be 0 or 1, got {other}"))),
            }
        }
        0x83 => {
            let windows = r.u64("window count")?;
            let n = r.u32("prediction count")? as usize;
            if n.checked_mul(12) != Some(payload.len().saturating_sub(12)) {
                return Err(r.fail(format!(
                    "prediction count {n} disagrees with payload of {} bytes",
                    payload.len()
                )));
            }
            let mut predictions = Vec::with_capacity(n);
            for i in 0..n {
                let class = r.u64(&format!("prediction {i} class"))?;
                let conf = r.f32(&format!("prediction {i} confidence"))?;
                predictions.push((class, conf));
            }
            Frame::Summary {
                windows,
                predictions,
            }
        }
        0x84 => Frame::SessionStats {
            windows: r.u64("windows")?,
            chunks: r.u64("chunks")?,
            samples: r.u64("samples")?,
            events: r.u64("events")?,
        },
        0x85 => {
            let mut decoded = [StageStats::default(); 4];
            for (i, s) in decoded.iter_mut().enumerate() {
                let names = ["buffering", "queueing", "compute", "smoothing"];
                s.count = r.u64(&format!("{} count", names[i]))?;
                s.p50 = Duration::from_nanos(r.u64(&format!("{} p50", names[i]))?);
                s.p95 = Duration::from_nanos(r.u64(&format!("{} p95", names[i]))?);
                s.p99 = Duration::from_nanos(r.u64(&format!("{} p99", names[i]))?);
            }
            Frame::Stats(StageSummary {
                buffering: decoded[0],
                queueing: decoded[1],
                compute: decoded[2],
                smoothing: decoded[3],
            })
        }
        0x8F => {
            let code_byte = r.u8("error code")?;
            let code = ErrorCode::from_u8(code_byte)
                .ok_or_else(|| r.fail(format!("unknown error code {code_byte}")))?;
            let n = r.u16("message length")? as usize;
            let msg = r.take(n, "message")?;
            let message = std::str::from_utf8(msg)
                .map_err(|_| r.fail("error message is not valid UTF-8"))?
                .to_string();
            Frame::Error { code, message }
        }
        other => return Err(ProtoError::UnknownFrameType(other)),
    };
    r.done()?;
    Ok(frame)
}

/// Incremental frame decoder: [`FrameDecoder::feed`] bytes as they arrive
/// (split anywhere), [`FrameDecoder::next_frame`] parses complete frames.
///
/// After any `Err` the stream is desynchronized and the connection should
/// be dropped; the decoder keeps returning the same error rather than
/// guessing a resynchronization point.
///
/// ```
/// use bioformers::serve::proto::{encode_frame, Frame, FrameDecoder};
///
/// let mut wire = Vec::new();
/// encode_frame(&Frame::Finish, &mut wire).unwrap();
/// let mut dec = FrameDecoder::new();
/// dec.feed(&wire[..3]); // partial frame: not an error, just "not yet"
/// assert!(dec.next_frame().unwrap().is_none());
/// dec.feed(&wire[3..]);
/// assert_eq!(dec.next_frame().unwrap(), Some(Frame::Finish));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact the consumed prefix before growing, keeping the buffer
        // proportional to the unparsed remainder rather than the stream.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unparsed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame: `Ok(Some(frame))` when one is
    /// buffered, `Ok(None)` when more bytes are needed, `Err` when the
    /// stream is not valid protocol traffic. Never panics, for any input.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < PRELUDE {
            return Ok(None);
        }
        if avail[..2] != MAGIC {
            return Err(ProtoError::BadMagic([avail[0], avail[1]]));
        }
        let len = u32::from_le_bytes(avail[2..6].try_into().unwrap()) as usize;
        if len < 2 {
            return Err(ProtoError::Undersized { len });
        }
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized { len });
        }
        if avail.len() < PRELUDE + len {
            return Ok(None);
        }
        let version = avail[PRELUDE];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(ProtoError::UnsupportedVersion(version));
        }
        let ty = avail[PRELUDE + 1];
        let frame = decode_body(version, ty, &avail[PRELUDE + 2..PRELUDE + len])?;
        self.pos += PRELUDE + len;
        Ok(Some(frame))
    }

    /// Call at end of stream (EOF): a partial frame still buffered means
    /// the peer died mid-frame — [`ProtoError::TruncatedStream`].
    pub fn check_eof(&self) -> Result<(), ProtoError> {
        match self.buffered() {
            0 => Ok(()),
            have => Err(ProtoError::TruncatedStream { have }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
        assert!(dec.next_frame().unwrap().is_none());
        dec.check_eof().unwrap();
    }

    #[test]
    fn every_frame_type_round_trips() {
        roundtrip(Frame::Hello {
            tenant: "clinic-7".into(),
            resume: None,
            model: None,
        });
        roundtrip(Frame::Hello {
            tenant: "".into(),
            resume: Some(u64::MAX),
            model: None,
        });
        roundtrip(Frame::Hello {
            tenant: "clinic-7".into(),
            resume: Some(3),
            model: Some("waveformer-fp32".into()),
        });
        roundtrip(Frame::Samples(vec![]));
        roundtrip(Frame::Samples(vec![0.0, -1.5, f32::MIN_POSITIVE, 3e8]));
        roundtrip(Frame::Finish);
        roundtrip(Frame::Bye);
        roundtrip(Frame::HelloAck {
            token: 42,
            channels: 14,
            window: 300,
            slide: 30,
        });
        roundtrip(Frame::Event(GestureEvent::Started {
            class: 3,
            window: 917,
            confidence: 0.75,
        }));
        roundtrip(Frame::Event(GestureEvent::Ended {
            class: 3,
            window: 1024,
            held: 107,
        }));
        roundtrip(Frame::Summary {
            windows: 2,
            predictions: vec![(1, 0.9), (7, 0.4)],
        });
        roundtrip(Frame::SessionStats {
            windows: 1,
            chunks: 2,
            samples: 3,
            events: 4,
        });
        roundtrip(Frame::Stats(StageSummary::default()));
        roundtrip(Frame::Stats(StageSummary {
            buffering: StageStats {
                count: 12,
                p50: Duration::from_millis(15),
                p95: Duration::from_millis(16),
                p99: Duration::from_millis(17),
            },
            queueing: StageStats {
                count: 12,
                p50: Duration::from_micros(800),
                p95: Duration::from_micros(2100),
                p99: Duration::from_micros(2500),
            },
            compute: StageStats {
                count: 12,
                p50: Duration::from_micros(450),
                p95: Duration::from_micros(900),
                p99: Duration::from_micros(950),
            },
            smoothing: StageStats {
                count: 12,
                p50: Duration::from_millis(45),
                p95: Duration::from_millis(90),
                p99: Duration::from_millis(95),
            },
        }));
        roundtrip(Frame::Error {
            code: ErrorCode::Evicted,
            message: "idle 30s".into(),
        });
    }

    #[test]
    fn byte_at_a_time_decoding_matches_whole_buffer() {
        let frames = [
            Frame::Hello {
                tenant: "t".into(),
                resume: Some(9),
                model: Some("bioformer-int8".into()),
            },
            Frame::Samples(vec![1.0; 37]),
            Frame::Finish,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        dec.check_eof().unwrap();
    }

    #[test]
    fn garbage_magic_is_a_typed_error() {
        let mut dec = FrameDecoder::new();
        dec.feed(b"GET / HTTP/1.1\r\n");
        assert_eq!(
            dec.next_frame().unwrap_err(),
            ProtoError::BadMagic([b'G', b'E'])
        );
        // The error is sticky: same bytes, same verdict.
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn oversized_and_undersized_lengths_are_rejected_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            ProtoError::Oversized { len: MAX_FRAME + 1 }
        );

        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&1u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            ProtoError::Undersized { len: 1 }
        );
    }

    #[test]
    fn truncated_stream_is_reported_at_eof_only() {
        let mut wire = Vec::new();
        encode_frame(&Frame::Samples(vec![1.0, 2.0]), &mut wire).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..wire.len() - 1]);
        // Mid-stream a partial frame is just "not yet".
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(
            dec.check_eof().unwrap_err(),
            ProtoError::TruncatedStream {
                have: wire.len() - 1
            }
        );
    }

    #[test]
    fn wrong_version_and_unknown_type_are_typed_errors() {
        let mut wire = Vec::new();
        encode_frame(&Frame::Finish, &mut wire).unwrap();
        let mut bumped = wire.clone();
        bumped[PRELUDE] = 9;
        let mut dec = FrameDecoder::new();
        dec.feed(&bumped);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            ProtoError::UnsupportedVersion(9)
        );

        let mut unknown = wire.clone();
        unknown[PRELUDE + 1] = 0x7E;
        let mut dec = FrameDecoder::new();
        dec.feed(&unknown);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            ProtoError::UnknownFrameType(0x7E)
        );
    }

    /// Hand-builds a version-1 Hello (tenant + resume flag only — no model
    /// field existed in v1) exactly as a pre-zoo client would send it.
    fn v1_hello_wire(tenant: &str, resume: Option<u64>) -> Vec<u8> {
        let mut body = Vec::new();
        body.push(1u8); // version
        body.push(0x01); // Hello
        body.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
        body.extend_from_slice(tenant.as_bytes());
        match resume {
            None => body.push(0),
            Some(t) => {
                body.push(1);
                body.extend_from_slice(&t.to_le_bytes());
            }
        }
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        wire
    }

    #[test]
    fn v1_hello_decodes_to_default_model() {
        for resume in [None, Some(77u64)] {
            let mut dec = FrameDecoder::new();
            dec.feed(&v1_hello_wire("legacy", resume));
            assert_eq!(
                dec.next_frame().unwrap(),
                Some(Frame::Hello {
                    tenant: "legacy".into(),
                    resume,
                    model: None,
                })
            );
            dec.check_eof().unwrap();
        }
    }

    #[test]
    fn v1_hello_with_v2_model_field_is_malformed() {
        // A v1 frame must not smuggle trailing bytes where v2's model field
        // would sit: the version byte governs the layout.
        let mut wire = v1_hello_wire("legacy", None);
        let len = u32::from_le_bytes(wire[2..6].try_into().unwrap()) + 1;
        wire[2..6].copy_from_slice(&len.to_le_bytes());
        wire.push(0); // would be a valid "no model" flag in v2
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(
            dec.next_frame().unwrap_err(),
            ProtoError::Malformed { frame: 0x01, .. }
        ));
    }

    #[test]
    fn truncated_model_field_is_malformed_not_a_panic() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Hello {
                tenant: "t".into(),
                resume: None,
                model: Some("bioformer-fp32".into()),
            },
            &mut wire,
        )
        .unwrap();
        // Chop the last 4 bytes of the model name and fix the length.
        wire.truncate(wire.len() - 4);
        let len = u32::from_le_bytes(wire[2..6].try_into().unwrap()) - 4;
        wire[2..6].copy_from_slice(&len.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(
            dec.next_frame().unwrap_err(),
            ProtoError::Malformed { frame: 0x01, .. }
        ));
    }

    #[test]
    fn lying_sample_count_is_malformed_not_an_allocation() {
        // A Samples frame whose count field claims 2^30 samples but whose
        // body is 8 bytes: must be rejected by the count/length cross-check.
        let mut wire = Vec::new();
        encode_frame(&Frame::Samples(vec![1.0, 2.0]), &mut wire).unwrap();
        wire[PRELUDE + 2..PRELUDE + 6].copy_from_slice(&(1u32 << 30).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(
            dec.next_frame().unwrap_err(),
            ProtoError::Malformed { frame: 0x02, .. }
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut wire = Vec::new();
        encode_frame(&Frame::Finish, &mut wire).unwrap();
        // Grow the declared length by one and append a pad byte: the body
        // parser must flag the trailing byte.
        let len = 3u32;
        wire[2..6].copy_from_slice(&len.to_le_bytes());
        wire.push(0xAA);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(
            dec.next_frame().unwrap_err(),
            ProtoError::Malformed { frame: 0x03, .. }
        ));
    }

    #[test]
    fn oversized_encode_is_rejected_and_rolls_back() {
        let huge = vec![0.0f32; MAX_FRAME / 4 + 2];
        let mut out = vec![0xEE];
        let err = encode_frame(&Frame::Samples(huge), &mut out).unwrap_err();
        assert!(matches!(err, ProtoError::Unencodable(_)));
        assert_eq!(
            out,
            vec![0xEE],
            "failed encode must not leave partial bytes"
        );
    }
}
