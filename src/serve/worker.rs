//! The replica behind [`AsyncEngine`] and the sharded pool: each worker
//! pops requests off the shared [`queue`](super::queue), coalesces
//! concurrent clients' windows into one shared micro-batch (flushing on
//! batch-full or when the linger deadline passes), expires late requests,
//! runs the backend once per batch, and scatters the logits back to every
//! waiting client.
//!
//! Since the sharded-serving refactor, the queue + worker pool + stats
//! bundle lives in the crate-internal `Replica` type; [`AsyncEngine`] is a
//! single replica with a public face, and
//! [`ShardedEngine`](super::ShardedEngine) fans one submission API out
//! over many replicas.

use super::queue::{PendingResponse, Request, RequestOutput, RequestQueue, ServeError};
use super::{predict_chunked, GestureClassifier, LatencyStats, DEFAULT_MICRO_BATCH};
use bioformer_tensor::{Tensor, TensorArena};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a worker holding a partial batch decides how long to wait for
/// stragglers before flushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LingerPolicy {
    /// Always wait the configured [`AsyncEngineConfig::linger`].
    Fixed,
    /// Derive the linger from the replica's observed traffic: the EWMA of
    /// request inter-arrival times and of batch service time. Sparse
    /// traffic (arrivals slower than service) flushes immediately — no
    /// linger tax; bursty traffic waits long enough for the batch to fill,
    /// never longer than one batch service time or `max`. Before any
    /// traffic has been observed the fixed `linger` is used as bootstrap.
    Adaptive {
        /// Hard upper bound on the derived linger.
        max: Duration,
    },
}

/// Tuning knobs for [`AsyncEngine`] (and, per replica, for
/// [`ShardedEngine`](super::ShardedEngine)).
///
/// The defaults favour throughput under concurrency: a small linger lets a
/// worker wait for other clients' requests to share a batch, which costs at
/// most `linger` of extra latency when traffic is sparse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncEngineConfig {
    /// Worker threads consuming the queue (≥ 1). One worker per backend
    /// replica is the norm; more only helps when the backend itself can run
    /// batches concurrently (e.g. on spare cores).
    pub workers: usize,
    /// Maximum windows per coalesced batch, and the chunk size the batch is
    /// executed with (≥ 1) — identical semantics to
    /// [`InferenceEngine::micro_batch`](super::InferenceEngine::micro_batch).
    pub micro_batch: usize,
    /// How long a worker holding a partial batch waits for more requests
    /// before flushing (under [`LingerPolicy::Fixed`]; the bootstrap value
    /// under [`LingerPolicy::Adaptive`]). `Duration::ZERO` still coalesces
    /// whatever is already queued, it just never waits for stragglers.
    pub linger: Duration,
    /// Whether the linger is the static `linger` value or derived from the
    /// replica's observed arrival rate and batch service time.
    pub linger_policy: LingerPolicy,
    /// Bounded queue capacity in requests (≥ 1); the backpressure limit.
    pub queue_capacity: usize,
}

impl Default for AsyncEngineConfig {
    fn default() -> Self {
        AsyncEngineConfig {
            workers: 2,
            micro_batch: DEFAULT_MICRO_BATCH,
            linger: Duration::from_micros(500),
            linger_policy: LingerPolicy::Fixed,
            queue_capacity: 256,
        }
    }
}

impl AsyncEngineConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum windows per coalesced batch.
    pub fn with_micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch;
        self
    }

    /// Sets the linger deadline for partial batches (and switches back to
    /// [`LingerPolicy::Fixed`]).
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self.linger_policy = LingerPolicy::Fixed;
        self
    }

    /// Switches to [`LingerPolicy::Adaptive`] with `max` as the hard upper
    /// bound on the derived linger.
    pub fn with_adaptive_linger(mut self, max: Duration) -> Self {
        self.linger_policy = LingerPolicy::Adaptive { max };
        self
    }

    /// Sets the bounded queue capacity (in requests).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    fn validate(&self) {
        assert!(self.workers > 0, "AsyncEngineConfig: workers must be >= 1");
        assert!(
            self.micro_batch > 0,
            "AsyncEngineConfig: micro_batch must be >= 1"
        );
        assert!(
            self.queue_capacity > 0,
            "AsyncEngineConfig: queue_capacity must be >= 1"
        );
    }
}

/// Per-worker cap on retained latency samples: totals stay exact forever,
/// while p50/p95/p99 are estimated over a sliding window of the most
/// recent samples so a long-lived engine's memory stays bounded.
const LATENCY_WINDOW: usize = 4096;

/// Smoothing factor for the replica-level EWMAs (batch service time,
/// request inter-arrival time): each new sample contributes 20%.
const EWMA_ALPHA: f64 = 0.2;

/// Folds `sample` into the EWMA stored in `cell` as nanoseconds. Zero is
/// the "no data yet" sentinel, so stored values are clamped to ≥ 1 ns.
fn ewma_update(cell: &AtomicU64, sample: Duration) {
    let s = (sample.as_nanos().min(u64::MAX as u128) as u64).max(1);
    let old = cell.load(Ordering::Relaxed);
    let new = if old == 0 {
        s
    } else {
        (EWMA_ALPHA * s as f64 + (1.0 - EWMA_ALPHA) * old as f64) as u64
    };
    cell.store(new.max(1), Ordering::Relaxed);
}

/// Live replica health + traffic signals, shared between the submission
/// side, the workers and (for sharded pools) the router. All counters are
/// advisory: they steer routing and the adaptive linger, never correctness.
pub(crate) struct ReplicaShared {
    /// Worker threads still running; decremented when a worker exits for
    /// any reason (graceful drain or a panic escaping the batch guard).
    alive_workers: AtomicUsize,
    /// Batches that failed back-to-back (backend panics); reset to zero by
    /// the next successful batch. The router quarantines on a run of these.
    consecutive_failures: AtomicUsize,
    /// Accepted requests not yet responded to (queued **or** riding an
    /// executing batch). A better load signal than queue depth alone,
    /// which reads zero while a worker holds the whole backlog in its
    /// forming batch.
    inflight: AtomicUsize,
    /// Workers currently executing a batch. A new request routed to a
    /// fully busy replica waits out the in-flight batch before service.
    busy_workers: AtomicUsize,
    /// Requests riding currently-executing batches. `inflight −
    /// executing` is the work still *waiting* (queued or in a forming
    /// batch) — the term that scales a new request's expected wait.
    executing: AtomicUsize,
    /// EWMA of coalesced-batch backend latency, in ns (0 = no data).
    ewma_batch_ns: AtomicU64,
    /// EWMA of per-window backend latency (batch latency / batch windows),
    /// in ns (0 = no data). The routing signal: unlike the raw batch EWMA
    /// it does not punish a replica for absorbing bigger batches.
    ewma_window_ns: AtomicU64,
    /// EWMA of request inter-arrival time, in ns (0 = no data).
    ewma_arrival_ns: AtomicU64,
    /// Instant of the most recent accepted request.
    last_arrival: Mutex<Option<Instant>>,
}

impl ReplicaShared {
    fn new(workers: usize) -> Self {
        ReplicaShared {
            alive_workers: AtomicUsize::new(workers),
            consecutive_failures: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            executing: AtomicUsize::new(0),
            ewma_batch_ns: AtomicU64::new(0),
            ewma_window_ns: AtomicU64::new(0),
            ewma_arrival_ns: AtomicU64::new(0),
            last_arrival: Mutex::new(None),
        }
    }

    fn note_batch_success(&self, latency: Duration, windows: usize) {
        ewma_update(&self.ewma_batch_ns, latency);
        if windows > 0 {
            ewma_update(&self.ewma_window_ns, latency / windows as u32);
        }
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    fn note_batch_failure(&self) {
        self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Clears the consecutive-failure run. The router calls this when a
    /// canary probe succeeds: the response is delivered from *inside* the
    /// batch, before the worker's own `note_batch_success` accounting
    /// lands, so without this reset a re-admitted replica could be
    /// instantly re-quarantined by the stale counter.
    pub(crate) fn reset_failures(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    fn note_arrival(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let mut last = self.last_arrival.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(prev) = *last {
            ewma_update(&self.ewma_arrival_ns, now.saturating_duration_since(prev));
        }
        *last = Some(now);
    }

    fn note_responded(&self, count: usize) {
        // Saturating: direct `run_batch` callers (tests) never arrived.
        let _ = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(count))
            });
    }

    pub(crate) fn busy_workers(&self) -> usize {
        self.busy_workers.load(Ordering::Relaxed)
    }

    /// Accepted requests still waiting for a backend slot (not yet part of
    /// an executing batch).
    pub(crate) fn waiting(&self) -> usize {
        self.inflight
            .load(Ordering::Relaxed)
            .saturating_sub(self.executing.load(Ordering::Relaxed))
    }

    pub(crate) fn alive_workers(&self) -> usize {
        self.alive_workers.load(Ordering::Relaxed)
    }

    pub(crate) fn consecutive_failures(&self) -> usize {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    pub(crate) fn ewma_batch_latency(&self) -> Option<Duration> {
        match self.ewma_batch_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    pub(crate) fn ewma_window_latency(&self) -> Option<Duration> {
        match self.ewma_window_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }
}

/// Decrements the replica's alive-worker count when the worker thread exits
/// — including by panic, so the router can detect a dead replica.
struct AliveGuard(Arc<ReplicaShared>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.alive_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The linger a worker should wait for stragglers before flushing a
/// partial batch, given the replica's observed traffic.
fn effective_linger(cfg: &AsyncEngineConfig, shared: &ReplicaShared) -> Duration {
    match cfg.linger_policy {
        LingerPolicy::Fixed => cfg.linger,
        LingerPolicy::Adaptive { max } => {
            let service = shared.ewma_batch_ns.load(Ordering::Relaxed);
            let arrival = shared.ewma_arrival_ns.load(Ordering::Relaxed);
            if service == 0 || arrival == 0 {
                // No traffic signal yet: bootstrap from the fixed value.
                cfg.linger.min(max)
            } else if arrival >= service {
                // Sparse traffic: the next request is unlikely to arrive
                // within a batch's service time — flush immediately rather
                // than taxing every request with a hopeless wait.
                Duration::ZERO
            } else {
                // Bursty traffic: wait roughly as long as it takes the
                // batch to fill, but never longer than one batch service
                // time (past that, waiting costs more than it amortises).
                let fill = arrival.saturating_mul(cfg.micro_batch as u64);
                Duration::from_nanos(fill.min(service)).min(max)
            }
        }
    }
}

/// Per-worker accounting, updated after every executed batch.
#[derive(Debug, Default, Clone)]
pub(crate) struct WorkerInner {
    batches: usize,
    coalesced_batches: usize,
    requests: usize,
    windows: usize,
    expired: usize,
    failed: usize,
    rejected: usize,
    micro_batches: usize,
    total_latency: Duration,
    min_latency: Option<Duration>,
    max_latency: Option<Duration>,
    /// Ring buffer of the most recent micro-batch latencies (percentiles).
    recent: Vec<Duration>,
    next: usize,
}

impl WorkerInner {
    fn record_latencies(&mut self, latencies: &[Duration]) {
        for &d in latencies {
            self.micro_batches += 1;
            self.total_latency += d;
            self.min_latency = Some(self.min_latency.map_or(d, |m| m.min(d)));
            self.max_latency = Some(self.max_latency.map_or(d, |m| m.max(d)));
            if self.recent.len() < LATENCY_WINDOW {
                self.recent.push(d);
            } else {
                self.recent[self.next] = d;
                self.next = (self.next + 1) % LATENCY_WINDOW;
            }
        }
    }

    /// Accounts one served request of `windows` windows executed as
    /// `latencies.len()` micro-batches (the synchronous engine's per-call
    /// accounting; the async worker loop does the same bookkeeping inline
    /// because its batch/request ratio differs).
    pub(crate) fn note_served(&mut self, windows: usize, latencies: &[Duration]) {
        self.requests += 1;
        self.windows += windows;
        if !latencies.is_empty() {
            self.batches += 1;
            self.record_latencies(latencies);
        }
    }

    /// Accounts one request rejected by validation.
    pub(crate) fn note_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Folds another worker's (or replica's) counters into this one. The
    /// merged `recent` buffer concatenates both sample windows, which is
    /// only used for snapshot percentile estimation.
    pub(crate) fn merge_from(&mut self, other: &WorkerInner) {
        self.batches += other.batches;
        self.coalesced_batches += other.coalesced_batches;
        self.requests += other.requests;
        self.windows += other.windows;
        self.expired += other.expired;
        self.failed += other.failed;
        self.rejected += other.rejected;
        self.micro_batches += other.micro_batches;
        self.total_latency += other.total_latency;
        self.min_latency = match (self.min_latency, other.min_latency) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_latency = self.max_latency.max(other.max_latency);
        self.recent.extend_from_slice(&other.recent);
    }

    /// Builds a [`LatencyStats`] with exact count/total/mean/min/max and
    /// window-estimated percentiles.
    pub(crate) fn latency_stats(&self, windows: usize) -> LatencyStats {
        let mut recent = self.recent.clone();
        let mut stats = LatencyStats::from_samples(&mut recent, windows);
        if self.micro_batches > 0 {
            stats.micro_batches = self.micro_batches;
            stats.total = self.total_latency;
            stats.mean = Duration::from_secs_f64(
                self.total_latency.as_secs_f64() / self.micro_batches as f64,
            );
            stats.min = self.min_latency.unwrap_or(Duration::ZERO);
            stats.max = self.max_latency.unwrap_or(Duration::ZERO);
        }
        stats
    }

    /// The aggregate [`AsyncStats`] view of this (possibly merged) counter
    /// set, with `per_worker` supplied by the caller.
    pub(crate) fn into_stats(self, per_worker: Vec<WorkerStats>) -> AsyncStats {
        let latency = self.latency_stats(self.windows);
        AsyncStats {
            requests: self.requests,
            expired: self.expired,
            failed: self.failed,
            rejected: self.rejected,
            batches: self.batches,
            coalesced_batches: self.coalesced_batches,
            windows: self.windows,
            latency,
            per_worker,
        }
    }
}

/// A snapshot of one worker's counters.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Batches this worker executed (backend actually invoked; batches
    /// containing only zero-window requests are not counted).
    pub batches: usize,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: usize,
    /// Requests this worker served.
    pub requests: usize,
    /// Windows this worker served.
    pub windows: usize,
    /// Requests this worker expired for missing their deadline.
    pub expired: usize,
    /// Requests cancelled because the backend panicked mid-batch.
    pub failed: usize,
    /// Requests rejected by the worker's defence-in-depth shape check
    /// (a mismatched shape that slipped past submission validation).
    /// Expected to stay 0.
    pub rejected: usize,
    /// Micro-batch latency summary for this worker. Count, total, mean,
    /// min and max are exact over the worker's lifetime; p50/p95/p99 are
    /// estimated over a sliding window of the most recent samples.
    pub latency: LatencyStats,
}

/// Aggregate statistics for an [`AsyncEngine`] (one replica), merging every
/// worker's counters; latency summaries reuse the sync engine's
/// [`LatencyStats`].
#[derive(Debug, Clone)]
pub struct AsyncStats {
    /// Requests served (responses delivered with logits).
    pub requests: usize,
    /// Requests expired for missing their deadline.
    pub expired: usize,
    /// Requests cancelled because the backend panicked mid-batch.
    pub failed: usize,
    /// Requests rejected by a worker's defence-in-depth shape check.
    /// Expected to stay 0 (submission-time validation is the primary
    /// guard).
    pub rejected: usize,
    /// Batches executed across all workers (the backend was actually
    /// invoked; batches of only zero-window requests don't count).
    pub batches: usize,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: usize,
    /// Total windows served.
    pub windows: usize,
    /// Micro-batch latency summary across all workers (exact count/total/
    /// mean/min/max; p50/p95/p99 estimated over recent-sample windows).
    pub latency: LatencyStats,
    /// Per-worker breakdown.
    pub per_worker: Vec<WorkerStats>,
}

impl AsyncStats {
    /// Windows served per second of backend time (0.0 before any work).
    pub fn throughput(&self) -> f64 {
        self.latency.throughput()
    }

    /// Mean requests per executed batch (0.0 before any work) — the
    /// coalescing factor: > 1 means cross-request batching is happening.
    pub fn requests_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// The served `[channels, samples]` shape plus how many requests have been
/// accepted since it was pinned — both under **one** lock, so concurrent
/// first submissions with different shapes can never both be accepted
/// (validate-and-pin is atomic).
struct ShapeState {
    shape: Option<(usize, usize)>,
    /// Whether `shape` comes from [`GestureClassifier::input_shape`]
    /// (never cleared) as opposed to being pinned by traffic (cleared
    /// again while no request relies on it).
    declared: bool,
    /// Requests accepted (successfully enqueued) against `shape`.
    accepted: usize,
    /// Requests validated against `shape` whose enqueue outcome is still
    /// unknown. A traffic pin may only be rolled back when no other
    /// request has validated against it — an accepted-but-uncommitted
    /// sibling (`push` done, `commit_shape` pending) counts here.
    validating: usize,
}

/// One backend replica: a bounded request queue, a worker pool coalescing
/// requests into shared micro-batches over one shared backend, per-worker
/// statistics and live health/traffic signals.
///
/// This is the reusable component behind both public engines:
/// [`AsyncEngine`] wraps exactly one replica, and
/// [`ShardedEngine`](super::ShardedEngine) routes over many.
pub(crate) struct Replica {
    queue: Arc<RequestQueue>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Vec<Mutex<WorkerInner>>>,
    shared: Arc<ReplicaShared>,
    /// `[channels, samples]` served by this replica: the backend's declared
    /// [`GestureClassifier::input_shape`] when known, else pinned
    /// atomically by the first validated submission. Mismatches are
    /// rejected at submission.
    shape: Mutex<ShapeState>,
    classes: usize,
    backend_name: String,
    /// Snapshot of the backend's compute report (tuning state) taken at
    /// spawn, before the backend moves into the worker threads.
    compute_report: String,
    cfg: AsyncEngineConfig,
}

impl Replica {
    /// Spawns the worker pool over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if any config field is zero where ≥ 1 is required
    /// (`workers`, `micro_batch`, `queue_capacity`).
    pub(crate) fn new(backend: Box<dyn GestureClassifier>, cfg: AsyncEngineConfig) -> Self {
        cfg.validate();
        let backend: Arc<dyn GestureClassifier> = Arc::from(backend);
        let queue = Arc::new(RequestQueue::new(cfg.queue_capacity));
        let shared = Arc::new(ReplicaShared::new(cfg.workers));
        let stats = Arc::new(
            (0..cfg.workers)
                .map(|_| Mutex::new(WorkerInner::default()))
                .collect::<Vec<_>>(),
        );
        let handles = (0..cfg.workers)
            .map(|id| {
                let queue = Arc::clone(&queue);
                let backend = Arc::clone(&backend);
                let stats = Arc::clone(&stats);
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{id}"))
                    .spawn(move || {
                        let _alive = AliveGuard(Arc::clone(&shared));
                        worker_loop(id, &queue, backend.as_ref(), &cfg, &stats[id], &shared)
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        Replica {
            queue,
            handles,
            stats,
            shared,
            shape: Mutex::new(ShapeState {
                shape: backend.input_shape(),
                declared: backend.input_shape().is_some(),
                accepted: 0,
                validating: 0,
            }),
            classes: backend.num_classes(),
            backend_name: backend.name().to_string(),
            compute_report: backend.compute_report(),
            cfg,
        }
    }

    pub(crate) fn config(&self) -> &AsyncEngineConfig {
        &self.cfg
    }

    pub(crate) fn backend_name(&self) -> &str {
        &self.backend_name
    }

    pub(crate) fn compute_report(&self) -> &str {
        &self.compute_report
    }

    pub(crate) fn num_classes(&self) -> usize {
        self.classes
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn shared(&self) -> &ReplicaShared {
        &self.shared
    }

    /// The `[channels, samples]` shape this replica is currently serving:
    /// the backend's declared shape, or the traffic-pinned one, or `None`
    /// before any shape is known. Used by the streaming layer to size
    /// windows and by the router to synthesise canary probes.
    pub(crate) fn served_shape(&self) -> Option<(usize, usize)> {
        self.shape.lock().unwrap_or_else(|e| e.into_inner()).shape
    }

    /// Validates `windows` against the replica's served shape — **and pins
    /// an unknown shape in the same lock acquisition**, so two racing first
    /// submissions with different shapes can never both pass validation
    /// (one of them would later gather into a mismatched batch and cancel
    /// every rider). Also registers the request in `ShapeState::validating`;
    /// the caller must balance every success with [`Replica::commit_shape`]
    /// (enqueue succeeded) or [`Replica::rollback_shape`] (enqueue failed —
    /// clears a traffic pin nothing relies on, so a rejected request cannot
    /// brick the replica for well-formed traffic).
    #[allow(clippy::type_complexity)]
    fn make_request(
        &self,
        windows: Tensor,
        deadline: Option<Instant>,
    ) -> Result<(Request, PendingResponse, (usize, usize)), ServeError> {
        if windows.dims().len() != 3 {
            return Err(ServeError::BadRequest(format!(
                "windows must be [n, channels, samples], got {:?}",
                windows.dims()
            )));
        }
        let (n, c, s) = (windows.dims()[0], windows.dims()[1], windows.dims()[2]);
        let mut st = self.shape.lock().unwrap_or_else(|e| e.into_inner());
        match st.shape {
            Some((ec, es)) => {
                if (ec, es) != (c, s) {
                    return Err(ServeError::BadRequest(format!(
                        "window shape [{c}, {s}] does not match engine shape [{ec}, {es}]"
                    )));
                }
            }
            None => st.shape = Some((c, s)),
        }
        st.validating += 1;
        drop(st);
        let (tx, rx) = mpsc::channel();
        Ok((
            Request {
                windows,
                deadline,
                enqueued: Instant::now(),
                respond: tx,
            },
            PendingResponse { rx, windows: n },
            (c, s),
        ))
    }

    /// Marks one request with shape `(c, s)` as successfully enqueued.
    fn commit_shape(&self, c: usize, s: usize) {
        let mut st = self.shape.lock().unwrap_or_else(|e| e.into_inner());
        // Re-pin if a concurrent rollback cleared the shape between our
        // validation and this commit (only possible while nothing else had
        // validated against it, so re-pinning is always consistent).
        if st.shape.is_none() {
            st.shape = Some((c, s));
        }
        st.accepted += 1;
        st.validating -= 1;
    }

    /// Undoes a traffic pin after a failed enqueue. The shape is only
    /// cleared while nothing else relies on it: it was pinned by traffic
    /// (not declared by the backend), no request was accepted against it,
    /// and no sibling that validated against it is still mid-enqueue (a
    /// sibling may already have pushed successfully without committing
    /// yet). Every request reaching this point validated against the
    /// current pin, so any of them may clear it once it is unreferenced.
    fn rollback_shape(&self, c: usize, s: usize) {
        let mut st = self.shape.lock().unwrap_or_else(|e| e.into_inner());
        st.validating -= 1;
        if !st.declared && st.accepted == 0 && st.validating == 0 && st.shape == Some((c, s)) {
            st.shape = None;
        }
    }

    fn enqueue(
        &self,
        req: Request,
        pending: PendingResponse,
        (c, s): (usize, usize),
        blocking: bool,
    ) -> Result<PendingResponse, ServeError> {
        let pushed = if blocking {
            self.queue.push(req)
        } else {
            self.queue.try_push(req)
        };
        match pushed {
            Ok(()) => {
                self.commit_shape(c, s);
                self.shared.note_arrival();
                Ok(pending)
            }
            Err(e) => {
                self.rollback_shape(c, s);
                Err(e)
            }
        }
    }

    /// Submits a request, blocking while the queue is full.
    pub(crate) fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        let (req, pending, cs) = self.make_request(windows, None)?;
        self.enqueue(req, pending, cs, true)
    }

    /// Submits a request, failing fast with [`ServeError::QueueFull`].
    pub(crate) fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        let (req, pending, cs) = self.make_request(windows, None)?;
        self.enqueue(req, pending, cs, false)
    }

    /// Submits a request that must start being served within `ttl`.
    pub(crate) fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        let (req, pending, cs) = self.make_request(windows, Some(Instant::now() + ttl))?;
        self.enqueue(req, pending, cs, true)
    }

    /// One consistent pass over the worker mutexes: the merged counters
    /// (including the recent latency-sample windows, so percentile
    /// estimation composes) plus the per-worker breakdown. Each worker is
    /// locked exactly once, so every derived view — a replica's
    /// [`AsyncStats`], a pool's rollup — is built from the same snapshot
    /// and per-worker counters always sum to the merged totals.
    pub(crate) fn snapshot(&self) -> (WorkerInner, Vec<WorkerStats>) {
        let mut merged = WorkerInner::default();
        let mut per_worker = Vec::with_capacity(self.stats.len());
        for (id, slot) in self.stats.iter().enumerate() {
            let inner = slot.lock().unwrap_or_else(|e| e.into_inner());
            merged.merge_from(&inner);
            per_worker.push(WorkerStats {
                worker: id,
                batches: inner.batches,
                coalesced_batches: inner.coalesced_batches,
                requests: inner.requests,
                windows: inner.windows,
                expired: inner.expired,
                failed: inner.failed,
                rejected: inner.rejected,
                latency: inner.latency_stats(inner.windows),
            });
        }
        (merged, per_worker)
    }

    /// A live snapshot of aggregate + per-worker statistics.
    pub(crate) fn stats(&self) -> AsyncStats {
        let (merged, per_worker) = self.snapshot();
        merged.into_stats(per_worker)
    }

    /// Stops accepting new requests; already-queued work is still drained.
    pub(crate) fn close(&self) {
        self.queue.close();
    }

    /// Joins the worker threads (call [`Replica::close`] first, or this
    /// blocks until someone else closes the queue).
    pub(crate) fn join(&mut self) {
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn close_and_join(&mut self) {
        self.close();
        self.join();
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// A concurrent micro-batching inference engine: a bounded MPSC request
/// queue feeding a worker pool that coalesces requests from many clients
/// into shared micro-batches over one shared (never cloned) backend.
///
/// Compared to the synchronous [`InferenceEngine`](super::InferenceEngine)
/// (one caller, one request at a time), this engine accepts requests from
/// arbitrarily many threads, amortises per-invocation backend overhead
/// across clients, expires requests whose deadline passes before service,
/// pushes back on producers via the bounded queue, and drains in-flight
/// work on shutdown. It is exactly one serving replica; to fan traffic
/// across several heterogeneous replicas with latency-aware routing, use
/// [`ShardedEngine`](super::ShardedEngine).
///
/// # Example
///
/// ```
/// use bioformers::core::{Bioformer, BioformerConfig};
/// use bioformers::serve::{AsyncEngine, AsyncEngineConfig};
/// use bioformers::tensor::Tensor;
/// use std::time::Duration;
///
/// let engine = AsyncEngine::with_config(
///     Box::new(Bioformer::new(&BioformerConfig::bio1())),
///     AsyncEngineConfig::default()
///         .with_workers(1)
///         .with_micro_batch(8)
///         .with_linger(Duration::ZERO),
/// );
/// // Submit from any number of threads; each submission is independent.
/// let pending = engine.submit(Tensor::zeros(&[2, 14, 300])).unwrap();
/// let out = pending.wait().unwrap();
/// assert_eq!(out.logits.dims(), &[2, 8]);
/// assert_eq!(out.predictions.len(), 2);
/// let stats = engine.shutdown();
/// assert_eq!(stats.requests, 1);
/// assert_eq!(stats.windows, 2);
/// ```
pub struct AsyncEngine {
    replica: Replica,
}

impl AsyncEngine {
    /// Spawns the worker pool over `backend` with the default
    /// [`AsyncEngineConfig`].
    pub fn new(backend: Box<dyn GestureClassifier>) -> Self {
        AsyncEngine::with_config(backend, AsyncEngineConfig::default())
    }

    /// Spawns the worker pool over `backend` with an explicit config.
    ///
    /// # Panics
    ///
    /// Panics if any config field is zero where ≥ 1 is required
    /// (`workers`, `micro_batch`, `queue_capacity`).
    pub fn with_config(backend: Box<dyn GestureClassifier>, cfg: AsyncEngineConfig) -> Self {
        AsyncEngine {
            replica: Replica::new(backend, cfg),
        }
    }

    /// Autotunes a compute backend for `backend`'s GEMM shapes (honouring
    /// `BIOFORMER_TUNE`), installs it, then spawns the worker pool. A
    /// no-op install (`Arc`-shared or seam-less backends) still yields a
    /// working engine — the replica just serves on the default kernels.
    pub fn with_tuned_compute(
        mut backend: Box<dyn GestureClassifier>,
        cfg: AsyncEngineConfig,
    ) -> Self {
        let (compute, _table) = super::tuned_compute(backend.as_ref());
        backend.install_compute(compute);
        AsyncEngine::with_config(backend, cfg)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AsyncEngineConfig {
        self.replica.config()
    }

    /// The backend's name, e.g. `"bioformer-fp32"`.
    pub fn backend_name(&self) -> &str {
        self.replica.backend_name()
    }

    /// The backend's compute report at spawn time: `"default"` for
    /// untuned replicas, or the tuned table summary.
    pub fn compute_report(&self) -> &str {
        self.replica.compute_report()
    }

    /// The backend's class count.
    pub fn num_classes(&self) -> usize {
        self.replica.num_classes()
    }

    /// The `[channels, samples]` window shape this engine serves, when
    /// known: the backend's declared shape, or the shape pinned by the
    /// first accepted request; `None` before either.
    pub fn input_shape(&self) -> Option<(usize, usize)> {
        self.replica.served_shape()
    }

    /// Requests currently waiting in the queue (excludes in-flight batches).
    pub fn queue_depth(&self) -> usize {
        self.replica.queue_depth()
    }

    /// Submits a request, blocking while the queue is full (cooperative
    /// backpressure). Returns a handle to wait on.
    pub fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        self.replica.submit(windows)
    }

    /// Submits a request without blocking: fails fast with
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity, so
    /// load-shedding clients can drop or redirect work immediately.
    pub fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        self.replica.try_submit(windows)
    }

    /// Submits a request that must **start** being served within `ttl`;
    /// workers reject it with [`ServeError::DeadlineExpired`] otherwise.
    /// (A batch already executing is never aborted.)
    pub fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        self.replica.submit_with_deadline(windows, ttl)
    }

    /// Convenience wrapper: [`AsyncEngine::submit`] then
    /// [`PendingResponse::wait`].
    pub fn classify(&self, windows: Tensor) -> Result<RequestOutput, ServeError> {
        self.submit(windows)?.wait()
    }

    /// A live snapshot of aggregate + per-worker statistics.
    pub fn stats(&self) -> AsyncStats {
        self.replica.stats()
    }

    /// Graceful shutdown: stops accepting new requests, drains and serves
    /// everything already queued, joins the workers and returns the final
    /// statistics. Dropping the engine does the same minus the stats.
    pub fn shutdown(mut self) -> AsyncStats {
        self.replica.close_and_join();
        self.replica.stats()
    }
}

impl std::fmt::Debug for AsyncEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncEngine")
            .field("backend", &self.replica.backend_name)
            .field("config", &self.replica.cfg)
            .field("queue_depth", &self.replica.queue.len())
            .field("queue_capacity", &self.replica.queue.capacity())
            .finish()
    }
}

/// One worker: pop → coalesce until batch-full or linger deadline → expire
/// late requests → execute → respond, until the queue closes and drains.
fn worker_loop(
    _id: usize,
    queue: &RequestQueue,
    backend: &dyn GestureClassifier,
    cfg: &AsyncEngineConfig,
    stats: &Mutex<WorkerInner>,
    shared: &ReplicaShared,
) {
    let micro_batch = cfg.micro_batch;
    // One scratch arena per worker thread, reused across every batch this
    // worker ever executes: after the first batch of a given shape, model
    // forwards draw all their intermediates from the pool instead of the
    // global allocator.
    let mut arena = TensorArena::new();
    while let Some(first) = queue.pop() {
        let mut batch = Vec::new();
        let mut total = 0usize;
        let mut expired = 0usize;
        let mut rejected = 0usize;
        admit(first, &mut batch, &mut total, &mut expired, &mut rejected);
        // Coalesce: drain the backlog immediately, then wait out the linger
        // window for stragglers — but never once the batch is full.
        let flush_at = Instant::now() + effective_linger(cfg, shared);
        while total < micro_batch {
            match queue.pop_until(flush_at) {
                Some(req) => admit(req, &mut batch, &mut total, &mut expired, &mut rejected),
                None => break,
            }
        }
        // Re-check deadlines at execution start: lingering must not revive
        // requests that expired while the batch was forming.
        let exec_start = Instant::now();
        batch.retain(|req| {
            let late = req.deadline.is_some_and(|d| exec_start > d);
            if late {
                expired += 1;
                total -= req.windows.dims()[0];
                let _ = req.respond.send(Err(ServeError::DeadlineExpired));
            }
            !late
        });

        // A panicking backend (bad logits shape, internal assert, …) must
        // not take the worker thread down with it — that would leave every
        // queued client waiting forever. Catch the unwind, cancel the
        // batch's requests, count the failure and keep serving.
        let outcome = if batch.is_empty() {
            Ok(Vec::new())
        } else {
            shared.busy_workers.fetch_add(1, Ordering::Relaxed);
            shared.executing.fetch_add(batch.len(), Ordering::Relaxed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_batch(backend, micro_batch, &batch, total, exec_start, &mut arena)
            }));
            shared.executing.fetch_sub(batch.len(), Ordering::Relaxed);
            shared.busy_workers.fetch_sub(1, Ordering::Relaxed);
            outcome
        };

        // Every request admitted this iteration has now been responded to
        // (served, expired, rejected, or about to be cancelled below).
        shared.note_responded(batch.len() + expired + rejected);

        let mut inner = stats.lock().unwrap_or_else(|e| e.into_inner());
        inner.expired += expired;
        inner.rejected += rejected;
        match outcome {
            Ok(latencies) => {
                inner.requests += batch.len();
                inner.windows += total;
                // Count a batch only when the backend actually ran: a flush
                // containing only zero-window requests produces no backend
                // call (and no latency samples), and must not dilute
                // `requests_per_batch` with phantom batches.
                if !latencies.is_empty() {
                    inner.batches += 1;
                    if batch.len() > 1 {
                        inner.coalesced_batches += 1;
                    }
                    inner.record_latencies(&latencies);
                    drop(inner);
                    shared.note_batch_success(latencies.iter().sum(), total);
                }
            }
            Err(_panic) => {
                inner.failed += batch.len();
                drop(inner);
                // Bump the health signal before cancelling, so a router
                // woken by the cancellation already sees the failure.
                shared.note_batch_failure();
                for req in &batch {
                    let _ = req.respond.send(Err(ServeError::Cancelled));
                }
                continue;
            }
        }
    }
}

/// Admits `req` into the forming batch, or expires/rejects it on the spot.
/// The shape re-check against the batch's first rider is defence-in-depth:
/// submission-time validation already pins the served shape atomically, so
/// a mismatch here means a validation bypass — reject the request rather
/// than letting the gather `copy_from_slice` panic and cancel every rider.
fn admit(
    req: Request,
    batch: &mut Vec<Request>,
    total: &mut usize,
    expired: &mut usize,
    rejected: &mut usize,
) {
    if req.deadline.is_some_and(|d| Instant::now() > d) {
        *expired += 1;
        let _ = req.respond.send(Err(ServeError::DeadlineExpired));
        return;
    }
    if let Some(first) = batch.first() {
        if req.shape() != first.shape() {
            *rejected += 1;
            let (c, s) = req.shape();
            let (ec, es) = first.shape();
            let _ = req.respond.send(Err(ServeError::BadRequest(format!(
                "window shape [{c}, {s}] does not match batch shape [{ec}, {es}]"
            ))));
            return;
        }
    }
    *total += req.windows.dims()[0];
    batch.push(req);
}

/// Executes one coalesced batch and responds to every request in it;
/// returns the per-micro-batch backend latencies.
///
/// All execution scratch (the gather tensor, model intermediates, the
/// shared logits) lives in the worker's `arena` and is recycled before
/// returning — only the per-request response tensors, which escape to the
/// clients, are freshly allocated.
fn run_batch(
    backend: &dyn GestureClassifier,
    micro_batch: usize,
    batch: &[Request],
    total: usize,
    exec_start: Instant,
    arena: &mut TensorArena,
) -> Vec<Duration> {
    let classes = backend.num_classes();
    let (channels, samples) = {
        let d = batch[0].windows.dims();
        (d[1], d[2])
    };
    let sample_len = channels * samples;

    // Gather every request's windows into one shared tensor — unless the
    // batch is a single request, which can be served from its own tensor
    // without the extra copy (the common case under sparse traffic).
    let mut gathered: Option<Tensor> = None;
    if batch.len() > 1 {
        let mut buf = arena.tensor(&[total, channels, samples]);
        let mut row = 0usize;
        for req in batch {
            let n = req.windows.dims()[0];
            buf.data_mut()[row * sample_len..(row + n) * sample_len]
                .copy_from_slice(req.windows.data());
            row += n;
        }
        gathered = Some(buf);
    }
    let all = gathered.as_ref().unwrap_or(&batch[0].windows);

    let (logits, latencies) = predict_chunked(backend, all, micro_batch, arena);
    let batch_latency: Duration = latencies.iter().sum();

    // Scatter logits back, one response per request.
    let mut row = 0usize;
    for req in batch {
        let n = req.windows.dims()[0];
        let slice = Tensor::from_vec(
            logits.data()[row * classes..(row + n) * classes].to_vec(),
            &[n, classes],
        );
        let predictions = if n == 0 {
            Vec::new()
        } else {
            slice.argmax_rows()
        };
        let _ = req.respond.send(Ok(RequestOutput {
            logits: slice,
            predictions,
            queue_wait: exec_start.saturating_duration_since(req.enqueued),
            batch_requests: batch.len(),
            batch_windows: total,
            batch_latency,
        }));
        row += n;
    }
    arena.recycle(logits);
    if let Some(g) = gathered {
        arena.recycle(g);
    }
    latencies
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A backend that records the batch sizes it was asked for.
    struct Probe {
        classes: usize,
        seen: Arc<Mutex<Vec<usize>>>,
    }

    impl GestureClassifier for Probe {
        fn predict_batch(&self, windows: &Tensor) -> Tensor {
            let n = windows.dims()[0];
            self.seen.lock().unwrap().push(n);
            Tensor::from_fn(&[n, self.classes], |i| (i / self.classes) as f32)
        }

        fn num_classes(&self) -> usize {
            self.classes
        }

        fn name(&self) -> &str {
            "probe"
        }
    }

    fn probe_engine(cfg: AsyncEngineConfig) -> (AsyncEngine, Arc<Mutex<Vec<usize>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let engine = AsyncEngine::with_config(
            Box::new(Probe {
                classes: 4,
                seen: Arc::clone(&seen),
            }),
            cfg,
        );
        (engine, seen)
    }

    #[test]
    fn serves_a_single_request() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        let out = engine.classify(Tensor::zeros(&[3, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[3, 4]);
        assert_eq!(out.predictions.len(), 3);
        assert!(out.batch_requests >= 1);
        let stats = engine.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.windows, 3);
        assert_eq!(stats.expired, 0);
    }

    #[test]
    fn empty_requests_are_served() {
        let (engine, seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        let out = engine.classify(Tensor::zeros(&[0, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[0, 4]);
        assert!(out.predictions.is_empty());
        assert!(seen.lock().unwrap().is_empty(), "no backend call for n=0");
    }

    /// Regression (phantom batches): a flush containing only zero-window
    /// requests never invokes the backend, so it must not count as an
    /// executed batch — before the fix, three n=0 submissions reported
    /// `batches == 3` and skewed `requests_per_batch` towards 1.0.
    #[test]
    fn zero_window_flushes_are_not_counted_as_batches() {
        let (engine, seen) = probe_engine(
            AsyncEngineConfig::default()
                .with_workers(1)
                .with_linger(Duration::ZERO),
        );
        for _ in 0..3 {
            let out = engine.classify(Tensor::zeros(&[0, 2, 5])).unwrap();
            assert_eq!(out.logits.dims(), &[0, 4]);
        }
        let stats = engine.shutdown();
        assert!(seen.lock().unwrap().is_empty(), "backend must not run");
        assert_eq!(stats.requests, 3, "empty requests are still served");
        assert_eq!(stats.batches, 0, "no backend call -> no executed batch");
        assert_eq!(stats.coalesced_batches, 0);
        assert_eq!(stats.requests_per_batch(), 0.0);
        assert_eq!(stats.latency.micro_batches, 0);
    }

    #[test]
    fn rejects_non_rank3_and_mismatched_shapes() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        assert!(matches!(
            engine.submit(Tensor::zeros(&[4, 10])),
            Err(ServeError::BadRequest(_))
        ));
        let _ = engine.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
        assert!(matches!(
            engine.submit(Tensor::zeros(&[1, 3, 5])),
            Err(ServeError::BadRequest(_))
        ));
    }

    /// Regression (shape-pinning race): validation and pinning used to take
    /// two separate lock acquisitions, so two concurrent first submissions
    /// with different shapes could both validate against `None` and both be
    /// accepted — a later coalesced batch then gathered mismatched tensors
    /// and panicked, cancelling every rider. This drives the exact racy
    /// interleaving (two validations before either enqueue): the second
    /// validation must now lose.
    #[test]
    fn concurrent_first_submissions_with_different_shapes_cannot_both_pin() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        // Both requests validated before either is pushed to the queue —
        // the interleaving the old two-lock scheme allowed.
        let first = engine.replica.make_request(Tensor::zeros(&[1, 2, 5]), None);
        let second = engine.replica.make_request(Tensor::zeros(&[1, 3, 7]), None);
        assert!(first.is_ok(), "first shape pins the engine");
        assert!(
            matches!(second, Err(ServeError::BadRequest(_))),
            "second shape must be rejected by the atomic validate-and-pin"
        );
        // The pinned shape keeps serving.
        let out = engine.classify(Tensor::zeros(&[2, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[2, 4]);
    }

    /// A rejected submission (failed enqueue) must not leave its
    /// provisional pin behind: the engine stays open for whatever shape the
    /// first *accepted* request has.
    #[test]
    fn failed_enqueue_rolls_back_a_provisional_pin() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        engine.replica.close();
        assert_eq!(
            engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap_err(),
            ServeError::ShuttingDown
        );
        // The rejected request's shape was not committed: a different shape
        // still validates (only the enqueue fails, on the closed queue).
        assert!(
            engine
                .replica
                .make_request(Tensor::zeros(&[1, 3, 7]), None)
                .is_ok(),
            "shape from a never-enqueued request must not stick"
        );
    }

    /// Defence-in-depth: even if a mismatched request reached the queue,
    /// `admit` refuses to gather it into a batch with a different shape —
    /// the rider gets `BadRequest`, the batch survives.
    #[test]
    fn admit_rejects_shape_mismatch_within_a_batch() {
        let (tx_a, _rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let mut batch = Vec::new();
        let (mut total, mut expired, mut rejected) = (0usize, 0usize, 0usize);
        admit(
            Request {
                windows: Tensor::zeros(&[2, 2, 5]),
                deadline: None,
                enqueued: Instant::now(),
                respond: tx_a,
            },
            &mut batch,
            &mut total,
            &mut expired,
            &mut rejected,
        );
        admit(
            Request {
                windows: Tensor::zeros(&[1, 3, 7]),
                deadline: None,
                enqueued: Instant::now(),
                respond: tx_b,
            },
            &mut batch,
            &mut total,
            &mut expired,
            &mut rejected,
        );
        assert_eq!(batch.len(), 1, "mismatched request must not join");
        assert_eq!(total, 2);
        assert_eq!(rejected, 1);
        assert!(matches!(
            rx_b.try_recv().unwrap(),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        engine.replica.close();
        assert_eq!(
            engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    #[should_panic(expected = "workers must be >= 1")]
    fn zero_workers_rejected() {
        let _ = probe_engine(AsyncEngineConfig::default().with_workers(0));
    }

    /// A backend that panics on every batch.
    struct Exploding;

    impl GestureClassifier for Exploding {
        fn predict_batch(&self, _windows: &Tensor) -> Tensor {
            panic!("backend contract violation");
        }

        fn num_classes(&self) -> usize {
            4
        }

        fn name(&self) -> &str {
            "exploding"
        }
    }

    #[test]
    fn backend_panic_cancels_batch_but_worker_survives() {
        let engine = AsyncEngine::with_config(
            Box::new(Exploding),
            AsyncEngineConfig::default().with_workers(1),
        );
        // Two separate panicking batches: the worker must survive the
        // first to serve (and cancel) the second.
        for _ in 0..2 {
            let out = engine.classify(Tensor::zeros(&[1, 2, 5]));
            assert_eq!(out.unwrap_err(), ServeError::Cancelled);
        }
        assert_eq!(engine.replica.shared().consecutive_failures(), 2);
        assert_eq!(engine.replica.shared().alive_workers(), 1);
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn successful_batch_resets_consecutive_failures() {
        /// Panics only on the first call, then behaves.
        struct FlakyOnce {
            failed: Mutex<bool>,
        }
        impl GestureClassifier for FlakyOnce {
            fn predict_batch(&self, windows: &Tensor) -> Tensor {
                // The panic below poisons the mutex; recover on re-entry.
                let mut failed = self.failed.lock().unwrap_or_else(|e| e.into_inner());
                if !*failed {
                    *failed = true;
                    panic!("transient fault");
                }
                Tensor::zeros(&[windows.dims()[0], 4])
            }
            fn num_classes(&self) -> usize {
                4
            }
            fn name(&self) -> &str {
                "flaky-once"
            }
        }
        let engine = AsyncEngine::with_config(
            Box::new(FlakyOnce {
                failed: Mutex::new(false),
            }),
            AsyncEngineConfig::default().with_workers(1),
        );
        assert_eq!(
            engine.classify(Tensor::zeros(&[1, 2, 5])).unwrap_err(),
            ServeError::Cancelled
        );
        assert_eq!(engine.replica.shared().consecutive_failures(), 1);
        assert!(engine.classify(Tensor::zeros(&[1, 2, 5])).is_ok());
        // The response is delivered from inside the batch, before the
        // worker's post-batch accounting — wait for the reset to land.
        let t0 = Instant::now();
        while engine.replica.shared().consecutive_failures() != 0
            && t0.elapsed() < Duration::from_secs(2)
        {
            std::thread::yield_now();
        }
        assert_eq!(engine.replica.shared().consecutive_failures(), 0);
    }

    #[test]
    fn latency_window_stays_bounded_with_exact_totals() {
        let mut inner = WorkerInner::default();
        let samples: Vec<Duration> = (1..=10_000).map(Duration::from_micros).collect();
        inner.record_latencies(&samples);
        assert_eq!(inner.recent.len(), LATENCY_WINDOW);
        let stats = inner.latency_stats(10_000);
        assert_eq!(stats.micro_batches, 10_000);
        assert_eq!(stats.min, Duration::from_micros(1));
        assert_eq!(stats.max, Duration::from_micros(10_000));
        // total = Σ 1..=10000 µs
        assert_eq!(stats.total, Duration::from_micros(10_000 * 10_001 / 2));
        // p50 is estimated over the most recent window (samples 5905..=10000
        // after wrap-around), not over all history.
        assert!(stats.p50 >= Duration::from_micros(5905));
    }

    fn shared_with(batch_ns: u64, arrival_ns: u64) -> ReplicaShared {
        let shared = ReplicaShared::new(1);
        shared.ewma_batch_ns.store(batch_ns, Ordering::Relaxed);
        shared.ewma_arrival_ns.store(arrival_ns, Ordering::Relaxed);
        shared
    }

    #[test]
    fn adaptive_linger_flushes_immediately_under_sparse_traffic() {
        let cfg = AsyncEngineConfig::default()
            .with_micro_batch(16)
            .with_adaptive_linger(Duration::from_millis(5));
        // Arrivals (10 ms apart) slower than service (1 ms): lingering is a
        // pure tax, so flush immediately.
        let shared = shared_with(1_000_000, 10_000_000);
        assert_eq!(effective_linger(&cfg, &shared), Duration::ZERO);
    }

    #[test]
    fn adaptive_linger_waits_to_fill_under_bursty_traffic() {
        let cfg = AsyncEngineConfig::default()
            .with_micro_batch(16)
            .with_adaptive_linger(Duration::from_millis(5));
        // Arrivals every 10 µs, service 1 ms: wait ~16 × 10 µs to fill the
        // batch — well under both the service time and the cap.
        let shared = shared_with(1_000_000, 10_000);
        assert_eq!(effective_linger(&cfg, &shared), Duration::from_micros(160));
        // With a tighter cap, the cap wins.
        let capped = AsyncEngineConfig::default()
            .with_micro_batch(16)
            .with_adaptive_linger(Duration::from_micros(50));
        assert_eq!(
            effective_linger(&capped, &shared),
            Duration::from_micros(50)
        );
    }

    #[test]
    fn adaptive_linger_is_bounded_by_service_time() {
        let cfg = AsyncEngineConfig::default()
            .with_micro_batch(1024)
            .with_adaptive_linger(Duration::from_secs(1));
        // Filling 1024 slots at 100 µs apart would take 102 ms, but the
        // batch only takes 2 ms to serve — waiting longer than one service
        // time costs more than it amortises.
        let shared = shared_with(2_000_000, 100_000);
        assert_eq!(effective_linger(&cfg, &shared), Duration::from_millis(2));
    }

    #[test]
    fn adaptive_linger_bootstraps_from_fixed_value_without_data() {
        let cfg = AsyncEngineConfig::default()
            .with_linger(Duration::from_micros(300))
            .with_adaptive_linger(Duration::from_millis(5));
        let shared = ReplicaShared::new(1);
        assert_eq!(effective_linger(&cfg, &shared), Duration::from_micros(300));
    }

    #[test]
    fn arrivals_update_interarrival_ewma() {
        let shared = ReplicaShared::new(1);
        shared.note_arrival();
        assert_eq!(shared.ewma_arrival_ns.load(Ordering::Relaxed), 0);
        std::thread::sleep(Duration::from_millis(2));
        shared.note_arrival();
        let ewma = shared.ewma_arrival_ns.load(Ordering::Relaxed);
        assert!(ewma >= 1_000_000, "EWMA should see the ~2 ms gap: {ewma}");
    }

    /// Property tests over `run_batch`'s gather/scatter: for arbitrary
    /// mixes of request sizes (including n = 0) and micro-batch sizes, the
    /// logits every request receives must be row-aligned with a direct
    /// full-batch forward of the concatenated windows — for both the fp32
    /// and the integer-only int8 backend.
    mod gather_scatter {
        use super::*;
        use bioformer_core::{Bioformer, BioformerConfig};
        use bioformer_nn::serialize::state_dict;
        use bioformer_quant::QuantBioformer;
        use proptest::collection;
        use proptest::prelude::*;

        fn tiny_config(seed: u64) -> BioformerConfig {
            BioformerConfig {
                heads: 2,
                depth: 1,
                head_dim: 8,
                hidden: 32,
                filter: 30,
                dropout: 0.0,
                seed,
                ..BioformerConfig::bio1()
            }
        }

        /// Deterministic pseudo-random windows `[n, channels, samples]`.
        fn windows(n: usize, channels: usize, samples: usize, seed: u64) -> Tensor {
            let mut state = seed | 1;
            Tensor::from_fn(&[n, channels, samples], |_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32)
                    - 0.5
            })
        }

        /// Splits `full` into per-size requests, runs them through
        /// `run_batch`, and checks each response bit-matches the
        /// corresponding rows of a direct full-batch forward.
        fn check_row_alignment(backend: &dyn GestureClassifier, sizes: &[usize], micro: usize) {
            let total: usize = sizes.iter().sum();
            let (channels, samples) = backend.input_shape().expect("backends declare shapes");
            let classes = backend.num_classes();
            let full = windows(total, channels, samples, 41);
            let direct = if total == 0 {
                Tensor::zeros(&[0, classes])
            } else {
                backend.predict_batch(&full)
            };

            let sample_len = channels * samples;
            let mut batch = Vec::new();
            let mut receivers = Vec::new();
            let mut row = 0usize;
            for &n in sizes {
                let (tx, rx) = mpsc::channel();
                batch.push(Request {
                    windows: Tensor::from_vec(
                        full.data()[row * sample_len..(row + n) * sample_len].to_vec(),
                        &[n, channels, samples],
                    ),
                    deadline: None,
                    enqueued: Instant::now(),
                    respond: tx,
                });
                receivers.push((rx, row, n));
                row += n;
            }

            let latencies = run_batch(
                backend,
                micro,
                &batch,
                total,
                Instant::now(),
                &mut TensorArena::new(),
            );
            assert_eq!(latencies.len(), total.div_ceil(micro));

            for (rx, row, n) in receivers {
                let out = rx.try_recv().expect("every request gets a response");
                let out = out.expect("request must be served");
                prop_assert_eq!(out.logits.dims(), &[n, classes]);
                prop_assert_eq!(out.predictions.len(), n);
                prop_assert_eq!(
                    out.logits.data(),
                    &direct.data()[row * classes..(row + n) * classes],
                    "request rows {}..{} differ from the direct forward",
                    row,
                    row + n
                );
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[test]
            fn fp32_rows_align_with_direct_forward(
                sizes in collection::vec(0usize..4, 1..6),
                micro in prop::sample::select(vec![1usize, 2, 3, 16]),
            ) {
                let model = Bioformer::new(&tiny_config(31));
                check_row_alignment(&model, &sizes, micro);
            }

            #[test]
            fn int8_rows_align_with_direct_forward(
                sizes in collection::vec(0usize..4, 1..6),
                micro in prop::sample::select(vec![1usize, 2, 3, 16]),
            ) {
                let cfg = tiny_config(32);
                let mut model = Bioformer::new(&cfg);
                let calib = windows(4, cfg.channels, cfg.window, 5);
                let dict = state_dict(&mut model);
                let qmodel =
                    QuantBioformer::convert(&cfg, &dict, &calib).expect("int8 conversion");
                check_row_alignment(&qmodel, &sizes, micro);
            }
        }
    }
}
