//! The worker pool behind [`AsyncEngine`]: each worker pops requests off
//! the shared [`queue`](super::queue), coalesces concurrent clients'
//! windows into one shared micro-batch (flushing on batch-full or when the
//! linger deadline passes), expires late requests, runs the backend once
//! per batch, and scatters the logits back to every waiting client.

use super::queue::{PendingResponse, Request, RequestOutput, RequestQueue, ServeError};
use super::{predict_chunked, GestureClassifier, LatencyStats, DEFAULT_MICRO_BATCH};
use bioformer_tensor::Tensor;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`AsyncEngine`].
///
/// The defaults favour throughput under concurrency: a small linger lets a
/// worker wait for other clients' requests to share a batch, which costs at
/// most `linger` of extra latency when traffic is sparse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncEngineConfig {
    /// Worker threads consuming the queue (≥ 1). One worker per backend
    /// replica is the norm; more only helps when the backend itself can run
    /// batches concurrently (e.g. on spare cores).
    pub workers: usize,
    /// Maximum windows per coalesced batch, and the chunk size the batch is
    /// executed with (≥ 1) — identical semantics to
    /// [`InferenceEngine::micro_batch`](super::InferenceEngine::micro_batch).
    pub micro_batch: usize,
    /// How long a worker holding a partial batch waits for more requests
    /// before flushing. `Duration::ZERO` still coalesces whatever is
    /// already queued, it just never waits for stragglers.
    pub linger: Duration,
    /// Bounded queue capacity in requests (≥ 1); the backpressure limit.
    pub queue_capacity: usize,
}

impl Default for AsyncEngineConfig {
    fn default() -> Self {
        AsyncEngineConfig {
            workers: 2,
            micro_batch: DEFAULT_MICRO_BATCH,
            linger: Duration::from_micros(500),
            queue_capacity: 256,
        }
    }
}

impl AsyncEngineConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum windows per coalesced batch.
    pub fn with_micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch;
        self
    }

    /// Sets the linger deadline for partial batches.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Sets the bounded queue capacity (in requests).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    fn validate(&self) {
        assert!(self.workers > 0, "AsyncEngineConfig: workers must be >= 1");
        assert!(
            self.micro_batch > 0,
            "AsyncEngineConfig: micro_batch must be >= 1"
        );
        assert!(
            self.queue_capacity > 0,
            "AsyncEngineConfig: queue_capacity must be >= 1"
        );
    }
}

/// Per-worker cap on retained latency samples: totals stay exact forever,
/// while p50/p95 are estimated over a sliding window of the most recent
/// samples so a long-lived engine's memory stays bounded.
const LATENCY_WINDOW: usize = 4096;

/// Per-worker accounting, updated after every executed batch.
#[derive(Debug, Default)]
struct WorkerInner {
    batches: usize,
    coalesced_batches: usize,
    requests: usize,
    windows: usize,
    expired: usize,
    failed: usize,
    micro_batches: usize,
    total_latency: Duration,
    min_latency: Option<Duration>,
    max_latency: Option<Duration>,
    /// Ring buffer of the most recent micro-batch latencies (percentiles).
    recent: Vec<Duration>,
    next: usize,
}

impl WorkerInner {
    fn record_latencies(&mut self, latencies: &[Duration]) {
        for &d in latencies {
            self.micro_batches += 1;
            self.total_latency += d;
            self.min_latency = Some(self.min_latency.map_or(d, |m| m.min(d)));
            self.max_latency = Some(self.max_latency.map_or(d, |m| m.max(d)));
            if self.recent.len() < LATENCY_WINDOW {
                self.recent.push(d);
            } else {
                self.recent[self.next] = d;
                self.next = (self.next + 1) % LATENCY_WINDOW;
            }
        }
    }

    /// Builds a [`LatencyStats`] with exact count/total/mean/min/max and
    /// window-estimated percentiles.
    fn latency_stats(&self, windows: usize) -> LatencyStats {
        let mut recent = self.recent.clone();
        let mut stats = LatencyStats::from_samples(&mut recent, windows);
        if self.micro_batches > 0 {
            stats.micro_batches = self.micro_batches;
            stats.total = self.total_latency;
            stats.mean = Duration::from_secs_f64(
                self.total_latency.as_secs_f64() / self.micro_batches as f64,
            );
            stats.min = self.min_latency.unwrap_or(Duration::ZERO);
            stats.max = self.max_latency.unwrap_or(Duration::ZERO);
        }
        stats
    }
}

/// A snapshot of one worker's counters.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Batches this worker executed.
    pub batches: usize,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: usize,
    /// Requests this worker served.
    pub requests: usize,
    /// Windows this worker served.
    pub windows: usize,
    /// Requests this worker expired for missing their deadline.
    pub expired: usize,
    /// Requests cancelled because the backend panicked mid-batch.
    pub failed: usize,
    /// Micro-batch latency summary for this worker. Count, total, mean,
    /// min and max are exact over the worker's lifetime; p50/p95 are
    /// estimated over a sliding window of the most recent samples.
    pub latency: LatencyStats,
}

/// Aggregate statistics for an [`AsyncEngine`], merging every worker's
/// counters; latency summaries reuse the sync engine's [`LatencyStats`].
#[derive(Debug, Clone)]
pub struct AsyncStats {
    /// Requests served (responses delivered with logits).
    pub requests: usize,
    /// Requests expired for missing their deadline.
    pub expired: usize,
    /// Requests cancelled because the backend panicked mid-batch.
    pub failed: usize,
    /// Batches executed across all workers.
    pub batches: usize,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: usize,
    /// Total windows served.
    pub windows: usize,
    /// Micro-batch latency summary across all workers (exact count/total/
    /// mean/min/max; p50/p95 estimated over recent-sample windows).
    pub latency: LatencyStats,
    /// Per-worker breakdown.
    pub per_worker: Vec<WorkerStats>,
}

impl AsyncStats {
    /// Windows served per second of backend time (0.0 before any work).
    pub fn throughput(&self) -> f64 {
        self.latency.throughput()
    }

    /// Mean requests per executed batch (0.0 before any work) — the
    /// coalescing factor: > 1 means cross-request batching is happening.
    pub fn requests_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// A concurrent micro-batching inference engine: a bounded MPSC request
/// queue feeding a worker pool that coalesces requests from many clients
/// into shared micro-batches over one shared (never cloned) backend.
///
/// Compared to the synchronous [`InferenceEngine`](super::InferenceEngine)
/// (one caller, one request at a time), this engine accepts requests from
/// arbitrarily many threads, amortises per-invocation backend overhead
/// across clients, expires requests whose deadline passes before service,
/// pushes back on producers via the bounded queue, and drains in-flight
/// work on shutdown.
///
/// # Example
///
/// ```
/// use bioformers::core::{Bioformer, BioformerConfig};
/// use bioformers::serve::{AsyncEngine, AsyncEngineConfig};
/// use bioformers::tensor::Tensor;
/// use std::time::Duration;
///
/// let engine = AsyncEngine::with_config(
///     Box::new(Bioformer::new(&BioformerConfig::bio1())),
///     AsyncEngineConfig::default()
///         .with_workers(1)
///         .with_micro_batch(8)
///         .with_linger(Duration::ZERO),
/// );
/// // Submit from any number of threads; each submission is independent.
/// let pending = engine.submit(Tensor::zeros(&[2, 14, 300])).unwrap();
/// let out = pending.wait().unwrap();
/// assert_eq!(out.logits.dims(), &[2, 8]);
/// assert_eq!(out.predictions.len(), 2);
/// let stats = engine.shutdown();
/// assert_eq!(stats.requests, 1);
/// assert_eq!(stats.windows, 2);
/// ```
pub struct AsyncEngine {
    queue: Arc<RequestQueue>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Vec<Mutex<WorkerInner>>>,
    /// `[channels, samples]` served by this engine: the backend's declared
    /// [`GestureClassifier::input_shape`] when known, else pinned by the
    /// first successfully enqueued request. Mismatches are rejected at
    /// submission.
    shape: Mutex<Option<(usize, usize)>>,
    classes: usize,
    backend_name: String,
    cfg: AsyncEngineConfig,
}

impl AsyncEngine {
    /// Spawns the worker pool over `backend` with the default
    /// [`AsyncEngineConfig`].
    pub fn new(backend: Box<dyn GestureClassifier>) -> Self {
        AsyncEngine::with_config(backend, AsyncEngineConfig::default())
    }

    /// Spawns the worker pool over `backend` with an explicit config.
    ///
    /// # Panics
    ///
    /// Panics if any config field is zero where ≥ 1 is required
    /// (`workers`, `micro_batch`, `queue_capacity`).
    pub fn with_config(backend: Box<dyn GestureClassifier>, cfg: AsyncEngineConfig) -> Self {
        cfg.validate();
        let backend: Arc<dyn GestureClassifier> = Arc::from(backend);
        let queue = Arc::new(RequestQueue::new(cfg.queue_capacity));
        let stats = Arc::new(
            (0..cfg.workers)
                .map(|_| Mutex::new(WorkerInner::default()))
                .collect::<Vec<_>>(),
        );
        let handles = (0..cfg.workers)
            .map(|id| {
                let queue = Arc::clone(&queue);
                let backend = Arc::clone(&backend);
                let stats = Arc::clone(&stats);
                let (micro_batch, linger) = (cfg.micro_batch, cfg.linger);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{id}"))
                    .spawn(move || {
                        worker_loop(
                            id,
                            &queue,
                            backend.as_ref(),
                            micro_batch,
                            linger,
                            &stats[id],
                        )
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        AsyncEngine {
            queue,
            handles,
            stats,
            shape: Mutex::new(backend.input_shape()),
            classes: backend.num_classes(),
            backend_name: backend.name().to_string(),
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AsyncEngineConfig {
        &self.cfg
    }

    /// The backend's name, e.g. `"bioformer-fp32"`.
    pub fn backend_name(&self) -> &str {
        &self.backend_name
    }

    /// The backend's class count.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Requests currently waiting in the queue (excludes in-flight batches).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Validates `windows` against the engine's served shape and builds the
    /// queue entry + client handle. Does **not** pin an unknown shape —
    /// that only happens after the request is successfully enqueued
    /// ([`AsyncEngine::commit_shape`]), so a rejected or shed request can
    /// never brick the engine for well-formed traffic.
    #[allow(clippy::type_complexity)]
    fn make_request(
        &self,
        windows: Tensor,
        deadline: Option<Instant>,
    ) -> Result<(Request, PendingResponse, (usize, usize)), ServeError> {
        if windows.dims().len() != 3 {
            return Err(ServeError::BadRequest(format!(
                "windows must be [n, channels, samples], got {:?}",
                windows.dims()
            )));
        }
        let (n, c, s) = (windows.dims()[0], windows.dims()[1], windows.dims()[2]);
        let shape = self.shape.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((ec, es)) = *shape {
            if (ec, es) != (c, s) {
                return Err(ServeError::BadRequest(format!(
                    "window shape [{c}, {s}] does not match engine shape [{ec}, {es}]"
                )));
            }
        }
        drop(shape);
        let (tx, rx) = mpsc::channel();
        Ok((
            Request {
                windows,
                deadline,
                enqueued: Instant::now(),
                respond: tx,
            },
            PendingResponse { rx, windows: n },
            (c, s),
        ))
    }

    /// Pins the engine's served `[channels, samples]` if still unknown
    /// (backends that declare [`GestureClassifier::input_shape`] are pinned
    /// from construction).
    fn commit_shape(&self, c: usize, s: usize) {
        let mut shape = self.shape.lock().unwrap_or_else(|e| e.into_inner());
        if shape.is_none() {
            *shape = Some((c, s));
        }
    }

    /// Submits a request, blocking while the queue is full (cooperative
    /// backpressure). Returns a handle to wait on.
    pub fn submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        let (req, pending, (c, s)) = self.make_request(windows, None)?;
        self.queue.push(req)?;
        self.commit_shape(c, s);
        Ok(pending)
    }

    /// Submits a request without blocking: fails fast with
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity, so
    /// load-shedding clients can drop or redirect work immediately.
    pub fn try_submit(&self, windows: Tensor) -> Result<PendingResponse, ServeError> {
        let (req, pending, (c, s)) = self.make_request(windows, None)?;
        self.queue.try_push(req)?;
        self.commit_shape(c, s);
        Ok(pending)
    }

    /// Submits a request that must **start** being served within `ttl`;
    /// workers reject it with [`ServeError::DeadlineExpired`] otherwise.
    /// (A batch already executing is never aborted.)
    pub fn submit_with_deadline(
        &self,
        windows: Tensor,
        ttl: Duration,
    ) -> Result<PendingResponse, ServeError> {
        let (req, pending, (c, s)) = self.make_request(windows, Some(Instant::now() + ttl))?;
        self.queue.push(req)?;
        self.commit_shape(c, s);
        Ok(pending)
    }

    /// Convenience wrapper: [`AsyncEngine::submit`] then
    /// [`PendingResponse::wait`].
    pub fn classify(&self, windows: Tensor) -> Result<RequestOutput, ServeError> {
        self.submit(windows)?.wait()
    }

    /// A live snapshot of aggregate + per-worker statistics.
    pub fn stats(&self) -> AsyncStats {
        let mut per_worker = Vec::with_capacity(self.stats.len());
        let mut merged = WorkerInner::default();
        for (id, slot) in self.stats.iter().enumerate() {
            let inner = slot.lock().unwrap_or_else(|e| e.into_inner());
            merged.requests += inner.requests;
            merged.expired += inner.expired;
            merged.failed += inner.failed;
            merged.batches += inner.batches;
            merged.coalesced_batches += inner.coalesced_batches;
            merged.windows += inner.windows;
            merged.micro_batches += inner.micro_batches;
            merged.total_latency += inner.total_latency;
            merged.min_latency = match (merged.min_latency, inner.min_latency) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            merged.max_latency = merged.max_latency.max(inner.max_latency);
            merged.recent.extend_from_slice(&inner.recent);
            per_worker.push(WorkerStats {
                worker: id,
                batches: inner.batches,
                coalesced_batches: inner.coalesced_batches,
                requests: inner.requests,
                windows: inner.windows,
                expired: inner.expired,
                failed: inner.failed,
                latency: inner.latency_stats(inner.windows),
            });
        }
        AsyncStats {
            requests: merged.requests,
            expired: merged.expired,
            failed: merged.failed,
            batches: merged.batches,
            coalesced_batches: merged.coalesced_batches,
            windows: merged.windows,
            latency: merged.latency_stats(merged.windows),
            per_worker,
        }
    }

    fn close_and_join(&mut self) {
        self.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stops accepting new requests, drains and serves
    /// everything already queued, joins the workers and returns the final
    /// statistics. Dropping the engine does the same minus the stats.
    pub fn shutdown(mut self) -> AsyncStats {
        self.close_and_join();
        self.stats()
    }
}

impl Drop for AsyncEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for AsyncEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncEngine")
            .field("backend", &self.backend_name)
            .field("config", &self.cfg)
            .field("queue_depth", &self.queue.len())
            .field("queue_capacity", &self.queue.capacity())
            .finish()
    }
}

/// One worker: pop → coalesce until batch-full or linger deadline → expire
/// late requests → execute → respond, until the queue closes and drains.
fn worker_loop(
    _id: usize,
    queue: &RequestQueue,
    backend: &dyn GestureClassifier,
    micro_batch: usize,
    linger: Duration,
    stats: &Mutex<WorkerInner>,
) {
    while let Some(first) = queue.pop() {
        let mut batch = Vec::new();
        let mut total = 0usize;
        let mut expired = 0usize;
        admit(first, &mut batch, &mut total, &mut expired);
        // Coalesce: drain the backlog immediately, then wait out the linger
        // window for stragglers — but never once the batch is full.
        let flush_at = Instant::now() + linger;
        while total < micro_batch {
            match queue.pop_until(flush_at) {
                Some(req) => admit(req, &mut batch, &mut total, &mut expired),
                None => break,
            }
        }
        // Re-check deadlines at execution start: lingering must not revive
        // requests that expired while the batch was forming.
        let exec_start = Instant::now();
        batch.retain(|req| {
            let late = req.deadline.is_some_and(|d| exec_start > d);
            if late {
                expired += 1;
                total -= req.windows.dims()[0];
                let _ = req.respond.send(Err(ServeError::DeadlineExpired));
            }
            !late
        });

        // A panicking backend (bad logits shape, internal assert, …) must
        // not take the worker thread down with it — that would leave every
        // queued client waiting forever. Catch the unwind, cancel the
        // batch's requests, count the failure and keep serving.
        let outcome = if batch.is_empty() {
            Ok(Vec::new())
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_batch(backend, micro_batch, &batch, total, exec_start)
            }))
        };

        let mut inner = stats.lock().unwrap_or_else(|e| e.into_inner());
        inner.expired += expired;
        match outcome {
            Ok(latencies) if !batch.is_empty() => {
                inner.batches += 1;
                if batch.len() > 1 {
                    inner.coalesced_batches += 1;
                }
                inner.requests += batch.len();
                inner.windows += total;
                inner.record_latencies(&latencies);
            }
            Ok(_) => {}
            Err(_panic) => {
                inner.failed += batch.len();
                drop(inner);
                for req in &batch {
                    let _ = req.respond.send(Err(ServeError::Cancelled));
                }
                continue;
            }
        }
    }
}

/// Admits `req` into the forming batch, or expires it on the spot.
fn admit(req: Request, batch: &mut Vec<Request>, total: &mut usize, expired: &mut usize) {
    if req.deadline.is_some_and(|d| Instant::now() > d) {
        *expired += 1;
        let _ = req.respond.send(Err(ServeError::DeadlineExpired));
        return;
    }
    *total += req.windows.dims()[0];
    batch.push(req);
}

/// Executes one coalesced batch and responds to every request in it;
/// returns the per-micro-batch backend latencies.
fn run_batch(
    backend: &dyn GestureClassifier,
    micro_batch: usize,
    batch: &[Request],
    total: usize,
    exec_start: Instant,
) -> Vec<Duration> {
    let classes = backend.num_classes();
    let (channels, samples) = {
        let d = batch[0].windows.dims();
        (d[1], d[2])
    };
    let sample_len = channels * samples;

    // Gather every request's windows into one shared tensor — unless the
    // batch is a single request, which can be served from its own tensor
    // without the extra copy (the common case under sparse traffic).
    let gathered;
    let all: &Tensor = if batch.len() == 1 {
        &batch[0].windows
    } else {
        let mut buf = Tensor::zeros(&[total, channels, samples]);
        let mut row = 0usize;
        for req in batch {
            let n = req.windows.dims()[0];
            buf.data_mut()[row * sample_len..(row + n) * sample_len]
                .copy_from_slice(req.windows.data());
            row += n;
        }
        gathered = buf;
        &gathered
    };

    let (logits, latencies) = predict_chunked(backend, all, micro_batch);
    let batch_latency: Duration = latencies.iter().sum();

    // Scatter logits back, one response per request.
    let mut row = 0usize;
    for req in batch {
        let n = req.windows.dims()[0];
        let slice = Tensor::from_vec(
            logits.data()[row * classes..(row + n) * classes].to_vec(),
            &[n, classes],
        );
        let predictions = if n == 0 {
            Vec::new()
        } else {
            slice.argmax_rows()
        };
        let _ = req.respond.send(Ok(RequestOutput {
            logits: slice,
            predictions,
            queue_wait: exec_start.saturating_duration_since(req.enqueued),
            batch_requests: batch.len(),
            batch_windows: total,
            batch_latency,
        }));
        row += n;
    }
    latencies
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A backend that records the batch sizes it was asked for.
    struct Probe {
        classes: usize,
        seen: Arc<Mutex<Vec<usize>>>,
    }

    impl GestureClassifier for Probe {
        fn predict_batch(&self, windows: &Tensor) -> Tensor {
            let n = windows.dims()[0];
            self.seen.lock().unwrap().push(n);
            Tensor::from_fn(&[n, self.classes], |i| (i / self.classes) as f32)
        }

        fn num_classes(&self) -> usize {
            self.classes
        }

        fn name(&self) -> &str {
            "probe"
        }
    }

    fn probe_engine(cfg: AsyncEngineConfig) -> (AsyncEngine, Arc<Mutex<Vec<usize>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let engine = AsyncEngine::with_config(
            Box::new(Probe {
                classes: 4,
                seen: Arc::clone(&seen),
            }),
            cfg,
        );
        (engine, seen)
    }

    #[test]
    fn serves_a_single_request() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        let out = engine.classify(Tensor::zeros(&[3, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[3, 4]);
        assert_eq!(out.predictions.len(), 3);
        assert!(out.batch_requests >= 1);
        let stats = engine.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.windows, 3);
        assert_eq!(stats.expired, 0);
    }

    #[test]
    fn empty_requests_are_served() {
        let (engine, seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        let out = engine.classify(Tensor::zeros(&[0, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[0, 4]);
        assert!(out.predictions.is_empty());
        assert!(seen.lock().unwrap().is_empty(), "no backend call for n=0");
    }

    #[test]
    fn rejects_non_rank3_and_mismatched_shapes() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        assert!(matches!(
            engine.submit(Tensor::zeros(&[4, 10])),
            Err(ServeError::BadRequest(_))
        ));
        let _ = engine.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
        assert!(matches!(
            engine.submit(Tensor::zeros(&[1, 3, 5])),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (engine, _seen) = probe_engine(AsyncEngineConfig::default().with_workers(1));
        engine.queue.close();
        assert_eq!(
            engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    #[should_panic(expected = "workers must be >= 1")]
    fn zero_workers_rejected() {
        let _ = probe_engine(AsyncEngineConfig::default().with_workers(0));
    }

    /// A backend that panics on every batch.
    struct Exploding;

    impl GestureClassifier for Exploding {
        fn predict_batch(&self, _windows: &Tensor) -> Tensor {
            panic!("backend contract violation");
        }

        fn num_classes(&self) -> usize {
            4
        }

        fn name(&self) -> &str {
            "exploding"
        }
    }

    #[test]
    fn backend_panic_cancels_batch_but_worker_survives() {
        let engine = AsyncEngine::with_config(
            Box::new(Exploding),
            AsyncEngineConfig::default().with_workers(1),
        );
        // Two separate panicking batches: the worker must survive the
        // first to serve (and cancel) the second.
        for _ in 0..2 {
            let out = engine.classify(Tensor::zeros(&[1, 2, 5]));
            assert_eq!(out.unwrap_err(), ServeError::Cancelled);
        }
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn latency_window_stays_bounded_with_exact_totals() {
        let mut inner = WorkerInner::default();
        let samples: Vec<Duration> = (1..=10_000).map(Duration::from_micros).collect();
        inner.record_latencies(&samples);
        assert_eq!(inner.recent.len(), LATENCY_WINDOW);
        let stats = inner.latency_stats(10_000);
        assert_eq!(stats.micro_batches, 10_000);
        assert_eq!(stats.min, Duration::from_micros(1));
        assert_eq!(stats.max, Duration::from_micros(10_000));
        // total = Σ 1..=10000 µs
        assert_eq!(stats.total, Duration::from_micros(10_000 * 10_001 / 2));
        // p50 is estimated over the most recent window (samples 5905..=10000
        // after wrap-around), not over all history.
        assert!(stats.p50 >= Duration::from_micros(5905));
    }
}
