//! sEMG signal synthesis: band-limited stochastic carriers modulated by
//! muscle-activation envelopes, mixed into electrodes, plus interference.

use crate::session::SessionModel;
use crate::spec::DatasetSpec;
use crate::subject::{derive_seed, randn, SubjectModel};
use crate::{CHANNELS, MUSCLES, SAMPLE_RATE};
use bioformer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First-order high-pass + low-pass cascade approximating the 20–450 Hz
/// surface-EMG band at 2 kHz sampling.
#[derive(Debug, Clone)]
pub struct BandPass {
    hp_alpha: f32,
    lp_beta: f32,
    hp_y: f32,
    hp_x: f32,
    lp_y: f32,
}

impl BandPass {
    /// Creates a band-pass with the given corner frequencies (Hz).
    pub fn new(f_low: f32, f_high: f32, sample_rate: f32) -> Self {
        let dt = 1.0 / sample_rate;
        let rc_hp = 1.0 / (std::f32::consts::TAU * f_low);
        let rc_lp = 1.0 / (std::f32::consts::TAU * f_high);
        BandPass {
            hp_alpha: rc_hp / (rc_hp + dt),
            lp_beta: dt / (rc_lp + dt),
            hp_y: 0.0,
            hp_x: 0.0,
            lp_y: 0.0,
        }
    }

    /// The standard sEMG band used by this crate (20–450 Hz @ 2 kHz).
    pub fn semg() -> Self {
        BandPass::new(20.0, 450.0, SAMPLE_RATE as f32)
    }

    /// Filters one sample.
    pub fn process(&mut self, x: f32) -> f32 {
        // One-pole high-pass.
        let hp = self.hp_alpha * (self.hp_y + x - self.hp_x);
        self.hp_x = x;
        self.hp_y = hp;
        // One-pole low-pass.
        self.lp_y += self.lp_beta * (hp - self.lp_y);
        self.lp_y
    }
}

/// Generates a unit-variance band-limited noise carrier of length `n`.
pub fn carrier(rng: &mut impl Rng, n: usize) -> Vec<f32> {
    let mut bp = BandPass::semg();
    let mut out: Vec<f32> = (0..n).map(|_| bp.process(randn(rng))).collect();
    // Normalise to unit RMS so envelope amplitudes are interpretable.
    let rms = (out.iter().map(|v| v * v).sum::<f32>() / n as f32).sqrt();
    if rms > 1e-9 {
        let inv = 1.0 / rms;
        for v in &mut out {
            *v *= inv;
        }
    }
    out
}

/// Smoothstep ramp: 0→1 over `edge` at both ends of `[0, 1]`.
fn ramp(t: f32, edge: f32) -> f32 {
    let up = (t / edge).clamp(0.0, 1.0);
    let down = ((1.0 - t) / edge).clamp(0.0, 1.0);
    let s = |x: f32| x * x * (3.0 - 2.0 * x);
    s(up) * s(down)
}

/// Synthesises one repetition of `gesture` for `(subject, session)`:
/// a `[CHANNELS, rep_samples]` tensor.
///
/// Deterministic in `(spec.seed, subject, session, gesture, rep)`.
pub fn synthesize_repetition(
    spec: &DatasetSpec,
    subject: &SubjectModel,
    session: &SessionModel,
    gesture: usize,
    rep: usize,
) -> Tensor {
    let n = spec.rep_samples();
    let mut rng = StdRng::seed_from_u64(derive_seed(
        spec.seed,
        &[
            4,
            subject.id as u64,
            session.session as u64,
            gesture as u64,
            rep as u64,
        ],
    ));

    // Per-muscle stochastic carriers (independent fibre activity).
    let carriers: Vec<Vec<f32>> = (0..MUSCLES).map(|_| carrier(&mut rng, n)).collect();

    // Per-repetition execution variability: amplitude jitter + mild fatigue
    // decay over the session's repetitions.
    let rep_scale = (1.0 + 0.08 * randn(&mut rng)) * (1.0 - 0.01 * rep as f32).max(0.5);
    let tremor_freq = rng.gen_range(4.0..8.0f32);
    let tremor_phase = rng.gen_range(0.0..std::f32::consts::TAU);
    let tremor_amp = rng.gen_range(0.08..0.18f32);

    // Envelope per muscle: synergy level × ramp × tremor.
    let act = &subject.synergy[gesture];
    let dt = 1.0 / SAMPLE_RATE as f32;
    let mut envelopes = vec![0.0f32; MUSCLES * n];
    for t in 0..n {
        let frac = t as f32 / n as f32;
        let r = ramp(frac, 0.12);
        let trem = 1.0
            + tremor_amp
                * (std::f32::consts::TAU * tremor_freq * t as f32 * dt + tremor_phase).sin();
        for m in 0..MUSCLES {
            // Rest keeps faint tonic activity even outside the ramp.
            let tonic = 0.04;
            envelopes[m * n + t] = (act[m] * r * trem + tonic) * rep_scale * subject.amplitude;
        }
    }

    // Motion artefacts: Poisson-ish events on random channels.
    let expected = session.artifact_rate * spec.rep_duration_s;
    let events = {
        // Knuth-style Poisson sampling (small expected counts).
        let l = (-expected).exp();
        let mut k = 0usize;
        let mut p = 1.0f32;
        loop {
            p *= rng.gen_range(0.0..1.0f32);
            if p <= l || k > 20 {
                break k;
            }
            k += 1;
        }
    };
    struct Artifact {
        channel: usize,
        center: f32,
        width: f32,
        amp: f32,
    }
    let artifacts: Vec<Artifact> = (0..events)
        .map(|_| Artifact {
            channel: rng.gen_range(0..CHANNELS),
            center: rng.gen_range(0.0..n as f32),
            width: rng.gen_range(30.0..120.0f32),
            amp: rng.gen_range(0.5..2.0f32) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
        })
        .collect();

    // Mix into electrodes.
    let noise_sigma = spec.sensor_noise * subject.difficulty;
    let mut x = Tensor::zeros(&[CHANNELS, n]);
    let xd = x.data_mut();
    for e in 0..CHANNELS {
        let gain = session.gains[e];
        let mix_row = &session.mixing[e * MUSCLES..(e + 1) * MUSCLES];
        let pl_phase = session.powerline_phase + e as f32 * 0.3;
        for t in 0..n {
            let mut v = 0.0f32;
            for m in 0..MUSCLES {
                v += mix_row[m] * envelopes[m * n + t] * carriers[m][t];
            }
            v *= gain;
            // 50 Hz interference.
            v += session.powerline_amp
                * (std::f32::consts::TAU * 50.0 * t as f32 * dt + pl_phase).sin();
            // Sensor noise.
            v += noise_sigma * randn(&mut rng);
            xd[e * n + t] = v;
        }
    }
    // Add artefact bumps.
    for a in &artifacts {
        let e = a.channel;
        let lo = ((a.center - 4.0 * a.width).max(0.0)) as usize;
        let hi = ((a.center + 4.0 * a.width) as usize).min(n);
        for t in lo..hi {
            let d = (t as f32 - a.center) / a.width;
            xd[e * n + t] += a.amp * (-0.5 * d * d).exp();
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gestures::Gesture;
    use crate::session::SessionModel;
    use crate::subject::SubjectModel;

    fn setup() -> (DatasetSpec, SubjectModel, SessionModel) {
        let spec = DatasetSpec::tiny();
        let subj = SubjectModel::generate(&spec, 0);
        let sess = SessionModel::generate(&spec, &subj, 0);
        (spec, subj, sess)
    }

    #[test]
    fn bandpass_attenuates_dc_and_high_freq() {
        let fs = SAMPLE_RATE as f32;
        // DC input → output decays to ~0.
        let mut bp = BandPass::semg();
        let mut last = 0.0;
        for _ in 0..4000 {
            last = bp.process(1.0);
        }
        assert!(last.abs() < 0.05, "DC leak {last}");
        // Pass-band tone (100 Hz) retains much more power than 900 Hz tone.
        let tone_power = |f: f32| {
            let mut bp = BandPass::semg();
            let mut p = 0.0;
            for t in 0..4000 {
                let x = (std::f32::consts::TAU * f * t as f32 / fs).sin();
                let y = bp.process(x);
                if t > 1000 {
                    p += y * y;
                }
            }
            p
        };
        let pass = tone_power(100.0);
        let stop = tone_power(900.0);
        assert!(pass > 2.0 * stop, "pass {pass} vs stop {stop}");
    }

    #[test]
    fn carrier_unit_rms_and_zero_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = carrier(&mut rng, 8000);
        let mean: f32 = c.iter().sum::<f32>() / c.len() as f32;
        let rms = (c.iter().map(|v| v * v).sum::<f32>() / c.len() as f32).sqrt();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((rms - 1.0).abs() < 1e-4, "rms {rms}");
    }

    #[test]
    fn repetition_shape_and_finite() {
        let (spec, subj, sess) = setup();
        let x = synthesize_repetition(&spec, &subj, &sess, Gesture::MediumWrap.label(), 0);
        assert_eq!(x.dims(), &[CHANNELS, spec.rep_samples()]);
        assert!(!x.has_non_finite());
    }

    #[test]
    fn deterministic_repetitions() {
        let (spec, subj, sess) = setup();
        let a = synthesize_repetition(&spec, &subj, &sess, 1, 0);
        let b = synthesize_repetition(&spec, &subj, &sess, 1, 0);
        assert!(a.allclose(&b, 0.0));
        let c = synthesize_repetition(&spec, &subj, &sess, 1, 1);
        assert!(!a.allclose(&c, 1e-3), "different reps must differ");
    }

    #[test]
    fn grasp_has_more_power_than_rest() {
        let (spec, subj, sess) = setup();
        let rest = synthesize_repetition(&spec, &subj, &sess, Gesture::Rest.label(), 0);
        let grasp = synthesize_repetition(&spec, &subj, &sess, Gesture::PowerSphere.label(), 0);
        assert!(
            grasp.norm_sq() > 1.2 * rest.norm_sq(),
            "grasp power {} vs rest {}",
            grasp.norm_sq(),
            rest.norm_sq()
        );
    }

    #[test]
    fn different_gestures_have_different_channel_profiles() {
        let (spec, subj, sess) = setup();
        let n = spec.rep_samples();
        let rms_profile = |g: Gesture| -> Vec<f32> {
            let x = synthesize_repetition(&spec, &subj, &sess, g.label(), 0);
            (0..CHANNELS)
                .map(|e| {
                    (x.data()[e * n..(e + 1) * n]
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>()
                        / n as f32)
                        .sqrt()
                })
                .collect()
        };
        let a = rms_profile(Gesture::MediumWrap);
        let b = rms_profile(Gesture::PrismaticPinch);
        // Normalised profiles should differ appreciably for distinct grasps.
        let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
        let cos: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum::<f32>() / (na * nb);
        assert!(cos < 0.995, "profiles nearly identical (cos {cos})");
    }
}
