//! Synthetic surface-EMG (sEMG) data generator reproducing the statistical
//! structure of the **Ninapro DB6** dataset used by the Bioformers paper.
//!
//! The real DB6 recordings (10 able-bodied subjects × 10 sessions over 5
//! days, 8 gesture classes, 14 Delsys Trigno electrodes @ 2 kHz) cannot be
//! redistributed, so this crate synthesises signals from a physiological
//! model that preserves exactly the properties the paper's experiments
//! measure:
//!
//! * **Class structure** — each gesture drives a muscle-synergy activation
//!   vector; confusable grasp pairs have nearly collinear synergies
//!   ([`gestures`]), which caps attainable accuracy the way real sEMG
//!   does (the paper's fp32 ceiling is ≈66 %).
//! * **Inter-subject variability with shared structure** — every subject
//!   mixes muscle activity into electrodes through a perturbed copy of a
//!   common base mixing matrix ([`subject`]); the shared component is what
//!   makes the paper's inter-subject pre-training effective (Fig. 3).
//! * **Session-to-session drift** — electrode donning/doffing is modelled
//!   as a random walk on the mixing matrix plus per-session channel gains
//!   ([`session`]), so accuracy decays for test sessions farther from
//!   training (Fig. 2).
//! * **Signal realism** — amplitude-modulated band-limited stochastic
//!   carriers (20–450 Hz at 2 kHz sampling), 50 Hz interference, motion
//!   artefacts and sensor noise ([`signal`]).
//!
//! Windows follow the paper's protocol: 150 ms (300 samples) with a
//! configurable slide ([`windowing`]), and [`ninapro::NinaproDb6`] exposes
//! the session-based train/test split (sessions 1–5 train, 6–10 test).
//!
//! Everything is deterministic given [`spec::DatasetSpec::seed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod dataset;
pub mod gestures;
pub mod ninapro;
pub mod session;
pub mod signal;
pub mod spec;
pub mod subject;
pub mod windowing;

pub use calibrate::{CalibrationConfig, SessionCalibrator};
pub use dataset::{Normalizer, SemgDataset};
pub use gestures::Gesture;
pub use ninapro::NinaproDb6;
pub use spec::DatasetSpec;

/// Number of sEMG electrodes in Ninapro DB6 (Delsys Trigno array).
pub const CHANNELS: usize = 14;

/// Number of gesture classes (rest + 7 grasps).
pub const GESTURE_CLASSES: usize = 8;

/// Number of modelled muscle groups ("synergies") in the forearm model.
pub const MUSCLES: usize = 6;

/// Sampling rate of the electrodes in Hz.
pub const SAMPLE_RATE: usize = 2000;

/// Window length in samples (150 ms at 2 kHz), matching the paper.
pub const WINDOW: usize = 300;
