//! The eight Ninapro DB6 gesture classes and their muscle-synergy profiles.

use crate::MUSCLES;

/// The gesture vocabulary of Ninapro DB6: the rest position plus seven
/// grasps "covering hand movements typically done during daily activities"
/// (paper §III-C / Palermo et al. 2017).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gesture {
    /// Hand at rest.
    Rest = 0,
    /// Medium wrap (cylindrical grasp).
    MediumWrap = 1,
    /// Lateral grasp (key pinch).
    Lateral = 2,
    /// Parallel extension grasp.
    ParallelExtension = 3,
    /// Tripod grasp.
    Tripod = 4,
    /// Power sphere grasp.
    PowerSphere = 5,
    /// Precision disk grasp.
    PrecisionDisk = 6,
    /// Prismatic pinch grasp.
    PrismaticPinch = 7,
}

/// All gestures in label order.
pub const ALL_GESTURES: [Gesture; 8] = [
    Gesture::Rest,
    Gesture::MediumWrap,
    Gesture::Lateral,
    Gesture::ParallelExtension,
    Gesture::Tripod,
    Gesture::PowerSphere,
    Gesture::PrecisionDisk,
    Gesture::PrismaticPinch,
];

/// Mean muscle-synergy activation per gesture (rows) and muscle group
/// (columns), in `[0, 1]`.
///
/// The rows are deliberately **pairwise confusable** — (MediumWrap,
/// Lateral), (ParallelExtension, Tripod) and (PowerSphere, PrecisionDisk)
/// differ by small perturbations — because in real sEMG "similar gestures
/// result in similar muscle contractions ... leading to low classification
/// accuracy" (paper §I). This is the main knob capping attainable accuracy
/// in the reproduction.
pub const SYNERGY: [[f32; MUSCLES]; 8] = [
    // Rest: faint postural tone.
    [0.04, 0.05, 0.04, 0.05, 0.04, 0.05],
    // MediumWrap: strong flexors (m0, m1).
    [0.90, 0.70, 0.20, 0.10, 0.30, 0.20],
    // Lateral: close to MediumWrap (confusable pair A).
    [0.80, 0.62, 0.30, 0.12, 0.24, 0.28],
    // ParallelExtension: extensors (m2, m3).
    [0.28, 0.20, 0.82, 0.70, 0.22, 0.12],
    // Tripod: close to ParallelExtension (confusable pair B).
    [0.32, 0.28, 0.72, 0.78, 0.30, 0.10],
    // PowerSphere: broad co-contraction.
    [0.70, 0.78, 0.52, 0.42, 0.58, 0.50],
    // PrecisionDisk: close to PowerSphere (confusable pair C).
    [0.62, 0.70, 0.60, 0.50, 0.52, 0.58],
    // PrismaticPinch: intrinsic/thumb muscles (m4, m5).
    [0.20, 0.28, 0.38, 0.30, 0.80, 0.70],
];

impl Gesture {
    /// Integer class label (0–7).
    pub fn label(self) -> usize {
        self as usize
    }

    /// Gesture for a class label.
    ///
    /// # Panics
    ///
    /// Panics if `label >= 8`.
    pub fn from_label(label: usize) -> Gesture {
        ALL_GESTURES[label]
    }

    /// Gesture for a class label, or `None` when the label is outside the
    /// DB6 vocabulary (serving backends may expose other class counts).
    pub fn try_from_label(label: usize) -> Option<Gesture> {
        ALL_GESTURES.get(label).copied()
    }

    /// Mean synergy activation vector of this gesture.
    pub fn synergy(self) -> &'static [f32; MUSCLES] {
        &SYNERGY[self as usize]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Gesture::Rest => "rest",
            Gesture::MediumWrap => "medium wrap",
            Gesture::Lateral => "lateral",
            Gesture::ParallelExtension => "parallel extension",
            Gesture::Tripod => "tripod",
            Gesture::PowerSphere => "power sphere",
            Gesture::PrecisionDisk => "precision disk",
            Gesture::PrismaticPinch => "prismatic pinch",
        }
    }
}

impl std::fmt::Display for Gesture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(a: &[f32; MUSCLES], b: &[f32; MUSCLES]) -> f32 {
        let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb)
    }

    #[test]
    fn label_roundtrip() {
        for g in ALL_GESTURES {
            assert_eq!(Gesture::from_label(g.label()), g);
        }
    }

    #[test]
    fn rest_is_weakest() {
        let rest_energy: f32 = Gesture::Rest.synergy().iter().sum();
        for g in &ALL_GESTURES[1..] {
            let e: f32 = g.synergy().iter().sum();
            assert!(e > 2.0 * rest_energy, "{g} not well separated from rest");
        }
    }

    #[test]
    fn confusable_pairs_are_nearly_collinear() {
        for (a, b) in [
            (Gesture::MediumWrap, Gesture::Lateral),
            (Gesture::ParallelExtension, Gesture::Tripod),
            (Gesture::PowerSphere, Gesture::PrecisionDisk),
        ] {
            let c = cosine(a.synergy(), b.synergy());
            assert!(c > 0.97, "{a} vs {b} cosine {c} should be high");
        }
    }

    #[test]
    fn distinct_grasps_are_separable() {
        let c = cosine(
            Gesture::MediumWrap.synergy(),
            Gesture::ParallelExtension.synergy(),
        );
        assert!(c < 0.75, "MediumWrap vs ParallelExtension cosine {c}");
        let c2 = cosine(
            Gesture::MediumWrap.synergy(),
            Gesture::PrismaticPinch.synergy(),
        );
        assert!(c2 < 0.75, "MediumWrap vs PrismaticPinch cosine {c2}");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL_GESTURES.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
