//! The synthetic Ninapro DB6 facade: protocol-level access to subjects,
//! sessions and the paper's train/test splits.

use crate::dataset::SemgDataset;
use crate::session::SessionModel;
use crate::signal::synthesize_repetition;
use crate::spec::DatasetSpec;
use crate::subject::SubjectModel;
use crate::windowing::extract_all_into;
use crate::{CHANNELS, GESTURE_CLASSES, WINDOW};
use bioformer_tensor::Tensor;

/// The synthetic stand-in for Ninapro DB6.
///
/// Recordings are generated **on demand** and deterministically from the
/// spec seed, so harnesses can iterate over `(subject, session)` pairs
/// without holding the whole corpus in memory (the paper-scale corpus is
/// ~3.8 M windows ≈ 64 GB as f32).
///
/// # Example
///
/// ```
/// use bioformer_semg::{DatasetSpec, NinaproDb6};
///
/// let db = NinaproDb6::generate(&DatasetSpec::tiny());
/// let train = db.train_dataset(0);
/// let test = db.test_dataset(0);
/// assert!(!train.is_empty() && !test.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct NinaproDb6 {
    spec: DatasetSpec,
    subjects: Vec<SubjectModel>,
}

impl NinaproDb6 {
    /// Builds the database facade (precomputes per-subject models only).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    pub fn generate(spec: &DatasetSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid DatasetSpec: {e}");
        }
        let subjects = (0..spec.subjects)
            .map(|id| SubjectModel::generate(spec, id))
            .collect();
        NinaproDb6 {
            spec: spec.clone(),
            subjects,
        }
    }

    /// The generation spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Per-subject anatomy models, indexed by subject id.
    pub fn subjects(&self) -> &[SubjectModel] {
        &self.subjects
    }

    /// Generates all windows of one `(subject, session)` recording.
    ///
    /// # Panics
    ///
    /// Panics if `subject` or `session` are out of range.
    pub fn subject_session_dataset(&self, subject: usize, session: usize) -> SemgDataset {
        assert!(
            subject < self.spec.subjects,
            "subject {subject} out of range"
        );
        assert!(
            session < self.spec.sessions,
            "session {session} out of range"
        );
        let subj = &self.subjects[subject];
        let sess = SessionModel::generate(&self.spec, subj, session);

        let per_rep = self.spec.windows_per_rep();
        let total = GESTURE_CLASSES * self.spec.reps_per_gesture * per_rep;
        let mut data = Vec::with_capacity(total * CHANNELS * WINDOW);
        let mut labels = Vec::with_capacity(total);
        for gesture in 0..GESTURE_CLASSES {
            for rep in 0..self.spec.reps_per_gesture {
                let signal = synthesize_repetition(&self.spec, subj, &sess, gesture, rep);
                let n = extract_all_into(&signal, self.spec.slide, &mut data);
                labels.extend(std::iter::repeat_n(gesture, n));
            }
        }
        let n = labels.len();
        SemgDataset::new(
            Tensor::from_vec(data, &[n, CHANNELS, WINDOW]),
            labels,
            vec![subject as u16; n],
            vec![session as u16; n],
        )
    }

    /// The continuous `[CHANNELS, samples]` recording of one
    /// `(subject, session)` — every gesture repetition concatenated in
    /// protocol order — plus the gesture label of each repetition's frame
    /// span. This is the raw stream a live deployment would see; feed it
    /// to the serving layer's streaming session (or to
    /// [`extract_all_into`] for the offline batch path).
    ///
    /// # Panics
    ///
    /// Panics if `subject` or `session` are out of range.
    #[allow(clippy::type_complexity)]
    pub fn session_signal(
        &self,
        subject: usize,
        session: usize,
    ) -> (Tensor, Vec<(usize, std::ops::Range<usize>)>) {
        assert!(
            subject < self.spec.subjects,
            "subject {subject} out of range"
        );
        assert!(
            session < self.spec.sessions,
            "session {session} out of range"
        );
        let subj = &self.subjects[subject];
        let sess = SessionModel::generate(&self.spec, subj, session);
        let rep_len = self.spec.rep_samples();
        let reps = GESTURE_CLASSES * self.spec.reps_per_gesture;
        let total = reps * rep_len;
        let mut chans: Vec<Vec<f32>> = (0..CHANNELS).map(|_| Vec::with_capacity(total)).collect();
        let mut spans = Vec::with_capacity(reps);
        let mut at = 0usize;
        for gesture in 0..GESTURE_CLASSES {
            for rep in 0..self.spec.reps_per_gesture {
                let signal = synthesize_repetition(&self.spec, subj, &sess, gesture, rep);
                for (ch, buf) in chans.iter_mut().enumerate() {
                    buf.extend_from_slice(&signal.data()[ch * rep_len..(ch + 1) * rep_len]);
                }
                spans.push((gesture, at..at + rep_len));
                at += rep_len;
            }
        }
        let mut data = Vec::with_capacity(CHANNELS * total);
        for buf in chans {
            data.extend_from_slice(&buf);
        }
        (Tensor::from_vec(data, &[CHANNELS, total]), spans)
    }

    /// Concatenated windows of several sessions of one subject.
    pub fn sessions_dataset(&self, subject: usize, sessions: &[usize]) -> SemgDataset {
        let parts: Vec<SemgDataset> = sessions
            .iter()
            .map(|&s| self.subject_session_dataset(subject, s))
            .collect();
        SemgDataset::merge(&parts)
    }

    /// The paper's training split for `subject`: sessions 1–5
    /// (indices `0..sessions/2`).
    pub fn train_dataset(&self, subject: usize) -> SemgDataset {
        self.sessions_dataset(subject, &self.spec.train_sessions())
    }

    /// The paper's test split for `subject`: sessions 6–10
    /// (indices `sessions/2..`).
    pub fn test_dataset(&self, subject: usize) -> SemgDataset {
        self.sessions_dataset(subject, &self.spec.test_sessions())
    }

    /// The inter-subject pre-training corpus for a target subject: the
    /// **training sessions of every other subject** (paper §III-B: "we
    /// first train the network ... with data coming from patients 2-10,
    /// excluding subject 1").
    pub fn pretrain_dataset(&self, excluded_subject: usize) -> SemgDataset {
        let train_sessions = self.spec.train_sessions();
        let parts: Vec<SemgDataset> = (0..self.spec.subjects)
            .filter(|&s| s != excluded_subject)
            .flat_map(|s| {
                train_sessions
                    .iter()
                    .map(move |&k| (s, k))
                    .collect::<Vec<_>>()
            })
            .map(|(s, k)| self.subject_session_dataset(s, k))
            .collect();
        SemgDataset::merge(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> NinaproDb6 {
        NinaproDb6::generate(&DatasetSpec::tiny())
    }

    #[test]
    fn session_dataset_counts() {
        let db = tiny_db();
        let d = db.subject_session_dataset(0, 0);
        assert_eq!(d.len(), db.spec().windows_per_session());
        // Balanced classes by construction.
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c == counts[0]));
    }

    #[test]
    fn deterministic_generation() {
        let db = tiny_db();
        let a = db.subject_session_dataset(1, 2);
        let b = db.subject_session_dataset(1, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn train_test_sessions_disjoint() {
        let db = tiny_db();
        let train = db.train_dataset(0);
        let test = db.test_dataset(0);
        let train_sessions: std::collections::HashSet<u16> =
            train.sessions().iter().copied().collect();
        let test_sessions: std::collections::HashSet<u16> =
            test.sessions().iter().copied().collect();
        assert!(train_sessions.is_disjoint(&test_sessions));
    }

    #[test]
    fn pretrain_excludes_target() {
        let db = tiny_db();
        let pre = db.pretrain_dataset(0);
        assert!(pre.subjects().iter().all(|&s| s != 0));
        assert!(!pre.is_empty());
        // Only training sessions present.
        let max_train = (db.spec().sessions / 2) as u16;
        assert!(pre.sessions().iter().all(|&k| k < max_train));
    }

    /// The continuous session recording is the same signal the per-rep
    /// dataset windows come from: windows re-extracted from each labelled
    /// span match the dataset windows of the same (gesture, rep).
    #[test]
    fn session_signal_concatenates_repetitions_in_protocol_order() {
        let db = tiny_db();
        let (signal, spans) = db.session_signal(0, 1);
        let rep_len = db.spec().rep_samples();
        assert_eq!(
            signal.dims(),
            &[
                CHANNELS,
                GESTURE_CLASSES * db.spec().reps_per_gesture * rep_len
            ]
        );
        assert_eq!(spans.len(), GESTURE_CLASSES * db.spec().reps_per_gesture);
        assert_eq!(spans[0], (0, 0..rep_len));
        // The first repetition's samples equal a direct synthesis call.
        let subj = &db.subjects()[0];
        let sess = SessionModel::generate(db.spec(), subj, 1);
        let rep = synthesize_repetition(db.spec(), subj, &sess, 0, 0);
        let total = signal.dims()[1];
        for ch in 0..CHANNELS {
            assert_eq!(
                &signal.data()[ch * total..ch * total + rep_len],
                &rep.data()[ch * rep_len..(ch + 1) * rep_len],
                "channel {ch} of the first span diverges"
            );
        }
        // Labels cover the whole recording back-to-back.
        let mut expect_start = 0;
        for (_, range) in &spans {
            assert_eq!(range.start, expect_start);
            expect_start = range.end;
        }
        assert_eq!(expect_start, total);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_subject_panics() {
        tiny_db().subject_session_dataset(99, 0);
    }

    #[test]
    #[should_panic(expected = "invalid DatasetSpec")]
    fn invalid_spec_panics() {
        let mut spec = DatasetSpec::tiny();
        spec.sessions = 1;
        NinaproDb6::generate(&spec);
    }
}
