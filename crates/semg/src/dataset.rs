//! Window datasets and per-channel normalisation.

use crate::{CHANNELS, GESTURE_CLASSES, WINDOW};
use bioformer_tensor::Tensor;

/// A set of labelled sEMG windows with provenance metadata.
///
/// `x` is `[n, CHANNELS, WINDOW]`; `labels[i]`, `subjects[i]` and
/// `sessions[i]` describe window `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct SemgDataset {
    x: Tensor,
    labels: Vec<usize>,
    subjects: Vec<u16>,
    sessions: Vec<u16>,
}

impl SemgDataset {
    /// An empty dataset.
    pub fn empty() -> Self {
        SemgDataset {
            x: Tensor::zeros(&[0, CHANNELS, WINDOW]),
            labels: Vec::new(),
            subjects: Vec::new(),
            sessions: Vec::new(),
        }
    }

    /// Builds a dataset from parts.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or `x` has the wrong shape.
    pub fn new(x: Tensor, labels: Vec<usize>, subjects: Vec<u16>, sessions: Vec<u16>) -> Self {
        assert_eq!(x.shape().rank(), 3, "dataset x must be [n, C, W]");
        let n = x.dims()[0];
        assert_eq!(x.dims()[1], CHANNELS, "dataset channel count");
        assert_eq!(x.dims()[2], WINDOW, "dataset window length");
        assert_eq!(labels.len(), n, "labels length");
        assert_eq!(subjects.len(), n, "subjects length");
        assert_eq!(sessions.len(), n, "sessions length");
        assert!(
            labels.iter().all(|&l| l < GESTURE_CLASSES),
            "label out of range"
        );
        SemgDataset {
            x,
            labels,
            subjects,
            sessions,
        }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset has no windows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The window tensor `[n, CHANNELS, WINDOW]`.
    pub fn x(&self) -> &Tensor {
        &self.x
    }

    /// Integer gesture labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Originating subject per window.
    pub fn subjects(&self) -> &[u16] {
        &self.subjects
    }

    /// Originating session per window.
    pub fn sessions(&self) -> &[u16] {
        &self.sessions
    }

    /// Concatenates several datasets.
    pub fn merge(parts: &[SemgDataset]) -> SemgDataset {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        if total == 0 {
            return SemgDataset::empty();
        }
        let sample = CHANNELS * WINDOW;
        let mut data = Vec::with_capacity(total * sample);
        let mut labels = Vec::with_capacity(total);
        let mut subjects = Vec::with_capacity(total);
        let mut sessions = Vec::with_capacity(total);
        for p in parts {
            data.extend_from_slice(p.x.data());
            labels.extend_from_slice(&p.labels);
            subjects.extend_from_slice(&p.subjects);
            sessions.extend_from_slice(&p.sessions);
        }
        SemgDataset {
            x: Tensor::from_vec(data, &[total, CHANNELS, WINDOW]),
            labels,
            subjects,
            sessions,
        }
    }

    /// Windows per class label.
    pub fn class_counts(&self) -> [usize; GESTURE_CLASSES] {
        let mut counts = [0usize; GESTURE_CLASSES];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the windows whose index satisfies `keep`.
    pub fn filter(&self, mut keep: impl FnMut(usize) -> bool) -> SemgDataset {
        let sample = CHANNELS * WINDOW;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let mut subjects = Vec::new();
        let mut sessions = Vec::new();
        for i in 0..self.len() {
            if keep(i) {
                data.extend_from_slice(&self.x.data()[i * sample..(i + 1) * sample]);
                labels.push(self.labels[i]);
                subjects.push(self.subjects[i]);
                sessions.push(self.sessions[i]);
            }
        }
        let n = labels.len();
        SemgDataset {
            x: Tensor::from_vec(data, &[n, CHANNELS, WINDOW]),
            labels,
            subjects,
            sessions,
        }
    }
}

/// Per-channel standardisation (z-score) fitted on training data and
/// applied to every split — the only preprocessing ahead of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits channel means and standard deviations on a dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &SemgDataset) -> Self {
        assert!(!data.is_empty(), "cannot fit Normalizer on empty dataset");
        let n = data.len();
        let mut mean = [0.0f64; CHANNELS];
        let mut sq = [0.0f64; CHANNELS];
        let per = (n * WINDOW) as f64;
        for i in 0..n {
            for c in 0..CHANNELS {
                let row =
                    &data.x.data()[(i * CHANNELS + c) * WINDOW..(i * CHANNELS + c + 1) * WINDOW];
                for &v in row {
                    mean[c] += v as f64;
                    sq[c] += (v as f64) * (v as f64);
                }
            }
        }
        let mut std = vec![0.0f32; CHANNELS];
        let mut mean_f = vec![0.0f32; CHANNELS];
        for c in 0..CHANNELS {
            let m = mean[c] / per;
            let var = (sq[c] / per - m * m).max(1e-12);
            mean_f[c] = m as f32;
            std[c] = (var.sqrt()) as f32;
        }
        Normalizer { mean: mean_f, std }
    }

    /// Builds a normalizer from precomputed channel statistics — e.g.
    /// stats shipped to an edge device alongside the quantized weights, or
    /// a channel count different from [`CHANNELS`] in tests. Arithmetic is
    /// identical to a fitted normalizer with the same statistics.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, are zero, or any std is not a
    /// strictly positive finite number.
    pub fn from_stats(mean: Vec<f32>, std: Vec<f32>) -> Self {
        assert_eq!(mean.len(), std.len(), "Normalizer: mean/std length");
        assert!(!mean.is_empty(), "Normalizer: need at least one channel");
        assert!(
            std.iter().all(|s| s.is_finite() && *s > 0.0),
            "Normalizer: stds must be positive and finite"
        );
        Normalizer { mean, std }
    }

    /// Channel means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Channel standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Standardises one channel-major window `[channels × samples]` in
    /// place. This is the streaming-path twin of [`Normalizer::apply`]:
    /// the per-element arithmetic (`(v − mean) × (1/std)`) is the same
    /// f32 expression, so a window normalised online is **bit-identical**
    /// to the same window inside a normalised offline dataset.
    ///
    /// # Panics
    ///
    /// Panics if `window.len()` is not a multiple of the channel count.
    pub fn apply_window(&self, window: &mut [f32]) {
        let channels = self.mean.len();
        assert_eq!(
            window.len() % channels,
            0,
            "window of {} samples is not channel-major over {} channels",
            window.len(),
            channels
        );
        let samples = window.len() / channels;
        for c in 0..channels {
            let inv = 1.0 / self.std[c];
            let m = self.mean[c];
            for v in &mut window[c * samples..(c + 1) * samples] {
                *v = (*v - m) * inv;
            }
        }
    }

    /// Returns a standardised copy of `data`.
    pub fn apply(&self, data: &SemgDataset) -> SemgDataset {
        let mut out = data.clone();
        let n = out.len();
        for i in 0..n {
            for c in 0..CHANNELS {
                let inv = 1.0 / self.std[c];
                let m = self.mean[c];
                let row = &mut out.x.data_mut()
                    [(i * CHANNELS + c) * WINDOW..(i * CHANNELS + c + 1) * WINDOW];
                for v in row {
                    *v = (*v - m) * inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize, scale: f32) -> SemgDataset {
        let x = Tensor::from_fn(&[n, CHANNELS, WINDOW], |i| {
            scale * ((i % 17) as f32 - 8.0) + (i / (CHANNELS * WINDOW)) as f32 * 0.01
        });
        let labels = (0..n).map(|i| i % GESTURE_CLASSES).collect();
        SemgDataset::new(x, labels, vec![0; n], vec![0; n])
    }

    #[test]
    fn merge_concatenates() {
        let a = toy_dataset(3, 1.0);
        let b = toy_dataset(2, 2.0);
        let m = SemgDataset::merge(&[a.clone(), b.clone()]);
        assert_eq!(m.len(), 5);
        assert_eq!(&m.labels()[..3], a.labels());
        assert_eq!(&m.x().data()[..a.x().len()], a.x().data());
    }

    #[test]
    fn merge_empty_is_empty() {
        let m = SemgDataset::merge(&[]);
        assert!(m.is_empty());
    }

    #[test]
    fn class_counts_balanced_toy() {
        let d = toy_dataset(16, 1.0);
        assert_eq!(d.class_counts(), [2; GESTURE_CLASSES]);
    }

    #[test]
    fn filter_selects_subset() {
        let d = toy_dataset(10, 1.0);
        let f = d.filter(|i| i % 2 == 0);
        assert_eq!(f.len(), 5);
        assert_eq!(f.labels()[1], d.labels()[2]);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let d = toy_dataset(8, 3.0);
        let norm = Normalizer::fit(&d);
        let nd = norm.apply(&d);
        // Recompute stats per channel on the normalised data.
        let n = nd.len();
        for c in 0..CHANNELS {
            let mut mean = 0.0f64;
            let mut sq = 0.0f64;
            for i in 0..n {
                for &v in
                    &nd.x().data()[(i * CHANNELS + c) * WINDOW..(i * CHANNELS + c + 1) * WINDOW]
                {
                    mean += v as f64;
                    sq += (v as f64) * (v as f64);
                }
            }
            let per = (n * WINDOW) as f64;
            mean /= per;
            let var = sq / per - mean * mean;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn normalizer_is_train_statistics_only() {
        let train = toy_dataset(4, 1.0);
        let test = toy_dataset(4, 5.0);
        let norm = Normalizer::fit(&train);
        let nt = norm.apply(&test);
        // Test data normalised with train stats should NOT be unit-std.
        let v0: f32 = nt.x().data()[..WINDOW].iter().map(|v| v * v).sum::<f32>() / WINDOW as f32;
        assert!(
            v0 > 2.0,
            "test variance under train stats should stay large"
        );
    }

    /// The streaming-path contract: normalising a window in place must be
    /// bit-identical to slicing the same window out of a dataset-level
    /// `apply` — this is one link in the stream/offline equivalence chain.
    #[test]
    fn apply_window_bit_matches_dataset_apply() {
        let d = toy_dataset(6, 2.5);
        let norm = Normalizer::fit(&d);
        let nd = norm.apply(&d);
        let sample = CHANNELS * WINDOW;
        for i in 0..d.len() {
            let mut w = d.x().data()[i * sample..(i + 1) * sample].to_vec();
            norm.apply_window(&mut w);
            assert_eq!(
                w,
                &nd.x().data()[i * sample..(i + 1) * sample],
                "window {i} diverges from dataset-level normalisation"
            );
        }
    }

    #[test]
    fn from_stats_matches_fit() {
        let d = toy_dataset(4, 1.5);
        let fitted = Normalizer::fit(&d);
        let rebuilt = Normalizer::from_stats(fitted.mean().to_vec(), fitted.std().to_vec());
        assert_eq!(fitted, rebuilt);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn from_stats_rejects_zero_std() {
        Normalizer::from_stats(vec![0.0; 2], vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_on_empty_panics() {
        Normalizer::fit(&SemgDataset::empty());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let x = Tensor::zeros(&[1, CHANNELS, WINDOW]);
        SemgDataset::new(x, vec![99], vec![0], vec![0]);
    }
}
