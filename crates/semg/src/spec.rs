//! Dataset generation parameters.

use crate::{SAMPLE_RATE, WINDOW};

/// Parameters controlling synthetic DB6 generation.
///
/// [`DatasetSpec::paper`] mirrors the acquisition protocol of the real
/// dataset; because training a transformer on ~3.8 M windows is infeasible
/// on CPU, [`DatasetSpec::default`] produces a scaled-down set (shorter
/// repetitions, larger window slide) preserving the protocol structure, and
/// [`DatasetSpec::tiny`] is a seconds-scale configuration for unit tests.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of subjects (paper: 10).
    pub subjects: usize,
    /// Recording sessions per subject (paper: 10, over 5 days).
    pub sessions: usize,
    /// Gesture repetitions per session (paper: 12).
    pub reps_per_gesture: usize,
    /// Duration of one gesture repetition in seconds (paper: ≈6 s).
    pub rep_duration_s: f32,
    /// Window slide in samples (paper: 30 = 15 ms).
    pub slide: usize,
    /// Master seed; all generated signals are deterministic in it.
    pub seed: u64,

    // ---- difficulty calibration knobs (see DESIGN.md §7) ----
    /// Std-dev of the per-session mixing-matrix random walk. Drives the
    /// accuracy decay across test sessions (Fig. 2).
    pub session_drift: f32,
    /// Std-dev of the per-session multiplicative channel-gain walk.
    pub gain_drift: f32,
    /// Additive white sensor-noise std-dev (relative to unit carrier RMS).
    pub sensor_noise: f32,
    /// Std-dev of per-subject perturbation of the base mixing matrix.
    pub subject_variability: f32,
    /// Std-dev of per-subject perturbation of the synergy vectors.
    pub style_variability: f32,
    /// Range half-width of the per-subject difficulty multiplier: subject
    /// noise/drift is scaled by `1 ± difficulty_spread` (uniform). Creates
    /// the strong/weak-subject split visible in Fig. 3.
    pub difficulty_spread: f32,
}

impl Default for DatasetSpec {
    /// Scaled-down default used by the experiment harnesses in `--quick`
    /// mode: full 10×10 protocol shape, ~1 s repetitions, 75 ms slide.
    fn default() -> Self {
        DatasetSpec {
            subjects: 10,
            sessions: 10,
            reps_per_gesture: 3,
            rep_duration_s: 1.0,
            slide: 150,
            seed: 0xD86_2022,
            session_drift: 0.055,
            gain_drift: 0.045,
            sensor_noise: 0.45,
            subject_variability: 0.35,
            style_variability: 0.085,
            difficulty_spread: 0.55,
        }
    }
}

impl DatasetSpec {
    /// The real DB6 acquisition protocol (10 subjects, 10 sessions, 12
    /// repetitions of ~6 s, 15 ms slide). **Enormous** — only use for
    /// `--full` runs with hours of budget.
    pub fn paper() -> Self {
        DatasetSpec {
            reps_per_gesture: 12,
            rep_duration_s: 6.0,
            slide: 30,
            ..DatasetSpec::default()
        }
    }

    /// Seconds-scale configuration for unit and integration tests:
    /// 2 subjects × 4 sessions, 2 short repetitions.
    pub fn tiny() -> Self {
        DatasetSpec {
            subjects: 2,
            sessions: 4,
            reps_per_gesture: 2,
            rep_duration_s: 0.6,
            slide: 150,
            ..DatasetSpec::default()
        }
    }

    /// Samples in one repetition.
    pub fn rep_samples(&self) -> usize {
        (self.rep_duration_s * SAMPLE_RATE as f32).round() as usize
    }

    /// Windows extracted from one repetition.
    pub fn windows_per_rep(&self) -> usize {
        let t = self.rep_samples();
        if t < WINDOW {
            0
        } else {
            (t - WINDOW) / self.slide + 1
        }
    }

    /// Windows in one (subject, session) recording
    /// (`gestures × reps × windows_per_rep`).
    pub fn windows_per_session(&self) -> usize {
        crate::GESTURE_CLASSES * self.reps_per_gesture * self.windows_per_rep()
    }

    /// Sessions used for training in the paper's sequential protocol
    /// (first half: sessions 1–5 of 10, i.e. indices `0..5`).
    pub fn train_sessions(&self) -> Vec<usize> {
        (0..self.sessions / 2).collect()
    }

    /// Sessions held out for testing (second half: indices `5..10`).
    pub fn test_sessions(&self) -> Vec<usize> {
        (self.sessions / 2..self.sessions).collect()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.subjects == 0 {
            return Err("subjects must be > 0".into());
        }
        if self.sessions < 2 {
            return Err("sessions must be >= 2 (need train and test)".into());
        }
        if self.reps_per_gesture == 0 {
            return Err("reps_per_gesture must be > 0".into());
        }
        if self.rep_samples() < WINDOW {
            return Err(format!(
                "rep_duration too short: {} samples < window {}",
                self.rep_samples(),
                WINDOW
            ));
        }
        if self.slide == 0 {
            return Err("slide must be > 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DatasetSpec::default().validate().unwrap();
        DatasetSpec::paper().validate().unwrap();
        DatasetSpec::tiny().validate().unwrap();
    }

    #[test]
    fn paper_window_counts() {
        let p = DatasetSpec::paper();
        assert_eq!(p.rep_samples(), 12_000);
        // (12000-300)/30+1 = 391 windows per 6 s repetition
        assert_eq!(p.windows_per_rep(), 391);
    }

    #[test]
    fn default_window_counts() {
        let d = DatasetSpec::default();
        assert_eq!(d.rep_samples(), 2000);
        assert_eq!(d.windows_per_rep(), 12);
        assert_eq!(d.windows_per_session(), 8 * 3 * 12);
    }

    #[test]
    fn session_split_halves() {
        let d = DatasetSpec::default();
        assert_eq!(d.train_sessions(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.test_sessions(), vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = DatasetSpec::tiny();
        s.rep_duration_s = 0.05;
        assert!(s.validate().is_err());
        let mut s2 = DatasetSpec::tiny();
        s2.sessions = 1;
        assert!(s2.validate().is_err());
        let mut s3 = DatasetSpec::tiny();
        s3.slide = 0;
        assert!(s3.validate().is_err());
    }
}
