//! Per-session electrode drift model (donning/doffing, multi-day).

use crate::spec::DatasetSpec;
use crate::subject::{derive_seed, randn, SubjectModel};
use crate::CHANNELS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The effective acquisition state of one `(subject, session)` pair.
///
/// DB6's 10 sessions are spread over 5 days, morning and afternoon
/// (paper §III-C). Drift is modelled as a random walk on the subject's
/// mixing matrix: a **small** step between the two sessions of the same day
/// and a **large** step overnight, when the electrode array is re-donned —
/// "electrode re-positioning ... represent major causes of signal
/// degradation and variability" (paper §II-A). Because the walk
/// accumulates, later sessions are statistically farther from the training
/// sessions, producing the monotone accuracy decay of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionModel {
    /// Subject index.
    pub subject: usize,
    /// Session index (0-based; paper numbers them 1–10).
    pub session: usize,
    /// Drifted mixing matrix, `[CHANNELS × MUSCLES]` row-major.
    pub mixing: Vec<f32>,
    /// Per-channel multiplicative gains (skin-electrode impedance).
    pub gains: [f32; CHANNELS],
    /// 50 Hz powerline interference amplitude.
    pub powerline_amp: f32,
    /// 50 Hz interference phase.
    pub powerline_phase: f32,
    /// Motion-artefact rate, events per second.
    pub artifact_rate: f32,
}

/// Relative walk step for the transition *into* session `k` (k ≥ 1):
/// within-day (afternoon) steps are small, overnight re-donning steps are
/// large.
fn step_scale(session: usize) -> f32 {
    if session % 2 == 1 {
        0.5 // same day, electrodes untouched: only sweat/fatigue drift
    } else {
        1.6 // new day: array re-donned
    }
}

impl SessionModel {
    /// Deterministically generates the state of `(subject, session)` by
    /// replaying the drift walk from session 0.
    pub fn generate(spec: &DatasetSpec, subject: &SubjectModel, session: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, &[2, subject.id as u64]));
        let drift_sigma = spec.session_drift * subject.difficulty;
        let gain_sigma = spec.gain_drift * subject.difficulty;

        let mut mixing = subject.mixing.clone();
        let mut gains = [1.0f32; CHANNELS];
        // Replay the walk: session 0 starts at the subject's nominal state
        // (plus its own donning realisation), each later session adds one
        // step. Replaying from 0 keeps any session reproducible in isolation.
        for k in 0..=session {
            let scale = if k == 0 { 1.0 } else { step_scale(k) };
            for v in &mut mixing {
                *v += drift_sigma * scale * randn(&mut rng);
            }
            for g in &mut gains {
                *g *= 1.0 + gain_sigma * scale * randn(&mut rng);
                *g = g.clamp(0.3, 3.0);
            }
        }
        // Session-local nuisance parameters come from a session-specific
        // stream so they don't perturb the walk replay.
        let mut srng = StdRng::seed_from_u64(derive_seed(
            spec.seed,
            &[3, subject.id as u64, session as u64],
        ));
        SessionModel {
            subject: subject.id,
            session,
            mixing,
            gains,
            powerline_amp: srng.gen_range(0.01..0.08),
            powerline_phase: srng.gen_range(0.0..std::f32::consts::TAU),
            artifact_rate: srng.gen_range(0.2f32..1.0) * subject.difficulty,
        }
    }

    /// Frobenius distance of this session's mixing matrix from another's —
    /// used in tests to verify the monotone-drift property.
    pub fn mixing_distance(&self, other: &SessionModel) -> f32 {
        self.mixing
            .iter()
            .zip(other.mixing.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DatasetSpec, SubjectModel) {
        let spec = DatasetSpec::default();
        let subj = SubjectModel::generate(&spec, 0);
        (spec, subj)
    }

    #[test]
    fn deterministic() {
        let (spec, subj) = setup();
        let a = SessionModel::generate(&spec, &subj, 3);
        let b = SessionModel::generate(&spec, &subj, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_differ() {
        let (spec, subj) = setup();
        let a = SessionModel::generate(&spec, &subj, 0);
        let b = SessionModel::generate(&spec, &subj, 1);
        assert!(a.mixing_distance(&b) > 0.0);
    }

    #[test]
    fn drift_grows_with_session_distance() {
        let (spec, subj) = setup();
        let s0 = SessionModel::generate(&spec, &subj, 0);
        // Average over later sessions: distance from session 0 should
        // broadly increase (it's a random walk, so compare first vs last
        // thirds rather than adjacent pairs).
        let dists: Vec<f32> = (1..10)
            .map(|k| SessionModel::generate(&spec, &subj, k).mixing_distance(&s0))
            .collect();
        let early: f32 = dists[..3].iter().sum::<f32>() / 3.0;
        let late: f32 = dists[6..].iter().sum::<f32>() / 3.0;
        assert!(
            late > early,
            "drift should accumulate: early {early}, late {late} (dists {dists:?})"
        );
    }

    #[test]
    fn overnight_steps_larger_than_within_day() {
        assert!(step_scale(2) > step_scale(1));
        assert!(step_scale(4) > step_scale(3));
    }

    #[test]
    fn gains_stay_bounded() {
        let (spec, subj) = setup();
        for k in 0..10 {
            let s = SessionModel::generate(&spec, &subj, k);
            for g in s.gains {
                assert!((0.3..=3.0).contains(&g));
            }
        }
    }

    #[test]
    fn replay_consistency_prefix() {
        // Generating session 5 directly must equal generating it after
        // having generated sessions 0..4 (pure function of inputs).
        let (spec, subj) = setup();
        let direct = SessionModel::generate(&spec, &subj, 5);
        for k in 0..5 {
            let _ = SessionModel::generate(&spec, &subj, k);
        }
        let after = SessionModel::generate(&spec, &subj, 5);
        assert_eq!(direct, after);
    }
}
