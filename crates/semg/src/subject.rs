//! Per-subject anatomy and style model.

use crate::gestures::SYNERGY;
use crate::spec::DatasetSpec;
use crate::{CHANNELS, GESTURE_CLASSES, MUSCLES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a standard normal via Box–Muller (rand 0.8 has no `rand_distr`
/// in this workspace's dependency budget).
pub(crate) fn randn(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Stable per-entity sub-seed derivation (splitmix64-style).
pub(crate) fn derive_seed(master: u64, parts: &[u64]) -> u64 {
    let mut h = master ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h ^= p.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// The anatomy/style of one subject: how muscle activity couples into the
/// 14 electrodes and how this subject executes each gesture.
///
/// All subjects share a common **base mixing matrix** (electrode geometry
/// around the forearm); per-subject matrices are perturbations of it. The
/// shared component is what a pre-trained network can exploit across
/// subjects — remove it (crank `subject_variability` up) and the paper's
/// inter-subject pre-training gain disappears.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectModel {
    /// Subject index (0-based; the paper numbers subjects 1–10).
    pub id: usize,
    /// Electrode × muscle coupling matrix, row-major `[CHANNELS × MUSCLES]`.
    pub mixing: Vec<f32>,
    /// Subject-styled synergy table (perturbed copy of
    /// [`crate::gestures::SYNERGY`]).
    pub synergy: [[f32; MUSCLES]; GESTURE_CLASSES],
    /// Overall contraction amplitude (0.7–1.3).
    pub amplitude: f32,
    /// Difficulty multiplier applied to this subject's noise and drift
    /// (`1 ± difficulty_spread`); spreads subjects apart as in Fig. 3.
    pub difficulty: f32,
}

/// The base electrode↔muscle coupling shared by all subjects: electrodes
/// sit on a ring around the forearm, muscles at fixed angular positions;
/// coupling decays with angular distance.
pub fn base_mixing(seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, &[0xBA5E]));
    let mut m = vec![0.0f32; CHANNELS * MUSCLES];
    for e in 0..CHANNELS {
        let theta_e = e as f32 / CHANNELS as f32;
        for mu in 0..MUSCLES {
            let theta_m = mu as f32 / MUSCLES as f32;
            let mut d = (theta_e - theta_m).abs();
            if d > 0.5 {
                d = 1.0 - d;
            }
            // Sharp spatial selectivity plus a small seeded irregularity.
            let coupling = (-(d * d) / 0.015).exp() + 0.05 * rng.gen_range(0.0f32..1.0);
            m[e * MUSCLES + mu] = coupling;
        }
        // Normalise each electrode's row so overall signal power is
        // comparable across electrodes.
        let norm: f32 = m[e * MUSCLES..(e + 1) * MUSCLES]
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt();
        for mu in 0..MUSCLES {
            m[e * MUSCLES + mu] /= norm.max(1e-6);
        }
    }
    m
}

impl SubjectModel {
    /// Deterministically generates subject `id` under `spec`.
    pub fn generate(spec: &DatasetSpec, id: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, &[1, id as u64]));
        let base = base_mixing(spec.seed);
        let mut mixing = base.clone();
        for v in &mut mixing {
            *v += spec.subject_variability * randn(&mut rng) * 0.5;
        }
        let mut synergy = SYNERGY;
        for row in &mut synergy {
            for v in row.iter_mut() {
                let jitter = 1.0 + spec.style_variability * randn(&mut rng);
                *v =
                    (*v * jitter + 0.03 * spec.style_variability * randn(&mut rng)).clamp(0.0, 1.3);
            }
        }
        let amplitude = rng.gen_range(0.7..1.3);
        let difficulty = 1.0 + rng.gen_range(-spec.difficulty_spread..spec.difficulty_spread);
        SubjectModel {
            id,
            mixing,
            synergy,
            amplitude,
            difficulty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_spec() {
        let spec = DatasetSpec::tiny();
        let a = SubjectModel::generate(&spec, 0);
        let b = SubjectModel::generate(&spec, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn subjects_differ() {
        let spec = DatasetSpec::tiny();
        let a = SubjectModel::generate(&spec, 0);
        let b = SubjectModel::generate(&spec, 1);
        assert_ne!(a.mixing, b.mixing);
        assert_ne!(a.difficulty, b.difficulty);
    }

    #[test]
    fn mixing_close_to_shared_base() {
        let spec = DatasetSpec::default();
        let base = base_mixing(spec.seed);
        let subj = SubjectModel::generate(&spec, 3);
        // Per-subject deviation should be bounded: shared structure must
        // dominate for inter-subject pre-training to work.
        let dev: f32 = base
            .iter()
            .zip(subj.mixing.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let base_norm: f32 = base.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            dev < base_norm,
            "subject deviates more than the base norm ({dev} vs {base_norm})"
        );
    }

    #[test]
    fn difficulty_within_spread() {
        let spec = DatasetSpec::default();
        for id in 0..10 {
            let s = SubjectModel::generate(&spec, id);
            assert!(s.difficulty >= 1.0 - spec.difficulty_spread);
            assert!(s.difficulty <= 1.0 + spec.difficulty_spread);
        }
    }

    #[test]
    fn difficulty_varies_across_subjects() {
        let spec = DatasetSpec::default();
        let diffs: Vec<f32> = (0..10)
            .map(|id| SubjectModel::generate(&spec, id).difficulty)
            .collect();
        let min = diffs.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = diffs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.3, "difficulty range too narrow: {min}..{max}");
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        let a = derive_seed(42, &[1, 2, 3]);
        let b = derive_seed(42, &[1, 2, 3]);
        let c = derive_seed(42, &[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
