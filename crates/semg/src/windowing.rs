//! Sliding-window extraction from continuous recordings.

use crate::WINDOW;
use bioformer_tensor::Tensor;

/// Start offsets of all full windows of length [`WINDOW`] in a recording of
/// `len` samples with the given `slide`.
///
/// # Panics
///
/// Panics if `slide == 0`.
pub fn window_offsets(len: usize, slide: usize) -> Vec<usize> {
    assert!(slide > 0, "window slide must be positive");
    if len < WINDOW {
        return Vec::new();
    }
    (0..=(len - WINDOW)).step_by(slide).collect()
}

/// Extracts the window starting at `offset` from a `[channels, len]`
/// recording into a `[channels, WINDOW]` tensor.
///
/// # Panics
///
/// Panics if the window would run past the end of the recording.
pub fn extract_window(signal: &Tensor, offset: usize) -> Tensor {
    let (c, len) = (signal.dims()[0], signal.dims()[1]);
    assert!(
        offset + WINDOW <= len,
        "window at {offset} overruns recording of {len} samples"
    );
    let mut out = Tensor::zeros(&[c, WINDOW]);
    for ch in 0..c {
        out.data_mut()[ch * WINDOW..(ch + 1) * WINDOW]
            .copy_from_slice(&signal.data()[ch * len + offset..ch * len + offset + WINDOW]);
    }
    out
}

/// Extracts all windows of a recording, appending them (row-major) into
/// `dst`, which must be laid out as consecutive `[channels × WINDOW]`
/// samples. Returns the number of windows written.
pub fn extract_all_into(signal: &Tensor, slide: usize, dst: &mut Vec<f32>) -> usize {
    let (c, len) = (signal.dims()[0], signal.dims()[1]);
    let offsets = window_offsets(len, slide);
    for &off in &offsets {
        for ch in 0..c {
            dst.extend_from_slice(&signal.data()[ch * len + off..ch * len + off + WINDOW]);
        }
    }
    offsets.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_count_matches_formula() {
        // (2000-300)/150 + 1 = 12
        assert_eq!(window_offsets(2000, 150).len(), 12);
        // exact fit
        assert_eq!(window_offsets(300, 300), vec![0]);
        // too short
        assert!(window_offsets(299, 10).is_empty());
    }

    #[test]
    fn offsets_are_strided() {
        let offs = window_offsets(900, 300);
        assert_eq!(offs, vec![0, 300, 600]);
    }

    #[test]
    fn extract_window_copies_channels() {
        let signal = Tensor::from_fn(&[2, 600], |i| i as f32);
        let w = extract_window(&signal, 100);
        assert_eq!(w.dims(), &[2, WINDOW]);
        assert_eq!(w.at(&[0, 0]), 100.0);
        assert_eq!(w.at(&[1, 0]), 700.0);
        assert_eq!(w.at(&[1, 299]), 999.0);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn extract_past_end_panics() {
        let signal = Tensor::zeros(&[1, 400]);
        extract_window(&signal, 200);
    }

    #[test]
    fn extract_all_matches_single_extracts() {
        let signal = Tensor::from_fn(&[3, 750], |i| (i % 97) as f32);
        let mut buf = Vec::new();
        let n = extract_all_into(&signal, 150, &mut buf);
        let offs = window_offsets(750, 150);
        assert_eq!(n, offs.len());
        assert_eq!(buf.len(), n * 3 * WINDOW);
        for (wi, &off) in offs.iter().enumerate() {
            let w = extract_window(&signal, off);
            let got = &buf[wi * 3 * WINDOW..(wi + 1) * 3 * WINDOW];
            assert_eq!(got, w.data(), "window {wi} mismatch");
        }
    }
}
