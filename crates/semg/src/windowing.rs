//! Sliding-window extraction from continuous recordings — offline (whole
//! recording in memory) and online (samples arriving incrementally, as the
//! streaming serving layer sees them).

use crate::WINDOW;
use bioformer_tensor::Tensor;

/// Start offsets of all full windows of length [`WINDOW`] in a recording of
/// `len` samples with the given `slide`.
///
/// Returns an empty vector when the recording is shorter than one window
/// **or** when `slide == 0` (a zero slide would repeat offset 0 forever;
/// there is no useful window set to return).
pub fn window_offsets(len: usize, slide: usize) -> Vec<usize> {
    if slide == 0 || len < WINDOW {
        return Vec::new();
    }
    (0..=(len - WINDOW)).step_by(slide).collect()
}

/// Extracts the window starting at `offset` from a `[channels, len]`
/// recording into a `[channels, WINDOW]` tensor.
///
/// Returns `None` when the window would run past the end of the recording
/// (`offset + WINDOW > len`), so callers iterating near the tail of a
/// signal can stop cleanly instead of panicking.
pub fn extract_window(signal: &Tensor, offset: usize) -> Option<Tensor> {
    let (c, len) = (signal.dims()[0], signal.dims()[1]);
    if offset + WINDOW > len {
        return None;
    }
    let mut out = Tensor::zeros(&[c, WINDOW]);
    for ch in 0..c {
        out.data_mut()[ch * WINDOW..(ch + 1) * WINDOW]
            .copy_from_slice(&signal.data()[ch * len + offset..ch * len + offset + WINDOW]);
    }
    Some(out)
}

/// Extracts all windows of a recording, appending them (row-major) into
/// `dst`, which must be laid out as consecutive `[channels × WINDOW]`
/// samples. Returns the number of windows written — 0 when the recording
/// is shorter than one window or `slide == 0` (never panics).
pub fn extract_all_into(signal: &Tensor, slide: usize, dst: &mut Vec<f32>) -> usize {
    let (c, len) = (signal.dims()[0], signal.dims()[1]);
    let offsets = window_offsets(len, slide);
    for &off in &offsets {
        for ch in 0..c {
            dst.extend_from_slice(&signal.data()[ch * len + off..ch * len + off + WINDOW]);
        }
    }
    offsets.len()
}

/// Online sliding-window extraction over a live sample stream.
///
/// The offline functions above assume the whole `[channels, len]` recording
/// is in memory; a real-time gesture recogniser instead sees **interleaved
/// frames** arriving a few samples at a time (`[c0, c1, …, c_{C-1}]` per
/// time step, the layout an ADC DMA buffer delivers). `OnlineWindower`
/// buffers just enough signal to emit each window exactly once, in channel-
/// major `[channels × window]` layout — **bit-identical** to what
/// [`extract_all_into`] produces for the same concatenated signal, no
/// matter how the stream is chunked (1 sample at a time, whole-signal
/// pushes, partial frames that split a time step across two pushes).
///
/// Memory is bounded: at most one window plus one slide of samples per
/// channel is retained, independent of stream length.
///
/// ```
/// use bioformer_semg::windowing::OnlineWindower;
///
/// let mut w = OnlineWindower::new(2, 4, 2); // 2 channels, window 4, slide 2
/// w.push_interleaved(&[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]); // 3 frames
/// assert!(w.next_window().is_none()); // only 3 of 4 frames buffered
/// w.push_interleaved(&[3.0, 13.0, 4.0, 14.0]); // frames 3 and 4
/// // First window covers frames 0..4, channel-major.
/// assert_eq!(
///     w.next_window().unwrap(),
///     &[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]
/// );
/// assert!(w.next_window().is_none()); // next window needs frame 5
/// ```
#[derive(Debug, Clone)]
pub struct OnlineWindower {
    channels: usize,
    window: usize,
    slide: usize,
    /// Per-channel sample buffers, all the same length, holding the stream
    /// from absolute frame position `start`.
    chans: Vec<Vec<f32>>,
    /// Absolute frame position of `chans[*][0]`.
    start: usize,
    /// Absolute frame position of the next window to emit.
    next: usize,
    /// Buffered partial frame (fewer than `channels` samples of one step).
    partial: Vec<f32>,
    /// Channel-major scratch the emitted window is assembled into.
    scratch: Vec<f32>,
    emitted: usize,
    frames: usize,
}

impl OnlineWindower {
    /// Creates a windower emitting `[channels × window]` windows every
    /// `slide` frames.
    ///
    /// # Panics
    ///
    /// Panics if any argument is 0.
    pub fn new(channels: usize, window: usize, slide: usize) -> Self {
        assert!(channels > 0, "OnlineWindower: channels must be >= 1");
        assert!(window > 0, "OnlineWindower: window must be >= 1");
        assert!(slide > 0, "OnlineWindower: slide must be >= 1");
        OnlineWindower {
            channels,
            window,
            slide,
            chans: vec![Vec::new(); channels],
            start: 0,
            next: 0,
            partial: Vec::with_capacity(channels),
            scratch: vec![0.0; channels * window],
            emitted: 0,
            frames: 0,
        }
    }

    /// The configured channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The configured window length in frames.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configured slide in frames.
    pub fn slide(&self) -> usize {
        self.slide
    }

    /// Complete frames absorbed so far.
    pub fn frames_pushed(&self) -> usize {
        self.frames
    }

    /// Windows emitted so far via [`OnlineWindower::next_window`].
    pub fn windows_emitted(&self) -> usize {
        self.emitted
    }

    /// Absorbs interleaved samples: `samples[k]` belongs to channel
    /// `k % channels` of the stream (continuing any partial frame left by
    /// the previous push). Any chunk length is accepted, including lengths
    /// that split a frame across pushes.
    pub fn push_interleaved(&mut self, samples: &[f32]) {
        for &s in samples {
            self.partial.push(s);
            if self.partial.len() == self.channels {
                for (ch, &v) in self.partial.iter().enumerate() {
                    self.chans[ch].push(v);
                }
                self.partial.clear();
                self.frames += 1;
            }
        }
    }

    /// Emits the next full window in channel-major `[channels × window]`
    /// layout, or `None` until enough frames have been pushed. The returned
    /// slice is valid until the next call on the windower.
    pub fn next_window(&mut self) -> Option<&[f32]> {
        let buffered = self.chans[0].len();
        if self.start + buffered < self.next + self.window {
            return None;
        }
        let at = self.next - self.start;
        for ch in 0..self.channels {
            self.scratch[ch * self.window..(ch + 1) * self.window]
                .copy_from_slice(&self.chans[ch][at..at + self.window]);
        }
        self.emitted += 1;
        self.next += self.slide;
        // Drop frames no window will ever need again (those before `next`).
        let drop = (self.next - self.start).min(buffered);
        if drop > 0 {
            for ch in &mut self.chans {
                ch.drain(..drop);
            }
            self.start += drop;
        }
        Some(&self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_count_matches_formula() {
        // (2000-300)/150 + 1 = 12
        assert_eq!(window_offsets(2000, 150).len(), 12);
        // exact fit
        assert_eq!(window_offsets(300, 300), vec![0]);
        // too short
        assert!(window_offsets(299, 10).is_empty());
    }

    #[test]
    fn offsets_are_strided() {
        let offs = window_offsets(900, 300);
        assert_eq!(offs, vec![0, 300, 600]);
    }

    #[test]
    fn zero_slide_yields_no_offsets_instead_of_panicking() {
        assert!(window_offsets(2000, 0).is_empty());
        let signal = Tensor::zeros(&[2, 900]);
        let mut buf = Vec::new();
        assert_eq!(extract_all_into(&signal, 0, &mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn extract_window_copies_channels() {
        let signal = Tensor::from_fn(&[2, 600], |i| i as f32);
        let w = extract_window(&signal, 100).expect("in range");
        assert_eq!(w.dims(), &[2, WINDOW]);
        assert_eq!(w.at(&[0, 0]), 100.0);
        assert_eq!(w.at(&[1, 0]), 700.0);
        assert_eq!(w.at(&[1, 299]), 999.0);
    }

    #[test]
    fn extract_past_end_returns_none() {
        let signal = Tensor::zeros(&[1, 400]);
        // 200 + 300 > 400: overrun.
        assert!(extract_window(&signal, 200).is_none());
        // Exact fit at the last valid offset still works.
        assert!(extract_window(&signal, 100).is_some());
        // A recording shorter than one window has no valid offset at all.
        let short = Tensor::zeros(&[1, WINDOW - 1]);
        assert!(extract_window(&short, 0).is_none());
    }

    #[test]
    fn extract_all_handles_boundary_lengths() {
        let mut buf = Vec::new();
        // len < window: nothing extracted.
        let short = Tensor::zeros(&[2, WINDOW - 1]);
        assert_eq!(extract_all_into(&short, 10, &mut buf), 0);
        // Exact fit: exactly one window.
        let exact = Tensor::from_fn(&[2, WINDOW], |i| i as f32);
        assert_eq!(extract_all_into(&exact, 10, &mut buf), 1);
        assert_eq!(buf.len(), 2 * WINDOW);
        assert_eq!(buf[..WINDOW], exact.data()[..WINDOW]);
        // slide > len: still just the offset-0 window.
        buf.clear();
        assert_eq!(extract_all_into(&exact, 10 * WINDOW, &mut buf), 1);
    }

    #[test]
    fn extract_all_matches_single_extracts() {
        let signal = Tensor::from_fn(&[3, 750], |i| (i % 97) as f32);
        let mut buf = Vec::new();
        let n = extract_all_into(&signal, 150, &mut buf);
        let offs = window_offsets(750, 150);
        assert_eq!(n, offs.len());
        assert_eq!(buf.len(), n * 3 * WINDOW);
        for (wi, &off) in offs.iter().enumerate() {
            let w = extract_window(&signal, off).expect("offset in range");
            let got = &buf[wi * 3 * WINDOW..(wi + 1) * 3 * WINDOW];
            assert_eq!(got, w.data(), "window {wi} mismatch");
        }
    }

    /// Interleaves a `[channels, len]` channel-major recording into the
    /// frame stream an ADC would deliver.
    fn interleave(signal: &Tensor) -> Vec<f32> {
        let (c, len) = (signal.dims()[0], signal.dims()[1]);
        let mut out = Vec::with_capacity(c * len);
        for t in 0..len {
            for ch in 0..c {
                out.push(signal.data()[ch * len + t]);
            }
        }
        out
    }

    /// Streams `stream` through a windower in chunks of `chunk` samples and
    /// collects every emitted window.
    fn stream_windows(
        channels: usize,
        window: usize,
        slide: usize,
        stream: &[f32],
        chunk: usize,
    ) -> Vec<Vec<f32>> {
        let mut w = OnlineWindower::new(channels, window, slide);
        let mut out = Vec::new();
        for part in stream.chunks(chunk.max(1)) {
            w.push_interleaved(part);
            while let Some(win) = w.next_window() {
                out.push(win.to_vec());
            }
        }
        out
    }

    #[test]
    fn online_matches_offline_for_any_chunking() {
        let signal = Tensor::from_fn(&[3, 900], |i| ((i * 31) % 113) as f32 - 50.0);
        let stream = interleave(&signal);
        for slide in [1, 7, 150, 300, 450] {
            let mut offline = Vec::new();
            let n = {
                // Offline path at WINDOW=300 only works for the crate
                // window; emulate arbitrary slide via window_offsets.
                let offs = window_offsets(900, slide);
                for &off in &offs {
                    let w = extract_window(&signal, off).unwrap();
                    offline.extend_from_slice(w.data());
                }
                offs.len()
            };
            for chunk in [1, 2, 3, 5, 41, 2700] {
                let online = stream_windows(3, WINDOW, slide, &stream, chunk);
                assert_eq!(online.len(), n, "slide {slide} chunk {chunk} count");
                let flat: Vec<f32> = online.into_iter().flatten().collect();
                assert_eq!(flat, offline, "slide {slide} chunk {chunk} content");
            }
        }
    }

    #[test]
    fn online_handles_slide_larger_than_window() {
        // window 4, slide 7 over 20 frames: offsets 0, 7, 14 fit (14+4=18).
        let channels = 2;
        let frames = 20;
        let stream: Vec<f32> = (0..frames * channels).map(|i| i as f32).collect();
        let wins = stream_windows(channels, 4, 7, &stream, 3);
        assert_eq!(wins.len(), 3);
        // Window k starts at frame 7k; channel 0 sample = frame * 2.
        for (k, w) in wins.iter().enumerate() {
            assert_eq!(w[0], (7 * k * channels) as f32, "window {k} start");
            assert_eq!(w[4], (7 * k * channels + 1) as f32, "window {k} ch1");
        }
    }

    #[test]
    fn online_memory_stays_bounded() {
        let mut w = OnlineWindower::new(2, 8, 4);
        for i in 0..10_000 {
            w.push_interleaved(&[i as f32, -(i as f32)]);
            while w.next_window().is_some() {}
            assert!(
                w.chans[0].len() <= 8 + 4,
                "buffer grew to {} frames",
                w.chans[0].len()
            );
        }
        assert_eq!(w.frames_pushed(), 10_000);
        // (10000 - 8)/4 + 1 windows
        assert_eq!(w.windows_emitted(), (10_000 - 8) / 4 + 1);
    }

    #[test]
    #[should_panic(expected = "slide must be >= 1")]
    fn online_rejects_zero_slide() {
        let _ = OnlineWindower::new(2, 4, 0);
    }
}
