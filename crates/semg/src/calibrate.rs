//! Per-session user calibration (rest-period channel statistics).
//!
//! The paper's known weakness is inter-session drift: electrode re-donning
//! shifts the mixing matrix and per-channel gains between recording days
//! ([`crate::DatasetSpec::session_drift`] / `gain_drift` model exactly
//! this), so a normalizer frozen at training time systematically mis-scales
//! later sessions. The classic deployment fix — used by every commercial
//! sEMG armband — is a short **calibration window at session start**: DB6's
//! acquisition protocol opens every session with rest repetitions
//! ([`crate::Gesture::Rest`] is class 0), giving a label-free sample of the
//! session's channel statistics before any gesture is made.
//!
//! [`SessionCalibrator`] accumulates per-channel mean/variance over the
//! first `warmup_windows` raw windows of a stream, then freezes a blended
//! affine transform: channel statistics are moved from the frozen training
//! statistics toward the observed session statistics by `blend ∈ [0, 1]`.
//! Until warm-up completes the baseline transform applies unchanged, so a
//! calibrated session never behaves *worse* than a frozen one during
//! warm-up, and the switch is deterministic in the sample stream.

use crate::dataset::Normalizer;

/// Configuration of the per-session calibration transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Raw windows observed before the adapted transform freezes.
    pub warmup_windows: usize,
    /// Interpolation weight toward the observed session statistics
    /// (`0` = frozen baseline, `1` = pure session statistics).
    pub blend: f32,
}

impl Default for CalibrationConfig {
    /// 20 windows (≈ 1.5 s at the paper's 15 ms slide after the first
    /// window fills) and a balanced blend.
    fn default() -> Self {
        CalibrationConfig {
            warmup_windows: 20,
            blend: 0.5,
        }
    }
}

impl CalibrationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.warmup_windows == 0 {
            return Err("warmup_windows must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.blend) || !self.blend.is_finite() {
            return Err(format!("blend {} must be in [0, 1]", self.blend));
        }
        Ok(())
    }
}

/// Streaming per-channel statistics that fit a session-adapted affine
/// normalisation from the first seconds of a stream.
///
/// # Example
///
/// ```
/// use bioformer_semg::{CalibrationConfig, SessionCalibrator};
///
/// let mut cal = SessionCalibrator::new(
///     2,
///     None,
///     CalibrationConfig { warmup_windows: 1, blend: 1.0 },
/// );
/// // One [2, 4] channel-major window: channel 0 ≈ N(0,1), channel 1 scaled.
/// let mut w = vec![1.0, -1.0, 1.0, -1.0, 10.0, -10.0, 10.0, -10.0];
/// cal.normalize_window(&mut w);
/// assert!(cal.is_ready());
/// // Both channels now whitened by their own observed scale.
/// assert_eq!(w[0], w[4]);
/// ```
#[derive(Debug, Clone)]
pub struct SessionCalibrator {
    cfg: CalibrationConfig,
    channels: usize,
    baseline: Option<Normalizer>,
    windows_seen: usize,
    count: u64,
    sum: Vec<f64>,
    sumsq: Vec<f64>,
    adapted: Option<Normalizer>,
}

impl SessionCalibrator {
    /// Creates a calibrator for `channels`-channel windows. `baseline` is
    /// the frozen training-time normalizer (applied during warm-up and
    /// blended into the adapted transform); with `None` the warm-up applies
    /// no transform and the adapted statistics are purely the session's.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`, the config fails validation, or the
    /// baseline's channel count differs.
    pub fn new(channels: usize, baseline: Option<Normalizer>, cfg: CalibrationConfig) -> Self {
        assert!(channels > 0, "SessionCalibrator: channels must be > 0");
        if let Err(e) = cfg.validate() {
            panic!("invalid CalibrationConfig: {e}");
        }
        if let Some(b) = &baseline {
            assert_eq!(
                b.mean().len(),
                channels,
                "SessionCalibrator: baseline channel mismatch"
            );
        }
        SessionCalibrator {
            cfg,
            channels,
            baseline,
            windows_seen: 0,
            count: 0,
            sum: vec![0.0; channels],
            sumsq: vec![0.0; channels],
            adapted: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.cfg
    }

    /// Whether warm-up has completed and the adapted transform applies.
    pub fn is_ready(&self) -> bool {
        self.adapted.is_some()
    }

    /// Raw windows observed so far (saturates at `warmup_windows`).
    pub fn windows_seen(&self) -> usize {
        self.windows_seen
    }

    /// The frozen session-adapted normalizer, once warm-up completed.
    pub fn adapted(&self) -> Option<&Normalizer> {
        self.adapted.as_ref()
    }

    /// Observes one **raw** channel-major window (`[channels, len]`
    /// flattened). A no-op once warm-up has completed.
    ///
    /// # Panics
    ///
    /// Panics if the window length is not a positive multiple of the
    /// channel count.
    pub fn observe_window(&mut self, window: &[f32]) {
        if self.adapted.is_some() {
            return;
        }
        let c = self.channels;
        assert!(
            !window.is_empty() && window.len().is_multiple_of(c),
            "SessionCalibrator: window length {} not a multiple of {c}",
            window.len()
        );
        let per = window.len() / c;
        for ch in 0..c {
            let row = &window[ch * per..(ch + 1) * per];
            let mut s = 0.0f64;
            let mut q = 0.0f64;
            for &v in row {
                s += v as f64;
                q += (v as f64) * (v as f64);
            }
            self.sum[ch] += s;
            self.sumsq[ch] += q;
        }
        self.count += per as u64;
        self.windows_seen += 1;
        if self.windows_seen >= self.cfg.warmup_windows {
            self.freeze();
        }
    }

    /// Blends session statistics into the baseline and freezes the adapted
    /// transform. Overlapping sliding windows weight overlapped samples
    /// multiply, which is deliberate: the estimate matches exactly what the
    /// stream delivered.
    fn freeze(&mut self) {
        let n = self.count.max(1) as f64;
        let b = self.cfg.blend as f64;
        let mut mean = Vec::with_capacity(self.channels);
        let mut std = Vec::with_capacity(self.channels);
        for ch in 0..self.channels {
            let m = self.sum[ch] / n;
            let var = (self.sumsq[ch] / n - m * m).max(1e-12);
            let s = var.sqrt();
            let (bm, bs) = match &self.baseline {
                Some(base) => (base.mean()[ch] as f64, base.std()[ch] as f64),
                None => (0.0, 1.0),
            };
            mean.push(((1.0 - b) * bm + b * m) as f32);
            std.push((((1.0 - b) * bs + b * s).max(1e-6)) as f32);
        }
        self.adapted = Some(Normalizer::from_stats(mean, std));
    }

    /// The full streaming entry point: observes the raw window (during
    /// warm-up), then normalises it in place — with the adapted transform
    /// once ready, with the frozen baseline (if any) before that.
    pub fn normalize_window(&mut self, window: &mut [f32]) {
        self.observe_window(window);
        match (&self.adapted, &self.baseline) {
            (Some(adapted), _) => adapted.apply_window(window),
            (None, Some(base)) => base.apply_window(window),
            (None, None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(c: usize, per: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut w = Vec::with_capacity(c * per);
        for ch in 0..c {
            for i in 0..per {
                w.push(f(ch, i));
            }
        }
        w
    }

    #[test]
    fn warmup_applies_baseline_then_switches() {
        let base = Normalizer::from_stats(vec![0.0, 0.0], vec![1.0, 1.0]);
        let mut cal = SessionCalibrator::new(
            2,
            Some(base),
            CalibrationConfig {
                warmup_windows: 2,
                blend: 1.0,
            },
        );
        // Channel 1 runs 4× hotter than the baseline expects.
        let mk = || {
            window(
                2,
                8,
                |ch, i| if ch == 0 { 1.0 } else { 4.0 } * if i % 2 == 0 { 1.0 } else { -1.0 },
            )
        };
        let mut w1 = mk();
        cal.normalize_window(&mut w1);
        assert!(!cal.is_ready());
        // Baseline is the identity here, so warm-up leaves values unscaled.
        assert_eq!(w1[8].abs(), 4.0);
        let mut w2 = mk();
        cal.normalize_window(&mut w2);
        assert!(cal.is_ready());
        // Adapted transform whitens both channels to unit scale.
        assert!((w2[0].abs() - 1.0).abs() < 1e-4);
        assert!((w2[8].abs() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn blend_zero_reproduces_baseline_exactly() {
        let base = Normalizer::from_stats(vec![0.25, -0.5], vec![2.0, 0.5]);
        let mut cal = SessionCalibrator::new(
            2,
            Some(base.clone()),
            CalibrationConfig {
                warmup_windows: 1,
                blend: 0.0,
            },
        );
        let raw = window(2, 6, |ch, i| (ch * 10 + i) as f32 * 0.1);
        let mut adapted = raw.clone();
        cal.normalize_window(&mut adapted);
        let mut frozen = raw;
        base.apply_window(&mut frozen);
        assert_eq!(adapted, frozen, "blend 0 must be bit-identical to frozen");
    }

    #[test]
    fn observe_is_noop_after_freeze() {
        let mut cal = SessionCalibrator::new(
            1,
            None,
            CalibrationConfig {
                warmup_windows: 1,
                blend: 1.0,
            },
        );
        cal.observe_window(&[1.0, -1.0, 1.0, -1.0]);
        assert!(cal.is_ready());
        let frozen = cal.adapted().unwrap().clone();
        cal.observe_window(&[100.0, -100.0]);
        assert_eq!(cal.adapted().unwrap(), &frozen);
        assert_eq!(cal.windows_seen(), 1);
    }

    #[test]
    fn deterministic_in_the_stream() {
        let cfg = CalibrationConfig {
            warmup_windows: 3,
            blend: 0.7,
        };
        let run = || {
            let mut cal = SessionCalibrator::new(2, None, cfg);
            for k in 0..5u32 {
                let mut w = window(2, 4, |ch, i| ((ch + i) as f32 + k as f32).sin());
                cal.normalize_window(&mut w);
            }
            cal.adapted().unwrap().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "invalid CalibrationConfig")]
    fn bad_blend_panics() {
        let _ = SessionCalibrator::new(
            1,
            None,
            CalibrationConfig {
                warmup_windows: 1,
                blend: 1.5,
            },
        );
    }
}
