//! On-device memory placement audit.

use crate::arch::Gap8Spec;
use bioformer_core::NetworkDescriptor;

/// Result of checking a network against GAP8's memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Network label.
    pub network: String,
    /// Total weight bytes (int8 weights + int32 biases/affine params).
    pub weight_bytes: u64,
    /// Peak single-activation size in bytes (int8 activations).
    pub peak_activation_bytes: u64,
    /// Working set that must co-reside in L1 for the largest kernel
    /// (double-buffered input+output activations).
    pub l1_working_set_bytes: u64,
    /// Whether all weights fit in L2 alongside activations.
    pub fits_l2: bool,
    /// Whether the largest kernel's activations fit in L1 (weights are
    /// streamed; if false the kernel needs activation tiling too).
    pub activations_fit_l1: bool,
}

/// Audits a network against the memory hierarchy.
pub fn audit(net: &NetworkDescriptor, spec: &Gap8Spec) -> MemoryReport {
    let weight_bytes = net.memory_bytes();
    let peak_activation_bytes = net.peak_activation_elems(); // int8: 1 B/elem
                                                             // Largest kernel needs its input and output in L1 simultaneously;
                                                             // conservatively bound input by the same peak.
    let l1_working_set_bytes = 2 * peak_activation_bytes;
    MemoryReport {
        network: net.name.clone(),
        weight_bytes,
        peak_activation_bytes,
        l1_working_set_bytes,
        fits_l2: weight_bytes + 2 * peak_activation_bytes <= spec.l2_bytes as u64,
        activations_fit_l1: l1_working_set_bytes <= spec.l1_bytes as u64,
    }
}

impl MemoryReport {
    /// Weight memory in kibibytes — the paper's "Memory" column.
    pub fn memory_kb(&self) -> f64 {
        self.weight_bytes as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_core::config::BioformerConfig;
    use bioformer_core::descriptor::{bioformer_descriptor, temponet_descriptor};

    #[test]
    fn bioformers_fit_gap8() {
        for cfg in [BioformerConfig::bio1(), BioformerConfig::bio2()] {
            let r = audit(&bioformer_descriptor(&cfg), &Gap8Spec::default());
            assert!(r.fits_l2, "{}: weights must fit L2", r.network);
            assert!(
                r.activations_fit_l1,
                "{}: activations must fit L1",
                r.network
            );
        }
    }

    #[test]
    fn temponet_fits_l2_but_is_big() {
        let r = audit(&temponet_descriptor(), &Gap8Spec::default());
        assert!(r.fits_l2, "TEMPONet deployed on GAP8 in the paper");
        assert!(r.memory_kb() > 400.0, "TEMPONet ≈ 461 kB in the paper");
    }

    #[test]
    fn bio1_f10_matches_table1_memory() {
        let r = audit(
            &bioformer_descriptor(&BioformerConfig::bio1()),
            &Gap8Spec::default(),
        );
        assert!(
            (r.memory_kb() - 94.2).abs() / 94.2 < 0.05,
            "{} kB",
            r.memory_kb()
        );
    }

    #[test]
    fn tiny_l2_fails_fit() {
        let spec = Gap8Spec {
            l2_bytes: 10 * 1024,
            ..Gap8Spec::default()
        };
        let r = audit(&bioformer_descriptor(&BioformerConfig::bio1()), &spec);
        assert!(!r.fits_l2);
    }
}
