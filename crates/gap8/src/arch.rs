//! GAP8 hardware constants and calibrated kernel-cost coefficients.

/// Hardware description of the GAP8 in the paper's operating point
/// (100 MHz @ 1 V, 8-core cluster active at 51 mW, fabric controller alone
/// at 10 mW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gap8Spec {
    /// Cluster core count.
    pub cluster_cores: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Power with the 8-core cluster busy (W).
    pub cluster_power_w: f64,
    /// Power with only the fabric controller awake (W).
    pub fc_power_w: f64,
    /// Shared L1 scratchpad size in bytes (64 kB).
    pub l1_bytes: usize,
    /// L2 memory size in bytes (512 kB).
    pub l2_bytes: usize,
}

impl Default for Gap8Spec {
    fn default() -> Self {
        Gap8Spec {
            cluster_cores: 8,
            freq_hz: 100e6,
            cluster_power_w: 0.051,
            fc_power_w: 0.010,
            l1_bytes: 64 * 1024,
            l2_bytes: 512 * 1024,
        }
    }
}

impl Gap8Spec {
    /// Seconds per cycle.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.freq_hz
    }

    /// A spec with a different clock (power is scaled linearly with
    /// frequency — a first-order DVFS model at fixed voltage).
    pub fn at_frequency(mut self, freq_hz: f64) -> Self {
        let ratio = freq_hz / self.freq_hz;
        self.freq_hz = freq_hz;
        self.cluster_power_w *= ratio;
        self
    }

    /// A spec with a different cluster core count (for the core-scaling
    /// ablation bench).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cluster_cores = cores.max(1);
        self
    }
}

/// Calibrated per-kernel cost coefficients (cycles).
///
/// Calibration anchors (paper Table I, 100 MHz): Bio1 f∈{10,20,30} at
/// 2.72/1.37/1.03 ms, Bio2 f∈{10,30} at 4.82/1.55 ms, TEMPONet at
/// 21.82 ms. The defaults below land every row within ±15 % (pinned by the
/// crate tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCosts {
    /// int8 MACs per SIMD instruction (4-way `SumDotp`).
    pub simd_width: usize,
    /// Fixed cycles per GEMM output element (loads, requant, store).
    pub dot_overhead: f64,
    /// Cycles per MAC for *scalar* (non-SIMD-lowerable) convolutions.
    pub scalar_mac: f64,
    /// Fixed cycles per scalar-conv output element.
    pub scalar_overhead: f64,
    /// Cycles per softmax element (i-exp + normalisation).
    pub softmax_elem: f64,
    /// Cycles per LayerNorm element.
    pub ln_elem: f64,
    /// Cycles per LayerNorm row (integer sqrt).
    pub ln_row: f64,
    /// Cycles per GELU element (i-erf polynomial).
    pub gelu_elem: f64,
    /// Cycles per ReLU element.
    pub relu_elem: f64,
    /// Cycles per residual-add / pooling element.
    pub add_elem: f64,
    /// L2→L1 DMA bandwidth in bytes per cycle.
    pub dma_bytes_per_cycle: f64,
    /// Cluster-offload / barrier cost per kernel launch.
    pub kernel_setup: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            simd_width: 4,
            dot_overhead: 10.0,
            scalar_mac: 1.0,
            scalar_overhead: 10.0,
            softmax_elem: 25.0,
            ln_elem: 12.0,
            ln_row: 40.0,
            gelu_elem: 12.0,
            relu_elem: 2.0,
            add_elem: 3.0,
            dma_bytes_per_cycle: 4.0,
            kernel_setup: 1200.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_operating_point() {
        let s = Gap8Spec::default();
        assert_eq!(s.cluster_cores, 8);
        assert_eq!(s.freq_hz, 100e6);
        assert!((s.cluster_power_w - 0.051).abs() < 1e-9);
        assert_eq!(s.l1_bytes, 65_536);
        assert_eq!(s.l2_bytes, 524_288);
    }

    #[test]
    fn frequency_scaling_scales_power() {
        let s = Gap8Spec::default().at_frequency(200e6);
        assert_eq!(s.freq_hz, 200e6);
        assert!((s.cluster_power_w - 0.102).abs() < 1e-9);
    }

    #[test]
    fn cycle_time() {
        assert!((Gap8Spec::default().cycle_time_s() - 1e-8).abs() < 1e-15);
    }

    #[test]
    fn core_override_floors_at_one() {
        assert_eq!(Gap8Spec::default().with_cores(0).cluster_cores, 1);
    }
}
