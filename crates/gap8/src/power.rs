//! Energy, duty-cycled power and battery life.

use crate::arch::Gap8Spec;

/// Energy for one inference (cluster active for `latency_s`).
pub fn inference_energy_j(latency_s: f64, spec: &Gap8Spec) -> f64 {
    latency_s * spec.cluster_power_w
}

/// Average power when one inference of `latency_s` runs every `period_s`
/// and the SoC otherwise idles on the fabric controller (the paper duty-
/// cycles a 150 ms window classified every 15 ms, §IV-C).
///
/// If the inference cannot finish within the period, the cluster never
/// idles and the average is the full cluster power.
pub fn duty_cycled_power_w(latency_s: f64, period_s: f64, spec: &Gap8Spec) -> f64 {
    if latency_s >= period_s {
        spec.cluster_power_w
    } else {
        (latency_s * spec.cluster_power_w + (period_s - latency_s) * spec.fc_power_w) / period_s
    }
}

/// Battery life in hours for a battery of `mah` mAh at `volts` nominal
/// voltage under constant `power_w` draw.
pub fn battery_life_hours(mah: f64, volts: f64, power_w: f64) -> f64 {
    let energy_wh = mah / 1000.0 * volts;
    energy_wh / power_w
}

/// The paper's battery scenario: 1000 mAh at the Li-Po nominal 3.3 V.
pub fn paper_battery_life_hours(power_w: f64) -> f64 {
    battery_life_hours(1000.0, 3.3, power_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_matches_paper_bio1_f10() {
        // 2.72 ms × 51 mW = 0.139 mJ (Table I).
        let e = inference_energy_j(2.72e-3, &Gap8Spec::default());
        assert!((e - 0.139e-3).abs() / 0.139e-3 < 0.01, "{e}");
    }

    #[test]
    fn duty_cycle_matches_paper_scenario() {
        // §IV-C: 1.02 ms inference every 15 ms → 12.81 mW average.
        let p = duty_cycled_power_w(1.02e-3, 15e-3, &Gap8Spec::default());
        assert!((p - 12.81e-3).abs() / 12.81e-3 < 0.01, "{p}");
    }

    #[test]
    fn battery_life_matches_paper() {
        // ≈257 h for the duty-cycled Bioformer.
        let p = duty_cycled_power_w(1.02e-3, 15e-3, &Gap8Spec::default());
        let h = paper_battery_life_hours(p);
        assert!((h - 257.0).abs() / 257.0 < 0.02, "{h} h");
        // TEMPONet cannot meet the 15 ms period → full cluster power → ≈54 h.
        let pt = duty_cycled_power_w(21.82e-3, 15e-3, &Gap8Spec::default());
        let ht = paper_battery_life_hours(pt);
        assert!((ht - 54.0).abs() / 54.0 < 0.25, "{ht} h (paper ≈54)");
    }

    #[test]
    fn battery_life_inverse_in_power() {
        let h1 = battery_life_hours(1000.0, 3.3, 0.010);
        let h2 = battery_life_hours(1000.0, 3.3, 0.020);
        assert!((h1 / h2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overload_saturates_at_cluster_power() {
        let spec = Gap8Spec::default();
        assert_eq!(
            duty_cycled_power_w(20e-3, 15e-3, &spec),
            spec.cluster_power_w
        );
    }
}
