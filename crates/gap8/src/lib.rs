//! Analytical GAP8 deployment model for the Bioformers reproduction.
//!
//! The paper deploys its int8 networks on the GreenWaves **GAP8** — a PULP
//! MCU with one "fabric controller" RISC-V core plus an 8-core RISC-V
//! cluster (64 kB shared L1 scratchpad, 512 kB L2), running here at
//! 100 MHz / 1 V where the active cluster draws 51 mW and the idle SoC
//! 10 mW (paper Table I and §IV-C).
//!
//! Real silicon being unavailable, this crate models the deployment
//! analytically:
//!
//! * [`arch`] — hardware constants and calibrated kernel-cost coefficients.
//! * [`latency`] — per-kernel cycle model: 4×int8 SIMD GEMM throughput with
//!   per-output overheads, **head-limited parallelism** for attention
//!   kernels (the MCU-Transformer library parallelises MHSA over heads,
//!   which is why 2-head Bio2 is *slower* than 8-head Bio1 despite fewer
//!   MACs), scalar-rate temporal convolutions (TEMPONet), and L2→L1 DMA.
//! * [`memory`] — weight/activation placement audit against L1/L2.
//! * [`power`] — energy per inference, duty-cycled average power and
//!   battery life (the paper's 257 h vs 54 h comparison).
//! * [`deploy`] — one-call Table-I row generation.
//!
//! The cost coefficients are calibrated against the six latency rows of
//! the paper's Table I; the test-suite pins every row within ±15 %.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod deploy;
pub mod latency;
pub mod memory;
pub mod power;

pub use arch::Gap8Spec;
pub use deploy::DeploymentReport;
