//! Per-kernel cycle model.

use crate::arch::{Gap8Spec, KernelCosts};
use bioformer_core::{LayerDesc, NetworkDescriptor};

/// Cycle breakdown of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelLatency {
    /// Kernel label.
    pub name: String,
    /// Compute cycles (after core parallelisation).
    pub compute_cycles: f64,
    /// DMA cycles for streaming this kernel's weights from L2.
    pub dma_cycles: f64,
    /// Launch/barrier overhead cycles.
    pub setup_cycles: f64,
    /// MACs executed.
    pub macs: u64,
}

impl KernelLatency {
    /// Total cycles attributed to this kernel (DMA overlaps compute only
    /// partially on GAP8's single AXI port; modelled as serialised).
    pub fn total_cycles(&self) -> f64 {
        self.compute_cycles + self.dma_cycles + self.setup_cycles
    }
}

/// Whole-network latency result.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Network label.
    pub network: String,
    /// Per-kernel breakdown, in execution order.
    pub kernels: Vec<KernelLatency>,
    /// Total cycles for one inference.
    pub total_cycles: f64,
    /// Latency in seconds at the spec's clock.
    pub latency_s: f64,
}

impl LatencyReport {
    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }

    /// Effective MAC/cycle (the figure of merit implied by Table I).
    pub fn macs_per_cycle(&self) -> f64 {
        let macs: u64 = self.kernels.iter().map(|k| k.macs).sum();
        macs as f64 / self.total_cycles
    }
}

/// Cores usable by a kernel with parallelism granularity `groups`
/// (head-split attention kernels can use at most `groups` cores).
fn effective_cores(cores: usize, groups: usize) -> f64 {
    if groups <= 1 {
        cores as f64
    } else {
        cores.min(groups) as f64
    }
}

/// Cycle cost of one kernel.
pub fn kernel_latency(desc: &LayerDesc, spec: &Gap8Spec, costs: &KernelCosts) -> KernelLatency {
    let cores = spec.cluster_cores;
    let simd = costs.simd_width as f64;
    let macs = desc.macs();
    let (compute, dma) = match *desc {
        LayerDesc::Conv1d {
            in_ch,
            out_ch,
            kernel,
            out_len,
            gemm_lowered,
            ..
        } => {
            let elems = (out_ch * out_len) as f64;
            let k = (in_ch * kernel) as f64;
            let per_elem = if gemm_lowered {
                (k / simd).ceil() + costs.dot_overhead
            } else {
                k * costs.scalar_mac + costs.scalar_overhead
            };
            (elems * per_elem / cores as f64, desc.memory_bytes() as f64)
        }
        LayerDesc::Linear {
            rows,
            in_features,
            out_features,
            groups,
            ..
        } => {
            let elems = (rows * out_features) as f64;
            let per_elem = (in_features as f64 / simd).ceil() + costs.dot_overhead;
            (
                elems * per_elem / effective_cores(cores, groups),
                desc.memory_bytes() as f64,
            )
        }
        LayerDesc::MatMul {
            m, k, n, groups, ..
        } => {
            let elems = (m * n) as f64;
            let per_elem = (k as f64 / simd).ceil() + costs.dot_overhead;
            (elems * per_elem / effective_cores(cores, groups), 0.0)
        }
        LayerDesc::Softmax {
            rows, cols, groups, ..
        } => {
            let elems = (rows * cols) as f64;
            (
                elems * costs.softmax_elem / effective_cores(cores, groups),
                0.0,
            )
        }
        LayerDesc::LayerNorm { rows, width, .. } => {
            let elems = (rows * width) as f64;
            (
                (elems * costs.ln_elem + rows as f64 * costs.ln_row) / cores as f64,
                desc.memory_bytes() as f64,
            )
        }
        LayerDesc::Gelu { elems, .. } => (elems as f64 * costs.gelu_elem / cores as f64, 0.0),
        LayerDesc::Relu { elems, .. } => (elems as f64 * costs.relu_elem / cores as f64, 0.0),
        LayerDesc::Add { elems, .. } => (elems as f64 * costs.add_elem / cores as f64, 0.0),
        LayerDesc::AvgPool {
            channels,
            out_len,
            kernel,
            ..
        } => (
            (channels * out_len * kernel) as f64 * costs.add_elem / cores as f64,
            0.0,
        ),
        LayerDesc::Embedding { elems, .. } => (0.0, elems as f64),
    };
    KernelLatency {
        name: desc.name().to_string(),
        compute_cycles: compute,
        dma_cycles: dma / costs.dma_bytes_per_cycle,
        setup_cycles: if compute > 0.0 {
            costs.kernel_setup
        } else {
            0.0
        },
        macs,
    }
}

/// Full-network latency under the given spec and cost model.
pub fn network_latency(
    net: &NetworkDescriptor,
    spec: &Gap8Spec,
    costs: &KernelCosts,
) -> LatencyReport {
    let kernels: Vec<KernelLatency> = net
        .layers
        .iter()
        .map(|l| kernel_latency(l, spec, costs))
        .collect();
    let total_cycles: f64 = kernels.iter().map(KernelLatency::total_cycles).sum();
    LatencyReport {
        network: net.name.clone(),
        kernels,
        total_cycles,
        latency_s: total_cycles * spec.cycle_time_s(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_core::config::BioformerConfig;
    use bioformer_core::descriptor::{bioformer_descriptor, temponet_descriptor};

    fn latency_ms(net: &NetworkDescriptor) -> f64 {
        network_latency(net, &Gap8Spec::default(), &KernelCosts::default()).latency_ms()
    }

    /// Every latency row of the paper's Table I must be reproduced within
    /// ±15 %.
    #[test]
    fn table1_latency_rows() {
        let cases: [(NetworkDescriptor, f64); 6] = [
            (
                bioformer_descriptor(&BioformerConfig::bio1().with_filter(30)),
                1.03,
            ),
            (
                bioformer_descriptor(&BioformerConfig::bio1().with_filter(20)),
                1.37,
            ),
            (
                bioformer_descriptor(&BioformerConfig::bio1().with_filter(10)),
                2.72,
            ),
            (
                bioformer_descriptor(&BioformerConfig::bio2().with_filter(30)),
                1.55,
            ),
            (
                bioformer_descriptor(&BioformerConfig::bio2().with_filter(10)),
                4.82,
            ),
            (temponet_descriptor(), 21.82),
        ];
        for (net, expect) in cases {
            let got = latency_ms(&net);
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.15,
                "{}: {got:.2} ms vs paper {expect} ms ({:.0}% off)",
                net.name,
                rel * 100.0
            );
        }
    }

    /// The paper's headline: Bio2 (fewer MACs) is *slower* than Bio1 at
    /// filter 10 because 2-head attention underuses the 8-core cluster.
    #[test]
    fn bio2_slower_than_bio1_despite_fewer_macs() {
        let bio1 = bioformer_descriptor(&BioformerConfig::bio1());
        let bio2 = bioformer_descriptor(&BioformerConfig::bio2());
        assert!(bio2.macs() < bio1.macs());
        assert!(latency_ms(&bio2) > latency_ms(&bio1));
    }

    #[test]
    fn mac_per_cycle_ranges_match_paper() {
        let r1 = network_latency(
            &bioformer_descriptor(&BioformerConfig::bio1()),
            &Gap8Spec::default(),
            &KernelCosts::default(),
        );
        // Bio1 f10 implied: 3.3e6 MAC / 272k cycles ≈ 12 MAC/cyc.
        assert!(
            (9.0..16.0).contains(&r1.macs_per_cycle()),
            "Bio1 {} MAC/cyc",
            r1.macs_per_cycle()
        );
        let rt = network_latency(
            &temponet_descriptor(),
            &Gap8Spec::default(),
            &KernelCosts::default(),
        );
        assert!(
            (5.0..10.0).contains(&rt.macs_per_cycle()),
            "TEMPONet {} MAC/cyc",
            rt.macs_per_cycle()
        );
    }

    #[test]
    fn more_cores_is_faster_until_heads_saturate() {
        let net = bioformer_descriptor(&BioformerConfig::bio2());
        let costs = KernelCosts::default();
        let l4 = network_latency(&net, &Gap8Spec::default().with_cores(4), &costs).latency_s;
        let l8 = network_latency(&net, &Gap8Spec::default().with_cores(8), &costs).latency_s;
        assert!(l8 < l4, "8 cores should beat 4");
        // Bio2's attention is capped at 2 cores, so the 4→8 speed-up is
        // well below 2×.
        let speedup = l4 / l8;
        assert!(speedup < 1.8, "speed-up {speedup} should be sub-linear");
    }

    #[test]
    fn latency_scales_inverse_with_frequency() {
        let net = bioformer_descriptor(&BioformerConfig::bio1());
        let costs = KernelCosts::default();
        let base = network_latency(&net, &Gap8Spec::default(), &costs).latency_s;
        let fast =
            network_latency(&net, &Gap8Spec::default().at_frequency(200e6), &costs).latency_s;
        assert!((base / fast - 2.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_breakdown_sums_to_total() {
        let net = bioformer_descriptor(&BioformerConfig::bio1());
        let r = network_latency(&net, &Gap8Spec::default(), &KernelCosts::default());
        let sum: f64 = r.kernels.iter().map(KernelLatency::total_cycles).sum();
        assert!((sum - r.total_cycles).abs() < 1e-6);
        assert_eq!(r.kernels.len(), net.layers.len());
    }
}
