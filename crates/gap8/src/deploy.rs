//! One-call deployment analysis: the paper's Table I row for a network.

use crate::arch::{Gap8Spec, KernelCosts};
use crate::latency::{network_latency, LatencyReport};
use crate::memory::{audit, MemoryReport};
use crate::power::{duty_cycled_power_w, inference_energy_j, paper_battery_life_hours};
use bioformer_core::NetworkDescriptor;

/// Everything Table I reports for one network (quantized accuracy comes
/// from `bioformer-quant`, measured separately on the integer pipeline).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Network label.
    pub network: String,
    /// Weight memory in kB (Table I "Memory").
    pub memory_kb: f64,
    /// Millions of MACs per inference (Table I "MMAC").
    pub mmac: f64,
    /// Latency in ms (Table I "Lat.").
    pub latency_ms: f64,
    /// Energy per inference in mJ (Table I "E.").
    pub energy_mj: f64,
    /// Whether the network fits GAP8's memory hierarchy.
    pub deployable: bool,
    /// Average power (mW) when classifying every 15 ms (paper §IV-C).
    pub duty_cycled_power_mw: f64,
    /// Battery life in hours on the paper's 1000 mAh battery.
    pub battery_hours: f64,
    /// Detailed latency breakdown.
    pub latency: LatencyReport,
    /// Detailed memory audit.
    pub memory: MemoryReport,
}

/// The paper's real-time classification period: a 150 ms window every
/// 15 ms (dataset slide).
pub const CLASSIFICATION_PERIOD_S: f64 = 15e-3;

/// Analyzes a network's deployment on GAP8.
pub fn analyze(net: &NetworkDescriptor, spec: &Gap8Spec, costs: &KernelCosts) -> DeploymentReport {
    let latency = network_latency(net, spec, costs);
    let memory = audit(net, spec);
    let energy = inference_energy_j(latency.latency_s, spec);
    let avg_power = duty_cycled_power_w(latency.latency_s, CLASSIFICATION_PERIOD_S, spec);
    DeploymentReport {
        network: net.name.clone(),
        memory_kb: memory.memory_kb(),
        mmac: net.macs() as f64 / 1e6,
        latency_ms: latency.latency_ms(),
        energy_mj: energy * 1e3,
        deployable: memory.fits_l2 && memory.activations_fit_l1,
        duty_cycled_power_mw: avg_power * 1e3,
        battery_hours: paper_battery_life_hours(avg_power),
        latency,
        memory,
    }
}

/// Analyzes with default spec and calibrated costs.
pub fn analyze_default(net: &NetworkDescriptor) -> DeploymentReport {
    analyze(net, &Gap8Spec::default(), &KernelCosts::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_core::config::BioformerConfig;
    use bioformer_core::descriptor::{bioformer_descriptor, temponet_descriptor};

    #[test]
    fn energy_reduction_factor_vs_temponet() {
        // Abstract: "8.0× lower [energy] than the previous state-of-the-art".
        let bio = analyze_default(&bioformer_descriptor(&BioformerConfig::bio1()));
        let tempo = analyze_default(&temponet_descriptor());
        let factor = tempo.energy_mj / bio.energy_mj;
        assert!(
            (6.0..11.0).contains(&factor),
            "energy factor {factor} (paper: 8.0×)"
        );
    }

    #[test]
    fn battery_life_factor() {
        // §IV-C: Bio1 f30 lasts ≈4.77× longer than TEMPONet on the same
        // battery.
        let bio = analyze_default(&bioformer_descriptor(
            &BioformerConfig::bio1().with_filter(30),
        ));
        let tempo = analyze_default(&temponet_descriptor());
        let factor = bio.battery_hours / tempo.battery_hours;
        assert!(
            (3.8..5.8).contains(&factor),
            "battery factor {factor} (paper: 4.77×)"
        );
    }

    #[test]
    fn all_paper_networks_deployable() {
        for net in [
            bioformer_descriptor(&BioformerConfig::bio1()),
            bioformer_descriptor(&BioformerConfig::bio2()),
            temponet_descriptor(),
        ] {
            assert!(
                analyze_default(&net).deployable,
                "{} not deployable",
                net.name
            );
        }
    }

    #[test]
    fn report_consistency() {
        let r = analyze_default(&bioformer_descriptor(&BioformerConfig::bio1()));
        assert!((r.latency_ms - r.latency.latency_ms()).abs() < 1e-9);
        assert!((r.memory_kb - r.memory.memory_kb()).abs() < 1e-9);
        // E = P×t.
        assert!((r.energy_mj - 0.051 * r.latency_ms).abs() < 1e-6);
    }
}
