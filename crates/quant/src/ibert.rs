//! Integer-only nonlinear operators after I-BERT (Kim et al., ICML 2021).
//!
//! The paper quantizes its MHSA blocks "following the steps described in
//! I-BERT": softmax, GELU and LayerNorm are evaluated with **integer
//! arithmetic only**, using second-order polynomial approximations
//! (`i-exp`, `i-erf`) and an integer Newton square root (`i-sqrt`). All
//! constants involving the input scale are computed **once at conversion
//! time**; the per-inference path is pure i32/i64 arithmetic, mirroring
//! what executes on the MCU.

use crate::qtensor::QParams;
use crate::requant::FixedMultiplier;

/// Exact unsigned division by a precomputed reciprocal.
///
/// The per-element hot loops of [`ISoftmax`] and [`ILayerNorm`] each
/// divide by a value that is fixed for the whole row (or for the operator
/// instance). A hardware 64-bit `div` costs tens of cycles; this replaces
/// it with one widening multiply plus an at-most-two-step remainder
/// correction, and is **bit-identical** to `x / d` for every `x`
/// (`m = ⌊(2⁶⁴−1)/d⌋` never overestimates the quotient, and understates
/// it by at most 2, which the correction loop repairs).
#[derive(Debug, Clone, Copy)]
struct Recip {
    d: u64,
    m: u64,
}

impl Recip {
    /// Prepares the reciprocal of `d > 0` (one hardware divide).
    fn new(d: u64) -> Self {
        debug_assert!(d > 0, "Recip of zero divisor");
        Recip { d, m: u64::MAX / d }
    }

    /// `x / d`, exactly.
    #[inline(always)]
    fn div(&self, x: u64) -> u64 {
        let mut q = ((x as u128 * self.m as u128) >> 64) as u64;
        let mut rem = x - q * self.d;
        while rem >= self.d {
            q += 1;
            rem -= self.d;
        }
        q
    }
}

/// Integer square root: `⌊√n⌋` via Newton iteration (I-BERT Alg. 4).
///
/// # Panics
///
/// Panics if `n < 0`.
pub fn i_sqrt(n: i64) -> i64 {
    assert!(n >= 0, "i_sqrt of negative value");
    if n < 2 {
        return n;
    }
    // Initial guess: 2^ceil(bits/2).
    let bits = 64 - n.leading_zeros() as i64;
    let mut x = 1i64 << ((bits + 1) / 2);
    loop {
        let next = (x + n / x) / 2;
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// Second-order integer polynomial `a(x+b)² + c` (I-BERT I-POLY).
///
/// Returns the quantized output and its (possibly negative) scale `a·s²`.
fn i_poly(q: i64, s: f64, a: f64, b: f64, c: f64) -> (i64, f64) {
    let q_b = (b / s).floor() as i64;
    let q_c = (c / (a * s * s)).floor() as i64;
    let out = (q + q_b) * (q + q_b) + q_c;
    (out, a * s * s)
}

/// Integer exponential for non-positive arguments (I-BERT I-EXP).
///
/// Decomposes `x = −z·ln2 + p` with `p ∈ (−ln2, 0]`, evaluates a
/// polynomial approximation of `exp(p)` and shifts by `z`.
#[derive(Debug, Clone, Copy)]
pub struct IExp {
    q_ln2: i64,
    /// Reciprocal of `q_ln2` for the divide-free range reduction.
    r_ln2: Recip,
    s_in: f64,
    /// Scale of the returned integer (`a·s²` of the exp polynomial).
    pub s_out: f64,
}

const EXP_A: f64 = 0.3585;
const EXP_B: f64 = 1.353;
const EXP_C: f64 = 0.344;

impl IExp {
    /// Prepares constants for inputs at scale `s_in`.
    ///
    /// # Panics
    ///
    /// Panics if `s_in` is not positive.
    pub fn new(s_in: f64) -> Self {
        assert!(s_in > 0.0, "IExp scale must be positive");
        let q_ln2 = (std::f64::consts::LN_2 / s_in).floor() as i64;
        let q_ln2 = q_ln2.max(1);
        let s_out = EXP_A * s_in * s_in;
        IExp {
            q_ln2,
            r_ln2: Recip::new(q_ln2 as u64),
            s_in,
            s_out,
        }
    }

    /// `exp(q·s_in)` for `q ≤ 0`, as an integer at scale [`IExp::s_out`].
    pub fn apply(&self, q: i64) -> i64 {
        debug_assert!(q <= 0, "IExp argument must be non-positive");
        let z = (self.r_ln2.div((-q) as u64) as i64).min(62);
        let p = q + z * self.q_ln2; // in (-ln2/s, 0]
        let (l, _) = i_poly(p, self.s_in, EXP_A, EXP_B, EXP_C);
        (l.max(0)) >> z
    }
}

/// Integer softmax over attention-score rows (I-BERT §3.2).
///
/// Input: raw i32 GEMM accumulators at scale `s_in` (the `1/√P`
/// normalisation of Eq. 2 is folded into `s_in`, so no integer division by
/// `√P` happens at runtime). Output: int8 probabilities with parameters
/// `scale = 1/127, zero_point = 0`.
#[derive(Debug, Clone, Copy)]
pub struct ISoftmax {
    exp: IExp,
}

impl ISoftmax {
    /// Output quantization parameters of the probabilities.
    pub const OUT_PARAMS: QParams = QParams {
        scale: 1.0 / 127.0,
        zero_point: 0,
    };

    /// Prepares constants for score accumulators at scale `s_in`.
    pub fn new(s_in: f64) -> Self {
        ISoftmax {
            exp: IExp::new(s_in),
        }
    }

    /// Applies softmax to one row of score accumulators.
    ///
    /// Allocation-free: exponentials are staged on the stack for rows up
    /// to 128 wide (every attention row the Bioformer configs produce) and
    /// recomputed in the normalisation pass beyond that — [`IExp::apply`]
    /// is deterministic, so both strategies are bit-identical.
    pub fn apply_row(&self, scores: &[i32], out: &mut [i8]) {
        debug_assert_eq!(scores.len(), out.len());
        let max = scores.iter().copied().max().unwrap_or(0) as i64;
        let mut inline = [0i64; 128];
        let staged = scores.len() <= inline.len();
        let mut sum = 0i64;
        if staged {
            for (e, &s) in inline.iter_mut().zip(scores.iter()) {
                *e = self.exp.apply(s as i64 - max);
                sum += *e;
            }
        } else {
            for &s in scores {
                sum += self.exp.apply(s as i64 - max);
            }
        }
        if sum <= 0 {
            // Degenerate row: fall back to uniform.
            let u = (127 / scores.len().max(1)) as i8;
            out.fill(u);
            return;
        }
        // `e ≤ sum`, so `e·127` fits u64 comfortably; the shared
        // reciprocal replaces one hardware divide per element.
        let r_sum = Recip::new(sum as u64);
        if staged {
            for (o, &e) in out.iter_mut().zip(inline.iter()) {
                *o = (r_sum.div(e as u64 * 127) as i64).clamp(0, 127) as i8;
            }
        } else {
            for (o, &s) in out.iter_mut().zip(scores.iter()) {
                let e = self.exp.apply(s as i64 - max);
                *o = (r_sum.div(e as u64 * 127) as i64).clamp(0, 127) as i8;
            }
        }
    }
}

const ERF_A: f64 = -0.2888;
const ERF_B: f64 = -1.769;
const ERF_C: f64 = 1.0;

/// Integer GELU via the i-erf polynomial (I-BERT §3.3):
/// `GELU(x) ≈ x · ½(1 + erf(x/√2))`.
///
/// Input int8 at `s_in`; output int8 at caller-chosen parameters.
#[derive(Debug, Clone, Copy)]
pub struct IGelu {
    /// Clip bound for |q| in erf-argument units.
    q_clip: i64,
    /// `b` in erf-argument units.
    q_b: i64,
    /// `c` term of the polynomial.
    q_c: i64,
    /// `⌊1/|s_erf|⌋` — the integer representing 1.0 at the erf output scale.
    q_one: i64,
    /// Final requantization to the output activation grid.
    mult: FixedMultiplier,
    out_zp: i32,
}

impl IGelu {
    /// Prepares constants for int8 inputs at scale `s_in`, producing int8
    /// outputs at `out`.
    ///
    /// # Panics
    ///
    /// Panics if scales are not positive.
    pub fn new(s_in: f64, out: QParams) -> Self {
        assert!(
            s_in > 0.0 && out.scale > 0.0,
            "IGelu scales must be positive"
        );
        // erf argument x/√2 shares the integer value of x at scale s_in/√2.
        let s_erf_in = s_in / std::f64::consts::SQRT_2;
        let q_b = (ERF_B / s_erf_in).floor() as i64; // negative
        let q_c = (ERF_C / (ERF_A * s_erf_in * s_erf_in)).floor() as i64; // negative
        let s_l = ERF_A * s_erf_in * s_erf_in; // negative
        let q_one = (1.0 / s_l.abs()).floor() as i64;
        // gelu = x·(erf'+1)/2 at scale s_in·|s_l|/2 (erf' sign-normalised).
        let s_gelu = s_in * s_l.abs() / 2.0;
        IGelu {
            q_clip: (-q_b).max(1),
            q_b,
            q_c,
            q_one,
            mult: FixedMultiplier::encode(s_gelu / out.scale as f64),
            out_zp: out.zero_point,
        }
    }

    /// Integer erf at the prepared scale; returns a **sign-normalised**
    /// value `q'` such that `erf ≈ q' · |s_l|`.
    fn i_erf(&self, q: i64) -> i64 {
        let sign = if q < 0 { -1 } else { 1 };
        let qa = q.abs().min(self.q_clip);
        let l = (qa + self.q_b) * (qa + self.q_b) + self.q_c; // ≤ 0
                                                              // erf = sign · l · s_l; with s_l < 0: erf = sign · (−l) · |s_l|.
        sign * (-l)
    }

    /// GELU of one int8 value.
    pub fn apply(&self, q: i8) -> i8 {
        let q = q as i64;
        let erf = self.i_erf(q);
        // acc = q·(1 + erf) in integer units: scale s_in·|s_l|, i.e. 2×s_gelu.
        // The ÷2 of the GELU formula is folded into `mult` via s_gelu.
        let acc = q * (erf + self.q_one);
        let acc32 = acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        ((self.mult.apply(acc32) + self.out_zp).clamp(-128, 127)) as i8
    }
}

/// Integer LayerNorm (I-BERT §3.4): per-row mean/variance in integers,
/// `i_sqrt` for the standard deviation, fixed-point normalisation, then an
/// affine `γ, β` and requantization.
#[derive(Debug, Clone)]
pub struct ILayerNorm {
    /// Per-feature γ quantized symmetrically.
    q_gamma: Vec<i32>,
    /// Per-feature β at scale `s_γ / 2^FBITS`.
    q_beta: Vec<i64>,
    /// Requantization from `s_γ/2^FBITS` to the output grid.
    mult: FixedMultiplier,
    out_zp: i32,
}

/// Fraction bits of the normalised activation `x̂`.
const FBITS: u32 = 10;

impl ILayerNorm {
    /// Prepares an integer LayerNorm from fp32 affine parameters and the
    /// desired output quantization.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` lengths differ.
    pub fn new(gamma: &[f32], beta: &[f32], out: QParams) -> Self {
        assert_eq!(gamma.len(), beta.len(), "gamma/beta length mismatch");
        let absmax = gamma.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-8);
        let s_gamma = (absmax / 127.0) as f64;
        let q_gamma = gamma
            .iter()
            .map(|&g| ((g as f64 / s_gamma).round() as i32).clamp(-127, 127))
            .collect();
        let s_acc = s_gamma / (1u64 << FBITS) as f64;
        let q_beta = beta
            .iter()
            .map(|&b| (b as f64 / s_acc).round() as i64)
            .collect();
        ILayerNorm {
            q_gamma,
            q_beta,
            mult: FixedMultiplier::encode(s_acc / out.scale as f64),
            out_zp: out.zero_point,
        }
    }

    /// Feature width.
    pub fn width(&self) -> usize {
        self.q_gamma.len()
    }

    /// Normalises one row of int8 activations (the input zero-point and
    /// scale cancel inside the normalisation, so only raw codes are
    /// needed).
    pub fn apply_row(&self, row: &[i8], out: &mut [i8]) {
        let n = row.len() as i64;
        debug_assert_eq!(row.len(), self.q_gamma.len());
        let sum: i64 = row.iter().map(|&v| v as i64).sum();
        // Round-to-nearest mean keeps the centering unbiased.
        let mean = (2 * sum + n) / (2 * n);
        let mut var: i64 = 0;
        for &v in row {
            let c = v as i64 - mean;
            var += c * c;
        }
        var /= n;
        let std = i_sqrt(var).max(1);
        // One reciprocal per row replaces a hardware divide per element;
        // signed truncating division is recovered via |c| and the sign.
        let r_std = Recip::new(std as u64);
        for (i, (&v, o)) in row.iter().zip(out.iter_mut()).enumerate() {
            let c = v as i64 - mean;
            // scale 2^-FBITS, dimensionless; == (c << FBITS) / std
            let xhat = r_std.div(c.unsigned_abs() << FBITS) as i64 * c.signum();
            let acc = self.q_gamma[i] as i64 * xhat + self.q_beta[i];
            let acc32 = acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
            *o = ((self.mult.apply(acc32) + self.out_zp).clamp(-128, 127)) as i8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_sqrt_exact_squares_and_floors() {
        for n in 0..2000i64 {
            let r = i_sqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "i_sqrt({n}) = {r}");
        }
        assert_eq!(i_sqrt(1 << 40), 1 << 20);
    }

    #[test]
    fn i_exp_tracks_float_exp() {
        let s = 1e-3f64;
        let exp = IExp::new(s);
        for q in [-5000i64, -2000, -800, -100, -10, 0] {
            let x = q as f64 * s;
            let got = exp.apply(q) as f64 * exp.s_out;
            let want = x.exp();
            assert!(
                (got - want).abs() < 0.02,
                "exp({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn i_softmax_close_to_float() {
        let s = 2e-3f64;
        let sm = ISoftmax::new(s);
        let scores_f = [1.2f64, 0.3, -0.5, 0.9, -2.0];
        let scores_q: Vec<i32> = scores_f.iter().map(|&x| (x / s).round() as i32).collect();
        let mut out = vec![0i8; 5];
        sm.apply_row(&scores_q, &mut out);
        // Float softmax reference.
        let max = scores_f.iter().cloned().fold(f64::MIN, f64::max);
        let exps: Vec<f64> = scores_f.iter().map(|&x| (x - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        for i in 0..5 {
            let got = out[i] as f64 / 127.0;
            let want = exps[i] / sum;
            assert!(
                (got - want).abs() < 0.03,
                "softmax[{i}]: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn i_softmax_rows_sum_near_one() {
        let sm = ISoftmax::new(1e-3);
        let scores: Vec<i32> = vec![100, -500, 700, 0, 350, -2000, 120, 80];
        let mut out = vec![0i8; scores.len()];
        sm.apply_row(&scores, &mut out);
        let total: i32 = out.iter().map(|&v| v as i32).sum();
        assert!(
            (110..=130).contains(&total),
            "softmax row sums to {total}/127"
        );
    }

    #[test]
    fn i_softmax_degenerate_row_uniform() {
        let sm = ISoftmax::new(1e-3);
        // Extremely negative scores underflow to 0 exp; ensure no panic.
        let scores = vec![i32::MIN / 4; 4];
        let mut out = vec![0i8; 4];
        sm.apply_row(&scores, &mut out);
        assert!(out.iter().all(|&v| v >= 0));
    }

    #[test]
    fn i_gelu_tracks_float_gelu() {
        let s_in = 4.0 / 127.0; // int8 covering ±4
        let out = QParams::symmetric(4.0);
        let g = IGelu::new(s_in as f64, out);
        for q in (-127..=127).step_by(3) {
            let x = q as f32 * s_in;
            let got = out.dequantize(g.apply(q as i8));
            let want = bioformer_tensor::ops::gelu(x);
            assert!(
                (got - want).abs() < 0.08,
                "gelu({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn i_layernorm_tracks_float_layernorm() {
        let width = 16;
        let gamma: Vec<f32> = (0..width).map(|i| 0.8 + 0.03 * i as f32).collect();
        let beta: Vec<f32> = (0..width).map(|i| -0.2 + 0.02 * i as f32).collect();
        let out = QParams::symmetric(4.0);
        let ln = ILayerNorm::new(&gamma, &beta, out);

        // Random-ish int8 row.
        let row: Vec<i8> = (0..width)
            .map(|i| ((i * 37 + 11) % 256) as i32 as u8 as i8)
            .collect();
        let mut qout = vec![0i8; width];
        ln.apply_row(&row, &mut qout);

        // Float reference on the dequantized row (scale arbitrary: LN is
        // scale-invariant, so use raw codes directly).
        let vals: Vec<f32> = row.iter().map(|&v| v as f32).collect();
        let mean: f32 = vals.iter().sum::<f32>() / width as f32;
        let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / width as f32;
        let std = var.sqrt().max(1e-6);
        for i in 0..width {
            let want = gamma[i] * (vals[i] - mean) / std + beta[i];
            let got = out.dequantize(qout[i]);
            assert!((got - want).abs() < 0.12, "ln[{i}]: got {got}, want {want}");
        }
    }

    #[test]
    fn i_layernorm_constant_row_is_finite() {
        let ln = ILayerNorm::new(&[1.0; 8], &[0.0; 8], QParams::symmetric(2.0));
        let row = [42i8; 8];
        let mut out = [0i8; 8];
        ln.apply_row(&row, &mut out);
        // x̂ = 0 everywhere → output ≈ β = 0.
        assert!(out.iter().all(|&v| v.abs() <= 1), "{out:?}");
    }
}
