//! Activation-range observers for post-training calibration.

use crate::qtensor::QParams;
use bioformer_tensor::Tensor;

/// Tracks the min/max of every tensor it observes and converts the range
/// into [`QParams`] at the end of calibration.
///
/// A percentile/EMA observer would clip outliers more gracefully; min/max
/// matches what the GAP8 deployment flow of the paper's toolchain
/// ([Burrello et al., COINS 2021]) uses and keeps behaviour reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxObserver {
    min: f32,
    max: f32,
    observed: u64,
}

impl Default for MinMaxObserver {
    fn default() -> Self {
        MinMaxObserver::new()
    }
}

impl MinMaxObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        MinMaxObserver {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            observed: 0,
        }
    }

    /// Folds a tensor's values into the running range.
    pub fn observe(&mut self, t: &Tensor) {
        for &v in t.data() {
            if v.is_finite() {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
        }
        self.observed += t.len() as u64;
    }

    /// Number of scalars observed so far.
    pub fn count(&self) -> u64 {
        self.observed
    }

    /// Observed range, or `None` before any observation.
    pub fn range(&self) -> Option<(f32, f32)> {
        if self.observed == 0 || self.min > self.max {
            None
        } else {
            Some((self.min, self.max))
        }
    }

    /// Affine int8 parameters for the observed range.
    ///
    /// # Panics
    ///
    /// Panics if nothing was observed.
    pub fn affine_params(&self) -> QParams {
        let (min, max) = self.range().expect("observer saw no data");
        QParams::affine(min, max)
    }

    /// Symmetric int8 parameters for the observed range.
    ///
    /// # Panics
    ///
    /// Panics if nothing was observed.
    pub fn symmetric_params(&self) -> QParams {
        let (min, max) = self.range().expect("observer saw no data");
        QParams::symmetric(min.abs().max(max.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_min_max_across_batches() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&Tensor::from_vec(vec![0.5, -0.2], &[2]));
        obs.observe(&Tensor::from_vec(vec![1.5, 0.1], &[2]));
        assert_eq!(obs.range(), Some((-0.2, 1.5)));
        assert_eq!(obs.count(), 4);
    }

    #[test]
    fn ignores_non_finite() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&Tensor::from_vec(vec![f32::NAN, 1.0, f32::INFINITY], &[3]));
        assert_eq!(obs.range(), Some((1.0, 1.0)));
    }

    #[test]
    fn empty_observer_has_no_range() {
        assert_eq!(MinMaxObserver::new().range(), None);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn params_without_data_panic() {
        MinMaxObserver::new().affine_params();
    }

    #[test]
    fn params_cover_range() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&Tensor::from_vec(vec![-2.0, 3.0], &[2]));
        let p = obs.affine_params();
        assert!((p.dequantize(p.quantize(-2.0)) - -2.0).abs() <= p.scale);
        assert!((p.dequantize(p.quantize(3.0)) - 3.0).abs() <= p.scale);
    }
}
