//! A recycling scratch allocator for the integer inference path.
//!
//! The int8 forward graph allocates the same ladder of intermediates as
//! the fp32 one — quantized activations, attention scores, probability
//! rows — but in `i8` codes and `i32` accumulators, which the f32
//! `bioformer_tensor::TensorArena` cannot pool. [`QuantArena`] is its
//! integer twin: two typed pools with the same best-fit recycle
//! discipline, so a warmed [`crate::QuantBioformer`] forward performs
//! **zero** heap allocations (pinned by the allocation-counting test in
//! the umbrella crate).
//!
//! Not thread-safe by design: each worker owns one arena and `&mut`
//! threading keeps the borrow checker, not a lock, in charge.

/// Allocation counters of a [`QuantArena`] (both pools combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantArenaStats {
    /// Requests served from a pool without touching the heap.
    pub hits: usize,
    /// Requests that had to allocate a buffer on the heap.
    pub misses: usize,
    /// Buffers returned via the `recycle_*` methods.
    pub recycled: usize,
}

/// A pool of reusable `i8`/`i32` buffers backing integer inference
/// scratch.
#[derive(Debug, Default)]
pub struct QuantArena {
    free_i8: Vec<Vec<i8>>,
    free_i32: Vec<Vec<i32>>,
    stats: QuantArenaStats,
}

/// Best-fit take from one pool: the smallest pooled buffer whose capacity
/// suffices, so a small request does not burn the one big buffer a later
/// large request needs.
fn take_best<T: Copy + Default>(
    free: &mut Vec<Vec<T>>,
    len: usize,
    stats: &mut QuantArenaStats,
) -> Vec<T> {
    let mut best: Option<(usize, usize)> = None; // (index, capacity)
    for (i, buf) in free.iter().enumerate() {
        let cap = buf.capacity();
        if cap >= len && best.is_none_or(|(_, c)| cap < c) {
            best = Some((i, cap));
        }
    }
    match best {
        Some((i, _)) => {
            stats.hits += 1;
            let mut buf = free.swap_remove(i);
            buf.clear();
            buf.resize(len, T::default());
            buf
        }
        None => {
            stats.misses += 1;
            vec![T::default(); len]
        }
    }
}

fn put_back<T>(free: &mut Vec<Vec<T>>, buf: Vec<T>, stats: &mut QuantArenaStats) {
    if buf.capacity() > 0 {
        stats.recycled += 1;
        free.push(buf);
    }
}

impl QuantArena {
    /// An empty arena; buffers are acquired lazily on first use.
    pub fn new() -> Self {
        QuantArena::default()
    }

    /// Takes a zero-initialised `i8` buffer of exactly `len` codes.
    pub fn alloc_i8(&mut self, len: usize) -> Vec<i8> {
        take_best(&mut self.free_i8, len, &mut self.stats)
    }

    /// Takes a zero-initialised `i32` buffer of exactly `len` accumulators.
    pub fn alloc_i32(&mut self, len: usize) -> Vec<i32> {
        take_best(&mut self.free_i32, len, &mut self.stats)
    }

    /// Returns an `i8` buffer to the pool.
    pub fn recycle_i8(&mut self, buf: Vec<i8>) {
        put_back(&mut self.free_i8, buf, &mut self.stats);
    }

    /// Returns an `i32` buffer to the pool.
    pub fn recycle_i32(&mut self, buf: Vec<i32>) {
        put_back(&mut self.free_i32, buf, &mut self.stats);
    }

    /// Allocation counters since construction (or the last
    /// [`QuantArena::reset_stats`]).
    pub fn stats(&self) -> QuantArenaStats {
        self.stats
    }

    /// Zeroes the counters, e.g. after a warm-up pass, so a later
    /// [`QuantArenaStats::misses`] reading counts only steady state.
    pub fn reset_stats(&mut self) {
        self.stats = QuantArenaStats::default();
    }

    /// Number of buffers currently pooled (both pools).
    pub fn pooled(&self) -> usize {
        self.free_i8.len() + self.free_i32.len()
    }

    /// Drops every pooled buffer (frees the memory).
    pub fn clear(&mut self) {
        self.free_i8.clear();
        self.free_i32.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_after_recycle_is_a_hit() {
        let mut arena = QuantArena::new();
        let b = arena.alloc_i8(16);
        assert_eq!(arena.stats().misses, 1);
        arena.recycle_i8(b);
        let b2 = arena.alloc_i8(9);
        assert_eq!(arena.stats().hits, 1);
        assert_eq!(b2.len(), 9);
        assert!(b2.iter().all(|&v| v == 0));
    }

    #[test]
    fn pools_are_typed_and_independent() {
        let mut arena = QuantArena::new();
        let a = arena.alloc_i8(8);
        arena.recycle_i8(a);
        // An i32 request must not be served by the pooled i8 buffer.
        let _ = arena.alloc_i32(4);
        assert_eq!(arena.stats().misses, 2);
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn alloc_zeroes_previous_contents() {
        let mut arena = QuantArena::new();
        let mut b = arena.alloc_i32(4);
        b.fill(-7);
        arena.recycle_i32(b);
        let b2 = arena.alloc_i32(4);
        assert!(b2.iter().all(|&v| v == 0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut arena = QuantArena::new();
        let big = arena.alloc_i8(100);
        let small = arena.alloc_i8(10);
        arena.recycle_i8(big);
        arena.recycle_i8(small);
        let _ = arena.alloc_i8(10); // takes the 10-capacity buffer…
        let _ = arena.alloc_i8(64); // …leaving the 100-capacity one.
        assert_eq!(arena.stats().hits, 2);
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut arena = QuantArena::new();
        for _ in 0..2 {
            let a = arena.alloc_i8(256);
            let b = arena.alloc_i32(64);
            arena.recycle_i8(a);
            arena.recycle_i32(b);
        }
        arena.reset_stats();
        for _ in 0..10 {
            let a = arena.alloc_i8(256);
            let b = arena.alloc_i32(64);
            arena.recycle_i8(a);
            arena.recycle_i32(b);
        }
        assert_eq!(arena.stats().misses, 0, "steady state must not allocate");
        assert_eq!(arena.stats().hits, 20);
    }

    #[test]
    fn zero_len_buffers_are_fine() {
        let mut arena = QuantArena::new();
        let b = arena.alloc_i8(0);
        assert!(b.is_empty());
        arena.recycle_i8(b); // capacity 0: silently dropped
        assert_eq!(arena.pooled(), 0);
    }
}
