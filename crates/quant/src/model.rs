//! The fully-quantized Bioformer: conversion from a trained fp32 model and
//! integer-only inference.
//!
//! Conversion has three stages:
//!
//! 1. A **float shadow** of the network is rebuilt from the model's state
//!    dict and verified (in tests) to reproduce `Bioformer::forward`
//!    bit-for-bit — this is the reference graph that calibration walks.
//! 2. The shadow runs over a calibration set while [`MinMaxObserver`]s
//!    record the range of every activation tap.
//! 3. Each kernel is converted: weights to symmetric int8, biases to i32 at
//!    the accumulator scale, nonlinearities to their I-BERT integer forms,
//!    and every scale hand-off to a fixed-point multiplier.
//!
//! The resulting [`QuantBioformer`] executes inference **entirely in
//! integer arithmetic** (i8 operands, i32/i64 accumulation); floats appear
//! only when dequantizing the final logits for reporting.

use crate::arena::QuantArena;
use crate::ibert::{IGelu, ILayerNorm, ISoftmax};
use crate::kernels::qadd_into;
use crate::layers::{QConv1d, QLinear};
use crate::observer::MinMaxObserver;
use crate::qtensor::QParams;
use crate::requant::FixedMultiplier;
use bioformer_core::BioformerConfig;
use bioformer_nn::serialize::StateDict;
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::conv::{conv1d_forward, Conv1dSpec};
use bioformer_tensor::ops::{layernorm_forward, softmax_rows};
use bioformer_tensor::tune::GemmShape;
use bioformer_tensor::{Tensor, TensorArena};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Error returned by [`QuantBioformer::convert`].
#[derive(Debug)]
pub enum ConvertError {
    /// A parameter expected from the architecture is absent from the dict.
    MissingParam(String),
    /// The calibration set is empty.
    EmptyCalibration,
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::MissingParam(name) => {
                write!(f, "state dict is missing parameter {name}")
            }
            ConvertError::EmptyCalibration => write!(f, "calibration set is empty"),
        }
    }
}

impl std::error::Error for ConvertError {}

/// Weights of one encoder block, extracted from the state dict.
#[derive(Debug)]
struct ShadowBlock {
    ln1_g: Tensor,
    ln1_b: Tensor,
    wq: (Tensor, Tensor),
    wk: (Tensor, Tensor),
    wv: (Tensor, Tensor),
    wo: (Tensor, Tensor),
    ln2_g: Tensor,
    ln2_b: Tensor,
    fc1: (Tensor, Tensor),
    fc2: (Tensor, Tensor),
}

/// Float reference of the full network, rebuilt from a state dict.
#[derive(Debug)]
pub(crate) struct FloatShadow {
    cfg: BioformerConfig,
    conv_w: Tensor,
    conv_b: Tensor,
    class_token: Tensor,
    blocks: Vec<ShadowBlock>,
    lnf_g: Tensor,
    lnf_b: Tensor,
    head: (Tensor, Tensor),
}

fn linear(x: &Tensor, w: &Tensor, b: &Tensor) -> Tensor {
    let mut y = x.matmul_nt(w);
    let (rows, cols) = (y.dims()[0], y.dims()[1]);
    for r in 0..rows {
        let row = &mut y.data_mut()[r * cols..(r + 1) * cols];
        for (v, bb) in row.iter_mut().zip(b.data().iter()) {
            *v += bb;
        }
    }
    y
}

fn layernorm(x: &Tensor, g: &Tensor, b: &Tensor) -> Tensor {
    layernorm_forward(x, g, b).0
}

impl FloatShadow {
    fn get(dict: &BTreeMap<&str, &Tensor>, name: &str) -> Result<Tensor, ConvertError> {
        dict.get(name)
            .map(|t| (*t).clone())
            .ok_or_else(|| ConvertError::MissingParam(name.to_string()))
    }

    pub(crate) fn from_state_dict(
        cfg: &BioformerConfig,
        dict: &StateDict,
    ) -> Result<Self, ConvertError> {
        let map: BTreeMap<&str, &Tensor> = dict.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let g = |name: &str| Self::get(&map, name);
        let mut blocks = Vec::with_capacity(cfg.depth);
        for l in 0..cfg.depth {
            let p = |s: &str| format!("block{l}.{s}");
            blocks.push(ShadowBlock {
                ln1_g: g(&p("ln1.gamma"))?,
                ln1_b: g(&p("ln1.beta"))?,
                wq: (g(&p("attn.wq.weight"))?, g(&p("attn.wq.bias"))?),
                wk: (g(&p("attn.wk.weight"))?, g(&p("attn.wk.bias"))?),
                wv: (g(&p("attn.wv.weight"))?, g(&p("attn.wv.bias"))?),
                wo: (g(&p("attn.wo.weight"))?, g(&p("attn.wo.bias"))?),
                ln2_g: g(&p("ln2.gamma"))?,
                ln2_b: g(&p("ln2.beta"))?,
                fc1: (g(&p("fc1.weight"))?, g(&p("fc1.bias"))?),
                fc2: (g(&p("fc2.weight"))?, g(&p("fc2.bias"))?),
            });
        }
        Ok(FloatShadow {
            cfg: cfg.clone(),
            conv_w: g("patch_embed.weight")?,
            conv_b: g("patch_embed.bias")?,
            class_token: g("class_token")?,
            blocks,
            lnf_g: g("ln_final.gamma")?,
            lnf_b: g("ln_final.beta")?,
            head: (g("head.weight")?, g("head.bias")?),
        })
    }

    /// Forward over a single `[channels, window]` sample, invoking `tap`
    /// at every quantization point.
    pub(crate) fn forward_taps(&self, x: &Tensor, tap: &mut impl FnMut(&str, &Tensor)) -> Tensor {
        let cfg = &self.cfg;
        tap("input", x);
        let conv = conv1d_forward(x, &self.conv_w, &self.conv_b, Conv1dSpec::patch(cfg.filter));
        tap("patch", &conv);
        // Transpose [E, N] → tokens [S, E] with class token appended.
        let (e, n) = (conv.dims()[0], conv.dims()[1]);
        let s = n + 1;
        let mut tokens = Tensor::zeros(&[s, e]);
        for ei in 0..e {
            for ni in 0..n {
                tokens.data_mut()[ni * e + ei] = conv.data()[ei * n + ni];
            }
        }
        tokens.data_mut()[n * e..(n + 1) * e].copy_from_slice(self.class_token.data());

        let (h, p) = (cfg.heads, cfg.head_dim);
        let scale = 1.0 / (p as f32).sqrt();
        for (l, blk) in self.blocks.iter().enumerate() {
            let pre = |name: &str| format!("b{l}.{name}");
            let ln1 = layernorm(&tokens, &blk.ln1_g, &blk.ln1_b);
            tap(&pre("ln1"), &ln1);
            let q = linear(&ln1, &blk.wq.0, &blk.wq.1);
            let k = linear(&ln1, &blk.wk.0, &blk.wk.1);
            let v = linear(&ln1, &blk.wv.0, &blk.wv.1);
            tap(&pre("q"), &q);
            tap(&pre("k"), &k);
            tap(&pre("v"), &v);
            let inner = h * p;
            let mut att = Tensor::zeros(&[s, inner]);
            for hi in 0..h {
                let slice = |src: &Tensor| {
                    let mut out = Tensor::zeros(&[s, p]);
                    for si in 0..s {
                        out.data_mut()[si * p..(si + 1) * p].copy_from_slice(
                            &src.data()[si * inner + hi * p..si * inner + (hi + 1) * p],
                        );
                    }
                    out
                };
                let (qh, kh, vh) = (slice(&q), slice(&k), slice(&v));
                let mut scores = qh.matmul_nt(&kh);
                scores.scale_in_place(scale);
                let probs = softmax_rows(&scores);
                let oh = probs.matmul(&vh);
                for si in 0..s {
                    att.data_mut()[si * inner + hi * p..si * inner + (hi + 1) * p]
                        .copy_from_slice(&oh.data()[si * p..(si + 1) * p]);
                }
            }
            tap(&pre("att"), &att);
            let wo = linear(&att, &blk.wo.0, &blk.wo.1);
            tap(&pre("wo"), &wo);
            let res1 = tokens.add(&wo);
            tap(&pre("res1"), &res1);
            let ln2 = layernorm(&res1, &blk.ln2_g, &blk.ln2_b);
            tap(&pre("ln2"), &ln2);
            let fc1 = linear(&ln2, &blk.fc1.0, &blk.fc1.1);
            tap(&pre("fc1"), &fc1);
            let gelu = fc1.map(bioformer_tensor::ops::gelu);
            tap(&pre("gelu"), &gelu);
            let fc2 = linear(&gelu, &blk.fc2.0, &blk.fc2.1);
            tap(&pre("fc2"), &fc2);
            let res2 = res1.add(&fc2);
            tap(&pre("res2"), &res2);
            tokens = res2;
        }
        let cls = Tensor::from_vec(tokens.data()[(s - 1) * e..s * e].to_vec(), &[1, e]);
        let lnf = layernorm(&cls, &self.lnf_g, &self.lnf_b);
        tap("ln_f", &lnf);
        linear(&lnf, &self.head.0, &self.head.1)
    }
}

/// One quantized encoder block.
#[derive(Debug, Clone)]
struct QBlock {
    /// `ln1` (its output grid — the projections' input grid — is baked
    /// into the ILayerNorm multiplier).
    ln1: ILayerNorm,
    wq: QLinear,
    wk: QLinear,
    wv: QLinear,
    softmax: ISoftmax,
    av_mult: FixedMultiplier,
    att_params: QParams,
    wo: QLinear,
    res1_params: QParams,
    /// `ln2` (output grid baked in, as for `ln1`).
    ln2: ILayerNorm,
    fc1: QLinear,
    /// Integer GELU (its output grid — `fc2`'s input grid — is baked into
    /// the i-erf tables).
    gelu: IGelu,
    fc2: QLinear,
    res2_params: QParams,
}

/// A Bioformer converted to integer-only int8 inference.
#[derive(Debug)]
pub struct QuantBioformer {
    cfg: BioformerConfig,
    input_params: QParams,
    patch: QConv1d,
    class_token: Vec<i8>,
    blocks: Vec<QBlock>,
    lnf: ILayerNorm,
    /// Activation grid emitted by the final LayerNorm (head input grid).
    lnf_params: QParams,
    head: QLinear,
    /// Pool of integer scratch arenas backing the arena-less public
    /// forward APIs: each call pops a warmed arena (or lazily creates one)
    /// and pushes it back, so steady-state forwards through
    /// `forward_window` / `forward_batch` / the serving path stay
    /// allocation-free without any API change. A `Mutex` rather than a
    /// thread-local so arenas warmed by one worker thread are reusable by
    /// the next.
    scratch: Mutex<Vec<QuantArena>>,
    /// Compute backend the attention GEMMs (and, via the layers, every
    /// int8 GEMM) route through.
    backend: Arc<dyn ComputeBackend>,
}

impl Clone for QuantBioformer {
    /// Clones weights and configuration; the scratch-arena pool starts
    /// empty in the clone (scratch is per-instance working memory, not
    /// model state).
    fn clone(&self) -> Self {
        QuantBioformer {
            cfg: self.cfg.clone(),
            input_params: self.input_params,
            patch: self.patch.clone(),
            class_token: self.class_token.clone(),
            blocks: self.blocks.clone(),
            lnf: self.lnf.clone(),
            lnf_params: self.lnf_params,
            head: self.head.clone(),
            scratch: Mutex::new(Vec::new()),
            backend: self.backend.clone(),
        }
    }
}

impl QuantBioformer {
    /// Converts a trained fp32 Bioformer (via its state dict) using
    /// `calib` (`[n, channels, window]`, already normalised like training
    /// data) for activation-range calibration.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the dict is incomplete or the
    /// calibration set is empty.
    pub fn convert(
        cfg: &BioformerConfig,
        dict: &StateDict,
        calib: &Tensor,
    ) -> Result<Self, ConvertError> {
        let shadow = FloatShadow::from_state_dict(cfg, dict)?;
        let n = calib.dims()[0];
        if n == 0 {
            return Err(ConvertError::EmptyCalibration);
        }
        // Observe every tap over the calibration set.
        let mut obs: BTreeMap<String, MinMaxObserver> = BTreeMap::new();
        let sample = cfg.channels * cfg.window;
        for i in 0..n {
            let x = Tensor::from_vec(
                calib.data()[i * sample..(i + 1) * sample].to_vec(),
                &[cfg.channels, cfg.window],
            );
            let _ = shadow.forward_taps(&x, &mut |name, t| {
                obs.entry(name.to_string()).or_default().observe(t);
            });
        }
        let params = |name: &str| -> QParams {
            obs.get(name)
                .unwrap_or_else(|| panic!("no observation for tap {name}"))
                .symmetric_params()
        };

        let input_params = params("input");
        let patch_params = params("patch");
        let patch = QConv1d::from_float(
            &shadow.conv_w,
            &shadow.conv_b,
            cfg.filter,
            input_params,
            patch_params,
        );
        let class_token: Vec<i8> = shadow
            .class_token
            .data()
            .iter()
            .map(|&v| patch_params.quantize(v))
            .collect();

        let mut blocks = Vec::with_capacity(cfg.depth);
        for (l, blk) in shadow.blocks.iter().enumerate() {
            let pre = |name: &str| format!("b{l}.{name}");
            let ln1_p = params(&pre("ln1"));
            let (q_p, k_p, v_p) = (params(&pre("q")), params(&pre("k")), params(&pre("v")));
            let att_p = params(&pre("att"));
            let wo_p = params(&pre("wo"));
            let res1_p = params(&pre("res1"));
            let ln2_p = params(&pre("ln2"));
            let fc1_p = params(&pre("fc1"));
            let gelu_p = params(&pre("gelu"));
            let fc2_p = params(&pre("fc2"));
            let res2_p = params(&pre("res2"));

            let score_scale = q_p.scale as f64 * k_p.scale as f64 / (cfg.head_dim as f64).sqrt();
            let av_scale = ISoftmax::OUT_PARAMS.scale as f64 * v_p.scale as f64;
            blocks.push(QBlock {
                ln1: ILayerNorm::new(blk.ln1_g.data(), blk.ln1_b.data(), ln1_p),
                wq: QLinear::from_float(&blk.wq.0, &blk.wq.1, ln1_p, q_p),
                wk: QLinear::from_float(&blk.wk.0, &blk.wk.1, ln1_p, k_p),
                wv: QLinear::from_float(&blk.wv.0, &blk.wv.1, ln1_p, v_p),
                softmax: ISoftmax::new(score_scale),
                av_mult: FixedMultiplier::encode(av_scale / att_p.scale as f64),
                att_params: att_p,
                wo: QLinear::from_float(&blk.wo.0, &blk.wo.1, att_p, wo_p),
                res1_params: res1_p,
                ln2: ILayerNorm::new(blk.ln2_g.data(), blk.ln2_b.data(), ln2_p),
                fc1: QLinear::from_float(&blk.fc1.0, &blk.fc1.1, ln2_p, fc1_p),
                gelu: IGelu::new(fc1_p.scale as f64, gelu_p),
                fc2: QLinear::from_float(&blk.fc2.0, &blk.fc2.1, gelu_p, fc2_p),
                res2_params: res2_p,
            });
        }
        let lnf_p = params("ln_f");
        let lnf = ILayerNorm::new(shadow.lnf_g.data(), shadow.lnf_b.data(), lnf_p);
        let head = QLinear::from_float(&shadow.head.0, &shadow.head.1, lnf_p, lnf_p);
        Ok(QuantBioformer {
            cfg: cfg.clone(),
            input_params,
            patch,
            class_token,
            blocks,
            lnf,
            lnf_params: lnf_p,
            head,
            scratch: Mutex::new(Vec::new()),
            backend: default_backend(),
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &BioformerConfig {
        &self.cfg
    }

    /// Installs a compute backend on the attention GEMMs, the patch conv
    /// and every quantized linear. Int8 plans are bit-identical across
    /// kernels, so outputs never change — only which kernel runs.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.patch.set_backend(backend.clone());
        for blk in &mut self.blocks {
            blk.wq.set_backend(backend.clone());
            blk.wk.set_backend(backend.clone());
            blk.wv.set_backend(backend.clone());
            blk.wo.set_backend(backend.clone());
            blk.fc1.set_backend(backend.clone());
            blk.fc2.set_backend(backend.clone());
        }
        self.head.set_backend(backend.clone());
        self.backend = backend;
    }

    /// The compute backend the integer pipeline routes through.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// One-line description of the installed backend (tuning state
    /// included) — surfaced through `EngineStats`.
    pub fn compute_report(&self) -> String {
        self.backend.describe()
    }

    /// Every distinct int8 GEMM shape the integer pipeline executes — the
    /// autotuner's work-list. All shapes are exact: the pipeline runs one
    /// window at a time, so every row count is fixed by the config.
    pub fn gemm_shapes(&self) -> Vec<GemmShape> {
        let cfg = &self.cfg;
        let s = cfg.seq_len();
        let sp = s.next_multiple_of(bioformer_simd::QK);
        let (e, p) = (cfg.embed, cfg.head_dim);
        vec![
            // Patch conv lowering: A = weights [E, C·F], B = im2col.
            GemmShape::int8(e, cfg.channels * cfg.filter, cfg.tokens()),
            GemmShape::int8(s, e, cfg.inner()), // wq / wk / wv
            GemmShape::int8(s, p, s),           // per-head Q·Kᵀ
            GemmShape::int8(s, sp, p),          // per-head A·V (k padded)
            GemmShape::int8(s, cfg.inner(), e), // wo
            GemmShape::int8(s, e, cfg.hidden),  // fc1
            GemmShape::int8(s, cfg.hidden, e),  // fc2
            GemmShape::int8(1, e, cfg.classes), // head (class row only)
        ]
    }

    /// Pops a scratch arena from the internal pool (lazily creating one on
    /// first use / under contention).
    fn take_arena(&self) -> QuantArena {
        let mut pool = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        pool.pop().unwrap_or_default()
    }

    /// Returns a scratch arena to the internal pool.
    fn put_arena(&self, arena: QuantArena) {
        let mut pool = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        pool.push(arena);
    }

    /// The integer forward core: one `[channels·window]` fp32 sample
    /// (already normalised) in, `[classes]` fp32 logits out, with every
    /// intermediate buffer drawn from `arena` and recycled before
    /// returning. With a warmed arena this performs **zero** heap
    /// allocations (pinned by an allocation-counting test in the umbrella
    /// crate). All heavy kernels — projections, attention scores, A·V,
    /// FFN, the im2col patch conv — run the dispatched SIMD int8 tiles.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `out` disagree with the configured window /
    /// class count.
    pub fn forward_logits_into(&self, x: &[f32], arena: &mut QuantArena, out: &mut [f32]) {
        let cfg = &self.cfg;
        assert_eq!(x.len(), cfg.channels * cfg.window, "window size");
        assert_eq!(out.len(), cfg.classes, "logit buffer size");
        let (in_ch, len) = (cfg.channels, cfg.window);
        // Quantize the input window onto the calibrated activation grid.
        let mut xq = arena.alloc_i8(x.len());
        for (q, &v) in xq.iter_mut().zip(x.iter()) {
            *q = self.input_params.quantize(v);
        }
        // Patch embedding: strided conv via im2col + int8 GEMM → [E, N].
        let e = self.patch.out_channels();
        let n = self.patch.out_len(len);
        let mut im2col = arena.alloc_i8(self.patch.im2col_len(in_ch, len));
        let mut conv_acc = arena.alloc_i32(e * n);
        let mut conv = arena.alloc_i8(e * n);
        self.patch
            .forward_into(&xq, in_ch, len, &mut im2col, &mut conv_acc, &mut conv);
        arena.recycle_i8(xq);
        arena.recycle_i8(im2col);
        arena.recycle_i32(conv_acc);

        // tokens [S, E] = convᵀ with the class token appended.
        let s = n + 1;
        let mut tokens = arena.alloc_i8(s * e);
        for ei in 0..e {
            for ni in 0..n {
                tokens[ni * e + ei] = conv[ei * n + ni];
            }
        }
        tokens[n * e..(n + 1) * e].copy_from_slice(&self.class_token);
        arena.recycle_i8(conv);
        // Grid the token codes currently live on (patch grid at entry,
        // then each block's res2 grid).
        let mut tok_params = self.patch.out_params();

        let (h, p) = (cfg.heads, cfg.head_dim);
        let inner = h * p;
        for blk in &self.blocks {
            // ln1 (output grid was baked into the ILayerNorm multiplier).
            let mut ln1 = arena.alloc_i8(s * e);
            for (xr, or) in tokens.chunks_exact(e).zip(ln1.chunks_exact_mut(e)) {
                blk.ln1.apply_row(xr, or);
            }
            let mut q = arena.alloc_i8(s * inner);
            let mut k = arena.alloc_i8(s * inner);
            let mut v = arena.alloc_i8(s * inner);
            blk.wq.forward_into(&ln1, s, &mut q);
            blk.wk.forward_into(&ln1, s, &mut k);
            blk.wv.forward_into(&ln1, s, &mut v);
            arena.recycle_i8(ln1);

            let mut att = arena.alloc_i8(s * inner);
            // Per-head scratch, reused across heads (identical sizes).
            // The A·V GEMM contracts over the token dimension (k = S = 31
            // for bio1), so its operands `probs`/`vt` get their rows
            // zero-padded to the SIMD int8 chunk: padding contributes
            // exactly zero to every integer dot product, and the
            // microkernel runs full-width steps instead of its tail path.
            let sp = s.next_multiple_of(bioformer_simd::QK);
            let mut qh = arena.alloc_i8(s * p);
            let mut kh = arena.alloc_i8(s * p);
            let mut vt = arena.alloc_i8(p * sp);
            let mut scores = arena.alloc_i32(s * s);
            let mut probs = arena.alloc_i8(s * sp);
            let mut av8 = arena.alloc_i8(s * p);
            for hi in 0..h {
                // Slice head hi ([S, P]) out of the packed projections;
                // V goes directly to its transpose [P, S] since the A·V
                // GEMM wants a Bᵀ right-hand side.
                for si in 0..s {
                    let row = si * inner + hi * p;
                    qh[si * p..(si + 1) * p].copy_from_slice(&q[row..row + p]);
                    kh[si * p..(si + 1) * p].copy_from_slice(&k[row..row + p]);
                    for pi in 0..p {
                        vt[pi * sp + si] = v[row + pi];
                    }
                }
                // scores [S, S] = qh · khᵀ (both [S, P]).
                self.backend.qgemm_i32(&qh, &kh, None, s, p, s, &mut scores);
                // integer softmax per row.
                for (sr, pr) in scores.chunks_exact(s).zip(probs.chunks_exact_mut(sp)) {
                    blk.softmax.apply_row(sr, &mut pr[..s]);
                }
                // A·V accumulated and requantized in one fused pass (no
                // i32 intermediate), contracting over the padded k = sp.
                self.backend.qgemm_requant(
                    &probs,
                    &vt,
                    None,
                    s,
                    sp,
                    p,
                    blk.av_mult,
                    blk.att_params.zero_point,
                    &mut av8,
                );
                for si in 0..s {
                    att[si * inner + hi * p..si * inner + (hi + 1) * p]
                        .copy_from_slice(&av8[si * p..(si + 1) * p]);
                }
            }
            arena.recycle_i8(qh);
            arena.recycle_i8(kh);
            arena.recycle_i8(vt);
            arena.recycle_i32(scores);
            arena.recycle_i8(probs);
            arena.recycle_i8(av8);
            arena.recycle_i8(q);
            arena.recycle_i8(k);
            arena.recycle_i8(v);

            let mut wo = arena.alloc_i8(s * e);
            blk.wo.forward_into(&att, s, &mut wo);
            arena.recycle_i8(att);
            let mut res1 = arena.alloc_i8(s * e);
            qadd_into(
                &tokens,
                tok_params,
                &wo,
                blk.wo.out_params(),
                blk.res1_params,
                &mut res1,
            );
            arena.recycle_i8(wo);

            let mut ln2 = arena.alloc_i8(s * e);
            for (xr, or) in res1.chunks_exact(e).zip(ln2.chunks_exact_mut(e)) {
                blk.ln2.apply_row(xr, or);
            }
            let hidden = blk.fc1.out_features();
            let mut fc1 = arena.alloc_i8(s * hidden);
            blk.fc1.forward_into(&ln2, s, &mut fc1);
            arena.recycle_i8(ln2);
            // Integer GELU element-wise, in place: fc1 codes → gelu codes.
            for c in fc1.iter_mut() {
                *c = blk.gelu.apply(*c);
            }
            let mut fc2 = arena.alloc_i8(s * e);
            blk.fc2.forward_into(&fc1, s, &mut fc2);
            arena.recycle_i8(fc1);
            // res2 lands back in the token buffer for the next block.
            qadd_into(
                &res1,
                blk.res1_params,
                &fc2,
                blk.fc2.out_params(),
                blk.res2_params,
                &mut tokens,
            );
            arena.recycle_i8(res1);
            arena.recycle_i8(fc2);
            tok_params = blk.res2_params;
        }
        let _ = tok_params; // grid of the final tokens; lnf has it baked in
                            // Class row → final LN → head accumulators → fp32 logits.
        let mut lnf = arena.alloc_i8(e);
        self.lnf.apply_row(&tokens[(s - 1) * e..s * e], &mut lnf);
        let mut acc = arena.alloc_i32(cfg.classes);
        self.head.forward_acc_into(&lnf, 1, &mut acc);
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            *o = (a as f64 * self.head.acc_scale()) as f32;
        }
        arena.recycle_i8(tokens);
        arena.recycle_i8(lnf);
        arena.recycle_i32(acc);
    }

    /// Integer inference over one `[channels, window]` fp32 sample
    /// (already normalised); returns fp32 logits dequantized from the
    /// classifier accumulators. Scratch comes from the internal arena
    /// pool; only the returned logit vector itself is heap-allocated.
    pub fn forward_window(&self, x: &Tensor) -> Vec<f32> {
        let cfg = &self.cfg;
        assert_eq!(x.dims(), &[cfg.channels, cfg.window], "window shape");
        let mut arena = self.take_arena();
        let mut out = vec![0.0f32; cfg.classes];
        self.forward_logits_into(x.data(), &mut arena, &mut out);
        self.put_arena(arena);
        out
    }

    /// Runs windows `start..end` of `x` (`[n, channels, window]`) through
    /// the integer pipeline, returning their fp32 logits concatenated —
    /// the shared per-range loop behind both branches of
    /// [`QuantBioformer::forward_batch`]. One pooled arena serves the
    /// whole range.
    fn forward_range(&self, x: &Tensor, start: usize, end: usize) -> Vec<f32> {
        let sample = self.cfg.channels * self.cfg.window;
        let classes = self.cfg.classes;
        let mut arena = self.take_arena();
        let mut buf = vec![0.0f32; (end - start) * classes];
        for i in start..end {
            self.forward_logits_into(
                &x.data()[i * sample..(i + 1) * sample],
                &mut arena,
                &mut buf[(i - start) * classes..(i - start + 1) * classes],
            );
        }
        self.put_arena(arena);
        buf
    }

    /// Integer inference over a batch `[n, channels, window]`; returns fp32
    /// logits `[n, classes]`. Windows are processed on parallel threads.
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        let classes = self.cfg.classes;
        let mut out = Tensor::zeros(&[n, classes]);
        let threads = bioformer_tensor::parallel::hardware_threads().min(n.max(1));
        // Single-shard fast path: spawning even one scoped thread costs
        // tens of microseconds — a measurable tax on batch-1 latency.
        if threads <= 1 || n <= 1 {
            out.data_mut().copy_from_slice(&self.forward_range(x, 0, n));
            return out;
        }
        let chunk = n.div_ceil(threads.max(1));
        let results: Vec<(usize, Vec<f32>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut start = 0usize;
            while start < n {
                let end = (start + chunk).min(n);
                let this = &*self;
                handles.push(scope.spawn(move || (start, this.forward_range(x, start, end))));
                start = end;
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("quant eval shard"))
                .collect()
        });
        for (start, buf) in results {
            let rows = buf.len() / classes;
            out.data_mut()[start * classes..(start + rows) * classes].copy_from_slice(&buf);
        }
        out
    }

    /// Classification accuracy of the integer pipeline on a labelled set.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward_batch(x);
        bioformer_nn::loss::accuracy(&logits, labels)
    }
}

impl bioformer_nn::InferForward for QuantBioformer {
    /// Integer-only inference is already stateless per call (`&self`), so
    /// the shared-state serving path simply delegates to
    /// [`QuantBioformer::forward_batch`].
    fn forward_infer(&self, x: &Tensor) -> Tensor {
        self.forward_batch(x)
    }

    /// Arena-threaded eval forward: the `[n, classes]` logit tensor comes
    /// from the caller's f32 `arena`, and all integer scratch comes from
    /// the internal [`QuantArena`] pool — a warmed call performs zero
    /// heap allocations. Logits are bit-identical to
    /// [`QuantBioformer::forward_batch`] (serial accumulation order either
    /// way).
    fn forward_infer_in(&self, x: &Tensor, arena: &mut TensorArena) -> Tensor {
        let n = x.dims()[0];
        let sample = self.cfg.channels * self.cfg.window;
        let classes = self.cfg.classes;
        let mut out = arena.tensor(&[n, classes]);
        let mut qarena = self.take_arena();
        for i in 0..n {
            self.forward_logits_into(
                &x.data()[i * sample..(i + 1) * sample],
                &mut qarena,
                &mut out.data_mut()[i * classes..(i + 1) * classes],
            );
        }
        self.put_arena(qarena);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_core::Bioformer;
    use bioformer_nn::serialize::state_dict;
    use bioformer_nn::Model;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_cfg() -> BioformerConfig {
        BioformerConfig {
            channels: 14,
            window: 300,
            classes: 8,
            embed: 16,
            filter: 30,
            heads: 2,
            depth: 1,
            head_dim: 8,
            hidden: 32,
            dropout: 0.0,
            seed: 11,
        }
    }

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn float_shadow_matches_bioformer() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        let dict = state_dict(&mut model);
        let shadow = FloatShadow::from_state_dict(&cfg, &dict).unwrap();

        let batch = filled(&[3, 14, 300], 0);
        let want = model.forward(&batch, false);
        for i in 0..3 {
            let w = Tensor::from_vec(
                batch.data()[i * 14 * 300..(i + 1) * 14 * 300].to_vec(),
                &[14, 300],
            );
            let got = shadow.forward_taps(&w, &mut |_, _| {});
            for c in 0..cfg.classes {
                assert!(
                    (got.data()[c] - want.at(&[i, c])).abs() < 1e-4,
                    "sample {i} class {c}: shadow {} vs model {}",
                    got.data()[c],
                    want.at(&[i, c])
                );
            }
        }
    }

    #[test]
    fn missing_param_is_reported() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        let mut dict = state_dict(&mut model);
        dict.retain(|(n, _)| n != "head.bias");
        let err = FloatShadow::from_state_dict(&cfg, &dict).unwrap_err();
        assert!(err.to_string().contains("head.bias"));
    }

    #[test]
    fn empty_calibration_is_error() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        let dict = state_dict(&mut model);
        let calib = Tensor::zeros(&[0, 14, 300]);
        assert!(matches!(
            QuantBioformer::convert(&cfg, &dict, &calib),
            Err(ConvertError::EmptyCalibration)
        ));
    }

    #[test]
    fn quantized_logits_track_float_logits() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        // Bring the class token to the scale training would give it; an
        // untrained 0-ish token row has no int8 resolution in the shared
        // activation grid and the comparison would test a degenerate case.
        model.visit_params(&mut |p| {
            if p.name == "class_token" {
                p.value.scale_in_place(4.0);
            }
        });
        let dict = state_dict(&mut model);
        let calib = filled(&[16, 14, 300], 1);
        let q = QuantBioformer::convert(&cfg, &dict, &calib).unwrap();

        let test = filled(&[8, 14, 300], 2);
        let fp = model.forward(&test, false);
        let qi = q.forward_batch(&test);
        // Logit scale of an untrained tiny net is small; demand the
        // quantized pipeline stays within a coarse envelope and mostly
        // agrees on argmax.
        let mut agree = 0usize;
        for i in 0..8 {
            let fp_row: Vec<f32> = (0..cfg.classes).map(|c| fp.at(&[i, c])).collect();
            let qi_row: Vec<f32> = (0..cfg.classes).map(|c| qi.at(&[i, c])).collect();
            let argmax = |v: &[f32]| {
                v.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            };
            if argmax(&fp_row) == argmax(&qi_row) {
                agree += 1;
            }
            for c in 0..cfg.classes {
                assert!(
                    (fp_row[c] - qi_row[c]).abs() < 0.5,
                    "sample {i} class {c}: fp {} vs int {}",
                    fp_row[c],
                    qi_row[c]
                );
            }
        }
        assert!(agree >= 5, "argmax agreement only {agree}/8");
    }
}
