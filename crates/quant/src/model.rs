//! The fully-quantized Bioformer: conversion from a trained fp32 model and
//! integer-only inference.
//!
//! Conversion has three stages:
//!
//! 1. A **float shadow** of the network is rebuilt from the model's state
//!    dict and verified (in tests) to reproduce `Bioformer::forward`
//!    bit-for-bit — this is the reference graph that calibration walks.
//! 2. The shadow runs over a calibration set while [`MinMaxObserver`]s
//!    record the range of every activation tap.
//! 3. Each kernel is converted: weights to symmetric int8, biases to i32 at
//!    the accumulator scale, nonlinearities to their I-BERT integer forms,
//!    and every scale hand-off to a fixed-point multiplier.
//!
//! The resulting [`QuantBioformer`] executes inference **entirely in
//! integer arithmetic** (i8 operands, i32/i64 accumulation); floats appear
//! only when dequantizing the final logits for reporting.

use crate::ibert::{IGelu, ILayerNorm, ISoftmax};
use crate::kernels::{qadd, qgemm_i32, qgemm_requant_into};
use crate::layers::{QConv1d, QLinear};
use crate::observer::MinMaxObserver;
use crate::qtensor::{QParams, QTensor};
use crate::requant::FixedMultiplier;
use bioformer_core::BioformerConfig;
use bioformer_nn::serialize::StateDict;
use bioformer_tensor::conv::{conv1d_forward, Conv1dSpec};
use bioformer_tensor::ops::{layernorm_forward, softmax_rows};
use bioformer_tensor::Tensor;
use std::collections::BTreeMap;
use std::fmt;

/// Error returned by [`QuantBioformer::convert`].
#[derive(Debug)]
pub enum ConvertError {
    /// A parameter expected from the architecture is absent from the dict.
    MissingParam(String),
    /// The calibration set is empty.
    EmptyCalibration,
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::MissingParam(name) => {
                write!(f, "state dict is missing parameter {name}")
            }
            ConvertError::EmptyCalibration => write!(f, "calibration set is empty"),
        }
    }
}

impl std::error::Error for ConvertError {}

/// Weights of one encoder block, extracted from the state dict.
#[derive(Debug)]
struct ShadowBlock {
    ln1_g: Tensor,
    ln1_b: Tensor,
    wq: (Tensor, Tensor),
    wk: (Tensor, Tensor),
    wv: (Tensor, Tensor),
    wo: (Tensor, Tensor),
    ln2_g: Tensor,
    ln2_b: Tensor,
    fc1: (Tensor, Tensor),
    fc2: (Tensor, Tensor),
}

/// Float reference of the full network, rebuilt from a state dict.
#[derive(Debug)]
pub(crate) struct FloatShadow {
    cfg: BioformerConfig,
    conv_w: Tensor,
    conv_b: Tensor,
    class_token: Tensor,
    blocks: Vec<ShadowBlock>,
    lnf_g: Tensor,
    lnf_b: Tensor,
    head: (Tensor, Tensor),
}

fn linear(x: &Tensor, w: &Tensor, b: &Tensor) -> Tensor {
    let mut y = x.matmul_nt(w);
    let (rows, cols) = (y.dims()[0], y.dims()[1]);
    for r in 0..rows {
        let row = &mut y.data_mut()[r * cols..(r + 1) * cols];
        for (v, bb) in row.iter_mut().zip(b.data().iter()) {
            *v += bb;
        }
    }
    y
}

fn layernorm(x: &Tensor, g: &Tensor, b: &Tensor) -> Tensor {
    layernorm_forward(x, g, b).0
}

impl FloatShadow {
    fn get(dict: &BTreeMap<&str, &Tensor>, name: &str) -> Result<Tensor, ConvertError> {
        dict.get(name)
            .map(|t| (*t).clone())
            .ok_or_else(|| ConvertError::MissingParam(name.to_string()))
    }

    pub(crate) fn from_state_dict(
        cfg: &BioformerConfig,
        dict: &StateDict,
    ) -> Result<Self, ConvertError> {
        let map: BTreeMap<&str, &Tensor> = dict.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let g = |name: &str| Self::get(&map, name);
        let mut blocks = Vec::with_capacity(cfg.depth);
        for l in 0..cfg.depth {
            let p = |s: &str| format!("block{l}.{s}");
            blocks.push(ShadowBlock {
                ln1_g: g(&p("ln1.gamma"))?,
                ln1_b: g(&p("ln1.beta"))?,
                wq: (g(&p("attn.wq.weight"))?, g(&p("attn.wq.bias"))?),
                wk: (g(&p("attn.wk.weight"))?, g(&p("attn.wk.bias"))?),
                wv: (g(&p("attn.wv.weight"))?, g(&p("attn.wv.bias"))?),
                wo: (g(&p("attn.wo.weight"))?, g(&p("attn.wo.bias"))?),
                ln2_g: g(&p("ln2.gamma"))?,
                ln2_b: g(&p("ln2.beta"))?,
                fc1: (g(&p("fc1.weight"))?, g(&p("fc1.bias"))?),
                fc2: (g(&p("fc2.weight"))?, g(&p("fc2.bias"))?),
            });
        }
        Ok(FloatShadow {
            cfg: cfg.clone(),
            conv_w: g("patch_embed.weight")?,
            conv_b: g("patch_embed.bias")?,
            class_token: g("class_token")?,
            blocks,
            lnf_g: g("ln_final.gamma")?,
            lnf_b: g("ln_final.beta")?,
            head: (g("head.weight")?, g("head.bias")?),
        })
    }

    /// Forward over a single `[channels, window]` sample, invoking `tap`
    /// at every quantization point.
    pub(crate) fn forward_taps(&self, x: &Tensor, tap: &mut impl FnMut(&str, &Tensor)) -> Tensor {
        let cfg = &self.cfg;
        tap("input", x);
        let conv = conv1d_forward(x, &self.conv_w, &self.conv_b, Conv1dSpec::patch(cfg.filter));
        tap("patch", &conv);
        // Transpose [E, N] → tokens [S, E] with class token appended.
        let (e, n) = (conv.dims()[0], conv.dims()[1]);
        let s = n + 1;
        let mut tokens = Tensor::zeros(&[s, e]);
        for ei in 0..e {
            for ni in 0..n {
                tokens.data_mut()[ni * e + ei] = conv.data()[ei * n + ni];
            }
        }
        tokens.data_mut()[n * e..(n + 1) * e].copy_from_slice(self.class_token.data());

        let (h, p) = (cfg.heads, cfg.head_dim);
        let scale = 1.0 / (p as f32).sqrt();
        for (l, blk) in self.blocks.iter().enumerate() {
            let pre = |name: &str| format!("b{l}.{name}");
            let ln1 = layernorm(&tokens, &blk.ln1_g, &blk.ln1_b);
            tap(&pre("ln1"), &ln1);
            let q = linear(&ln1, &blk.wq.0, &blk.wq.1);
            let k = linear(&ln1, &blk.wk.0, &blk.wk.1);
            let v = linear(&ln1, &blk.wv.0, &blk.wv.1);
            tap(&pre("q"), &q);
            tap(&pre("k"), &k);
            tap(&pre("v"), &v);
            let inner = h * p;
            let mut att = Tensor::zeros(&[s, inner]);
            for hi in 0..h {
                let slice = |src: &Tensor| {
                    let mut out = Tensor::zeros(&[s, p]);
                    for si in 0..s {
                        out.data_mut()[si * p..(si + 1) * p].copy_from_slice(
                            &src.data()[si * inner + hi * p..si * inner + (hi + 1) * p],
                        );
                    }
                    out
                };
                let (qh, kh, vh) = (slice(&q), slice(&k), slice(&v));
                let mut scores = qh.matmul_nt(&kh);
                scores.scale_in_place(scale);
                let probs = softmax_rows(&scores);
                let oh = probs.matmul(&vh);
                for si in 0..s {
                    att.data_mut()[si * inner + hi * p..si * inner + (hi + 1) * p]
                        .copy_from_slice(&oh.data()[si * p..(si + 1) * p]);
                }
            }
            tap(&pre("att"), &att);
            let wo = linear(&att, &blk.wo.0, &blk.wo.1);
            tap(&pre("wo"), &wo);
            let res1 = tokens.add(&wo);
            tap(&pre("res1"), &res1);
            let ln2 = layernorm(&res1, &blk.ln2_g, &blk.ln2_b);
            tap(&pre("ln2"), &ln2);
            let fc1 = linear(&ln2, &blk.fc1.0, &blk.fc1.1);
            tap(&pre("fc1"), &fc1);
            let gelu = fc1.map(bioformer_tensor::ops::gelu);
            tap(&pre("gelu"), &gelu);
            let fc2 = linear(&gelu, &blk.fc2.0, &blk.fc2.1);
            tap(&pre("fc2"), &fc2);
            let res2 = res1.add(&fc2);
            tap(&pre("res2"), &res2);
            tokens = res2;
        }
        let cls = Tensor::from_vec(tokens.data()[(s - 1) * e..s * e].to_vec(), &[1, e]);
        let lnf = layernorm(&cls, &self.lnf_g, &self.lnf_b);
        tap("ln_f", &lnf);
        linear(&lnf, &self.head.0, &self.head.1)
    }
}

/// One quantized encoder block.
#[derive(Debug, Clone)]
struct QBlock {
    ln1: ILayerNorm,
    /// Activation grid emitted by `ln1` (input grid of the projections).
    ln1_params: QParams,
    wq: QLinear,
    wk: QLinear,
    wv: QLinear,
    softmax: ISoftmax,
    av_mult: FixedMultiplier,
    att_params: QParams,
    wo: QLinear,
    res1_params: QParams,
    ln2: ILayerNorm,
    /// Activation grid emitted by `ln2` (input grid of `fc1`).
    ln2_params: QParams,
    fc1: QLinear,
    gelu: IGelu,
    /// Activation grid emitted by the integer GELU (input grid of `fc2`).
    gelu_params: QParams,
    fc2: QLinear,
    res2_params: QParams,
}

/// A Bioformer converted to integer-only int8 inference.
#[derive(Debug, Clone)]
pub struct QuantBioformer {
    cfg: BioformerConfig,
    input_params: QParams,
    patch: QConv1d,
    class_token: Vec<i8>,
    blocks: Vec<QBlock>,
    lnf: ILayerNorm,
    /// Activation grid emitted by the final LayerNorm (head input grid).
    lnf_params: QParams,
    head: QLinear,
}

impl QuantBioformer {
    /// Converts a trained fp32 Bioformer (via its state dict) using
    /// `calib` (`[n, channels, window]`, already normalised like training
    /// data) for activation-range calibration.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the dict is incomplete or the
    /// calibration set is empty.
    pub fn convert(
        cfg: &BioformerConfig,
        dict: &StateDict,
        calib: &Tensor,
    ) -> Result<Self, ConvertError> {
        let shadow = FloatShadow::from_state_dict(cfg, dict)?;
        let n = calib.dims()[0];
        if n == 0 {
            return Err(ConvertError::EmptyCalibration);
        }
        // Observe every tap over the calibration set.
        let mut obs: BTreeMap<String, MinMaxObserver> = BTreeMap::new();
        let sample = cfg.channels * cfg.window;
        for i in 0..n {
            let x = Tensor::from_vec(
                calib.data()[i * sample..(i + 1) * sample].to_vec(),
                &[cfg.channels, cfg.window],
            );
            let _ = shadow.forward_taps(&x, &mut |name, t| {
                obs.entry(name.to_string()).or_default().observe(t);
            });
        }
        let params = |name: &str| -> QParams {
            obs.get(name)
                .unwrap_or_else(|| panic!("no observation for tap {name}"))
                .symmetric_params()
        };

        let input_params = params("input");
        let patch_params = params("patch");
        let patch = QConv1d::from_float(
            &shadow.conv_w,
            &shadow.conv_b,
            cfg.filter,
            input_params,
            patch_params,
        );
        let class_token: Vec<i8> = shadow
            .class_token
            .data()
            .iter()
            .map(|&v| patch_params.quantize(v))
            .collect();

        let mut blocks = Vec::with_capacity(cfg.depth);
        for (l, blk) in shadow.blocks.iter().enumerate() {
            let pre = |name: &str| format!("b{l}.{name}");
            let ln1_p = params(&pre("ln1"));
            let (q_p, k_p, v_p) = (params(&pre("q")), params(&pre("k")), params(&pre("v")));
            let att_p = params(&pre("att"));
            let wo_p = params(&pre("wo"));
            let res1_p = params(&pre("res1"));
            let ln2_p = params(&pre("ln2"));
            let fc1_p = params(&pre("fc1"));
            let gelu_p = params(&pre("gelu"));
            let fc2_p = params(&pre("fc2"));
            let res2_p = params(&pre("res2"));

            let score_scale = q_p.scale as f64 * k_p.scale as f64 / (cfg.head_dim as f64).sqrt();
            let av_scale = ISoftmax::OUT_PARAMS.scale as f64 * v_p.scale as f64;
            blocks.push(QBlock {
                ln1: ILayerNorm::new(blk.ln1_g.data(), blk.ln1_b.data(), ln1_p),
                ln1_params: ln1_p,
                wq: QLinear::from_float(&blk.wq.0, &blk.wq.1, ln1_p, q_p),
                wk: QLinear::from_float(&blk.wk.0, &blk.wk.1, ln1_p, k_p),
                wv: QLinear::from_float(&blk.wv.0, &blk.wv.1, ln1_p, v_p),
                softmax: ISoftmax::new(score_scale),
                av_mult: FixedMultiplier::encode(av_scale / att_p.scale as f64),
                att_params: att_p,
                wo: QLinear::from_float(&blk.wo.0, &blk.wo.1, att_p, wo_p),
                res1_params: res1_p,
                ln2: ILayerNorm::new(blk.ln2_g.data(), blk.ln2_b.data(), ln2_p),
                ln2_params: ln2_p,
                fc1: QLinear::from_float(&blk.fc1.0, &blk.fc1.1, ln2_p, fc1_p),
                gelu: IGelu::new(fc1_p.scale as f64, gelu_p),
                gelu_params: gelu_p,
                fc2: QLinear::from_float(&blk.fc2.0, &blk.fc2.1, gelu_p, fc2_p),
                res2_params: res2_p,
            });
        }
        let lnf_p = params("ln_f");
        let lnf = ILayerNorm::new(shadow.lnf_g.data(), shadow.lnf_b.data(), lnf_p);
        let head = QLinear::from_float(&shadow.head.0, &shadow.head.1, lnf_p, lnf_p);
        Ok(QuantBioformer {
            cfg: cfg.clone(),
            input_params,
            patch,
            class_token,
            blocks,
            lnf,
            lnf_params: lnf_p,
            head,
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &BioformerConfig {
        &self.cfg
    }

    /// Applies an integer LayerNorm row-by-row over `[rows, width]` codes.
    /// `out_params` must be the grid the `ILayerNorm` was built to emit.
    fn ln_rows(ln: &ILayerNorm, x: &QTensor, out_params: QParams) -> QTensor {
        let (rows, width) = (x.dims()[0], x.dims()[1]);
        let mut out = vec![0i8; rows * width];
        for r in 0..rows {
            ln.apply_row(
                &x.data()[r * width..(r + 1) * width],
                &mut out[r * width..(r + 1) * width],
            );
        }
        QTensor::from_raw(out, &[rows, width], out_params)
    }

    /// Integer inference over one `[channels, window]` fp32 sample
    /// (already normalised); returns fp32 logits dequantized from the
    /// classifier accumulators.
    pub fn forward_window(&self, x: &Tensor) -> Vec<f32> {
        let cfg = &self.cfg;
        assert_eq!(x.dims(), &[cfg.channels, cfg.window], "window shape");
        let xq = QTensor::quantize(x, self.input_params);
        let conv = self.patch.forward(&xq); // [E, N] i8
        let (e, n) = (conv.dims()[0], conv.dims()[1]);
        let s = n + 1;
        // tokens [S, E]
        let mut tok = vec![0i8; s * e];
        for ei in 0..e {
            for ni in 0..n {
                tok[ni * e + ei] = conv.data()[ei * n + ni];
            }
        }
        tok[n * e..(n + 1) * e].copy_from_slice(&self.class_token);
        let mut tokens = QTensor::from_raw(tok, &[s, e], self.patch.out_params());

        let (h, p) = (cfg.heads, cfg.head_dim);
        let inner = h * p;
        for blk in &self.blocks {
            // ln1 (output grid was baked into the ILayerNorm multiplier).
            let ln1 = Self::ln_rows(&blk.ln1, &tokens, blk.ln1_params);
            let q = blk.wq.forward(&ln1);
            let k = blk.wk.forward(&ln1);
            let v = blk.wv.forward(&ln1);

            let mut att = vec![0i8; s * inner];
            for hi in 0..h {
                // Slice head hi: [S, P].
                let slice = |src: &QTensor| -> Vec<i8> {
                    let mut out = vec![0i8; s * p];
                    for si in 0..s {
                        out[si * p..(si + 1) * p].copy_from_slice(
                            &src.data()[si * inner + hi * p..si * inner + (hi + 1) * p],
                        );
                    }
                    out
                };
                let (qh, kh, vh) = (slice(&q), slice(&k), slice(&v));
                // scores [S, S] = qh · khᵀ (both [S, P]).
                let scores = qgemm_i32(&qh, &kh, None, s, p, s);
                // integer softmax per row.
                let mut probs = vec![0i8; s * s];
                for r in 0..s {
                    blk.softmax
                        .apply_row(&scores[r * s..(r + 1) * s], &mut probs[r * s..(r + 1) * s]);
                }
                // AV: probs [S, S] · vh [S, P] — qgemm wants Bᵀ, i.e. vh
                // transposed to [P, S]. Accumulate and requantize in one
                // fused pass (no i32 intermediate).
                let mut vt = vec![0i8; p * s];
                for si in 0..s {
                    for pi in 0..p {
                        vt[pi * s + si] = vh[si * p + pi];
                    }
                }
                let mut av8 = vec![0i8; s * p];
                qgemm_requant_into(
                    &probs,
                    &vt,
                    None,
                    s,
                    s,
                    p,
                    blk.av_mult,
                    blk.att_params.zero_point,
                    &mut av8,
                );
                for si in 0..s {
                    att[si * inner + hi * p..si * inner + (hi + 1) * p]
                        .copy_from_slice(&av8[si * p..(si + 1) * p]);
                }
            }
            let att_q = QTensor::from_raw(att, &[s, inner], blk.att_params);
            let wo = blk.wo.forward(&att_q);
            let res1 = qadd(&tokens, &wo, blk.res1_params);
            let ln2 = Self::ln_rows(&blk.ln2, &res1, blk.ln2_params);
            let fc1 = blk.fc1.forward(&ln2);
            let gelu: Vec<i8> = fc1.data().iter().map(|&v| blk.gelu.apply(v)).collect();
            let gelu_q = QTensor::from_raw(gelu, fc1.dims(), blk.gelu_params);
            let fc2 = blk.fc2.forward(&gelu_q);
            tokens = qadd(&res1, &fc2, blk.res2_params);
        }
        // Class row → final LN → head accumulators.
        let cls = QTensor::from_raw(
            tokens.data()[(s - 1) * e..s * e].to_vec(),
            &[1, e],
            tokens.params(),
        );
        let lnf = Self::ln_rows(&self.lnf, &cls, self.lnf_params);
        let acc = self.head.forward_acc(&lnf);
        acc.iter()
            .map(|&a| (a as f64 * self.head.acc_scale()) as f32)
            .collect()
    }

    /// Runs windows `start..end` of `x` (`[n, channels, window]`) through
    /// the integer pipeline, returning their fp32 logits concatenated —
    /// the shared per-range loop behind both branches of
    /// [`QuantBioformer::forward_batch`].
    fn forward_range(&self, x: &Tensor, start: usize, end: usize) -> Vec<f32> {
        let sample = self.cfg.channels * self.cfg.window;
        let mut buf = Vec::with_capacity((end - start) * self.cfg.classes);
        for i in start..end {
            let w = Tensor::from_vec(
                x.data()[i * sample..(i + 1) * sample].to_vec(),
                &[self.cfg.channels, self.cfg.window],
            );
            buf.extend_from_slice(&self.forward_window(&w));
        }
        buf
    }

    /// Integer inference over a batch `[n, channels, window]`; returns fp32
    /// logits `[n, classes]`. Windows are processed on parallel threads.
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        let classes = self.cfg.classes;
        let mut out = Tensor::zeros(&[n, classes]);
        let threads = bioformer_tensor::parallel::hardware_threads().min(n.max(1));
        // Single-shard fast path: spawning even one scoped thread costs
        // tens of microseconds — a measurable tax on batch-1 latency.
        if threads <= 1 || n <= 1 {
            out.data_mut().copy_from_slice(&self.forward_range(x, 0, n));
            return out;
        }
        let chunk = n.div_ceil(threads.max(1));
        let results: Vec<(usize, Vec<f32>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut start = 0usize;
            while start < n {
                let end = (start + chunk).min(n);
                let this = &*self;
                handles.push(scope.spawn(move || (start, this.forward_range(x, start, end))));
                start = end;
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("quant eval shard"))
                .collect()
        });
        for (start, buf) in results {
            let rows = buf.len() / classes;
            out.data_mut()[start * classes..(start + rows) * classes].copy_from_slice(&buf);
        }
        out
    }

    /// Classification accuracy of the integer pipeline on a labelled set.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward_batch(x);
        bioformer_nn::loss::accuracy(&logits, labels)
    }
}

impl bioformer_nn::InferForward for QuantBioformer {
    /// Integer-only inference is already stateless per call (`&self`), so
    /// the shared-state serving path simply delegates to
    /// [`QuantBioformer::forward_batch`].
    fn forward_infer(&self, x: &Tensor) -> Tensor {
        self.forward_batch(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_core::Bioformer;
    use bioformer_nn::serialize::state_dict;
    use bioformer_nn::Model;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_cfg() -> BioformerConfig {
        BioformerConfig {
            channels: 14,
            window: 300,
            classes: 8,
            embed: 16,
            filter: 30,
            heads: 2,
            depth: 1,
            head_dim: 8,
            hidden: 32,
            dropout: 0.0,
            seed: 11,
        }
    }

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn float_shadow_matches_bioformer() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        let dict = state_dict(&mut model);
        let shadow = FloatShadow::from_state_dict(&cfg, &dict).unwrap();

        let batch = filled(&[3, 14, 300], 0);
        let want = model.forward(&batch, false);
        for i in 0..3 {
            let w = Tensor::from_vec(
                batch.data()[i * 14 * 300..(i + 1) * 14 * 300].to_vec(),
                &[14, 300],
            );
            let got = shadow.forward_taps(&w, &mut |_, _| {});
            for c in 0..cfg.classes {
                assert!(
                    (got.data()[c] - want.at(&[i, c])).abs() < 1e-4,
                    "sample {i} class {c}: shadow {} vs model {}",
                    got.data()[c],
                    want.at(&[i, c])
                );
            }
        }
    }

    #[test]
    fn missing_param_is_reported() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        let mut dict = state_dict(&mut model);
        dict.retain(|(n, _)| n != "head.bias");
        let err = FloatShadow::from_state_dict(&cfg, &dict).unwrap_err();
        assert!(err.to_string().contains("head.bias"));
    }

    #[test]
    fn empty_calibration_is_error() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        let dict = state_dict(&mut model);
        let calib = Tensor::zeros(&[0, 14, 300]);
        assert!(matches!(
            QuantBioformer::convert(&cfg, &dict, &calib),
            Err(ConvertError::EmptyCalibration)
        ));
    }

    #[test]
    fn quantized_logits_track_float_logits() {
        let cfg = small_cfg();
        let mut model = Bioformer::new(&cfg);
        // Bring the class token to the scale training would give it; an
        // untrained 0-ish token row has no int8 resolution in the shared
        // activation grid and the comparison would test a degenerate case.
        model.visit_params(&mut |p| {
            if p.name == "class_token" {
                p.value.scale_in_place(4.0);
            }
        });
        let dict = state_dict(&mut model);
        let calib = filled(&[16, 14, 300], 1);
        let q = QuantBioformer::convert(&cfg, &dict, &calib).unwrap();

        let test = filled(&[8, 14, 300], 2);
        let fp = model.forward(&test, false);
        let qi = q.forward_batch(&test);
        // Logit scale of an untrained tiny net is small; demand the
        // quantized pipeline stays within a coarse envelope and mostly
        // agrees on argmax.
        let mut agree = 0usize;
        for i in 0..8 {
            let fp_row: Vec<f32> = (0..cfg.classes).map(|c| fp.at(&[i, c])).collect();
            let qi_row: Vec<f32> = (0..cfg.classes).map(|c| qi.at(&[i, c])).collect();
            let argmax = |v: &[f32]| {
                v.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            };
            if argmax(&fp_row) == argmax(&qi_row) {
                agree += 1;
            }
            for c in 0..cfg.classes {
                assert!(
                    (fp_row[c] - qi_row[c]).abs() < 0.5,
                    "sample {i} class {c}: fp {} vs int {}",
                    fp_row[c],
                    qi_row[c]
                );
            }
        }
        assert!(agree >= 5, "argmax agreement only {agree}/8");
    }
}
