//! Quantized layer building blocks (Linear, Conv1d).

use crate::kernels::{conv1d_out_len, qconv1d_i32_into_on, requantize_vec};
use crate::qtensor::{QParams, QTensor};
use crate::requant::FixedMultiplier;
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::Tensor;
use std::sync::Arc;

/// An int8 affine layer: symmetric int8 weights `[out, in]`, i32 bias at
/// the accumulator scale, fixed-point requantization to the output grid.
#[derive(Debug, Clone)]
pub struct QLinear {
    weight: QTensor,
    bias: Vec<i32>,
    mult: FixedMultiplier,
    out_params: QParams,
    /// Accumulator scale `s_in · s_w` (kept for layers that consume raw
    /// accumulators, e.g. the classifier head).
    acc_scale: f64,
    /// Compute backend the int8 GEMMs route through.
    backend: Arc<dyn ComputeBackend>,
}

impl QLinear {
    /// Quantizes an fp32 linear layer given calibrated input/output
    /// activation parameters.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent weight/bias shapes.
    pub fn from_float(w: &Tensor, b: &Tensor, in_params: QParams, out_params: QParams) -> Self {
        assert_eq!(w.shape().rank(), 2, "QLinear: weight must be [out, in]");
        let out_features = w.dims()[0];
        assert_eq!(b.dims(), &[out_features], "QLinear: bias shape");
        let wp = QParams::symmetric(w.abs_max());
        let weight = QTensor::quantize(w, wp);
        let acc_scale = in_params.scale as f64 * wp.scale as f64;
        let bias = b
            .data()
            .iter()
            .map(|&v| (v as f64 / acc_scale).round() as i32)
            .collect();
        QLinear {
            weight,
            bias,
            mult: FixedMultiplier::encode(acc_scale / out_params.scale as f64),
            out_params,
            acc_scale,
            backend: default_backend(),
        }
    }

    /// Installs a compute backend; its int8 plans pick the GEMM kernel
    /// (all plans are bit-identical, so outputs never change).
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.backend = backend;
    }

    /// Output activation parameters.
    pub fn out_params(&self) -> QParams {
        self.out_params
    }

    /// Accumulator scale (`s_in · s_w`).
    pub fn acc_scale(&self) -> f64 {
        self.acc_scale
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// int8 forward over raw `[rows, in]` codes into a caller-provided
    /// `[rows, out]` buffer — the allocation-free core of
    /// [`QLinear::forward`], requantized in a single fused pass.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with `rows` and the layer shape.
    pub fn forward_into(&self, x: &[i8], rows: usize, out: &mut [i8]) {
        self.backend.qgemm_requant(
            x,
            self.weight.data(),
            Some(&self.bias),
            rows,
            self.in_features(),
            self.out_features(),
            self.mult,
            self.out_params.zero_point,
            out,
        );
    }

    /// int8 forward over `[rows, in]`, requantized to the output grid in a
    /// single fused pass (no intermediate i32 buffer; the backend's
    /// `qgemm_requant` fuses requantization into the store).
    pub fn forward(&self, x: &QTensor) -> QTensor {
        let (rows, k) = (x.dims()[0], x.dims()[1]);
        assert_eq!(k, self.in_features(), "QLinear: input width mismatch");
        let n = self.out_features();
        let mut out = vec![0i8; rows * n];
        self.forward_into(x.data(), rows, &mut out);
        QTensor::from_raw(out, &[rows, n], self.out_params)
    }

    /// Raw i32 accumulators into a caller-provided `[rows, out]` buffer —
    /// the allocation-free core of [`QLinear::forward_acc`].
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with `rows` and the layer shape.
    pub fn forward_acc_into(&self, x: &[i8], rows: usize, out: &mut [i32]) {
        self.backend.qgemm_i32(
            x,
            self.weight.data(),
            Some(&self.bias),
            rows,
            self.in_features(),
            self.out_features(),
            out,
        );
    }

    /// Raw i32 accumulators (at [`QLinear::acc_scale`]) — used by the
    /// classifier head, where full precision is kept for the argmax.
    pub fn forward_acc(&self, x: &QTensor) -> Vec<i32> {
        let (rows, k) = (x.dims()[0], x.dims()[1]);
        assert_eq!(k, self.in_features(), "QLinear: input width mismatch");
        let mut out = vec![0i32; rows * self.out_features()];
        self.forward_acc_into(x.data(), rows, &mut out);
        out
    }
}

/// An int8 1-D convolution (no padding/dilation — the Bioformer patch
/// embedding is a plain strided conv).
#[derive(Debug, Clone)]
pub struct QConv1d {
    weight: QTensor,
    bias: Vec<i32>,
    stride: usize,
    kernel: usize,
    mult: FixedMultiplier,
    out_params: QParams,
    /// Compute backend the lowered im2col GEMM routes through.
    backend: Arc<dyn ComputeBackend>,
}

impl QConv1d {
    /// Quantizes an fp32 convolution (`w: [out, in, kernel]`).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes.
    pub fn from_float(
        w: &Tensor,
        b: &Tensor,
        stride: usize,
        in_params: QParams,
        out_params: QParams,
    ) -> Self {
        assert_eq!(w.shape().rank(), 3, "QConv1d: weight must be [out, in, k]");
        let out_ch = w.dims()[0];
        assert_eq!(b.dims(), &[out_ch], "QConv1d: bias shape");
        let wp = QParams::symmetric(w.abs_max());
        let weight = QTensor::quantize(w, wp);
        let acc_scale = in_params.scale as f64 * wp.scale as f64;
        let bias = b
            .data()
            .iter()
            .map(|&v| (v as f64 / acc_scale).round() as i32)
            .collect();
        QConv1d {
            weight,
            bias,
            stride,
            kernel: w.dims()[2],
            mult: FixedMultiplier::encode(acc_scale / out_params.scale as f64),
            out_params,
            backend: default_backend(),
        }
    }

    /// Installs a compute backend; its int8 plan for the lowered GEMM
    /// shape picks the kernel (all plans are bit-identical).
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.backend = backend;
    }

    /// Output activation parameters.
    pub fn out_params(&self) -> QParams {
        self.out_params
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output length for an input of `len` samples.
    pub fn out_len(&self, len: usize) -> usize {
        conv1d_out_len(len, self.kernel, self.stride)
    }

    /// Length of the im2col scratch buffer [`QConv1d::forward_into`] needs
    /// for an `[in_ch, len]` input.
    pub fn im2col_len(&self, in_ch: usize, len: usize) -> usize {
        self.out_len(len) * in_ch * self.kernel
    }

    /// int8 forward over a raw `[in_ch, len]` sample into a caller-provided
    /// `[out_ch, out_len]` buffer — the allocation-free core of
    /// [`QConv1d::forward`]. `im2col` ([`QConv1d::im2col_len`] codes) and
    /// `acc` (`out.len()` accumulators) are scratch.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the layer shape.
    pub fn forward_into(
        &self,
        x: &[i8],
        in_ch: usize,
        len: usize,
        im2col: &mut [i8],
        acc: &mut [i32],
        out: &mut [i8],
    ) {
        assert_eq!(in_ch, self.weight.dims()[1], "QConv1d: channel mismatch");
        assert_eq!(out.len(), acc.len(), "QConv1d: out/acc length mismatch");
        qconv1d_i32_into_on(
            self.backend.as_ref(),
            x,
            self.weight.data(),
            &self.bias,
            in_ch,
            len,
            self.out_channels(),
            self.kernel,
            self.stride,
            im2col,
            acc,
        );
        let zp = self.out_params.zero_point;
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            *o = self.mult.requantize_to_i8(a, zp);
        }
    }

    /// int8 forward over a single `[in_ch, len]` sample, producing
    /// `[out_ch, out_len]`.
    pub fn forward(&self, x: &QTensor) -> QTensor {
        let (in_ch, len) = (x.dims()[0], x.dims()[1]);
        assert_eq!(in_ch, self.weight.dims()[1], "QConv1d: channel mismatch");
        let out_ch = self.out_channels();
        let out_len = self.out_len(len);
        let mut im2col = vec![0i8; self.im2col_len(in_ch, len)];
        let mut acc = vec![0i32; out_ch * out_len];
        qconv1d_i32_into_on(
            self.backend.as_ref(),
            x.data(),
            self.weight.data(),
            &self.bias,
            in_ch,
            len,
            out_ch,
            self.kernel,
            self.stride,
            &mut im2col,
            &mut acc,
        );
        QTensor::from_raw(
            requantize_vec(&acc, self.mult, self.out_params.zero_point),
            &[out_ch, out_len],
            self.out_params,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled(dims: &[usize], seed: u64, range: f32) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-range..range))
    }

    #[test]
    fn qlinear_tracks_float_linear() {
        let w = filled(&[8, 16], 0, 0.5);
        let b = filled(&[8], 1, 0.2);
        let x = filled(&[4, 16], 2, 1.0);
        let want = {
            let mut y = x.matmul_nt(&w);
            for r in 0..4 {
                for c in 0..8 {
                    let v = y.at(&[r, c]) + b.data()[c];
                    y.set(&[r, c], v);
                }
            }
            y
        };
        let in_p = QParams::symmetric(1.0);
        let out_p = QParams::symmetric(want.abs_max());
        let ql = QLinear::from_float(&w, &b, in_p, out_p);
        let qx = QTensor::quantize(&x, in_p);
        let got = ql.forward(&qx).dequantize();
        for i in 0..want.len() {
            assert!(
                (got.data()[i] - want.data()[i]).abs() < 0.12,
                "elem {i}: {} vs {}",
                got.data()[i],
                want.data()[i]
            );
        }
    }

    #[test]
    fn qlinear_acc_has_higher_resolution_than_i8() {
        let w = filled(&[4, 8], 3, 0.5);
        let b = Tensor::zeros(&[4]);
        let in_p = QParams::symmetric(1.0);
        let out_p = QParams::symmetric(8.0);
        let ql = QLinear::from_float(&w, &b, in_p, out_p);
        let x = filled(&[1, 8], 4, 1.0);
        let qx = QTensor::quantize(&x, in_p);
        let acc = ql.forward_acc(&qx);
        // Accumulators carry the fine-grained result.
        let float_ref = x.matmul_nt(&w);
        for (i, &a) in acc.iter().enumerate() {
            let got = a as f64 * ql.acc_scale();
            assert!(
                (got - float_ref.data()[i] as f64).abs() < 0.05,
                "acc {i}: {got} vs {}",
                float_ref.data()[i]
            );
        }
    }

    #[test]
    fn qconv_tracks_float_conv() {
        use bioformer_tensor::conv::{conv1d_forward, Conv1dSpec};
        let w = filled(&[6, 3, 5], 5, 0.4);
        let b = filled(&[6], 6, 0.1);
        let x = filled(&[3, 20], 7, 1.0);
        let want = conv1d_forward(&x, &w, &b, Conv1dSpec::patch(5));
        let in_p = QParams::symmetric(1.0);
        let out_p = QParams::symmetric(want.abs_max());
        let qc = QConv1d::from_float(&w, &b, 5, in_p, out_p);
        let got = qc.forward(&QTensor::quantize(&x, in_p)).dequantize();
        for i in 0..want.len() {
            assert!(
                (got.data()[i] - want.data()[i]).abs() < 0.15,
                "elem {i}: {} vs {}",
                got.data()[i],
                want.data()[i]
            );
        }
    }
}
