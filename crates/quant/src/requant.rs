//! Fixed-point requantization (gemmlowp style).
//!
//! Integer kernels accumulate in i32 at scale `s_in = s_a · s_w`; the
//! result must be rescaled to the next layer's activation scale `s_out`.
//! The real multiplier `M = s_in / s_out` is encoded once, offline, as a
//! normalised int32 mantissa and a right-shift; on the hot path only i64
//! multiply + rounding shift are used — exactly what ships on the MCU.

/// A real multiplier encoded as `mantissa × 2^(−31−shift)` with
/// `mantissa ∈ [2^30, 2^31)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMultiplier {
    /// Normalised mantissa.
    pub mantissa: i32,
    /// Additional right shift applied after the high-mul.
    pub shift: i32,
}

impl FixedMultiplier {
    /// Encodes a positive real multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not finite and positive.
    pub fn encode(m: f64) -> Self {
        assert!(
            m.is_finite() && m > 0.0,
            "multiplier must be positive, got {m}"
        );
        assert!(m < 1e9, "multiplier {m} out of supported range");
        let mut shift = 0i32;
        let mut frac = m;
        // Normalise into [0.5, 1).
        while frac >= 1.0 {
            frac /= 2.0;
            shift -= 1;
        }
        while frac < 0.5 {
            frac *= 2.0;
            shift += 1;
        }
        let mut mantissa = (frac * (1i64 << 31) as f64).round() as i64;
        if mantissa == (1i64 << 31) {
            mantissa /= 2;
            shift -= 1;
        }
        FixedMultiplier {
            mantissa: mantissa as i32,
            shift,
        }
    }

    /// The real value this encodes (for tests/diagnostics).
    pub fn to_real(self) -> f64 {
        self.mantissa as f64 * 2f64.powi(-31 - self.shift)
    }

    /// Applies the multiplier to an i32 accumulator with round-to-nearest.
    ///
    /// The full product is kept in i64 and rounded with a **single**
    /// combined shift of `31 + shift` bits — splitting the shift (high-mul
    /// then post-shift) would amplify the high-mul's rounding error by
    /// `2^|shift|` for multipliers above 1.
    pub fn apply(self, acc: i32) -> i32 {
        let prod = acc as i64 * self.mantissa as i64;
        let s = 31 + self.shift; // ≥ 1: encode() keeps shift > -31
        debug_assert!(s >= 1, "unsupported multiplier magnitude");
        // Round-half-up works for both signs under arithmetic shift.
        ((prod + (1i64 << (s - 1))) >> s) as i32
    }

    /// Requantizes an accumulator to int8 with a zero-point, saturating.
    pub fn requantize_to_i8(self, acc: i32, zero_point: i32) -> i8 {
        (self.apply(acc) + zero_point).clamp(-128, 127) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_roundtrip_accuracy() {
        for &m in &[0.5f64, 0.1, 0.0123, 0.7734, 1.0, 3.7, 1e-4] {
            let f = FixedMultiplier::encode(m);
            let rel = (f.to_real() - m).abs() / m;
            assert!(rel < 1e-6, "m={m} encoded as {} (rel {rel})", f.to_real());
        }
    }

    #[test]
    fn mantissa_is_normalised() {
        for &m in &[0.3f64, 0.003, 2.5] {
            let f = FixedMultiplier::encode(m);
            assert!(f.mantissa >= (1 << 30), "mantissa {}", f.mantissa);
        }
    }

    #[test]
    fn apply_matches_float_mul() {
        for &m in &[0.5f64, 0.1, 0.0123, 0.9999] {
            let f = FixedMultiplier::encode(m);
            for &acc in &[0i32, 1, -1, 100, -100, 10_000, -32_000, 1_000_000] {
                let got = f.apply(acc);
                let want = (acc as f64 * m).round() as i32;
                assert!(
                    (got - want).abs() <= 1,
                    "m={m} acc={acc}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn requantize_saturates() {
        let f = FixedMultiplier::encode(1.0);
        assert_eq!(f.requantize_to_i8(1_000_000, 0), 127);
        assert_eq!(f.requantize_to_i8(-1_000_000, 0), -128);
    }

    #[test]
    fn zero_point_applied_after_scaling() {
        let f = FixedMultiplier::encode(0.5);
        assert_eq!(f.requantize_to_i8(10, 3), 8); // 10*0.5 + 3
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_multiplier() {
        FixedMultiplier::encode(0.0);
    }
}
