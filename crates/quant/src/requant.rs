//! Fixed-point requantization (gemmlowp style).
//!
//! Integer kernels accumulate in i32 at scale `s_in = s_a · s_w`; the
//! result must be rescaled to the next layer's activation scale `s_out`.
//! The real multiplier `M = s_in / s_out` is encoded once, offline, as a
//! normalised int32 mantissa and a right-shift; on the hot path only i64
//! multiply + rounding shift are used — exactly what ships on the MCU.
//!
//! The implementation lives in [`bioformer_tensor::qgemm`] since the
//! `ComputeBackend` seam landed (the fused-requantize GEMM drivers need it
//! below this crate); this module re-exports it, so there is exactly one
//! definition and the bit-exactness contract cannot fork.

pub use bioformer_tensor::qgemm::FixedMultiplier;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_roundtrip_accuracy() {
        for &m in &[0.5f64, 0.1, 0.0123, 0.7734, 1.0, 3.7, 1e-4] {
            let f = FixedMultiplier::encode(m);
            let rel = (f.to_real() - m).abs() / m;
            assert!(rel < 1e-6, "m={m} encoded as {} (rel {rel})", f.to_real());
        }
    }

    #[test]
    fn mantissa_is_normalised() {
        for &m in &[0.3f64, 0.003, 2.5] {
            let f = FixedMultiplier::encode(m);
            assert!(f.mantissa >= (1 << 30), "mantissa {}", f.mantissa);
        }
    }

    #[test]
    fn apply_matches_float_mul() {
        for &m in &[0.5f64, 0.1, 0.0123, 0.9999] {
            let f = FixedMultiplier::encode(m);
            for &acc in &[0i32, 1, -1, 100, -100, 10_000, -32_000, 1_000_000] {
                let got = f.apply(acc);
                let want = (acc as f64 * m).round() as i32;
                assert!(
                    (got - want).abs() <= 1,
                    "m={m} acc={acc}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn requantize_saturates() {
        let f = FixedMultiplier::encode(1.0);
        assert_eq!(f.requantize_to_i8(1_000_000, 0), 127);
        assert_eq!(f.requantize_to_i8(-1_000_000, 0), -128);
    }

    #[test]
    fn zero_point_applied_after_scaling() {
        let f = FixedMultiplier::encode(0.5);
        assert_eq!(f.requantize_to_i8(10, 3), 8); // 10*0.5 + 3
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_multiplier() {
        FixedMultiplier::encode(0.0);
    }
}
