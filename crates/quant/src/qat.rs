//! Quantization-aware fine-tuning ("QAT-lite").
//!
//! The paper performs "a few epochs of quantization aware training" before
//! deployment (§III-C). Full fake-quant QAT threads simulated quantizers
//! through every activation; this module implements the lighter,
//! widely-used variant that recovers most of the gap: after each training
//! epoch, **weights are snapped to their int8 grid** so the optimiser
//! learns parameters that survive quantization. Activation ranges are then
//! calibrated post-hoc as usual. The deviation is recorded in DESIGN.md.

use crate::qtensor::{fake_quantize, QParams};
use bioformer_nn::optim::Adam;
use bioformer_nn::schedule::LrSchedule;
use bioformer_nn::trainer::{train, EpochStats, TrainConfig};
use bioformer_nn::Model;
use bioformer_tensor::Tensor;

/// Snaps every weight-like parameter of `model` to its symmetric int8
/// grid in place. LayerNorm affine parameters and biases are left at full
/// precision (they deploy as int32, matching I-BERT).
pub fn fake_quantize_weights<M: Model>(model: &mut M) {
    model.visit_params(&mut |p| {
        let is_weight = p.name.ends_with(".weight") || p.name == "class_token";
        if is_weight {
            let params = QParams::symmetric(p.value.abs_max());
            p.value = fake_quantize(&p.value, params);
        }
    });
}

/// Configuration of the QAT fine-tuning loop.
#[derive(Debug, Clone)]
pub struct QatConfig {
    /// Fine-tuning epochs with per-epoch weight snapping (paper: "a few").
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (low — QAT is a refinement step).
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for QatConfig {
    fn default() -> Self {
        QatConfig {
            epochs: 2,
            batch_size: 32,
            lr: 5e-5,
            seed: 0x0A7,
        }
    }
}

/// Runs QAT-lite: `epochs` rounds of (train one epoch → snap weights to
/// the int8 grid). Returns the per-epoch training statistics.
pub fn qat_finetune<M: Model>(
    model: &mut M,
    x: &Tensor,
    labels: &[usize],
    cfg: &QatConfig,
) -> Vec<EpochStats> {
    let mut opt = Adam::default();
    let mut stats = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let tc = TrainConfig {
            batch_size: cfg.batch_size,
            epochs: 1,
            schedule: LrSchedule::Constant(cfg.lr),
            shuffle_seed: cfg.seed ^ e as u64,
            shards: 0,
            max_grad_norm: Some(1.0),
            augment: None,
        };
        let s = train(model, &mut opt, x, labels, &tc);
        stats.extend(s);
        fake_quantize_weights(model);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_nn::{Linear, Param};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[derive(Clone)]
    struct Toy {
        lin: Linear,
    }

    impl Model for Toy {
        fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
            let b = x.dims()[0];
            let f = x.len() / b;
            self.lin.forward(&x.reshape(&[b, f]), train)
        }
        fn backward(&mut self, d: &Tensor) {
            let _ = self.lin.backward(d);
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            self.lin.visit_params(f);
        }
        fn clear_cache(&mut self) {
            self.lin.clear_cache();
        }
    }

    #[test]
    fn snapping_moves_weights_to_grid() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Toy {
            lin: Linear::new("toy", 4, 3, &mut rng),
        };
        fake_quantize_weights(&mut m);
        // Every weight must be an integer multiple of the scale.
        let w = m.lin.weight().value.clone();
        let scale = w.abs_max() / 127.0;
        for &v in w.data() {
            let steps = v / scale;
            assert!(
                (steps - steps.round()).abs() < 1e-3,
                "weight {v} not on grid (scale {scale})"
            );
        }
    }

    #[test]
    fn bias_left_untouched() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Toy {
            lin: Linear::new("toy", 4, 3, &mut rng),
        };
        // Give the bias an off-grid value and verify it survives.
        let mut before = None;
        m.visit_params(&mut |p| {
            if p.name.ends_with(".bias") {
                p.value.data_mut()[0] = 0.123_456_7;
                before = Some(p.value.clone());
            }
        });
        fake_quantize_weights(&mut m);
        m.visit_params(&mut |p| {
            if p.name.ends_with(".bias") {
                assert!(p.value.allclose(before.as_ref().unwrap(), 0.0));
            }
        });
    }

    #[test]
    fn qat_keeps_model_trainable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Toy {
            lin: Linear::new("toy", 6, 3, &mut rng),
        };
        // Separable toy data.
        let n = 48;
        let mut x = Tensor::zeros(&[n, 1, 6]);
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 3;
            labels.push(c);
            for j in 0..6 {
                x.data_mut()[i * 6 + j] =
                    if j == c * 2 { 2.0 } else { 0.0 } + rng.gen_range(-0.2f32..0.2);
            }
        }
        let cfg = QatConfig {
            epochs: 16,
            batch_size: 16,
            lr: 0.05,
            seed: 3,
        };
        let stats = qat_finetune(&mut m, &x, &labels, &cfg);
        assert!(
            stats.last().unwrap().accuracy > 0.8,
            "QAT training failed to learn: {:?}",
            stats.last()
        );
        // Loss must decrease monotonically-ish from start to finish.
        assert!(stats.last().unwrap().loss < stats[0].loss * 0.5);
    }
}
