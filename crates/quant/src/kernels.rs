//! Integer GEMM and convolution kernels (i8 operands, i32 accumulation).
//!
//! All activations in the converted Bioformer use **symmetric** int8
//! quantization (zero-point 0), so the kernels are plain dot products with
//! no offset-correction terms — matching the PULP-NN/`MCU-Transformer`
//! kernels of the paper's deployment flow (the paper's reference \[25\]).

use crate::qtensor::{QParams, QTensor};
use crate::requant::FixedMultiplier;

/// `C[m,n] = A[m,k] · B[n,k]ᵀ (+ bias)`, returning raw i32 accumulators.
///
/// `B` is row-major `[n, k]` — the natural layout both for linear-layer
/// weights (`[out, in]`) and for attention keys.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn qgemm_i32(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "qgemm: A size");
    assert_eq!(b.len(), n * k, "qgemm: B size");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), n, "qgemm: bias size");
    }
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = match bias {
                Some(bias) => bias[j],
                None => 0,
            };
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x as i32 * y as i32;
            }
            *o = acc;
        }
    }
    out
}

/// Requantizes a vector of i32 accumulators to int8.
pub fn requantize_vec(acc: &[i32], mult: FixedMultiplier, zero_point: i32) -> Vec<i8> {
    acc.iter()
        .map(|&v| mult.requantize_to_i8(v, zero_point))
        .collect()
}

/// Full int8 GEMM: accumulate then requantize to the output grid.
pub fn qgemm(
    a: &QTensor,
    b: &QTensor,
    bias: Option<&[i32]>,
    mult: FixedMultiplier,
    out_params: QParams,
) -> QTensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[0];
    assert_eq!(b.dims()[1], k, "qgemm: inner dimension mismatch");
    let acc = qgemm_i32(a.data(), b.data(), bias, m, k, n);
    QTensor::from_raw(
        requantize_vec(&acc, mult, out_params.zero_point),
        &[m, n],
        out_params,
    )
}

/// int8 1-D convolution over `[in_ch, len]` with i32 accumulation.
/// Out-of-range (padding) taps contribute zero, consistent with symmetric
/// activation quantization where real 0 ↦ code 0.
///
/// Returns `[out_ch, out_len]` accumulators.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qconv1d_i32(
    x: &[i8],
    w: &[i8],
    bias: &[i32],
    in_ch: usize,
    len: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
) -> Vec<i32> {
    assert_eq!(x.len(), in_ch * len, "qconv: input size");
    assert_eq!(w.len(), out_ch * in_ch * kernel, "qconv: weight size");
    assert_eq!(bias.len(), out_ch, "qconv: bias size");
    assert!(len >= kernel, "qconv: input shorter than kernel");
    let out_len = (len - kernel) / stride + 1;
    let mut y = vec![0i32; out_ch * out_len];
    for oc in 0..out_ch {
        for ot in 0..out_len {
            let start = ot * stride;
            let mut acc = bias[oc];
            for ic in 0..in_ch {
                let x_row = &x[ic * len + start..ic * len + start + kernel];
                let w_row = &w[(oc * in_ch + ic) * kernel..(oc * in_ch + ic + 1) * kernel];
                for (&xv, &wv) in x_row.iter().zip(w_row.iter()) {
                    acc += xv as i32 * wv as i32;
                }
            }
            y[oc * out_len + ot] = acc;
        }
    }
    y
}

/// Requantizes two int8 tensors onto a common output grid and adds them
/// with saturation — the integer residual connection.
pub fn qadd(a: &QTensor, b: &QTensor, out_params: QParams) -> QTensor {
    assert_eq!(a.dims(), b.dims(), "qadd: shape mismatch");
    let ma = FixedMultiplier::encode(a.params().scale as f64 / out_params.scale as f64);
    let mb = FixedMultiplier::encode(b.params().scale as f64 / out_params.scale as f64);
    let (za, zb, zo) = (
        a.params().zero_point,
        b.params().zero_point,
        out_params.zero_point,
    );
    let data: Vec<i8> = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&qa, &qb)| {
            let ra = ma.apply(qa as i32 - za);
            let rb = mb.apply(qb as i32 - zb);
            (ra + rb + zo).clamp(-128, 127) as i8
        })
        .collect();
    QTensor::from_raw(data, a.dims(), out_params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_tensor::Tensor;

    #[test]
    fn qgemm_i32_matches_integer_reference() {
        // 2x3 · (2x3)ᵀ
        let a: Vec<i8> = vec![1, 2, 3, -1, 0, 2];
        let b: Vec<i8> = vec![2, 0, 1, -3, 1, 1];
        let acc = qgemm_i32(&a, &b, None, 2, 3, 2);
        // row0·b0 = 2+0+3 = 5 ; row0·b1 = -3+2+3 = 2
        // row1·b0 = -2+0+2 = 0 ; row1·b1 = 3+0+2 = 5
        assert_eq!(acc, vec![5, 2, 0, 5]);
    }

    #[test]
    fn qgemm_bias_is_added() {
        let a: Vec<i8> = vec![1, 1];
        let b: Vec<i8> = vec![1, 1];
        let acc = qgemm_i32(&a, &b, Some(&[10]), 1, 2, 1);
        assert_eq!(acc, vec![12]);
    }

    #[test]
    fn qgemm_approximates_float_gemm() {
        // Quantize a small float GEMM and compare.
        let af = Tensor::from_vec(vec![0.5, -0.25, 0.75, 0.1, -0.6, 0.3], &[2, 3]);
        let bf = Tensor::from_vec(vec![0.2, 0.4, -0.1, -0.3, 0.8, 0.05], &[2, 3]);
        let pa = QParams::symmetric(1.0);
        let pb = QParams::symmetric(1.0);
        let qa = QTensor::quantize(&af, pa);
        let qb = QTensor::quantize(&bf, pb);
        let want = af.matmul_nt(&bf);
        let out_params = QParams::symmetric(1.0);
        let mult =
            FixedMultiplier::encode(pa.scale as f64 * pb.scale as f64 / out_params.scale as f64);
        let got = qgemm(&qa, &qb, None, mult, out_params).dequantize();
        for i in 0..4 {
            assert!(
                (got.data()[i] - want.data()[i]).abs() < 0.03,
                "elem {i}: {} vs {}",
                got.data()[i],
                want.data()[i]
            );
        }
    }

    #[test]
    fn qconv_matches_manual() {
        // 1 channel, len 4, kernel 2, stride 2.
        let x: Vec<i8> = vec![1, 2, 3, 4];
        let w: Vec<i8> = vec![1, -1];
        let y = qconv1d_i32(&x, &w, &[5], 1, 4, 1, 2, 2);
        // windows [1,2] → 1-2+5=4 ; [3,4] → 3-4+5=4
        assert_eq!(y, vec![4, 4]);
    }

    #[test]
    fn qadd_requantizes_to_common_grid() {
        let a = QTensor::from_raw(vec![64], &[1], QParams::symmetric(1.0)); // ≈0.504
        let b = QTensor::from_raw(vec![32], &[1], QParams::symmetric(2.0)); // ≈0.504
        let out = qadd(&a, &b, QParams::symmetric(2.0));
        let got = out.dequantize().data()[0];
        assert!((got - 1.008).abs() < 0.04, "got {got}");
    }

    #[test]
    fn qadd_saturates() {
        let a = QTensor::from_raw(vec![127], &[1], QParams::symmetric(1.0));
        let b = QTensor::from_raw(vec![127], &[1], QParams::symmetric(1.0));
        let out = qadd(&a, &b, QParams::symmetric(1.0));
        assert_eq!(out.data()[0], 127);
    }
}
