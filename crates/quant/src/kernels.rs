//! Integer GEMM and convolution kernels (i8 operands, i32 accumulation).
//!
//! All activations in the converted Bioformer use **symmetric** int8
//! quantization (zero-point 0), so the hot kernels are plain dot products
//! with no offset-correction terms — matching the PULP-NN/`MCU-Transformer`
//! kernels of the paper's deployment flow (the paper's reference \[25\]).
//! For asymmetric grids, [`qgemm_i32_zp`] folds the zero points in via
//! precomputed per-row/per-column correction sums instead of widening every
//! operand in the inner loop.
//!
//! # Kernel structure
//!
//! The GEMM core walks each `A` row against [`QNR`]-wide tiles of `B` rows
//! with `i32` register accumulators and hands each finished accumulator to
//! a store callback. The dot tile itself is **dispatched**: it comes from
//! the [`bioformer_simd`] runtime-selected kernel table — a `vpdpbusd`
//! (VNNI) tile where the CPU has one, an AVX2 widen–multiply–add
//! (`vpmovsxbw` + `vpmaddwd`) tile otherwise, and the original scalar
//! reduction as the portable fallback. An earlier revision kept the scalar
//! reduction on purpose ("hand-blocking measured slower"): that held for
//! safe-Rust blocking tricks, which only perturb what LLVM's
//! auto-vectoriser sees, but not for explicit `std::arch` kernels — the
//! widening instructions the quantized path needs are exactly the ones the
//! auto-vectoriser won't reliably emit from scalar int8 code. Integer
//! addition is associative, so every dispatch tier is **bit-for-bit**
//! identical to a naive triple loop — pinned by property tests and the
//! cross-tier parity suite (`tests/simd_kernels.rs`).
//!
//! Requantization fuses into the store loop ([`qgemm_requant_into`]): each
//! `i32` accumulator goes straight to an `i8` code while still in a
//! register, with no intermediate `Vec<i32>` materialised per output tile.
//! The convolution ([`qconv1d_i32`]) lowers to im2col + the same GEMM
//! core, so it inherits whichever tile the dispatch selected.

use crate::qtensor::{QParams, QTensor};
use crate::requant::FixedMultiplier;

// The GEMM drivers themselves live in `bioformer_tensor::qgemm` since the
// `ComputeBackend` seam landed (the backend trait routes int8 GEMMs below
// this crate); they are re-exported here so the public API — and the single
// definition the bit-exactness contracts rely on — is unchanged.
pub use bioformer_tensor::qgemm::{
    qgemm_i32_into, qgemm_i32_into_with, qgemm_i32_tile_into, qgemm_i32_whole_into,
    qgemm_requant_into, qgemm_requant_tile_into, qgemm_requant_whole_into, QNR,
};

/// `C[m,n] = A[m,k] · B[n,k]ᵀ (+ bias)`, returning raw i32 accumulators.
///
/// Allocating wrapper over [`qgemm_i32_into`].
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn qgemm_i32(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    qgemm_i32_into(a, b, bias, m, k, n, &mut out);
    out
}

/// Zero-point-corrected int8 GEMM for **asymmetric** grids:
/// `C[i,j] = Σ_k (A[i,k] − za)(B[j,k] − zb) (+ bias[j])`.
///
/// Instead of widening and offsetting both operands inside the inner loop,
/// the raw products are accumulated as in [`qgemm_i32`] and the offsets are
/// folded in afterwards via the algebraic expansion
///
/// ```text
/// Σ (a−za)(b−zb) = Σ a·b − zb·Σa_row − za·Σb_col + k·za·zb
/// ```
///
/// with `Σa_row` (per output row) and `Σb_col` (per output column, i.e. per
/// `B` row) each precomputed **once** — `O(m·k + n·k)` extra work instead
/// of `O(m·n·k)` extra inner-loop arithmetic. With `za = zb = 0` this
/// degenerates to exactly [`qgemm_i32`] (the symmetric grids the Bioformer
/// deployment uses).
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qgemm_i32_zp(
    a: &[i8],
    za: i32,
    b: &[i8],
    zb: i32,
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    let mut out = qgemm_i32(a, b, bias, m, k, n);
    if za == 0 && zb == 0 {
        return out;
    }
    // Correction sums, each computed once.
    let row_sums: Vec<i32> = (0..m)
        .map(|i| a[i * k..(i + 1) * k].iter().map(|&v| v as i32).sum())
        .collect();
    let col_sums: Vec<i32> = (0..n)
        .map(|j| b[j * k..(j + 1) * k].iter().map(|&v| v as i32).sum())
        .collect();
    let kzz = k as i32 * za * zb;
    for i in 0..m {
        let rs = row_sums[i];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o += kzz - zb * rs - za * col_sums[j];
        }
    }
    out
}

/// Requantizes a vector of i32 accumulators to int8.
pub fn requantize_vec(acc: &[i32], mult: FixedMultiplier, zero_point: i32) -> Vec<i8> {
    acc.iter()
        .map(|&v| mult.requantize_to_i8(v, zero_point))
        .collect()
}

/// Full int8 GEMM: accumulate and requantize to the output grid in one
/// fused pass.
pub fn qgemm(
    a: &QTensor,
    b: &QTensor,
    bias: Option<&[i32]>,
    mult: FixedMultiplier,
    out_params: QParams,
) -> QTensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[0];
    assert_eq!(b.dims()[1], k, "qgemm: inner dimension mismatch");
    let mut out = vec![0i8; m * n];
    qgemm_requant_into(
        a.data(),
        b.data(),
        bias,
        m,
        k,
        n,
        mult,
        out_params.zero_point,
        &mut out,
    );
    QTensor::from_raw(out, &[m, n], out_params)
}

/// Output length of a valid (unpadded) 1-D convolution.
///
/// # Panics
///
/// Panics when the input is shorter than the kernel.
pub fn conv1d_out_len(len: usize, kernel: usize, stride: usize) -> usize {
    assert!(len >= kernel, "qconv: input shorter than kernel");
    (len - kernel) / stride + 1
}

/// Gathers the im2col image of an `[in_ch, len]` int8 input: row `ot` of
/// `dst` holds the `in_ch·kernel` codes of output window `ot`, channel-major
/// and tap-minor — the same order [`qconv1d_i32`]'s accumulation has always
/// used, and exactly a `B[n, k]` right-hand side for the blocked GEMM.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn qconv1d_im2col(
    x: &[i8],
    in_ch: usize,
    len: usize,
    kernel: usize,
    stride: usize,
    dst: &mut [i8],
) {
    assert_eq!(x.len(), in_ch * len, "qconv: input size");
    let out_len = conv1d_out_len(len, kernel, stride);
    let patch = in_ch * kernel;
    assert_eq!(dst.len(), out_len * patch, "qconv: im2col size");
    for (ot, row) in dst.chunks_exact_mut(patch).enumerate() {
        let start = ot * stride;
        for ic in 0..in_ch {
            row[ic * kernel..(ic + 1) * kernel]
                .copy_from_slice(&x[ic * len + start..ic * len + start + kernel]);
        }
    }
}

/// int8 1-D convolution over `[in_ch, len]` with i32 accumulation, lowered
/// to im2col + the blocked GEMM core (`A` = weights `[out_ch, in_ch·kernel]`,
/// `B` = im2col patches) so it rides the dispatched SIMD dot tile. The
/// allocation-free core of [`qconv1d_i32`]: the caller provides the im2col
/// scratch (`out_len·in_ch·kernel` codes) and the `[out_ch, out_len]`
/// accumulator buffer.
///
/// Bit-for-bit identical to the direct triple loop: the im2col row order
/// matches the original channel-major/tap-minor accumulation order, and
/// i32 addition is associative.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qconv1d_i32_into(
    x: &[i8],
    w: &[i8],
    bias: &[i32],
    in_ch: usize,
    len: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    im2col: &mut [i8],
    out: &mut [i32],
) {
    assert_eq!(w.len(), out_ch * in_ch * kernel, "qconv: weight size");
    assert_eq!(bias.len(), out_ch, "qconv: bias size");
    let out_len = conv1d_out_len(len, kernel, stride);
    assert_eq!(out.len(), out_ch * out_len, "qconv: output size");
    qconv1d_im2col(x, in_ch, len, kernel, stride, im2col);
    qgemm_i32_into(w, im2col, None, out_ch, in_ch * kernel, out_len, out);
    // The conv bias is per output *channel* — a GEMM row, not a GEMM
    // column — so it cannot ride the qgemm bias argument.
    for (row, &bv) in out.chunks_exact_mut(out_len).zip(bias.iter()) {
        for o in row {
            *o += bv;
        }
    }
}

/// [`qconv1d_i32_into`] with the GEMM routed through a
/// [`ComputeBackend`](bioformer_tensor::backend::ComputeBackend) (the
/// backend's int8 plan for the lowered `[out_ch, in_ch·kernel] ·
/// [out_len, in_ch·kernel]ᵀ` shape picks the kernel). Bit-identical to the
/// direct form for every plan.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qconv1d_i32_into_on(
    backend: &dyn bioformer_tensor::backend::ComputeBackend,
    x: &[i8],
    w: &[i8],
    bias: &[i32],
    in_ch: usize,
    len: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    im2col: &mut [i8],
    out: &mut [i32],
) {
    assert_eq!(w.len(), out_ch * in_ch * kernel, "qconv: weight size");
    assert_eq!(bias.len(), out_ch, "qconv: bias size");
    let out_len = conv1d_out_len(len, kernel, stride);
    assert_eq!(out.len(), out_ch * out_len, "qconv: output size");
    qconv1d_im2col(x, in_ch, len, kernel, stride, im2col);
    backend.qgemm_i32(w, im2col, None, out_ch, in_ch * kernel, out_len, out);
    for (row, &bv) in out.chunks_exact_mut(out_len).zip(bias.iter()) {
        for o in row {
            *o += bv;
        }
    }
}

/// int8 1-D convolution over `[in_ch, len]` with i32 accumulation.
/// Out-of-range (padding) taps contribute zero, consistent with symmetric
/// activation quantization where real 0 ↦ code 0.
///
/// Returns `[out_ch, out_len]` accumulators. Allocating wrapper over
/// [`qconv1d_i32_into`].
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qconv1d_i32(
    x: &[i8],
    w: &[i8],
    bias: &[i32],
    in_ch: usize,
    len: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
) -> Vec<i32> {
    let out_len = conv1d_out_len(len, kernel, stride);
    let mut im2col = vec![0i8; out_len * in_ch * kernel];
    let mut y = vec![0i32; out_ch * out_len];
    qconv1d_i32_into(
        x,
        w,
        bias,
        in_ch,
        len,
        out_ch,
        kernel,
        stride,
        &mut im2col,
        &mut y,
    );
    y
}

/// Requantizes two int8 code slices onto a common output grid and adds
/// them with saturation, into a caller-provided buffer — the
/// allocation-free core of [`qadd`].
///
/// # Panics
///
/// Panics when the slice lengths disagree.
pub fn qadd_into(
    a: &[i8],
    pa: QParams,
    b: &[i8],
    pb: QParams,
    out_params: QParams,
    out: &mut [i8],
) {
    assert_eq!(a.len(), b.len(), "qadd: length mismatch");
    assert_eq!(a.len(), out.len(), "qadd: output length mismatch");
    let ma = FixedMultiplier::encode(pa.scale as f64 / out_params.scale as f64);
    let mb = FixedMultiplier::encode(pb.scale as f64 / out_params.scale as f64);
    let (za, zb, zo) = (pa.zero_point, pb.zero_point, out_params.zero_point);
    for ((o, &qa), &qb) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        let ra = ma.apply(qa as i32 - za);
        let rb = mb.apply(qb as i32 - zb);
        *o = (ra + rb + zo).clamp(-128, 127) as i8;
    }
}

/// Requantizes two int8 tensors onto a common output grid and adds them
/// with saturation — the integer residual connection. Allocating wrapper
/// over [`qadd_into`].
pub fn qadd(a: &QTensor, b: &QTensor, out_params: QParams) -> QTensor {
    assert_eq!(a.dims(), b.dims(), "qadd: shape mismatch");
    let mut data = vec![0i8; a.data().len()];
    qadd_into(
        a.data(),
        a.params(),
        b.data(),
        b.params(),
        out_params,
        &mut data,
    );
    QTensor::from_raw(data, a.dims(), out_params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_tensor::Tensor;

    #[test]
    fn qgemm_i32_matches_integer_reference() {
        // 2x3 · (2x3)ᵀ
        let a: Vec<i8> = vec![1, 2, 3, -1, 0, 2];
        let b: Vec<i8> = vec![2, 0, 1, -3, 1, 1];
        let acc = qgemm_i32(&a, &b, None, 2, 3, 2);
        // row0·b0 = 2+0+3 = 5 ; row0·b1 = -3+2+3 = 2
        // row1·b0 = -2+0+2 = 0 ; row1·b1 = 3+0+2 = 5
        assert_eq!(acc, vec![5, 2, 0, 5]);
    }

    /// Naive reference for the blocked kernels (no column blocking, no
    /// fusion) — what `qgemm_i32` was before the rework.
    fn qgemm_reference(
        a: &[i8],
        b: &[i8],
        bias: Option<&[i32]>,
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias.map_or(0, |bias| bias[j]);
                for kk in 0..k {
                    acc += a[i * k + kk] as i32 * b[j * k + kk] as i32;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn qfilled(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as i8
            })
            .collect()
    }

    /// The blocked kernel must be bit-for-bit the naive triple loop,
    /// including the column tail (n not a multiple of QNR) and degenerate
    /// dims.
    #[test]
    fn blocked_qgemm_is_bit_exact_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 4),
            (2, 7, 9),
            (4, 16, 3),
            (5, 0, 6),
            (0, 4, 4),
            (6, 31, 17),
        ] {
            let a = qfilled(m * k, 1 + m as u64);
            let b = qfilled(n * k, 2 + n as u64);
            let bias: Vec<i32> = (0..n as i32).map(|j| j * 7 - 3).collect();
            assert_eq!(
                qgemm_i32(&a, &b, Some(&bias), m, k, n),
                qgemm_reference(&a, &b, Some(&bias), m, k, n),
                "shape ({m},{k},{n})"
            );
        }
    }

    /// Fused requantize-at-store must match accumulate-then-requantize
    /// bit-for-bit.
    #[test]
    fn fused_requant_matches_two_pass() {
        let (m, k, n) = (5, 19, 11);
        let a = qfilled(m * k, 3);
        let b = qfilled(n * k, 4);
        let bias: Vec<i32> = (0..n as i32).map(|j| j * 100 - 500).collect();
        let mult = FixedMultiplier::encode(0.0173);
        let two_pass = requantize_vec(&qgemm_i32(&a, &b, Some(&bias), m, k, n), mult, -5);
        let mut fused = vec![0i8; m * n];
        qgemm_requant_into(&a, &b, Some(&bias), m, k, n, mult, -5, &mut fused);
        assert_eq!(fused, two_pass);
    }

    /// The precomputed-correction-sum path must equal offsetting every
    /// operand in the inner loop, and degenerate to the plain kernel at
    /// zero offsets.
    #[test]
    fn zero_point_corrections_match_widened_reference() {
        let (m, k, n) = (4, 13, 6);
        let a = qfilled(m * k, 5);
        let b = qfilled(n * k, 6);
        let (za, zb) = (-3i32, 7i32);
        let mut want = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += (a[i * k + kk] as i64 - za as i64) * (b[j * k + kk] as i64 - zb as i64);
                }
                want[i * n + j] = acc as i32;
            }
        }
        assert_eq!(qgemm_i32_zp(&a, za, &b, zb, None, m, k, n), want);
        assert_eq!(
            qgemm_i32_zp(&a, 0, &b, 0, None, m, k, n),
            qgemm_i32(&a, &b, None, m, k, n),
            "zero offsets must degenerate to the symmetric kernel"
        );
    }

    #[test]
    fn qgemm_bias_is_added() {
        let a: Vec<i8> = vec![1, 1];
        let b: Vec<i8> = vec![1, 1];
        let acc = qgemm_i32(&a, &b, Some(&[10]), 1, 2, 1);
        assert_eq!(acc, vec![12]);
    }

    #[test]
    fn qgemm_approximates_float_gemm() {
        // Quantize a small float GEMM and compare.
        let af = Tensor::from_vec(vec![0.5, -0.25, 0.75, 0.1, -0.6, 0.3], &[2, 3]);
        let bf = Tensor::from_vec(vec![0.2, 0.4, -0.1, -0.3, 0.8, 0.05], &[2, 3]);
        let pa = QParams::symmetric(1.0);
        let pb = QParams::symmetric(1.0);
        let qa = QTensor::quantize(&af, pa);
        let qb = QTensor::quantize(&bf, pb);
        let want = af.matmul_nt(&bf);
        let out_params = QParams::symmetric(1.0);
        let mult =
            FixedMultiplier::encode(pa.scale as f64 * pb.scale as f64 / out_params.scale as f64);
        let got = qgemm(&qa, &qb, None, mult, out_params).dequantize();
        for i in 0..4 {
            assert!(
                (got.data()[i] - want.data()[i]).abs() < 0.03,
                "elem {i}: {} vs {}",
                got.data()[i],
                want.data()[i]
            );
        }
    }

    /// The im2col+GEMM lowering must be bit-for-bit the direct triple
    /// loop, across ragged channel/length/stride combinations.
    #[test]
    fn im2col_conv_is_bit_exact_vs_direct_loop() {
        for &(in_ch, len, out_ch, kernel, stride) in &[
            (1usize, 4usize, 1usize, 2usize, 2usize),
            (3, 17, 5, 4, 3),
            (14, 300, 64, 30, 10), // bio1 patch-embedding shape
            (2, 8, 3, 8, 1),       // kernel == len (single window)
            (4, 9, 2, 3, 5),       // stride > kernel
        ] {
            let x = qfilled(in_ch * len, 71 + len as u64);
            let w = qfilled(out_ch * in_ch * kernel, 72 + kernel as u64);
            let bias: Vec<i32> = (0..out_ch as i32).map(|c| c * 11 - 4).collect();
            let out_len = conv1d_out_len(len, kernel, stride);
            // Direct reference: what qconv1d_i32 was before the lowering.
            let mut want = vec![0i32; out_ch * out_len];
            for oc in 0..out_ch {
                for ot in 0..out_len {
                    let start = ot * stride;
                    let mut acc = bias[oc];
                    for ic in 0..in_ch {
                        for t in 0..kernel {
                            acc += x[ic * len + start + t] as i32
                                * w[(oc * in_ch + ic) * kernel + t] as i32;
                        }
                    }
                    want[oc * out_len + ot] = acc;
                }
            }
            assert_eq!(
                qconv1d_i32(&x, &w, &bias, in_ch, len, out_ch, kernel, stride),
                want,
                "conv shape ({in_ch},{len},{out_ch},{kernel},{stride})"
            );
        }
    }

    #[test]
    fn qconv_matches_manual() {
        // 1 channel, len 4, kernel 2, stride 2.
        let x: Vec<i8> = vec![1, 2, 3, 4];
        let w: Vec<i8> = vec![1, -1];
        let y = qconv1d_i32(&x, &w, &[5], 1, 4, 1, 2, 2);
        // windows [1,2] → 1-2+5=4 ; [3,4] → 3-4+5=4
        assert_eq!(y, vec![4, 4]);
    }

    #[test]
    fn qadd_requantizes_to_common_grid() {
        let a = QTensor::from_raw(vec![64], &[1], QParams::symmetric(1.0)); // ≈0.504
        let b = QTensor::from_raw(vec![32], &[1], QParams::symmetric(2.0)); // ≈0.504
        let out = qadd(&a, &b, QParams::symmetric(2.0));
        let got = out.dequantize().data()[0];
        assert!((got - 1.008).abs() < 0.04, "got {got}");
    }

    #[test]
    fn qadd_saturates() {
        let a = QTensor::from_raw(vec![127], &[1], QParams::symmetric(1.0));
        let b = QTensor::from_raw(vec![127], &[1], QParams::symmetric(1.0));
        let out = qadd(&a, &b, QParams::symmetric(1.0));
        assert_eq!(out.data()[0], 127);
    }
}
