//! int8 quantization for Bioformers, following the paper's deployment flow
//! (§III-C): *"We follow the steps described in I-BERT to replace the
//! floating-point operators that compose MHSA layers with their int8
//! counterparts."*
//!
//! * [`qtensor`] — quantization parameters (scale/zero-point) and int8
//!   tensors.
//! * [`observer`] — min/max range calibration over representative data.
//! * [`requant`] — gemmlowp-style fixed-point requantization
//!   (int32 multiplier + right shift; no floating point on the hot path).
//! * [`kernels`] — integer GEMM/conv with i32 accumulation, dispatched
//!   through the runtime-selected SIMD tiles of `bioformer_simd`.
//! * [`arena`] — [`arena::QuantArena`]: typed `i8`/`i32` buffer pools that
//!   make warmed integer forwards allocation-free.
//! * [`ibert`] — integer-only softmax (i-exp), GELU (i-erf) and LayerNorm
//!   (integer Newton square root), after Kim et al., *I-BERT: Integer-only
//!   BERT Quantization* (ICML 2021).
//! * [`layers`] — quantized Linear / Conv1d / residual-add building blocks.
//! * [`model`] — [`model::QuantBioformer`]: a fully integer inference
//!   pipeline converted from a trained fp32 [`bioformer_core::Bioformer`].
//! * [`qat`] — weight fake-quantization ("QAT-lite") to recover accuracy
//!   before conversion, standing in for the paper's few epochs of
//!   quantization-aware training.
//!
//! The integer pipeline here is the *same arithmetic* the MCU executes, so
//! the quantized-accuracy numbers feeding Table I are measured, not
//! estimated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod ibert;
pub mod kernels;
pub mod layers;
pub mod model;
pub mod observer;
pub mod qat;
pub mod qtensor;
pub mod requant;

pub use arena::QuantArena;
pub use model::QuantBioformer;
pub use qtensor::{QParams, QTensor};
