//! Quantization parameters and int8 tensors.

use bioformer_tensor::Tensor;

/// Affine quantization parameters: `real = scale × (q − zero_point)`.
///
/// Weights use **symmetric** parameters (`zero_point == 0`) so integer GEMM
/// kernels avoid the weight-offset correction term; activations may use the
/// full affine form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QParams {
    /// Real-value step between adjacent quantized levels.
    pub scale: f32,
    /// Quantized value representing real zero.
    pub zero_point: i32,
}

impl QParams {
    /// Identity-ish parameters (scale 1, zero 0), useful as a placeholder.
    pub fn unit() -> Self {
        QParams {
            scale: 1.0,
            zero_point: 0,
        }
    }

    /// Symmetric parameters covering `[-absmax, absmax]` in int8.
    ///
    /// # Panics
    ///
    /// Panics if `absmax` is not finite.
    pub fn symmetric(absmax: f32) -> Self {
        assert!(absmax.is_finite(), "absmax must be finite");
        let scale = if absmax <= 0.0 { 1e-8 } else { absmax / 127.0 };
        QParams {
            scale,
            zero_point: 0,
        }
    }

    /// Affine parameters covering `[min, max]` in int8 (range widened to
    /// include zero so padding/zero inputs stay exact).
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or non-finite.
    pub fn affine(min: f32, max: f32) -> Self {
        assert!(min.is_finite() && max.is_finite(), "range must be finite");
        assert!(min <= max, "min {min} > max {max}");
        let min = min.min(0.0);
        let max = max.max(0.0);
        let scale = ((max - min) / 255.0).max(1e-8);
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        QParams { scale, zero_point }
    }

    /// Quantizes one real value to int8 (round-to-nearest, saturating).
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(-128, 127) as i8
    }

    /// Dequantizes one int8 value.
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }
}

/// A dense int8 tensor with shared (per-tensor) quantization parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    dims: Vec<usize>,
    data: Vec<i8>,
    params: QParams,
}

impl QTensor {
    /// Quantizes an fp32 tensor with the given parameters.
    pub fn quantize(t: &Tensor, params: QParams) -> Self {
        QTensor {
            dims: t.dims().to_vec(),
            data: t.data().iter().map(|&v| params.quantize(v)).collect(),
            params,
        }
    }

    /// Builds from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length mismatches the shape.
    pub fn from_raw(data: Vec<i8>, dims: &[usize], params: QParams) -> Self {
        let expect: usize = dims.iter().product();
        assert_eq!(data.len(), expect, "QTensor: buffer/shape mismatch");
        QTensor {
            dims: dims.to_vec(),
            data,
            params,
        }
    }

    /// Shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Raw int8 values.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Quantization parameters.
    pub fn params(&self) -> QParams {
        self.params
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reconstructs the fp32 tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.data
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
            &self.dims,
        )
    }
}

/// Round-trips a tensor through int8 with the given parameters — the
/// "fake quantization" primitive used by QAT.
pub fn fake_quantize(t: &Tensor, params: QParams) -> Tensor {
    t.map(|v| params.dequantize(params.quantize(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_roundtrip_error_bounded() {
        let p = QParams::symmetric(2.0);
        for i in -200..=200 {
            let x = i as f32 / 100.0;
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            assert!(err <= p.scale * 0.5 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn symmetric_zero_is_exact() {
        let p = QParams::symmetric(3.7);
        assert_eq!(p.quantize(0.0), 0);
        assert_eq!(p.dequantize(0), 0.0);
    }

    #[test]
    fn affine_covers_asymmetric_range() {
        let p = QParams::affine(-0.1, 3.9);
        // Range endpoints should be representable with bounded error.
        for &x in &[-0.1f32, 0.0, 1.0, 3.9] {
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            assert!(err <= p.scale, "x={x} err={err}");
        }
    }

    #[test]
    fn affine_zero_is_exactly_representable() {
        let p = QParams::affine(0.5, 4.0); // min forced down to 0
        let err = p.dequantize(p.quantize(0.0)).abs();
        assert!(err <= p.scale * 0.5 + 1e-6);
    }

    #[test]
    fn saturation_clamps() {
        let p = QParams::symmetric(1.0);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -128);
    }

    #[test]
    fn qtensor_roundtrip() {
        let t = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5, 1.0], &[5]);
        let q = QTensor::quantize(&t, QParams::symmetric(1.0));
        let back = q.dequantize();
        assert!(back.allclose(&t, 0.01), "{:?}", back.data());
    }

    #[test]
    fn fake_quantize_idempotent() {
        let t = Tensor::from_vec(vec![0.3, -0.7, 0.11], &[3]);
        let p = QParams::symmetric(1.0);
        let f1 = fake_quantize(&t, p);
        let f2 = fake_quantize(&f1, p);
        assert!(f1.allclose(&f2, 1e-7));
    }

    #[test]
    fn degenerate_absmax_does_not_panic() {
        let p = QParams::symmetric(0.0);
        assert_eq!(p.quantize(0.0), 0);
    }
}
