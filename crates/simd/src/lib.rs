//! Explicit-SIMD microkernels with runtime CPU-feature dispatch.
//!
//! This is the **one** crate in the workspace allowed to use `unsafe`: it
//! wraps hand-written `std::arch` x86-64 microkernels behind safe slice
//! APIs and a process-global dispatch table. Everything above it
//! (`bioformer-tensor`, `bioformer-quant`, …) stays
//! `#![forbid(unsafe_code)]` and calls through [`kernels`].
//!
//! # Why hand-written kernels
//!
//! The fp32 packed GEMM in `bioformer-tensor` relied on LLVM's
//! auto-vectoriser (helped by `-C target-cpu=native`); the int8 GEMM in
//! `bioformer-quant` was a plain scalar reduction that LLVM widens only
//! half-heartedly — on CPU the int8 serving path was *slower* than fp32,
//! inverting the paper's central systems claim (int8 is the fast mode on
//! the MCU). The kernels here make the intended instruction mix explicit:
//!
//! * **int8**: a 1×[`QNR`] dot-product tile. The AVX2 variant widens both
//!   operands to i16 (`vpmovsxbw`) and reduces with the widening
//!   multiply–add `vpmaddwd` — exact, no saturation. Where VNNI is
//!   available (AVX-512-VNNI+VL or AVX-VNNI) the tile uses `vpdpbusd`
//!   (u8×s8 dot-accumulate straight into i32 lanes): the signed activation
//!   is biased by 128 into u8 (`a ⊕ 0x80`) and the bias is subtracted
//!   exactly via a `vpdpbusd`-computed column sum, so the result is still
//!   **bit-identical** to the scalar reduction. (The classic saturating
//!   `vpmaddubsw` idiom was rejected: `u8·s8` pair sums can exceed i16
//!   range, which would break the bit-exactness contract.)
//! * **fp32**: the [`MR`]`×`[`NR`] register tile of the packed GEMM as a
//!   dense run of broadcast-FMAs — 8 `ymm` accumulators on AVX2/FMA, 4
//!   `zmm` accumulators on AVX-512F.
//!
//! # Dispatch
//!
//! [`kernels`] selects implementations **once** (first call) from
//! `is_x86_feature_detected!` and caches the resulting [`Kernels`] table of
//! function pointers. The portable fallbacks are the exact safe loops the
//! workspace used before this crate existed; they also serve as the
//! oracles for the parity test-suite. Selection can be forced down with
//! the `BIOFORMER_SIMD` environment variable (read once, before the first
//! kernel call):
//!
//! | value | effect |
//! |---|---|
//! | `portable` / `scalar` / `off` | portable fallbacks only |
//! | `avx2` | cap at AVX2/FMA (no VNNI, no AVX-512) |
//! | `vnni` / `avx512` / `auto` / unset | best detected tier |
//!
//! Unknown values fall back to `auto` (library initialisation must not
//! panic). Contracts: int8 tiles are bit-identical across every tier;
//! fp32 tiles agree within normal FMA reassociation error (the parity
//! suite pins 1e-4 at workload shapes).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod fp32;
pub mod int8;

use std::sync::OnceLock;

/// Rows of `A` per fp32 microkernel tile (matches
/// `bioformer_tensor::pack::MR`).
pub const MR: usize = 4;

/// Columns per fp32 packed panel (matches `bioformer_tensor::pack::NR`).
pub const NR: usize = 16;

/// `B` rows per int8 dot tile (matches `bioformer_quant::kernels::QNR`).
pub const QNR: usize = 4;

/// Widest k-step any int8 tier consumes per SIMD iteration (the VNNI
/// `vpdpbusd` path eats 32 codes). Callers that control their own buffer
/// layout can zero-pad the k dimension to a multiple of this so every
/// tile runs full-width steps; zero codes contribute exactly zero to the
/// integer dot product, so the padding never changes a result.
pub const QK: usize = 32;

/// fp32 microkernel: given `mr ≤ MR` rows of `A` (`a.len() == mr·k`, row
/// stride `k`) and one zero-padded packed panel (`panel.len() == k·NR`,
/// row stride `NR`), writes the `mr×NR` accumulator tile
/// `acc[r][j] = Σ_kk a[r·k+kk] · panel[kk·NR+j]` (rows `mr..MR` are left
/// untouched).
pub type Fp32TileFn = fn(a: &[f32], k: usize, panel: &[f32], mr: usize, acc: &mut [[f32; NR]; MR]);

/// int8 microkernel: given one `A` row (`a.len() == k`) and `jw ≤ QNR`
/// consecutive `B` rows packed back-to-back (`b_tile.len() == jw·k`),
/// writes `out[lj] = Σ_kk a[kk] · b_tile[lj·k+kk]` as exact i32 dots
/// (entries `jw..QNR` are left untouched).
pub type QdotTileFn = fn(a: &[i8], b_tile: &[i8], k: usize, jw: usize, out: &mut [i32; QNR]);

/// Whole-GEMM int8 kernel (the VNNI fast path): writes the exact signed
/// accumulators `out[i·n+j] = Σ_kk a[i·k+kk] · b[j·k+kk]` for the full
/// `C[m,n] = A[m,k]·B[n,k]ᵀ` product in **one call**. Hoisting the
/// dispatch boundary from a `1×QNR` tile to the whole GEMM is what makes
/// `vpdpbusd` pay off: the `128·Σb` bias corrections are computed once per
/// `B` row (not once per tile visit), a 4×4 register block gives 16
/// independent dot-accumulate chains (a single-row tile has too few to
/// hide the instruction latency), and the per-tile indirect-call overhead
/// disappears. Callers must respect [`QGEMM_N_CAP`] / [`QGEMM_K_CAP`] and
/// fall back to the tile path beyond them.
pub type QgemmI32Fn = fn(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]);

/// Largest `n` a [`QgemmI32Fn`] accepts (bounds its stack-resident
/// correction table). Covers every GEMM in the workspace.
pub const QGEMM_N_CAP: usize = 512;

/// Largest `k` a [`QgemmI32Fn`] accepts (keeps the biased u8×s8 partial
/// sums far inside i32: `255·127·k < 2^31` needs `k < 66k`).
pub const QGEMM_K_CAP: usize = 8192;

/// The resolved microkernel set for this process.
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Human-readable tier, e.g. `"avx512f+vnni"` — for logs and benches.
    pub name: &'static str,
    /// fp32 `MR×NR` accumulator tile.
    pub fp32_tile: Fp32TileFn,
    /// int8 `1×QNR` dot tile.
    pub qdot_tile: QdotTileFn,
    /// Whole-GEMM int8 kernel, present only on tiers where hoisting the
    /// loop structure into the kernel wins (VNNI). `None` means "drive
    /// [`Kernels::qdot_tile`] from the generic GEMM loop" — the portable
    /// and AVX2 tiles carry no per-visit correction work to hoist.
    pub qgemm_i32: Option<QgemmI32Fn>,
    /// `true` when both entries are the portable fallbacks.
    pub portable: bool,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels")
            .field("name", &self.name)
            .field("portable", &self.portable)
            .finish()
    }
}

/// The dispatch tiers [`select`] can resolve to, weakest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Safe scalar fallbacks (always available, any architecture).
    Portable,
    /// AVX2 int8 widening tile + AVX2/FMA fp32 tile.
    Avx2,
    /// VNNI `vpdpbusd` int8 tile + the best detected fp32 tile
    /// (AVX-512F when present, else AVX2/FMA).
    Vnni,
}

/// Builds a [`Kernels`] table for the given cap, clamped to what the CPU
/// actually supports. `None` means "best available" (the `auto` policy).
///
/// This is `kernels()` without the cache — tests and benches use it to
/// compare tiers side by side in one process.
pub fn select(cap: Option<Tier>) -> Kernels {
    let cap = cap.unwrap_or(Tier::Vnni);
    let fp32_avx512 = cap >= Tier::Vnni && fp32::avx512_supported();
    let fp32_fma = cap >= Tier::Avx2 && fp32::fma_supported();
    let int8_vnni = cap >= Tier::Vnni && int8::vnni_supported();
    let int8_avx2 = cap >= Tier::Avx2 && int8::avx2_supported();

    let (fp32_name, fp32_tile): (&'static str, Fp32TileFn) = if fp32_avx512 {
        ("avx512f", fp32::tile_avx512)
    } else if fp32_fma {
        ("fma", fp32::tile_fma)
    } else {
        ("portable", fp32::tile_portable)
    };
    let (int8_name, qdot_tile): (&'static str, QdotTileFn) = if int8_vnni {
        ("vnni", int8::tile_vnni)
    } else if int8_avx2 {
        ("avx2", int8::tile_avx2)
    } else {
        ("portable", int8::tile_portable)
    };
    let qgemm_i32: Option<QgemmI32Fn> = int8_vnni.then_some(int8::qgemm_vnni as _);

    let name = match (fp32_name, int8_name) {
        ("portable", "portable") => "portable",
        ("fma", "avx2") => "avx2+fma",
        ("fma", "vnni") => "fma+vnni",
        ("avx512f", "vnni") => "avx512f+vnni",
        ("avx512f", "avx2") => "avx512f+avx2",
        // Odd mixes (e.g. FMA without AVX2) fall out of per-feature
        // detection; name the stronger half.
        (f, _) => f,
    };
    Kernels {
        name,
        fp32_tile,
        qdot_tile,
        qgemm_i32,
        portable: fp32_name == "portable" && int8_name == "portable",
    }
}

/// Parses a `BIOFORMER_SIMD` value into a cap; unknown strings mean
/// "auto".
fn parse_cap(v: &str) -> Option<Tier> {
    match v.trim().to_ascii_lowercase().as_str() {
        "portable" | "scalar" | "off" | "0" => Some(Tier::Portable),
        "avx2" => Some(Tier::Avx2),
        "vnni" | "avx512" | "auto" | "native" | "" => None,
        _ => None,
    }
}

/// The process-global microkernel table: CPU features are detected and the
/// `BIOFORMER_SIMD` override read **once**, on first call; every GEMM in
/// the workspace then dispatches through the cached function pointers.
pub fn kernels() -> &'static Kernels {
    static KERNELS: OnceLock<Kernels> = OnceLock::new();
    KERNELS.get_or_init(|| {
        let cap = std::env::var("BIOFORMER_SIMD")
            .ok()
            .and_then(|v| parse_cap(&v));
        select(cap)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cap_policies() {
        assert_eq!(parse_cap("portable"), Some(Tier::Portable));
        assert_eq!(parse_cap("SCALAR"), Some(Tier::Portable));
        assert_eq!(parse_cap("off"), Some(Tier::Portable));
        assert_eq!(parse_cap("avx2"), Some(Tier::Avx2));
        assert_eq!(parse_cap("vnni"), None);
        assert_eq!(parse_cap("auto"), None);
        assert_eq!(parse_cap("definitely-not-a-tier"), None);
    }

    #[test]
    fn portable_cap_selects_portable() {
        let k = select(Some(Tier::Portable));
        assert!(k.portable);
        assert_eq!(k.name, "portable");
    }

    #[test]
    fn auto_selection_is_consistent_with_detection() {
        let k = select(None);
        if int8::vnni_supported() || int8::avx2_supported() || fp32::fma_supported() {
            assert!(!k.portable, "SIMD host must not resolve to portable");
        } else {
            assert!(k.portable);
        }
    }

    #[test]
    fn kernels_is_cached_and_stable() {
        let a = kernels() as *const Kernels;
        let b = kernels() as *const Kernels;
        assert_eq!(a, b);
    }
}
