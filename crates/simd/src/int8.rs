//! int8 `1×QNR` dot-product tiles — the inner kernel of the quantized GEMM
//! in `bioformer_quant::kernels`.
//!
//! All variants share one contract: given one `A` row (`a.len() == k`) and
//! `jw ≤ QNR` consecutive `B` rows packed back-to-back
//! (`b_tile.len() == jw·k`), write the exact i32 dot products
//! `out[lj] = Σ_kk a[kk] · b_tile[lj·k + kk]` for `lj < jw` and leave
//! entries `jw..QNR` untouched. Integer addition is associative, so every
//! tier is **bit-identical** to the portable scalar reduction — this is a
//! hard contract, pinned by the parity suite.
//!
//! * [`tile_avx2`] widens both operands to i16 (`vpmovsxbw`) and reduces
//!   with the widening multiply–add `vpmaddwd`; pair sums of i16×i16
//!   products always fit i32, so there is no saturation anywhere.
//! * [`tile_vnni`] uses `vpdpbusd` (u8×s8 dot-accumulate into i32 lanes).
//!   The signed activation is biased into u8 via `a ⊕ 0x80 = a + 128`, and
//!   the bias is removed exactly with a `vpdpbusd`-computed column sum:
//!   `Σ a·b = Σ (a+128)·b − 128·Σ b`. The saturating `vpmaddubsw` idiom is
//!   deliberately **not** used: `u8·s8` pair sums can exceed i16 range.
//! * [`qgemm_vnni`] hoists the dispatch boundary from a tile to the whole
//!   GEMM ([`crate::QgemmI32Fn`]): a 4×4 register block (16 independent
//!   `vpdpbusd` chains, each `B` load shared across 4 `A` rows) with the
//!   `128·Σ b` corrections computed once per `B` row instead of once per
//!   tile visit — the production int8 GEMM path on VNNI hosts.

use crate::QNR;

#[inline(always)]
fn check_tile_args(a: &[i8], b_tile: &[i8], k: usize, jw: usize) {
    assert!((1..=QNR).contains(&jw), "int8 tile: jw {jw} out of range");
    assert_eq!(a.len(), k, "int8 tile: A row size");
    assert_eq!(b_tile.len(), jw * k, "int8 tile: B tile size");
}

/// Whether the AVX2 widening tile is usable on this CPU.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
fn avx512_vnni_supported() -> bool {
    is_x86_feature_detected!("avx512vnni") && is_x86_feature_detected!("avx512vl")
}

#[cfg(target_arch = "x86_64")]
fn avx_vnni_supported() -> bool {
    is_x86_feature_detected!("avxvnni")
}

/// Whether a `vpdpbusd` encoding (AVX-512-VNNI+VL or AVX-VNNI) is usable
/// on this CPU.
pub fn vnni_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx512_vnni_supported() || avx_vnni_supported()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Portable tile — the scalar reduction the quantized GEMM always used,
/// kept verbatim as the fallback and as the bit-exactness oracle.
///
/// # Panics
///
/// Panics if slice lengths disagree with `(k, jw)`.
pub fn tile_portable(a: &[i8], b_tile: &[i8], k: usize, jw: usize, out: &mut [i32; QNR]) {
    check_tile_args(a, b_tile, k, jw);
    for (lj, o) in out.iter_mut().enumerate().take(jw) {
        let b = &b_tile[lj * k..(lj + 1) * k];
        let mut s = 0i32;
        for (&x, &y) in a.iter().zip(b.iter()) {
            s += x as i32 * y as i32;
        }
        *o = s;
    }
}

/// AVX2 tile: 16-lane widen (`vpmovsxbw`) + widening multiply–add
/// (`vpmaddwd`) per 16 codes, the `A`-row load shared across all `QNR`
/// accumulators in the full-tile fast path. Falls back to
/// [`tile_portable`] when AVX2 is absent.
///
/// # Panics
///
/// Panics if slice lengths disagree with `(k, jw)`.
pub fn tile_avx2(a: &[i8], b_tile: &[i8], k: usize, jw: usize, out: &mut [i32; QNR]) {
    check_tile_args(a, b_tile, k, jw);
    #[cfg(target_arch = "x86_64")]
    if avx2_supported() {
        // SAFETY: AVX2 availability checked above; bounds checked by
        // `check_tile_args`.
        unsafe { tile_avx2_impl(a, b_tile, k, jw, out) };
        return;
    }
    tile_portable(a, b_tile, k, jw, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: core::arch::x86_64::__m256i) -> i32 {
    use core::arch::x86_64::*;
    // Pure register arithmetic, no memory access.
    let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

/// Combined horizontal reduction of all `QNR` accumulators at once:
/// two `vphaddd` levels interleave the four vectors, one cross-lane add
/// finishes — ~12 instructions for four sums instead of four independent
/// reductions. i32 addition is associative (wrapping), so the changed
/// summation order is still bit-exact.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum4_epi32(v: [core::arch::x86_64::__m256i; QNR]) -> core::arch::x86_64::__m128i {
    use core::arch::x86_64::*;
    let s01 = _mm256_hadd_epi32(v[0], v[1]);
    let s23 = _mm256_hadd_epi32(v[2], v[3]);
    let s = _mm256_hadd_epi32(s01, s23);
    _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1))
}

/// Zero-padded copy of `src` (≤ `N` bytes) into a stack buffer, so a
/// partial trailing chunk can run through the same SIMD step as full
/// chunks: the padding contributes exact zero products (for the pre-biased
/// u8 operand too — a zero `A` byte always meets a zero `B` byte).
#[inline(always)]
fn padded<T: Copy + Default, const N: usize>(src: &[T]) -> [T; N] {
    let mut buf = [T::default(); N];
    buf[..src.len()].copy_from_slice(src);
    buf
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile_avx2_impl(a: &[i8], b_tile: &[i8], k: usize, jw: usize, out: &mut [i32; QNR]) {
    use core::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b_tile.as_ptr();
    let chunks = k / 16;
    let tail = chunks * 16;
    // The k-tail runs as one more SIMD step over zero-padded stack copies
    // (zero codes contribute zero products — exact), not a scalar loop.
    let a_pad = if tail < k {
        padded::<i8, 16>(&a[tail..])
    } else {
        [0; 16]
    };
    // SAFETY (whole body): caller validated `a.len() == k` and
    // `b_tile.len() == jw·k`; every 16-byte load below starts at offset
    // ≤ its row end − 16, or reads a 16-byte stack buffer.
    unsafe {
        if jw == QNR {
            let mut acc = [_mm256_setzero_si256(); QNR];
            for c in 0..chunks {
                let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(c * 16) as *const __m128i));
                for (lj, accl) in acc.iter_mut().enumerate() {
                    let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        bp.add(lj * k + c * 16) as *const __m128i
                    ));
                    *accl = _mm256_add_epi32(*accl, _mm256_madd_epi16(av, bv));
                }
            }
            if tail < k {
                let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a_pad.as_ptr() as *const __m128i));
                for (lj, accl) in acc.iter_mut().enumerate() {
                    let b_pad = padded::<i8, 16>(&b_tile[lj * k + tail..(lj + 1) * k]);
                    let bv =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(b_pad.as_ptr() as *const __m128i));
                    *accl = _mm256_add_epi32(*accl, _mm256_madd_epi16(av, bv));
                }
            }
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, hsum4_epi32(acc));
        } else {
            for (lj, o) in out.iter_mut().enumerate().take(jw) {
                let mut acc = _mm256_setzero_si256();
                for c in 0..chunks {
                    let av =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(c * 16) as *const __m128i));
                    let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        bp.add(lj * k + c * 16) as *const __m128i
                    ));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
                }
                if tail < k {
                    let av =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(a_pad.as_ptr() as *const __m128i));
                    let b_pad = padded::<i8, 16>(&b_tile[lj * k + tail..(lj + 1) * k]);
                    let bv =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(b_pad.as_ptr() as *const __m128i));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
                }
                *o = hsum_epi32(acc);
            }
        }
    }
}

/// VNNI tile: `vpdpbusd` over 32 codes per step with the `⊕0x80` bias
/// trick (see module docs) — still bit-identical to the scalar oracle.
/// Prefers the AVX-512-VNNI+VL encoding, then AVX-VNNI; falls back to
/// [`tile_avx2`] (and transitively to portable) when neither is present.
///
/// # Panics
///
/// Panics if slice lengths disagree with `(k, jw)`.
pub fn tile_vnni(a: &[i8], b_tile: &[i8], k: usize, jw: usize, out: &mut [i32; QNR]) {
    check_tile_args(a, b_tile, k, jw);
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_vnni_supported() {
            // SAFETY: AVX-512-VNNI+VL availability checked above; bounds
            // checked by `check_tile_args`.
            unsafe { tile_vnni512_impl(a, b_tile, k, jw, out) };
            return;
        }
        if avx_vnni_supported() {
            // SAFETY: AVX-VNNI availability checked above; bounds checked
            // by `check_tile_args`.
            unsafe { tile_vnni_avx_impl(a, b_tile, k, jw, out) };
            return;
        }
    }
    tile_avx2(a, b_tile, k, jw, out);
}

/// Shared `vpdpbusd` tile body, parameterised over the intrinsic name
/// (`_mm256_dpbusd_epi32` needs AVX-512-VNNI+VL; `_mm256_dpbusd_avx_epi32`
/// is the AVX-VNNI encoding of the same operation).
#[cfg(target_arch = "x86_64")]
macro_rules! vnni_tile_body {
    ($dp:ident, $a:ident, $b_tile:ident, $k:ident, $jw:ident, $out:ident) => {{
        use core::arch::x86_64::*;
        let ap = $a.as_ptr();
        let bp = $b_tile.as_ptr();
        let chunks = $k / 32;
        // a ⊕ 0x80 reinterprets the signed code as `a + 128` in u8 — the
        // unsigned operand vpdpbusd wants. The bias is removed exactly:
        // Σ a·b = Σ (a+128)·b − 128·Σ b, with Σ b accumulated by a second
        // vpdpbusd against all-ones. No step saturates, so the result is
        // bit-identical to the scalar reduction.
        let sign = _mm256_set1_epi8(-128i8);
        let ones = _mm256_set1_epi8(1);
        let tail = chunks * 32;
        // The k-tail runs as one more vpdpbusd step over zero-padded stack
        // copies: a zero code biases to 128 but multiplies a zero B byte,
        // and the column-sum correction sees zero too — exact.
        let a_pad = if tail < $k {
            padded::<i8, 32>(&$a[tail..])
        } else {
            [0; 32]
        };
        if $jw == QNR {
            let mut acc = [_mm256_setzero_si256(); QNR];
            let mut bsum = [_mm256_setzero_si256(); QNR];
            for c in 0..chunks {
                let av = _mm256_loadu_si256(ap.add(c * 32) as *const __m256i);
                let au = _mm256_xor_si256(av, sign);
                for lj in 0..QNR {
                    let bv = _mm256_loadu_si256(bp.add(lj * $k + c * 32) as *const __m256i);
                    acc[lj] = $dp(acc[lj], au, bv);
                    bsum[lj] = $dp(bsum[lj], ones, bv);
                }
            }
            if tail < $k {
                let av = _mm256_loadu_si256(a_pad.as_ptr() as *const __m256i);
                let au = _mm256_xor_si256(av, sign);
                for lj in 0..QNR {
                    let b_pad = padded::<i8, 32>(&$b_tile[lj * $k + tail..(lj + 1) * $k]);
                    let bv = _mm256_loadu_si256(b_pad.as_ptr() as *const __m256i);
                    acc[lj] = $dp(acc[lj], au, bv);
                    bsum[lj] = $dp(bsum[lj], ones, bv);
                }
            }
            // s[lj] = Σ(a+128)·b − 128·Σb, all four lanes at once.
            let r = _mm_sub_epi32(hsum4_epi32(acc), _mm_slli_epi32(hsum4_epi32(bsum), 7));
            _mm_storeu_si128($out.as_mut_ptr() as *mut __m128i, r);
        } else {
            for (lj, o) in $out.iter_mut().enumerate().take($jw) {
                let mut acc = _mm256_setzero_si256();
                let mut bsum = _mm256_setzero_si256();
                for c in 0..chunks {
                    let av = _mm256_loadu_si256(ap.add(c * 32) as *const __m256i);
                    let au = _mm256_xor_si256(av, sign);
                    let bv = _mm256_loadu_si256(bp.add(lj * $k + c * 32) as *const __m256i);
                    acc = $dp(acc, au, bv);
                    bsum = $dp(bsum, ones, bv);
                }
                if tail < $k {
                    let av = _mm256_loadu_si256(a_pad.as_ptr() as *const __m256i);
                    let au = _mm256_xor_si256(av, sign);
                    let b_pad = padded::<i8, 32>(&$b_tile[lj * $k + tail..(lj + 1) * $k]);
                    let bv = _mm256_loadu_si256(b_pad.as_ptr() as *const __m256i);
                    acc = $dp(acc, au, bv);
                    bsum = $dp(bsum, ones, bv);
                }
                *o = hsum_epi32(acc) - 128 * hsum_epi32(bsum);
            }
        }
    }};
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512vnni,avx512vl,avx2")]
unsafe fn tile_vnni512_impl(a: &[i8], b_tile: &[i8], k: usize, jw: usize, out: &mut [i32; QNR]) {
    // SAFETY (whole body): caller validated `a.len() == k` and
    // `b_tile.len() == jw·k`; every 32-byte load starts at offset ≤ its
    // row end − 32, or reads a 32-byte stack buffer.
    unsafe { vnni_tile_body!(_mm256_dpbusd_epi32, a, b_tile, k, jw, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avxvnni,avx2")]
unsafe fn tile_vnni_avx_impl(a: &[i8], b_tile: &[i8], k: usize, jw: usize, out: &mut [i32; QNR]) {
    // SAFETY (whole body): caller validated `a.len() == k` and
    // `b_tile.len() == jw·k`; every 32-byte load starts at offset ≤ its
    // row end − 32, or reads a 32-byte stack buffer.
    unsafe { vnni_tile_body!(_mm256_dpbusd_avx_epi32, a, b_tile, k, jw, out) }
}

/// Whole-GEMM portable oracle: the naive triple loop, exported for the
/// parity tests of [`qgemm_vnni`].
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn qgemm_portable(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    check_qgemm_args(a, b, m, k, n, out);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0i32;
            for kk in 0..k {
                s += a[i * k + kk] as i32 * b[j * k + kk] as i32;
            }
            out[i * n + j] = s;
        }
    }
}

#[inline(always)]
fn check_qgemm_args(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "int8 qgemm: A size");
    assert_eq!(b.len(), n * k, "int8 qgemm: B size");
    assert_eq!(out.len(), m * n, "int8 qgemm: out size");
    assert!(n <= crate::QGEMM_N_CAP, "int8 qgemm: n {n} over cap");
    assert!(k <= crate::QGEMM_K_CAP, "int8 qgemm: k {k} over cap");
}

/// Whole-GEMM VNNI kernel ([`crate::QgemmI32Fn`]): `vpdpbusd` over a 4×4
/// register block (16 independent accumulator chains, each `B` load shared
/// across 4 `A` rows), with the `128·Σb` bias corrections hoisted to one
/// pass per `B` row. Row/column remainders run the self-correcting
/// [`tile_vnni`] body — still exact, and off the hot path. Falls back to
/// [`qgemm_portable`] when no `vpdpbusd` encoding is present (the dispatch
/// table only installs this entry on VNNI hosts, so the fallback is for
/// direct callers like the parity tests).
///
/// # Panics
///
/// Panics on inconsistent slice lengths or a shape over
/// [`crate::QGEMM_N_CAP`] / [`crate::QGEMM_K_CAP`].
pub fn qgemm_vnni(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    check_qgemm_args(a, b, m, k, n, out);
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_vnni_supported() {
            // SAFETY: AVX-512-VNNI+VL availability checked above; bounds
            // checked by `check_qgemm_args`.
            unsafe { qgemm_vnni512_impl(a, b, m, k, n, out) };
            return;
        }
        if avx_vnni_supported() {
            // SAFETY: AVX-VNNI availability checked above; bounds checked
            // by `check_qgemm_args`.
            unsafe { qgemm_vnni_avx_impl(a, b, m, k, n, out) };
            return;
        }
    }
    qgemm_portable(a, b, m, k, n, out);
}

/// Shared whole-GEMM `vpdpbusd` body, parameterised over the dot-product
/// intrinsic and the matching single-row tile used for the remainders.
#[cfg(target_arch = "x86_64")]
macro_rules! vnni_qgemm_body {
    ($dp:ident, $tile:ident, $a:ident, $b:ident, $m:ident, $k:ident, $n:ident, $out:ident) => {{
        use core::arch::x86_64::*;
        let ap = $a.as_ptr();
        let bp = $b.as_ptr();
        let chunks = $k / 32;
        let tail = chunks * 32;
        let rem = $k - tail;
        let sign = _mm256_set1_epi8(-128i8);
        let ones = _mm256_set1_epi8(1);
        // Extent of the full 4-wide column / 4-high row blocks; the
        // remainders run the self-correcting single-row tile below.
        let nb = $n & !(QNR - 1);
        let mb = $m & !3;

        // Zero-padded k-tails of the B rows, gathered ONCE per GEMM — the
        // main loop revisits every B row per row-block, and re-padding in
        // the tail step (8 stack copies per 4×4 block) measurably dominated
        // ragged-k products like the patch conv (k = 140). Deliberately
        // uninitialised: rows are written (tail codes + explicit zero fill)
        // before any read, and nothing touches it when `rem == 0`.
        let mut btail = core::mem::MaybeUninit::<[i8; crate::QGEMM_N_CAP * 32]>::uninit();
        let btp = btail.as_mut_ptr() as *mut i8;
        if rem > 0 {
            for j in 0..nb {
                core::ptr::copy_nonoverlapping(bp.add(j * $k + tail), btp.add(j * 32), rem);
                core::ptr::write_bytes(btp.add(j * 32 + rem), 0, 32 - rem);
            }
        }

        // 128·Σb per B row of the full column blocks, computed once for
        // the whole GEMM (one virtual all-ones A row) instead of once per
        // (row, tile) visit.
        let mut bcorr = [0i32; crate::QGEMM_N_CAP];
        let mut j = 0usize;
        while j < nb {
            let mut bsum = [_mm256_setzero_si256(); QNR];
            for c in 0..chunks {
                for lj in 0..QNR {
                    let bv = _mm256_loadu_si256(bp.add((j + lj) * $k + c * 32) as *const __m256i);
                    bsum[lj] = $dp(bsum[lj], ones, bv);
                }
            }
            if rem > 0 {
                for lj in 0..QNR {
                    let bv = _mm256_loadu_si256(btp.add((j + lj) * 32) as *const __m256i);
                    bsum[lj] = $dp(bsum[lj], ones, bv);
                }
            }
            let corr = _mm_slli_epi32(hsum4_epi32(bsum), 7);
            _mm_storeu_si128(bcorr.as_mut_ptr().add(j) as *mut __m128i, corr);
            j += QNR;
        }

        let mut i = 0usize;
        while i < mb {
            // Biased k-tails of this row-block's A rows, padded once and
            // reused across every column block.
            let mut au_tail = [_mm256_setzero_si256(); 4];
            if rem > 0 {
                for (r, aur) in au_tail.iter_mut().enumerate() {
                    let a_pad = padded::<i8, 32>(&$a[(i + r) * $k + tail..(i + r + 1) * $k]);
                    let av = _mm256_loadu_si256(a_pad.as_ptr() as *const __m256i);
                    *aur = _mm256_xor_si256(av, sign);
                }
            }
            let mut j = 0usize;
            while j < nb {
                let mut acc = [[_mm256_setzero_si256(); QNR]; 4];
                for c in 0..chunks {
                    let mut au = [_mm256_setzero_si256(); 4];
                    for (r, aur) in au.iter_mut().enumerate() {
                        let av =
                            _mm256_loadu_si256(ap.add((i + r) * $k + c * 32) as *const __m256i);
                        *aur = _mm256_xor_si256(av, sign);
                    }
                    for lj in 0..QNR {
                        let bv =
                            _mm256_loadu_si256(bp.add((j + lj) * $k + c * 32) as *const __m256i);
                        for r in 0..4 {
                            acc[r][lj] = $dp(acc[r][lj], au[r], bv);
                        }
                    }
                }
                if rem > 0 {
                    for lj in 0..QNR {
                        let bv = _mm256_loadu_si256(btp.add((j + lj) * 32) as *const __m256i);
                        for r in 0..4 {
                            acc[r][lj] = $dp(acc[r][lj], au_tail[r], bv);
                        }
                    }
                }
                let corr = _mm_loadu_si128(bcorr.as_ptr().add(j) as *const __m128i);
                for (r, accr) in acc.iter().enumerate() {
                    let res = _mm_sub_epi32(hsum4_epi32(*accr), corr);
                    _mm_storeu_si128($out.as_mut_ptr().add((i + r) * $n + j) as *mut __m128i, res);
                }
                j += QNR;
            }
            if nb < $n {
                let jw = $n - nb;
                let b_tile = &$b[nb * $k..$n * $k];
                for r in 0..4 {
                    let mut t = [0i32; QNR];
                    $tile(&$a[(i + r) * $k..(i + r + 1) * $k], b_tile, $k, jw, &mut t);
                    $out[(i + r) * $n + nb..(i + r) * $n + $n].copy_from_slice(&t[..jw]);
                }
            }
            i += 4;
        }
        for i in mb..$m {
            let a_row = &$a[i * $k..(i + 1) * $k];
            let mut j = 0usize;
            while j < $n {
                let jw = ($n - j).min(QNR);
                let mut t = [0i32; QNR];
                $tile(a_row, &$b[j * $k..(j + jw) * $k], $k, jw, &mut t);
                $out[i * $n + j..i * $n + j + jw].copy_from_slice(&t[..jw]);
                j += jw;
            }
        }
    }};
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512vnni,avx512vl,avx2")]
unsafe fn qgemm_vnni512_impl(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    // SAFETY (whole body): caller validated the slice sizes and caps;
    // every 32-byte load starts at offset ≤ its row end − 32, or reads a
    // 32-byte stack buffer; every 16-byte store targets a full 4-wide
    // block inside `out`/`bcorr`.
    unsafe { vnni_qgemm_body!(_mm256_dpbusd_epi32, tile_vnni512_impl, a, b, m, k, n, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avxvnni,avx2")]
unsafe fn qgemm_vnni_avx_impl(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    // SAFETY (whole body): caller validated the slice sizes and caps;
    // every 32-byte load starts at offset ≤ its row end − 32, or reads a
    // 32-byte stack buffer; every 16-byte store targets a full 4-wide
    // block inside `out`/`bcorr`.
    unsafe {
        vnni_qgemm_body!(
            _mm256_dpbusd_avx_epi32,
            tile_vnni_avx_impl,
            a,
            b,
            m,
            k,
            n,
            out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qfilled(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as i8
            })
            .collect()
    }

    fn assert_tile_exact(tile: crate::QdotTileFn, k: usize, jw: usize, seed: u64) {
        let a = qfilled(k, seed);
        let b_tile = qfilled(jw * k, seed + 1);
        let mut got = [i32::MIN; QNR];
        let mut want = [i32::MIN; QNR];
        tile(&a, &b_tile, k, jw, &mut got);
        tile_portable(&a, &b_tile, k, jw, &mut want);
        assert_eq!(got, want, "k={k} jw={jw}");
        // Dead lanes must not be written.
        for (lj, &g) in got.iter().enumerate().skip(jw) {
            assert_eq!(g, i32::MIN, "lane {lj} written");
        }
    }

    #[test]
    fn avx2_is_bit_exact() {
        for &(k, jw) in &[
            (0, 1),
            (1, 1),
            (15, 2),
            (16, 3),
            (17, 4),
            (31, 4),
            (32, 4),
            (33, 4),
            (64, 4),
            (420, 4),
            (29, 2),
        ] {
            assert_tile_exact(tile_avx2, k, jw, 41 + k as u64);
        }
    }

    #[test]
    fn vnni_is_bit_exact() {
        for &(k, jw) in &[
            (0, 1),
            (1, 1),
            (15, 2),
            (16, 3),
            (31, 4),
            (32, 4),
            (33, 4),
            (64, 4),
            (95, 3),
            (96, 4),
            (420, 4),
        ] {
            assert_tile_exact(tile_vnni, k, jw, 59 + k as u64);
        }
    }

    /// Extreme codes stress the no-saturation argument: ±128·±127 pair
    /// sums overflow i16 under `vpmaddubsw`, which is exactly why that
    /// idiom is not used.
    #[test]
    fn extreme_codes_do_not_saturate() {
        for k in [16usize, 32, 64, 420] {
            let a = vec![-128i8; k];
            let b_tile: Vec<i8> = (0..QNR * k)
                .map(|i| if i % 2 == 0 { 127 } else { -128 })
                .collect();
            let mut want = [0i32; QNR];
            tile_portable(&a, &b_tile, k, QNR, &mut want);
            for tile in [tile_avx2 as crate::QdotTileFn, tile_vnni] {
                let mut got = [0i32; QNR];
                tile(&a, &b_tile, k, QNR, &mut got);
                assert_eq!(got, want, "k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "B tile size")]
    fn bad_tile_size_panics() {
        let mut out = [0i32; QNR];
        tile_portable(&[0; 4], &[0; 4], 4, 2, &mut out);
    }

    /// The whole-GEMM VNNI kernel must be bit-exact against the portable
    /// triple loop across ragged shapes (row/column/k remainders, tiny and
    /// degenerate dims, and the bio1 hot shapes).
    #[test]
    fn qgemm_vnni_is_bit_exact() {
        for &(m, k, n) in &[
            (0usize, 5usize, 3usize),
            (1, 0, 1),
            (1, 1, 1),
            (3, 7, 2),
            (4, 32, 4),
            (5, 31, 9),
            (7, 33, 13),
            (8, 64, 16),
            (31, 64, 37),
            (31, 32, 31),
            (6, 420, 11),
        ] {
            let a = qfilled(m * k, 91 + (m * k) as u64);
            let b = qfilled(n * k, 92 + (n * k) as u64);
            let mut want = vec![i32::MIN; m * n];
            let mut got = vec![i32::MIN; m * n];
            qgemm_portable(&a, &b, m, k, n, &mut want);
            qgemm_vnni(&a, &b, m, k, n, &mut got);
            assert_eq!(got, want, "shape ({m},{k},{n})");
        }
    }

    /// Extreme codes through the whole-GEMM kernel: the biased u8 operand
    /// hits 255 against alternating ±max B codes.
    #[test]
    fn qgemm_vnni_extreme_codes() {
        let (m, k, n) = (5usize, 64usize, 9usize);
        let a = vec![-128i8; m * k];
        let b: Vec<i8> = (0..n * k)
            .map(|i| if i % 2 == 0 { 127 } else { -128 })
            .collect();
        let mut want = vec![0i32; m * n];
        let mut got = vec![0i32; m * n];
        qgemm_portable(&a, &b, m, k, n, &mut want);
        qgemm_vnni(&a, &b, m, k, n, &mut got);
        assert_eq!(got, want);
    }
}
