//! fp32 `MR×NR` microkernel tiles over the packed-panel layout of
//! `bioformer_tensor::pack`.
//!
//! All variants share one contract: given `mr ≤ MR` rows of `A`
//! (`a.len() == mr·k`, row stride `k`) and a zero-padded packed panel
//! (`panel.len() == k·NR`), write
//! `acc[r][j] = Σ_kk a[r·k + kk] · panel[kk·NR + j]` for `r < mr` and
//! leave rows `mr..MR` untouched. The portable tile is the exact loop the
//! packed GEMM used before this crate existed; the FMA/AVX-512 tiles fuse
//! each multiply–add, so they agree with it to FMA rounding (pinned at
//! 1e-4 by the parity suite), not bit-for-bit.

use crate::{MR, NR};

#[inline(always)]
fn check_tile_args(a: &[f32], k: usize, panel: &[f32], mr: usize) {
    assert!((1..=MR).contains(&mr), "fp32 tile: mr {mr} out of range");
    assert_eq!(a.len(), mr * k, "fp32 tile: A block size");
    assert_eq!(panel.len(), k * NR, "fp32 tile: panel size");
}

/// Whether the AVX2/FMA tile is usable on this CPU.
pub fn fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX-512F tile is usable on this CPU.
pub fn avx512_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Portable tile — the safe loop nest the packed GEMM always used, kept
/// verbatim as the fallback and as the oracle for the SIMD variants.
///
/// # Panics
///
/// Panics if slice lengths disagree with `(k, mr)`.
pub fn tile_portable(a: &[f32], k: usize, panel: &[f32], mr: usize, acc: &mut [[f32; NR]; MR]) {
    check_tile_args(a, k, panel, mr);
    // Four named accumulator arrays (not a 2-D array) so LLVM promotes
    // every lane to a vector register instead of spilling the tile.
    let mut acc0 = [0.0f32; NR];
    let mut acc1 = [0.0f32; NR];
    let mut acc2 = [0.0f32; NR];
    let mut acc3 = [0.0f32; NR];
    if mr == MR {
        let (a0, rest) = a.split_at(k);
        let (a1, rest) = rest.split_at(k);
        let (a2, a3) = rest.split_at(k);
        let bp = panel.chunks_exact(NR);
        let ks = a0.iter().zip(a1).zip(a2.iter().zip(a3)).zip(bp);
        for (((&v0, &v1), (&v2, &v3)), b_row) in ks {
            let b: &[f32; NR] = b_row.try_into().unwrap();
            for j in 0..NR {
                acc0[j] += v0 * b[j];
                acc1[j] += v1 * b[j];
                acc2[j] += v2 * b[j];
                acc3[j] += v3 * b[j];
            }
        }
    } else {
        // Row-tail tile: mr < MR live rows; the dead accumulators stay
        // zero and are never stored.
        for (kk, b_row) in panel.chunks_exact(NR).enumerate().take(k) {
            let b: &[f32; NR] = b_row.try_into().unwrap();
            let v0 = a[kk];
            let v1 = if mr > 1 { a[k + kk] } else { 0.0 };
            let v2 = if mr > 2 { a[2 * k + kk] } else { 0.0 };
            for j in 0..NR {
                acc0[j] += v0 * b[j];
                acc1[j] += v1 * b[j];
                acc2[j] += v2 * b[j];
            }
        }
    }
    let rows = [acc0, acc1, acc2, acc3];
    acc[..mr].copy_from_slice(&rows[..mr]);
}

/// AVX2/FMA tile: 8 `ymm` accumulators (4 rows × 2 half-panels), one
/// broadcast-FMA pair per `A` value per `k` step. Falls back to
/// [`tile_portable`] when the CPU lacks AVX2+FMA, so it is always safe to
/// call (the dispatch table never selects it in that case anyway).
///
/// # Panics
///
/// Panics if slice lengths disagree with `(k, mr)`.
pub fn tile_fma(a: &[f32], k: usize, panel: &[f32], mr: usize, acc: &mut [[f32; NR]; MR]) {
    check_tile_args(a, k, panel, mr);
    #[cfg(target_arch = "x86_64")]
    if fma_supported() {
        // SAFETY: AVX2+FMA availability checked above; slice bounds
        // checked by `check_tile_args`.
        unsafe { tile_fma_impl(a, k, panel, mr, acc) };
        return;
    }
    tile_portable(a, k, panel, mr, acc);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_fma_impl(a: &[f32], k: usize, panel: &[f32], mr: usize, acc: &mut [[f32; NR]; MR]) {
    use core::arch::x86_64::*;
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    // SAFETY (whole body): caller validated `a.len() == mr·k` and
    // `panel.len() == k·NR`; every pointer offset below stays inside
    // those bounds. Loads/stores are unaligned-tolerant (`loadu`/`storeu`).
    unsafe {
        if mr == MR {
            let mut c = [_mm256_setzero_ps(); 8];
            for kk in 0..k {
                let b0 = _mm256_loadu_ps(pp.add(kk * NR));
                let b1 = _mm256_loadu_ps(pp.add(kk * NR + 8));
                let v0 = _mm256_set1_ps(*ap.add(kk));
                let v1 = _mm256_set1_ps(*ap.add(k + kk));
                let v2 = _mm256_set1_ps(*ap.add(2 * k + kk));
                let v3 = _mm256_set1_ps(*ap.add(3 * k + kk));
                c[0] = _mm256_fmadd_ps(v0, b0, c[0]);
                c[1] = _mm256_fmadd_ps(v0, b1, c[1]);
                c[2] = _mm256_fmadd_ps(v1, b0, c[2]);
                c[3] = _mm256_fmadd_ps(v1, b1, c[3]);
                c[4] = _mm256_fmadd_ps(v2, b0, c[4]);
                c[5] = _mm256_fmadd_ps(v2, b1, c[5]);
                c[6] = _mm256_fmadd_ps(v3, b0, c[6]);
                c[7] = _mm256_fmadd_ps(v3, b1, c[7]);
            }
            for r in 0..MR {
                let row = acc[r].as_mut_ptr();
                _mm256_storeu_ps(row, c[2 * r]);
                _mm256_storeu_ps(row.add(8), c[2 * r + 1]);
            }
        } else {
            for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                let mut c0 = _mm256_setzero_ps();
                let mut c1 = _mm256_setzero_ps();
                for kk in 0..k {
                    let v = _mm256_set1_ps(*ap.add(r * k + kk));
                    c0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(pp.add(kk * NR)), c0);
                    c1 = _mm256_fmadd_ps(v, _mm256_loadu_ps(pp.add(kk * NR + 8)), c1);
                }
                let row = accr.as_mut_ptr();
                _mm256_storeu_ps(row, c0);
                _mm256_storeu_ps(row.add(8), c1);
            }
        }
    }
}

/// AVX-512F tile: one `zmm` accumulator per row (the whole `NR = 16`
/// panel width in a single register), broadcast-FMA per `A` value. Falls
/// back to [`tile_fma`] (and transitively to portable) when AVX-512F is
/// absent.
///
/// # Panics
///
/// Panics if slice lengths disagree with `(k, mr)`.
pub fn tile_avx512(a: &[f32], k: usize, panel: &[f32], mr: usize, acc: &mut [[f32; NR]; MR]) {
    check_tile_args(a, k, panel, mr);
    #[cfg(target_arch = "x86_64")]
    if avx512_supported() {
        // SAFETY: AVX-512F availability checked above; bounds checked by
        // `check_tile_args`.
        unsafe { tile_avx512_impl(a, k, panel, mr, acc) };
        return;
    }
    tile_fma(a, k, panel, mr, acc);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tile_avx512_impl(
    a: &[f32],
    k: usize,
    panel: &[f32],
    mr: usize,
    acc: &mut [[f32; NR]; MR],
) {
    use core::arch::x86_64::*;
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    // SAFETY (whole body): caller validated `a.len() == mr·k` and
    // `panel.len() == k·NR`; offsets stay inside those bounds and all
    // memory ops are unaligned-tolerant.
    unsafe {
        if mr == MR {
            let mut c0 = _mm512_setzero_ps();
            let mut c1 = _mm512_setzero_ps();
            let mut c2 = _mm512_setzero_ps();
            let mut c3 = _mm512_setzero_ps();
            for kk in 0..k {
                let b = _mm512_loadu_ps(pp.add(kk * NR));
                c0 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(kk)), b, c0);
                c1 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(k + kk)), b, c1);
                c2 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(2 * k + kk)), b, c2);
                c3 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(3 * k + kk)), b, c3);
            }
            _mm512_storeu_ps(acc[0].as_mut_ptr(), c0);
            _mm512_storeu_ps(acc[1].as_mut_ptr(), c1);
            _mm512_storeu_ps(acc[2].as_mut_ptr(), c2);
            _mm512_storeu_ps(acc[3].as_mut_ptr(), c3);
        } else {
            for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                let mut c = _mm512_setzero_ps();
                for kk in 0..k {
                    let b = _mm512_loadu_ps(pp.add(kk * NR));
                    c = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(r * k + kk)), b, c);
                }
                _mm512_storeu_ps(accr.as_mut_ptr(), c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32)
                    - 0.5
            })
            .collect()
    }

    fn reference(a: &[f32], k: usize, panel: &[f32], mr: usize) -> Vec<Vec<f32>> {
        (0..mr)
            .map(|r| {
                (0..NR)
                    .map(|j| {
                        // f64 accumulation: an order-independent oracle.
                        (0..k)
                            .map(|kk| a[r * k + kk] as f64 * panel[kk * NR + j] as f64)
                            .sum::<f64>() as f32
                    })
                    .collect()
            })
            .collect()
    }

    fn assert_tile_close(tile: crate::Fp32TileFn, k: usize, mr: usize, seed: u64) {
        let a = filled(mr * k, seed);
        let panel = filled(k * NR, seed + 1);
        let mut acc = [[f32::NAN; NR]; MR];
        tile(&a, k, &panel, mr, &mut acc);
        let want = reference(&a, k, &panel, mr);
        for r in 0..mr {
            for j in 0..NR {
                assert!(
                    (acc[r][j] - want[r][j]).abs() < 1e-4,
                    "k={k} mr={mr} r={r} j={j}: {} vs {}",
                    acc[r][j],
                    want[r][j]
                );
            }
        }
        // Dead rows must not be written.
        for (r, row) in acc.iter().enumerate().skip(mr) {
            assert!(row.iter().all(|v| v.is_nan()), "row {r} written");
        }
    }

    #[test]
    fn portable_matches_reference() {
        for &(k, mr) in &[(1, 1), (7, 2), (16, 3), (64, 4), (0, 4), (3, 4)] {
            assert_tile_close(tile_portable, k, mr, 11 + k as u64);
        }
    }

    #[test]
    fn fma_matches_reference() {
        for &(k, mr) in &[(1, 1), (7, 2), (16, 3), (64, 4), (0, 4), (3, 4)] {
            assert_tile_close(tile_fma, k, mr, 23 + k as u64);
        }
    }

    #[test]
    fn avx512_matches_reference() {
        for &(k, mr) in &[(1, 1), (7, 2), (16, 3), (64, 4), (0, 4), (3, 4)] {
            assert_tile_close(tile_avx512, k, mr, 37 + k as u64);
        }
    }

    #[test]
    #[should_panic(expected = "panel size")]
    fn bad_panel_size_panics() {
        let mut acc = [[0.0; NR]; MR];
        tile_portable(&[0.0; 4], 4, &[0.0; 4], 1, &mut acc);
    }
}
