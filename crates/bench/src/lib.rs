//! Shared harness utilities for the experiment binaries.
//!
//! Every figure/table of the paper has a binary in `src/bin/`; all of them
//! share the scale presets (`--smoke` / `--quick` / `--full`), the
//! result-table printer and the CSV writer defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bioformer_core::protocol::ProtocolConfig;
use bioformer_semg::DatasetSpec;
use std::fmt::Write as _;
use std::path::Path;

/// How much compute an experiment run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale sanity run: 3 subjects, tiny epochs. Trends are noisy
    /// but visible.
    Smoke,
    /// Default: a few subjects, scaled-down protocol — reproduces every
    /// qualitative trend in tens of minutes.
    Quick,
    /// The paper's full protocol shape (10 subjects); hours of CPU.
    Full,
}

/// Scale-resolved experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Which preset was selected.
    pub scale: Scale,
    /// Dataset generation parameters.
    pub spec: DatasetSpec,
    /// Training protocol parameters.
    pub protocol: ProtocolConfig,
    /// Subjects evaluated (0-based).
    pub subjects: Vec<usize>,
}

impl RunConfig {
    /// Builds the configuration for a scale.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Smoke => {
                let spec = DatasetSpec {
                    subjects: 3,
                    reps_per_gesture: 2,
                    rep_duration_s: 0.8,
                    slide: 250,
                    ..DatasetSpec::default()
                };
                let protocol = ProtocolConfig {
                    pretrain_epochs: 4,
                    finetune_epochs: 4,
                    standard_epochs: 8,
                    ..ProtocolConfig::default()
                };
                RunConfig {
                    scale,
                    spec,
                    protocol,
                    subjects: vec![0, 1, 2],
                }
            }
            Scale::Quick => {
                let spec = DatasetSpec {
                    subjects: 5,
                    reps_per_gesture: 2,
                    rep_duration_s: 1.0,
                    slide: 180,
                    ..DatasetSpec::default()
                };
                let protocol = ProtocolConfig {
                    pretrain_epochs: 6,
                    finetune_epochs: 5,
                    standard_epochs: 10,
                    ..ProtocolConfig::default()
                };
                RunConfig {
                    scale,
                    spec,
                    protocol,
                    subjects: (0..5).collect(),
                }
            }
            Scale::Full => RunConfig {
                scale,
                spec: DatasetSpec::default(),
                protocol: ProtocolConfig {
                    pretrain_epochs: 12,
                    finetune_epochs: 8,
                    standard_epochs: 16,
                    ..ProtocolConfig::default()
                },
                subjects: (0..10).collect(),
            },
        }
    }

    /// Parses the scale from CLI args (`--smoke`, `--quick` (default),
    /// `--full`) plus an optional `--subjects N` override.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let scale = if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else if args.iter().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Quick
        };
        let mut cfg = RunConfig::at_scale(scale);
        if let Some(pos) = args.iter().position(|a| a == "--subjects") {
            if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
                let n = n.clamp(1, cfg.spec.subjects);
                cfg.subjects = (0..n).collect();
            }
        }
        cfg
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(widths.iter()) {
        let _ = write!(line, "{h:>w$}  ");
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(widths.iter()) {
            let _ = write!(out, "{cell:>w$}  ");
        }
        println!("{out}");
    }
}

/// Writes rows as CSV under `results/` (created on demand). Errors are
/// reported to stderr but do not abort the experiment.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(name);
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    match std::fs::write(&path, out) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f32) -> String {
    format!("{:.2}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        let smoke = RunConfig::at_scale(Scale::Smoke);
        let quick = RunConfig::at_scale(Scale::Quick);
        let full = RunConfig::at_scale(Scale::Full);
        assert!(smoke.subjects.len() <= quick.subjects.len());
        assert!(quick.subjects.len() <= full.subjects.len());
        assert!(smoke.spec.windows_per_session() <= full.spec.windows_per_session());
        smoke.spec.validate().unwrap();
        quick.spec.validate().unwrap();
        full.spec.validate().unwrap();
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.6573), "65.73");
    }
}
