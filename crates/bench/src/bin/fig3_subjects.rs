//! **Fig. 3** — Per-subject accuracy of Bioformer (h=8, d=1) with standard
//! (intra-subject) training vs the paper's inter-subject pre-training, and
//! the per-subject delta. The paper reports +3.39 % on average, with the
//! largest gains on the weakest subjects.
//!
//! ```text
//! cargo run --release -p bioformer-bench --bin fig3_subjects [--smoke|--quick|--full]
//! ```

use bioformer_bench::{pct, print_table, write_csv, RunConfig};
use bioformer_core::protocol::{run_pretrained, run_standard};
use bioformer_core::{Bioformer, BioformerConfig};
use bioformer_semg::NinaproDb6;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let db = NinaproDb6::generate(&cfg.spec);
    println!(
        "Fig.3 harness: Bioformer (h=8,d=1), {} subjects, {:?} scale",
        cfg.subjects.len(),
        cfg.scale
    );

    let mut rows = Vec::new();
    let mut sum_std = 0.0f32;
    let mut sum_pre = 0.0f32;
    let mut weak_gains = Vec::new();
    let mut strong_gains = Vec::new();
    for &subject in &cfg.subjects {
        let t0 = Instant::now();
        let bio_cfg = BioformerConfig::bio1().with_seed(cfg.spec.seed ^ subject as u64);
        let mut std_model = Bioformer::new(&bio_cfg);
        let std_out = run_standard(&mut std_model, &db, subject, &cfg.protocol);
        let mut pre_model = Bioformer::new(&bio_cfg);
        let pre_out = run_pretrained(&mut pre_model, &db, subject, &cfg.protocol);
        let gain = pre_out.overall - std_out.overall;
        sum_std += std_out.overall;
        sum_pre += pre_out.overall;
        if std_out.overall < 0.60 {
            weak_gains.push(gain);
        } else {
            strong_gains.push(gain);
        }
        println!("  subject {}: {:.1?}", subject + 1, t0.elapsed());
        rows.push(vec![
            format!("Subj.{}", subject + 1),
            pct(std_out.overall),
            pct(pre_out.overall),
            format!("{:+.2}", gain * 100.0),
        ]);
    }
    let n = cfg.subjects.len() as f32;
    rows.push(vec![
        "mean".into(),
        pct(sum_std / n),
        pct(sum_pre / n),
        format!("{:+.2}", (sum_pre - sum_std) / n * 100.0),
    ]);

    let headers = ["subject", "standard [%]", "pretrain [%]", "gain [pp]"];
    print_table(
        "Fig. 3 — per-subject accuracy, intra- vs inter-subject training",
        &headers,
        &rows,
    );
    write_csv("fig3_subjects.csv", &headers, &rows);

    let mean = |v: &[f32]| {
        if v.is_empty() {
            f32::NAN
        } else {
            v.iter().sum::<f32>() / v.len() as f32
        }
    };
    println!(
        "\npaper shape check: gain on <60% subjects {:+.2} pp vs others {:+.2} pp \
         (paper: +6.33 vs +0.45)",
        mean(&weak_gains) * 100.0,
        mean(&strong_gains) * 100.0
    );
}
