//! **Fig. 5** — Pareto spaces: accuracy vs MACs (5a) and accuracy vs
//! parameters (5b) for the Bioformer family (both configs × filter sweep)
//! and TEMPONet, all with pre-training (the paper plots both protocols;
//! this harness reports both columns).
//!
//! ```text
//! cargo run --release -p bioformer-bench --bin fig5_pareto [--smoke|--quick|--full]
//! ```

use bioformer_bench::{pct, print_table, write_csv, RunConfig, Scale};
use bioformer_core::protocol::{run_pretrained, run_standard};
use bioformer_core::{complexity, Bioformer, BioformerConfig, TempoNet};
use bioformer_semg::NinaproDb6;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let db = NinaproDb6::generate(&cfg.spec);
    let filters: Vec<usize> = match cfg.scale {
        Scale::Full => vec![5, 10, 20, 30],
        Scale::Quick => vec![10, 20, 30],
        Scale::Smoke => vec![10, 30],
    };
    println!(
        "Fig.5 harness: filters {:?}, {} subjects, {:?} scale",
        filters,
        cfg.subjects.len(),
        cfg.scale
    );

    struct Point {
        label: String,
        mmac: f64,
        params: u64,
        acc_std: f32,
        acc_pre: f32,
    }
    let mut points = Vec::new();
    let n = cfg.subjects.len() as f32;

    for (label, base) in [
        ("Bio1", BioformerConfig::bio1()),
        ("Bio2", BioformerConfig::bio2()),
    ] {
        for &filter in &filters {
            let bcfg = base.clone().with_filter(filter);
            let comp = complexity::of_bioformer(&bcfg);
            let t0 = Instant::now();
            let mut acc_std = 0.0f32;
            let mut acc_pre = 0.0f32;
            for &subject in &cfg.subjects {
                let seeded = bcfg.clone().with_seed(cfg.spec.seed ^ subject as u64);
                let mut m1 = Bioformer::new(&seeded);
                acc_std += run_standard(&mut m1, &db, subject, &cfg.protocol).overall;
                let mut m2 = Bioformer::new(&seeded);
                acc_pre += run_pretrained(&mut m2, &db, subject, &cfg.protocol).overall;
            }
            println!("  {label} f={filter}: {:.1?}", t0.elapsed());
            points.push(Point {
                label: format!("{label} f={filter}"),
                mmac: comp.mmacs(),
                params: comp.params,
                acc_std: acc_std / n,
                acc_pre: acc_pre / n,
            });
        }
    }
    // TEMPONet reference point.
    {
        let comp = complexity::of_temponet();
        let t0 = Instant::now();
        let mut acc_std = 0.0f32;
        let mut acc_pre = 0.0f32;
        for &subject in &cfg.subjects {
            let mut m1 = TempoNet::new(cfg.spec.seed ^ subject as u64);
            acc_std += run_standard(&mut m1, &db, subject, &cfg.protocol).overall;
            let mut m2 = TempoNet::new(cfg.spec.seed ^ subject as u64);
            acc_pre += run_pretrained(&mut m2, &db, subject, &cfg.protocol).overall;
        }
        println!("  TEMPONet: {:.1?}", t0.elapsed());
        points.push(Point {
            label: "TEMPONet".into(),
            mmac: comp.mmacs(),
            params: comp.params,
            acc_std: acc_std / n,
            acc_pre: acc_pre / n,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.2}", p.mmac),
                p.params.to_string(),
                pct(p.acc_std),
                pct(p.acc_pre),
            ]
        })
        .collect();
    let headers = ["network", "MMAC", "params", "standard [%]", "pretrain [%]"];
    print_table(
        "Fig. 5 — Pareto points (accuracy vs complexity)",
        &headers,
        &rows,
    );
    write_csv("fig5_pareto.csv", &headers, &rows);

    // Pareto-frontier summary in the MAC/accuracy plane (pre-trained).
    let mut frontier: Vec<&Point> = Vec::new();
    for p in &points {
        if !points
            .iter()
            .any(|q| q.mmac < p.mmac && q.acc_pre >= p.acc_pre)
        {
            frontier.push(p);
        }
    }
    println!("\nPareto frontier (MACs vs pre-trained accuracy):");
    for p in frontier {
        println!("  {} ({:.2} MMAC, {})", p.label, p.mmac, pct(p.acc_pre));
    }
}
