//! **Fig. 2** — Accuracy per testing session for Bioformer (h=8,d=1),
//! Bioformer (h=2,d=2) and TEMPONet, with and without inter-subject
//! pre-training. Each reported point is the mean over subjects, as in the
//! paper.
//!
//! ```text
//! cargo run --release -p bioformer-bench --bin fig2_sessions [--smoke|--quick|--full]
//! ```

use bioformer_bench::{pct, print_table, write_csv, RunConfig};
use bioformer_core::protocol::{run_pretrained, run_standard};
use bioformer_core::{Bioformer, BioformerConfig, TempoNet};
use bioformer_semg::NinaproDb6;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let db = NinaproDb6::generate(&cfg.spec);
    let n_test_sessions = cfg.spec.test_sessions().len();
    println!(
        "Fig.2 harness: {} subjects, {} test sessions, {:?} scale",
        cfg.subjects.len(),
        n_test_sessions,
        cfg.scale
    );

    // (label, pretrained?, builder)
    type Builder = Box<dyn Fn(u64) -> Box<dyn ModelRun>>;
    let variants: Vec<(&str, Builder)> = vec![
        (
            "Bioformer (h=8,d=1)",
            Box::new(|seed| Box::new(Bioformer::new(&BioformerConfig::bio1().with_seed(seed)))),
        ),
        (
            "Bioformer (h=2,d=2)",
            Box::new(|seed| Box::new(Bioformer::new(&BioformerConfig::bio2().with_seed(seed)))),
        ),
        ("TEMPONet", Box::new(|seed| Box::new(TempoNet::new(seed)))),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, build) in &variants {
        for pretrain in [false, true] {
            let t0 = Instant::now();
            // Mean accuracy per session index across subjects.
            let mut session_sums = vec![0.0f32; n_test_sessions];
            let mut overall_sum = 0.0f32;
            for &subject in &cfg.subjects {
                let mut model = build(cfg.spec.seed ^ subject as u64);
                let outcome = if pretrain {
                    model.run_pretrained(&db, subject, &cfg.protocol)
                } else {
                    model.run_standard(&db, subject, &cfg.protocol)
                };
                for (i, s) in outcome.iter().enumerate() {
                    session_sums[i] += s;
                }
                overall_sum += outcome.iter().sum::<f32>() / outcome.len() as f32;
            }
            let n = cfg.subjects.len() as f32;
            let mut row = vec![
                label.to_string(),
                if pretrain { "pretrain" } else { "standard" }.to_string(),
            ];
            for s in &session_sums {
                row.push(pct(s / n));
            }
            row.push(pct(overall_sum / n));
            println!(
                "  {label} / {}: {:.1?}",
                if pretrain { "pretrain" } else { "standard" },
                t0.elapsed()
            );
            csv.push(row.clone());
            rows.push(row);
        }
    }

    let mut headers: Vec<String> = vec!["model".into(), "protocol".into()];
    for k in cfg.spec.test_sessions() {
        headers.push(format!("sess{}", k + 1));
    }
    headers.push("mean".into());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Fig. 2 — accuracy [%] per testing session (mean over subjects)",
        &headers_ref,
        &rows,
    );
    write_csv("fig2_sessions.csv", &headers_ref, &csv);
}

/// Object-safe adapter so Bioformer and TEMPONet share the harness loop.
trait ModelRun {
    fn run_standard(
        &mut self,
        db: &NinaproDb6,
        subject: usize,
        cfg: &bioformer_core::protocol::ProtocolConfig,
    ) -> Vec<f32>;
    fn run_pretrained(
        &mut self,
        db: &NinaproDb6,
        subject: usize,
        cfg: &bioformer_core::protocol::ProtocolConfig,
    ) -> Vec<f32>;
}

impl ModelRun for Bioformer {
    fn run_standard(
        &mut self,
        db: &NinaproDb6,
        subject: usize,
        cfg: &bioformer_core::protocol::ProtocolConfig,
    ) -> Vec<f32> {
        run_standard(self, db, subject, cfg)
            .per_session
            .iter()
            .map(|s| s.accuracy)
            .collect()
    }
    fn run_pretrained(
        &mut self,
        db: &NinaproDb6,
        subject: usize,
        cfg: &bioformer_core::protocol::ProtocolConfig,
    ) -> Vec<f32> {
        run_pretrained(self, db, subject, cfg)
            .per_session
            .iter()
            .map(|s| s.accuracy)
            .collect()
    }
}

impl ModelRun for TempoNet {
    fn run_standard(
        &mut self,
        db: &NinaproDb6,
        subject: usize,
        cfg: &bioformer_core::protocol::ProtocolConfig,
    ) -> Vec<f32> {
        run_standard(self, db, subject, cfg)
            .per_session
            .iter()
            .map(|s| s.accuracy)
            .collect()
    }
    fn run_pretrained(
        &mut self,
        db: &NinaproDb6,
        subject: usize,
        cfg: &bioformer_core::protocol::ProtocolConfig,
    ) -> Vec<f32> {
        run_pretrained(self, db, subject, cfg)
            .per_session
            .iter()
            .map(|s| s.accuracy)
            .collect()
    }
}
