//! **Ablation** — the paper's architecture grid search (§III-A): depth ∈
//! {1, 2, 3, 4} × heads ∈ {1, 2, 4, 8}, reporting accuracy vs parameter
//! count. The paper selected Bio1 (h=8, d=1) and Bio2 (h=2, d=2) as the
//! best accuracy/parameter trade-offs of this grid.
//!
//! ```text
//! cargo run --release -p bioformer-bench --bin ablation_grid [--smoke|--quick|--full]
//! ```

use bioformer_bench::{pct, print_table, write_csv, RunConfig, Scale};
use bioformer_core::protocol::run_standard;
use bioformer_core::{complexity, Bioformer, BioformerConfig};
use bioformer_semg::NinaproDb6;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let db = NinaproDb6::generate(&cfg.spec);
    let (depths, heads): (Vec<usize>, Vec<usize>) = match cfg.scale {
        Scale::Full => (vec![1, 2, 3, 4], vec![1, 2, 4, 8]),
        Scale::Quick => (vec![1, 2], vec![1, 2, 4, 8]),
        Scale::Smoke => (vec![1, 2], vec![2, 8]),
    };
    println!(
        "Grid ablation: depths {:?} × heads {:?}, {} subjects, {:?} scale",
        depths,
        heads,
        cfg.subjects.len(),
        cfg.scale
    );

    let mut rows = Vec::new();
    for &depth in &depths {
        for &h in &heads {
            let bcfg = BioformerConfig {
                depth,
                heads: h,
                ..BioformerConfig::bio1()
            };
            let comp = complexity::of_bioformer(&bcfg);
            let t0 = Instant::now();
            let mut acc = 0.0f32;
            for &subject in &cfg.subjects {
                let seeded = bcfg.clone().with_seed(cfg.spec.seed ^ subject as u64);
                let mut model = Bioformer::new(&seeded);
                acc += run_standard(&mut model, &db, subject, &cfg.protocol).overall;
            }
            acc /= cfg.subjects.len() as f32;
            println!("  d={depth} h={h}: {:.1?}", t0.elapsed());
            rows.push(vec![
                depth.to_string(),
                h.to_string(),
                comp.params.to_string(),
                format!("{:.2}", comp.mmacs()),
                pct(acc),
            ]);
        }
    }

    let headers = ["depth", "heads", "params", "MMAC", "accuracy [%]"];
    print_table(
        "Grid search — depth × heads (standard training)",
        &headers,
        &rows,
    );
    write_csv("ablation_grid.csv", &headers, &rows);
}
