//! **Fig. 4** — Accuracy vs the width of the front-end 1D-convolution
//! filter ({1, 5, 10, 20, 30} in the paper), for both Bioformers, with and
//! without pre-training. The paper finds filter 10 the sweet spot; larger
//! filters trade a little accuracy for a near-linear MAC reduction.
//!
//! Filter 1 (300 tokens → 300×300 attention) is ~30× the compute of the
//! default and is only run at `--full` scale.
//!
//! ```text
//! cargo run --release -p bioformer-bench --bin fig4_patch [--smoke|--quick|--full]
//! ```

use bioformer_bench::{pct, print_table, write_csv, RunConfig, Scale};
use bioformer_core::complexity;
use bioformer_core::protocol::{run_pretrained, run_standard};
use bioformer_core::{Bioformer, BioformerConfig};
use bioformer_semg::NinaproDb6;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let db = NinaproDb6::generate(&cfg.spec);
    let filters: Vec<usize> = match cfg.scale {
        Scale::Full => vec![1, 5, 10, 20, 30],
        Scale::Quick => vec![5, 10, 20, 30],
        Scale::Smoke => vec![10, 30],
    };
    println!(
        "Fig.4 harness: filters {:?}, {} subjects, {:?} scale",
        filters,
        cfg.subjects.len(),
        cfg.scale
    );

    let mut rows = Vec::new();
    for (label, base) in [
        ("Bioformer (h=8,d=1)", BioformerConfig::bio1()),
        ("Bioformer (h=2,d=2)", BioformerConfig::bio2()),
    ] {
        for &filter in &filters {
            let bcfg = base.clone().with_filter(filter);
            let comp = complexity::of_bioformer(&bcfg);
            let t0 = Instant::now();
            let mut acc_std = 0.0f32;
            let mut acc_pre = 0.0f32;
            for &subject in &cfg.subjects {
                let seeded = bcfg.clone().with_seed(cfg.spec.seed ^ subject as u64);
                let mut m1 = Bioformer::new(&seeded);
                acc_std += run_standard(&mut m1, &db, subject, &cfg.protocol).overall;
                let mut m2 = Bioformer::new(&seeded);
                acc_pre += run_pretrained(&mut m2, &db, subject, &cfg.protocol).overall;
            }
            let n = cfg.subjects.len() as f32;
            println!("  {label} f={filter}: {:.1?}", t0.elapsed());
            rows.push(vec![
                label.to_string(),
                filter.to_string(),
                format!("{:.2}", comp.mmacs()),
                comp.params.to_string(),
                pct(acc_std / n),
                pct(acc_pre / n),
            ]);
        }
    }

    let headers = [
        "model",
        "filter",
        "MMAC",
        "params",
        "standard [%]",
        "pretrain [%]",
    ];
    print_table(
        "Fig. 4 — accuracy vs front-end filter width",
        &headers,
        &rows,
    );
    write_csv("fig4_patch.csv", &headers, &rows);
}
