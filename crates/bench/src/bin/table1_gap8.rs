//! **Table I** — Quantized Pareto architectures deployed on GAP8:
//! memory, MMAC, latency, energy and int8 accuracy, plus the §IV-C
//! duty-cycled battery-life comparison.
//!
//! Per network this harness (i) trains fp32 with the inter-subject
//! protocol, (ii) runs QAT-lite weight snapping, (iii) converts to the
//! integer-only pipeline (`bioformer-quant`) and measures quantized
//! accuracy on the held-out sessions, and (iv) queries the analytical GAP8
//! model (`bioformer-gap8`) for the deployment columns.
//!
//! TEMPONet's quantized accuracy uses fp32 inference with int8-snapped
//! weights (the integer-conv pipeline is transformer-specific); the
//! deployment columns use the same analytical model as the Bioformers.
//!
//! ```text
//! cargo run --release -p bioformer-bench --bin table1_gap8 [--smoke|--quick|--full]
//! ```

use bioformer_bench::{pct, print_table, write_csv, RunConfig, Scale};
use bioformer_core::descriptor::{bioformer_descriptor, temponet_descriptor};
use bioformer_core::protocol::run_pretrained;
use bioformer_core::{Bioformer, BioformerConfig, TempoNet};
use bioformer_gap8::deploy::analyze_default;
use bioformer_nn::serialize::state_dict;
use bioformer_nn::trainer::evaluate;
use bioformer_quant::qat::{fake_quantize_weights, qat_finetune, QatConfig};
use bioformer_quant::QuantBioformer;
use bioformer_semg::{NinaproDb6, Normalizer};
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let db = NinaproDb6::generate(&cfg.spec);
    let variants: Vec<(&str, BioformerConfig)> = match cfg.scale {
        Scale::Smoke => vec![
            ("Bio1, wind=10", BioformerConfig::bio1()),
            ("Bio2, wind=10", BioformerConfig::bio2()),
        ],
        _ => vec![
            ("Bio1, wind=30", BioformerConfig::bio1().with_filter(30)),
            ("Bio1, wind=20", BioformerConfig::bio1().with_filter(20)),
            ("Bio1, wind=10", BioformerConfig::bio1().with_filter(10)),
            ("Bio2, wind=30", BioformerConfig::bio2().with_filter(30)),
            ("Bio2, wind=10", BioformerConfig::bio2().with_filter(10)),
        ],
    };
    println!(
        "Table I harness: {} Bioformer variants + TEMPONet, {} subjects, {:?} scale",
        variants.len(),
        cfg.subjects.len(),
        cfg.scale
    );

    let mut rows = Vec::new();
    for (label, bcfg) in &variants {
        let t0 = Instant::now();
        let mut q_acc_sum = 0.0f32;
        for &subject in &cfg.subjects {
            // fp32 training with the paper's two-step protocol.
            let seeded = bcfg.clone().with_seed(cfg.spec.seed ^ subject as u64);
            let mut model = Bioformer::new(&seeded);
            let _ = run_pretrained(&mut model, &db, subject, &cfg.protocol);

            // QAT-lite on the subject's training split.
            let train_raw = db.train_dataset(subject);
            let norm = Normalizer::fit(&train_raw);
            let train_data = norm.apply(&train_raw);
            drop(train_raw);
            let _ = qat_finetune(
                &mut model,
                train_data.x(),
                train_data.labels(),
                &QatConfig::default(),
            );

            // Convert to integer-only inference; calibrate on (up to) 128
            // training windows.
            let dict = state_dict(&mut model);
            let calib_n = train_data.x().dims()[0].min(128);
            let sample = bioformer_semg::CHANNELS * bioformer_semg::WINDOW;
            let calib = bioformer_tensor::Tensor::from_vec(
                train_data.x().data()[..calib_n * sample].to_vec(),
                &[calib_n, bioformer_semg::CHANNELS, bioformer_semg::WINDOW],
            );
            let qmodel = QuantBioformer::convert(&seeded, &dict, &calib)
                .expect("conversion of a trained Bioformer");

            // Quantized accuracy on the held-out sessions.
            let test = norm.apply(&db.test_dataset(subject));
            q_acc_sum += qmodel.accuracy(test.x(), test.labels());
        }
        let q_acc = q_acc_sum / cfg.subjects.len() as f32;
        let report = analyze_default(&bioformer_descriptor(bcfg));
        println!("  {label}: {:.1?}", t0.elapsed());
        rows.push(vec![
            label.to_string(),
            format!("{:.1} kB", report.memory_kb),
            format!("{:.1}", report.mmac),
            format!("{:.2}", report.latency_ms),
            format!("{:.3}", report.energy_mj),
            pct(q_acc),
            format!("{:.0} h", report.battery_hours),
        ]);
    }

    // TEMPONet row.
    {
        let t0 = Instant::now();
        let mut q_acc_sum = 0.0f32;
        for &subject in &cfg.subjects {
            let mut model = TempoNet::new(cfg.spec.seed ^ subject as u64);
            let _ = run_pretrained(&mut model, &db, subject, &cfg.protocol);
            // Weight-snap proxy for int8 accuracy (see module docs).
            fake_quantize_weights(&mut model);
            let train_raw = db.train_dataset(subject);
            let norm = Normalizer::fit(&train_raw);
            drop(train_raw);
            let test = norm.apply(&db.test_dataset(subject));
            let (_, acc) = evaluate(&model, test.x(), test.labels(), 256);
            q_acc_sum += acc;
        }
        let q_acc = q_acc_sum / cfg.subjects.len() as f32;
        let report = analyze_default(&temponet_descriptor());
        println!("  TEMPONet: {:.1?}", t0.elapsed());
        rows.push(vec![
            "TEMPONet".to_string(),
            format!("{:.1} kB", report.memory_kb),
            format!("{:.1}", report.mmac),
            format!("{:.2}", report.latency_ms),
            format!("{:.3}", report.energy_mj),
            pct(q_acc),
            format!("{:.0} h", report.battery_hours),
        ]);
    }

    let headers = [
        "Network",
        "Memory",
        "MMAC",
        "Lat.[ms]",
        "E.[mJ]",
        "Q.Acc [%]",
        "Battery",
    ];
    print_table(
        "Table I — quantized architectures on GAP8 (100 MHz @ 1V, 51 mW)",
        &headers,
        &rows,
    );
    write_csv("table1_gap8.csv", &headers, &rows);
    println!(
        "\npaper reference rows: Bio1 w10 = 94.2 kB / 3.3 MMAC / 2.72 ms / 0.139 mJ / 64.69 %;\n\
         TEMPONet = 461 kB / 16.0 MMAC / 21.82 ms / 1.11 mJ / 61.00 %"
    );
}
