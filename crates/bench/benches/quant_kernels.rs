//! Criterion micro-benchmarks of the int8 integer kernels vs their fp32
//! counterparts — the host-side view of the quantization speed story.

use bioformer_quant::ibert::{IGelu, ILayerNorm, ISoftmax};
use bioformer_quant::kernels::qgemm_i32;
use bioformer_quant::qtensor::QParams;
use bioformer_tensor::{parallel, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ti8(n: usize, seed: u64) -> Vec<i8> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as i8
        })
        .collect()
}

fn bench_qgemm(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("int8_gemm");
    let a = ti8(31 * 64, 1);
    let b = ti8(256 * 64, 2);
    g.bench_function("qkv_31x64x256", |bench| {
        bench.iter(|| black_box(qgemm_i32(&a, &b, None, 31, 64, 256)))
    });
    // fp32 reference of the same shape.
    let af = Tensor::from_fn(&[31, 64], |i| (i % 13) as f32 - 6.0);
    let bf = Tensor::from_fn(&[256, 64], |i| (i % 7) as f32 - 3.0);
    g.bench_function("fp32_reference_31x64x256", |bench| {
        bench.iter(|| black_box(af.matmul_nt(&bf)))
    });
    g.finish();
}

fn bench_integer_nonlinear(c: &mut Criterion) {
    let mut g = c.benchmark_group("int8_nonlinear");
    let sm = ISoftmax::new(1e-3);
    let scores: Vec<i32> = (0..31).map(|i| (i * 37 % 701) - 350).collect();
    let mut out = vec![0i8; 31];
    g.bench_function("i_softmax_row31", |bench| {
        bench.iter(|| {
            sm.apply_row(black_box(&scores), &mut out);
            black_box(out[0])
        })
    });

    let ln = ILayerNorm::new(&[1.0f32; 64], &[0.0f32; 64], QParams::symmetric(4.0));
    let row = ti8(64, 3);
    let mut lnout = vec![0i8; 64];
    g.bench_function("i_layernorm_row64", |bench| {
        bench.iter(|| {
            ln.apply_row(black_box(&row), &mut lnout);
            black_box(lnout[0])
        })
    });

    let gelu = IGelu::new(0.03, QParams::symmetric(4.0));
    g.bench_function("i_gelu_128elems", |bench| {
        bench.iter(|| {
            let mut acc = 0i32;
            for i in 0..128i32 {
                acc += gelu.apply(black_box((i - 64) as i8)) as i32;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_qgemm, bench_integer_nonlinear);
criterion_main!(benches);
