//! Open-loop load generator: max sustained arrival rate at a fixed p99
//! SLO, for single vs sharded vs hedged serving pools.
//!
//! ## Why open loop
//!
//! The `serving` bench (and most naive load tests) is **closed-loop**:
//! each client waits for its previous response before sending the next
//! request. Under a latency spike the clients *stop sending*, so the
//! spike suppresses the very samples that should have measured it —
//! coordinated omission. The numbers look great precisely when the system
//! is at its worst.
//!
//! This generator is **open-loop**: arrivals are a Poisson process at a
//! fixed rate λ, scheduled independently of the system's responses
//! (`gap = -ln(U)/λ`). Every request's latency is measured from its
//! *scheduled arrival time* — if the pool (or the dispatcher behind it)
//! falls behind, the wait counts against it. A request that would have
//! been sent during a stall is still sent, still measured, still in the
//! p99.
//!
//! ## What it reports
//!
//! For each scenario the generator binary-searches the maximum Poisson
//! arrival rate whose p99 latency stays within the SLO, then runs one
//! fixed-rate head-to-head on a pool with one deliberately slowed replica
//! to show what hedging does to the tail (and asserts the improvement —
//! this bench doubles as a regression test).
//!
//! ```text
//! cargo bench -p bioformer-bench --bench loadgen                    # full
//! cargo bench -p bioformer-bench --bench loadgen -- --smoke         # CI
//! cargo bench -p bioformer-bench --bench loadgen -- --save-baseline serving
//! cargo bench -p bioformer-bench --bench loadgen -- --baseline serving --fail-threshold 90
//! cargo bench -p bioformer-bench --bench loadgen -- --json out.json
//! ```
//!
//! Baselines use the criterion-shim format (`id\tvalue` under
//! `$CRITERION_SHIM_DIR` or `target/criterion-shim/`) so the committed
//! `crates/bench/baselines/serving.baseline` slots in next to
//! `inference.baseline`. The JSON report reuses the shim's record shape
//! `{"id", "low_s", "median_s", "high_s"}`; for `capacity/*_rps` entries
//! the three values are the bracketing (last-good, final, first-bad)
//! arrival rates in req/s, for `p99/*` entries they are p50/p95/p99 in
//! seconds.

use bioformers::serve::{
    AsyncEngine, AsyncEngineConfig, GestureClassifier, HedgeConfig, RequestOutput, RoutingPolicy,
    ServeError, ShardedEngine,
};
use bioformers::tensor::Tensor;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The UX decision-latency budget the capacity search holds p99 to.
const SLO: Duration = Duration::from_millis(25);

/// Executor threads draining the open-loop arrival queue. Enough that the
/// pool's own queueing — not executor starvation — is what saturates.
const EXECUTORS: usize = 32;

/// A deterministic sleep backend: per-window service time, no compute.
/// Sleeping (not spinning) models a host blocked on an offload or a
/// remote accelerator, and makes the measured distributions a pure
/// function of the serving stack rather than of this host's ALUs.
struct SleepBackend {
    per_window: Duration,
}

impl GestureClassifier for SleepBackend {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        let n = windows.dims()[0];
        std::thread::sleep(self.per_window * n as u32);
        Tensor::from_fn(&[n, 4], |i| (i % 4) as f32)
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "sleep-sim"
    }
}

const FAST: Duration = Duration::from_millis(2);
const SLOW: Duration = Duration::from_millis(40);

fn replica_config() -> AsyncEngineConfig {
    AsyncEngineConfig::default()
        .with_workers(1)
        .with_micro_batch(8)
        .with_linger(Duration::ZERO)
}

/// xorshift64* uniform in (0, 1].
fn uniform(state: &mut u64) -> f64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
    (bits as f64 + 1.0) / (1u64 << 53) as f64
}

/// The request path under test: any engine's `classify`, boxed as a
/// plain function so every topology runs through identical driver code.
type ClassifyFn<'a> = dyn Fn(Tensor) -> Result<RequestOutput, ServeError> + Sync + 'a;

/// Runs one open-loop trial: Poisson arrivals at `rate_hz` for
/// `duration`, every arrival classified by `classify`, latency measured
/// from the scheduled arrival instant. Returns the sorted latencies.
fn open_loop_trial(
    classify: &ClassifyFn<'_>,
    rate_hz: f64,
    duration: Duration,
    seed: u64,
) -> Vec<Duration> {
    let (tx, rx) = mpsc::channel::<Instant>();
    let rx = Mutex::new(rx);
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(EXECUTORS);
        for _ in 0..EXECUTORS {
            let rx = &rx;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    // Hold the lock only for the recv: executors take
                    // turns claiming arrivals, then serve in parallel.
                    let scheduled = match rx.lock().unwrap().recv() {
                        Ok(s) => s,
                        Err(_) => return local,
                    };
                    classify(Tensor::zeros(&[1, 2, 5])).expect("loadgen request");
                    local.push(scheduled.elapsed());
                }
            }));
        }
        // Dispatcher: schedule arrivals on the Poisson clock. The
        // scheduled instant is `start + Σ gaps` regardless of when the
        // send actually happens, so dispatcher lag counts as latency too.
        let mut rng = seed | 1;
        let start = Instant::now();
        let mut t = 0.0;
        while t < duration.as_secs_f64() {
            t += -uniform(&mut rng).ln() / rate_hz;
            let scheduled = start + Duration::from_secs_f64(t);
            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            if tx.send(scheduled).is_err() {
                break;
            }
        }
        drop(tx);
        for h in handles {
            latencies.extend(h.join().expect("executor"));
        }
    });
    latencies.sort_unstable();
    latencies
}

/// Nearest-rank percentile over sorted samples (the same rule as
/// `LatencyStats` / `StageRecorder`).
fn pct(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

struct Capacity {
    /// Highest rate observed to hold the SLO.
    sustained: f64,
    /// Lowest rate observed to break it (the bracket's other edge).
    broke_at: f64,
}

/// Binary-searches the max sustained arrival rate with p99 ≤ `slo`.
/// Doubles from `start_rate` until the SLO breaks, then bisects the
/// bracket `iters` times. One engine serves all trials (queues drain
/// fully between trials because every arrival is awaited).
fn max_sustained_rate(
    classify: &ClassifyFn<'_>,
    slo: Duration,
    trial: Duration,
    iters: usize,
) -> Capacity {
    let holds = |rate: f64, round: u64| -> bool {
        let lat = open_loop_trial(classify, rate, trial, 0x9E37 + round);
        !lat.is_empty() && pct(&lat, 0.99) <= slo
    };
    let mut round = 0;
    let mut good = 0.0;
    let mut rate = 40.0;
    let bad = loop {
        round += 1;
        if !holds(rate, round) {
            break rate;
        }
        good = rate;
        rate *= 2.0;
        if rate > 20_480.0 {
            break rate;
        }
    };
    let (mut lo, mut hi) = (good, bad);
    for _ in 0..iters {
        let mid = (lo + hi) / 2.0;
        round += 1;
        if holds(mid, round) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Capacity {
        sustained: lo,
        broke_at: hi,
    }
}

// --- criterion-shim-compatible baseline + JSON plumbing ---------------

fn baseline_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CRITERION_SHIM_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            let target = dir.join("target");
            if target.is_dir() {
                return target.join("criterion-shim");
            }
        }
    }
    PathBuf::from("target").join("criterion-shim")
}

fn baseline_path(name: &str) -> PathBuf {
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    baseline_dir().join(format!("{safe}.baseline"))
}

fn load_baseline(name: &str) -> Vec<(String, f64)> {
    let mut entries = Vec::new();
    if let Ok(text) = std::fs::read_to_string(baseline_path(name)) {
        for line in text.lines() {
            if let Some((id, value)) = line.rsplit_once('\t') {
                if let Ok(v) = value.parse::<f64>() {
                    entries.push((id.to_string(), v));
                }
            }
        }
    }
    entries
}

fn store_baseline(name: &str, entries: &[(String, f64)]) -> std::io::Result<PathBuf> {
    // Merge over existing entries (same semantics as the criterion shim)
    // so loadgen and other benches can share one baseline name.
    let mut merged: std::collections::BTreeMap<String, f64> =
        load_baseline(name).into_iter().collect();
    for (id, v) in entries {
        merged.insert(id.clone(), *v);
    }
    let path = baseline_path(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(&path)?;
    for (id, v) in &merged {
        writeln!(file, "{id}\t{v:e}")?;
    }
    Ok(path)
}

fn write_json(path: &str, entries: &[(String, f64, f64, f64)]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, (id, low, median, high)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{id}\", \"low_s\": {low:e}, \"median_s\": {median:e}, \"high_s\": {high:e}}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

fn main() {
    let mut smoke = false;
    let mut json_out: Option<String> = None;
    let mut save_baseline: Option<String> = None;
    let mut baseline_name: Option<String> = None;
    let mut fail_threshold: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => json_out = args.next(),
            "--save-baseline" => save_baseline = args.next(),
            "--baseline" => baseline_name = args.next(),
            "--fail-threshold" => fail_threshold = args.next().and_then(|v| v.parse().ok()),
            // `cargo bench` passes --bench; ignore it and anything else.
            _ => {}
        }
    }
    let (trial, iters) = if smoke {
        (Duration::from_millis(300), 3)
    } else {
        (Duration::from_millis(1500), 5)
    };

    let hedge = HedgeConfig {
        initial_delay: Duration::from_millis(10),
        min_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
    };

    println!(
        "open-loop load generator: p99 SLO {SLO:?}, {:?} trials, {} bisections{}",
        trial,
        iters,
        if smoke { " (smoke)" } else { "" }
    );

    let mut baseline_entries: Vec<(String, f64)> = Vec::new();
    let mut json_entries: Vec<(String, f64, f64, f64)> = Vec::new();

    // --- capacity: single vs sharded vs hedged -----------------------
    {
        let single = AsyncEngine::with_config(
            Box::new(SleepBackend { per_window: FAST }),
            replica_config(),
        );
        let sharded = || {
            ShardedEngine::builder()
                .with_policy(RoutingPolicy::LatencyAware)
                .with_replica_config(replica_config())
                .add_replica(Box::new(SleepBackend { per_window: FAST }))
                .add_replica(Box::new(SleepBackend { per_window: FAST }))
                .add_replica(Box::new(SleepBackend { per_window: SLOW }))
        };
        let plain = sharded().build();
        let hedged = sharded().with_hedging(hedge).build();

        let scenarios: [(&str, &ClassifyFn<'_>); 3] = [
            ("single-fast", &|w| single.classify(w)),
            ("sharded-2fast+1slow", &|w| plain.classify(w)),
            ("hedged-2fast+1slow", &|w| hedged.classify(w)),
        ];
        for (name, classify) in scenarios {
            // Warm-up (discarded): gives every replica latency history so
            // the capacity bracket measures the steady state, not the
            // router's cold probes of the slow replica.
            let _ = open_loop_trial(classify, 100.0, Duration::from_millis(200), 0xC01D);
            let cap = max_sustained_rate(classify, SLO, trial, iters);
            println!(
                "capacity/{name}: {:.0} req/s sustained at p99 <= {SLO:?} (breaks by {:.0})",
                cap.sustained, cap.broke_at
            );
            baseline_entries.push((format!("capacity/{name}_rps"), cap.sustained));
            json_entries.push((
                format!("capacity/{name}_rps"),
                cap.sustained,
                cap.sustained,
                cap.broke_at,
            ));
        }
    }

    // --- fixed rate: hedging must beat the slow replica's tail -------
    // Round-robin over one fast and one deliberately slowed replica makes
    // the slow replica the primary for half the arrivals; with hedging
    // the duplicate lands on the fast replica after <= 10 ms instead of
    // waiting out the full 40 ms service time.
    {
        let duel = |hedging: Option<HedgeConfig>| {
            let mut b = ShardedEngine::builder()
                .with_policy(RoutingPolicy::RoundRobin)
                .with_replica_config(replica_config())
                .add_replica(Box::new(SleepBackend { per_window: FAST }))
                .add_replica(Box::new(SleepBackend { per_window: SLOW }));
            if let Some(h) = hedging {
                b = b.with_hedging(h);
            }
            b.build()
        };
        let rate = 40.0;
        let plain = duel(None);
        let lat_plain = open_loop_trial(&|w| plain.classify(w), rate, trial * 2, 0xBEE5);
        let hedged = duel(Some(hedge));
        let lat_hedged = open_loop_trial(&|w| hedged.classify(w), rate, trial * 2, 0xBEE5);
        let stats = hedged.shutdown();

        for (name, lat) in [("plain", &lat_plain), ("hedged", &lat_hedged)] {
            let (p50, p95, p99) = (pct(lat, 0.5), pct(lat, 0.95), pct(lat, 0.99));
            let mean = lat.iter().sum::<Duration>() / lat.len().max(1) as u32;
            println!(
                "p99/duel-{name} @ {rate:.0}/s: p50 {p50:.1?} p95 {p95:.1?} p99 {p99:.1?} (mean {mean:.1?}, n={})",
                lat.len()
            );
            json_entries.push((
                format!("p99/duel-{name}"),
                p50.as_secs_f64(),
                p95.as_secs_f64(),
                p99.as_secs_f64(),
            ));
        }
        let (p99_plain, p99_hedged) = (pct(&lat_plain, 0.99), pct(&lat_hedged, 0.99));
        println!(
            "hedging: {} hedges fired, {} won, p99 {:.1?} -> {:.1?}",
            stats.hedges_fired, stats.hedges_won, p99_plain, p99_hedged
        );
        assert!(
            p99_hedged < p99_plain,
            "hedging must strictly improve p99 against a slowed replica: \
             plain {p99_plain:?} vs hedged {p99_hedged:?}"
        );
        assert!(stats.hedges_fired > 0, "the duel must actually hedge");
    }

    // --- baseline compare / save / JSON ------------------------------
    if let Some(name) = &baseline_name {
        let base = load_baseline(name);
        let mut worst_drop = 0.0f64;
        for (id, got) in &baseline_entries {
            match base.iter().find(|(bid, _)| bid == id) {
                Some((_, was)) if *was > 0.0 => {
                    let delta = (got - was) / was * 100.0;
                    println!("vs baseline '{name}': {id} {was:.0} -> {got:.0} ({delta:+.1}%)");
                    worst_drop = worst_drop.max(-delta);
                }
                _ => println!("vs baseline '{name}': {id} has no baseline entry"),
            }
        }
        if let Some(threshold) = fail_threshold {
            assert!(
                worst_drop <= threshold,
                "capacity regression gate: worst drop -{worst_drop:.1}% \
                 exceeds --fail-threshold {threshold}%"
            );
        }
    }
    if let Some(name) = &save_baseline {
        match store_baseline(name, &baseline_entries) {
            Ok(path) => println!("baseline '{name}' saved to {}", path.display()),
            Err(e) => eprintln!("failed to save baseline '{name}': {e}"),
        }
    }
    if let Some(path) = &json_out {
        match write_json(path, &json_entries) {
            Ok(()) => println!("json report written to {path}"),
            Err(e) => eprintln!("failed to write json report {path}: {e}"),
        }
    }
}
