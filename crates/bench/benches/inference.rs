//! Criterion benchmarks of the inference hot path, with a committed
//! baseline and a CI regression gate.
//!
//! Five groups:
//!
//! * `gemm` — the bio1-shaped fp32 GEMMs, naive reference kernel vs the
//!   panel-packed register-tiled kernel (pre-packed weights, as the
//!   serving steady state runs them), with the packed kernel measured
//!   twice: through the portable (safe) tile and through the
//!   runtime-dispatched SIMD tile (`packed_safe_*` vs `packed_*`).
//! * `qgemm` — the bio1-shaped **int8** GEMMs, scalar dot tile vs the
//!   production dispatched path (`scalar_*` vs `simd_*`) — on VNNI hosts
//!   the latter is the whole-GEMM 4×4-blocked `vpdpbusd` kernel. This is
//!   the ≥2× int8-kernel speedup claim of the SIMD layer, measured
//!   directly.
//! * `fp32_inference` — Bioformer bio1 per-window latency and per-batch
//!   throughput at batch 1/8/32, through the arena-threaded
//!   `forward_infer_in` path a serving worker uses (weights packed once,
//!   scratch recycled). TEMPONet rides along as the CNN baseline.
//! * `int8_inference` — the integer-only pipeline at batch 1/8/32 through
//!   the same arena-threaded `forward_infer_in` path (zero steady-state
//!   allocations), for the int8-vs-fp32 per-window comparison.
//! * `tuned-vs-fixed` — the `ComputeBackend` seam with the default plan
//!   vs an autotuned `TuneTable` (`bioformer_tensor::tune`), at the bio1
//!   fp32 GEMM shapes and end-to-end at batch 1/8.
//!
//! Per-window numbers are the benchmark id's time divided by the batch
//! size (batch ids are suffixed `_bN`; the printed time is per *batch*).
//!
//! Run and compare against the committed baseline:
//!
//! ```text
//! CRITERION_SHIM_DIR=crates/bench/baselines cargo bench -p bioformer-bench \
//!     --bench inference -- --baseline inference --fail-threshold 50
//! ```
//!
//! Refresh the committed baseline after an intentional perf change:
//!
//! ```text
//! CRITERION_SHIM_DIR=crates/bench/baselines cargo bench -p bioformer-bench \
//!     --bench inference -- --save-baseline inference
//! ```

use bioformer_core::{Bioformer, BioformerConfig, TempoNet};
use bioformer_nn::serialize::state_dict;
use bioformer_nn::{InferForward, Model};
use bioformer_quant::kernels::{qgemm_i32_into, qgemm_i32_into_with};
use bioformer_quant::QuantBioformer;
use bioformer_simd::{kernels, select, Tier};
use bioformer_tensor::backend::{ComputeBackend, PackedCpuBackend};
use bioformer_tensor::matmul::{matmul_naive, matmul_nt_naive};
use bioformer_tensor::pack::{gemm_packed_with, Epilogue, PackedB};
use bioformer_tensor::tune::{tune, GemmShape};
use bioformer_tensor::{parallel, Tensor, TensorArena};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn filled(dims: &[usize], seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(dims, |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

fn windows(batch: usize, seed: u64) -> Tensor {
    filled(&[batch, 14, 300], seed)
}

/// Naive-vs-packed at the GEMM shapes a bio1 forward actually issues:
/// `[seq+1, embed] × [inner, embed]ᵀ` projections (m=32, k=64, n=256), the
/// output projection (k=256, n=64) and the FFN (n=128), plus the batch-32
/// projection GEMM (m=1024 rows).
fn bench_gemm(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("gemm");
    for (label, m, k, n) in [
        ("qkv_32x64x256", 32usize, 64usize, 256usize),
        ("wo_32x256x64", 32, 256, 64),
        ("ffn_32x64x128", 32, 64, 128),
        ("qkv_b32_1024x64x256", 1024, 64, 256),
    ] {
        let a = filled(&[m, k], 1);
        let bt = filled(&[n, k], 2);
        g.bench_function(&format!("naive_{label}"), |b| {
            b.iter(|| black_box(matmul_nt_naive(black_box(&a), black_box(&bt))))
        });
        // Steady-state serving: the weight is packed once per layer, so
        // only the GEMM itself is on the clock. Measured through both the
        // portable (safe) tile and the runtime-dispatched SIMD tile.
        let packed = PackedB::from_b_t(bt.data(), n, k);
        let mut out = vec![0.0f32; m * n];
        for (prefix, tile) in [
            ("packed_safe", select(Some(Tier::Portable)).fp32_tile),
            ("packed", kernels().fp32_tile),
        ] {
            g.bench_function(&format!("{prefix}_{label}"), |b| {
                b.iter(|| {
                    gemm_packed_with(
                        tile,
                        black_box(a.data()),
                        m,
                        k,
                        packed.as_slice(),
                        n,
                        &mut out,
                        Epilogue::None,
                    );
                    black_box(out[0])
                })
            });
        }
        // The A·B orientation reference rides along for completeness.
        let bn = filled(&[k, n], 3);
        g.bench_function(&format!("naive_nn_{label}"), |b| {
            b.iter(|| black_box(matmul_naive(black_box(&a), black_box(&bn))))
        });
    }
    g.finish();
    parallel::set_max_threads(0);
}

/// Deterministic pseudo-random int8 codes.
fn qcodes(len: usize, seed: u64) -> Vec<i8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 48) as i8
        })
        .collect()
}

/// Scalar-vs-SIMD at the int8 GEMM shapes a bio1 integer forward issues:
/// the q/k/v projections, output projection and FFN (as in `bench_gemm`),
/// plus the im2col-lowered patch convolution (`m=64, k=14·10, n=30`).
fn bench_qgemm(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("qgemm");
    for (label, m, k, n) in [
        ("qkv_32x64x256", 32usize, 64usize, 256usize),
        ("wo_32x256x64", 32, 256, 64),
        ("ffn_32x64x128", 32, 64, 128),
        ("conv_64x140x30", 64, 140, 30),
    ] {
        let a = qcodes(m * k, 1);
        let bt = qcodes(n * k, 2);
        let mut out = vec![0i32; m * n];
        // `scalar` pins the portable tile through the generic driver;
        // `simd` runs the production entry point, which dispatches to the
        // whole-GEMM VNNI kernel (or the AVX2 tile) on capable hosts.
        let scalar_tile = select(Some(Tier::Portable)).qdot_tile;
        g.bench_function(&format!("scalar_{label}"), |b| {
            b.iter(|| {
                qgemm_i32_into_with(
                    scalar_tile,
                    black_box(&a),
                    black_box(&bt),
                    None,
                    m,
                    k,
                    n,
                    &mut out,
                );
                black_box(out[0])
            })
        });
        g.bench_function(&format!("simd_{label}"), |b| {
            b.iter(|| {
                qgemm_i32_into(black_box(&a), black_box(&bt), None, m, k, n, &mut out);
                black_box(out[0])
            })
        });
    }
    g.finish();
    parallel::set_max_threads(0);
}

fn bench_fp32(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("fp32_inference");
    let bio1 = Bioformer::new(&BioformerConfig::bio1());
    let mut arena = TensorArena::new();
    for batch in [1usize, 8, 32] {
        let x = windows(batch, batch as u64);
        // Warm the arena and the packed-weight caches outside the timer.
        let y = bio1.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
        g.bench_function(&format!("bio1_f10_b{batch}"), |b| {
            b.iter(|| {
                let y = bio1.forward_infer_in(black_box(&x), &mut arena);
                let first = y.data()[0];
                arena.recycle(y);
                black_box(first)
            })
        });
    }
    // Secondary configs at batch 1 (per-window latency comparison).
    let x1 = windows(1, 7);
    let bio2 = Bioformer::new(&BioformerConfig::bio2());
    let y = bio2.forward_infer_in(&x1, &mut arena);
    arena.recycle(y);
    g.bench_function("bio2_f10_b1", |b| {
        b.iter(|| {
            let y = bio2.forward_infer_in(black_box(&x1), &mut arena);
            let first = y.data()[0];
            arena.recycle(y);
            black_box(first)
        })
    });
    let mut tempo = TempoNet::new(0);
    g.bench_function("temponet_b1", |b| {
        b.iter(|| black_box(tempo.forward(black_box(&x1), false)))
    });
    g.finish();
    parallel::set_max_threads(0);
}

fn bench_int8(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("int8_inference");
    let cfg = BioformerConfig::bio1();
    let mut model = Bioformer::new(&cfg);
    let dict = state_dict(&mut model);
    let calib = windows(4, 11);
    let qmodel = QuantBioformer::convert(&cfg, &dict, &calib).expect("convert");
    let mut arena = TensorArena::new();
    for batch in [1usize, 8, 32] {
        let x = windows(batch, 13 + batch as u64);
        // Warm the arena and the model's internal scratch pool outside the
        // timer: the steady state is allocation-free.
        let y = qmodel.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
        g.bench_function(&format!("bio1_f10_int8_b{batch}"), |b| {
            b.iter(|| {
                let y = qmodel.forward_infer_in(black_box(&x), &mut arena);
                let first = y.data()[0];
                arena.recycle(y);
                black_box(first)
            })
        });
    }
    g.finish();
    parallel::set_max_threads(0);
}

/// The autotuner's payoff, measured directly: each bio1 fp32 GEMM shape
/// through the fixed default plan vs the plan a freshly tuned table picks
/// for it, plus the end-to-end batch-1/8 forward on a default vs a tuned
/// model. When the tuner keeps the default everywhere (it logs why), the
/// two sides time identically — the pairs then double as a
/// seam-overhead check.
fn bench_tuned_vs_fixed(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("tuned-vs-fixed");
    let shapes = [
        ("qkv_32x64x256", 32usize, 64usize, 256usize),
        ("wo_32x256x64", 32, 256, 64),
        ("ffn_32x64x128", 32, 64, 128),
    ];
    let gemm_shapes: Vec<GemmShape> = shapes
        .iter()
        .map(|&(_, m, k, n)| GemmShape::fp32(m, k, n))
        .collect();
    let tuned = PackedCpuBackend::with_table(tune(&gemm_shapes));
    let fixed = PackedCpuBackend::new();
    for (label, m, k, n) in shapes {
        let a = filled(&[m, k], 1);
        let bt = filled(&[n, k], 2);
        let mut out = vec![0.0f32; m * n];
        for (prefix, backend) in [("fixed", &fixed), ("tuned", &tuned)] {
            let packed = backend.pack_weight(bt.data(), n, k);
            g.bench_function(&format!("{prefix}_{label}"), |b| {
                b.iter(|| {
                    backend.gemm(black_box(a.data()), m, &packed, &mut out, Epilogue::None);
                    black_box(out[0])
                })
            });
        }
    }

    // End to end: the same bio1 weights behind the default seam and behind
    // a backend tuned for the model's own shape inventory.
    let cfg = BioformerConfig::bio1();
    let fixed_model = Bioformer::new(&cfg);
    let mut tuned_model = Bioformer::new(&cfg);
    let table = tune(&tuned_model.gemm_shapes());
    tuned_model.set_backend(std::sync::Arc::new(PackedCpuBackend::with_table(table)));
    let mut arena = TensorArena::new();
    for batch in [1usize, 8] {
        let x = windows(batch, 17 + batch as u64);
        for (prefix, model) in [("fixed", &fixed_model), ("tuned", &tuned_model)] {
            let y = model.forward_infer_in(&x, &mut arena);
            arena.recycle(y);
            g.bench_function(&format!("{prefix}_bio1_b{batch}"), |b| {
                b.iter(|| {
                    let y = model.forward_infer_in(black_box(&x), &mut arena);
                    let first = y.data()[0];
                    arena.recycle(y);
                    black_box(first)
                })
            });
        }
    }
    g.finish();
    parallel::set_max_threads(0);
}

criterion_group!(
    benches,
    bench_gemm,
    bench_qgemm,
    bench_fp32,
    bench_int8,
    bench_tuned_vs_fixed
);
criterion_main!(benches);
