//! Criterion benchmarks of full-model inference (single 150 ms window):
//! Bioformer fp32, Bioformer int8 (integer-only pipeline) and TEMPONet
//! fp32. Host-side throughput; the MCU latencies come from `bioformer-gap8`.

use bioformer_core::{Bioformer, BioformerConfig, TempoNet};
use bioformer_nn::serialize::state_dict;
use bioformer_nn::Model;
use bioformer_quant::QuantBioformer;
use bioformer_tensor::{parallel, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn window(seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[1, 14, 300], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

fn bench_fp32(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("fp32_inference");
    let x = window(1);
    let mut bio1 = Bioformer::new(&BioformerConfig::bio1());
    g.bench_function("bio1_f10", |b| {
        b.iter(|| black_box(bio1.forward(black_box(&x), false)))
    });
    let mut bio2 = Bioformer::new(&BioformerConfig::bio2());
    g.bench_function("bio2_f10", |b| {
        b.iter(|| black_box(bio2.forward(black_box(&x), false)))
    });
    let mut bio1_f30 = Bioformer::new(&BioformerConfig::bio1().with_filter(30));
    g.bench_function("bio1_f30", |b| {
        b.iter(|| black_box(bio1_f30.forward(black_box(&x), false)))
    });
    let mut tempo = TempoNet::new(0);
    g.bench_function("temponet", |b| {
        b.iter(|| black_box(tempo.forward(black_box(&x), false)))
    });
    g.finish();
}

fn bench_int8(c: &mut Criterion) {
    let mut g = c.benchmark_group("int8_inference");
    let cfg = BioformerConfig::bio1();
    let mut model = Bioformer::new(&cfg);
    let dict = state_dict(&mut model);
    let calib = window(2).reshape(&[1, 14, 300]);
    let qmodel = QuantBioformer::convert(&cfg, &dict, &calib).expect("convert");
    let w = window(3).reshape(&[14, 300]);
    g.bench_function("bio1_f10_int8", |b| {
        b.iter(|| black_box(qmodel.forward_window(black_box(&w))))
    });
    g.finish();
}

criterion_group!(benches, bench_fp32, bench_int8);
criterion_main!(benches);
