//! Criterion benchmarks of the inference hot path, with a committed
//! baseline and a CI regression gate.
//!
//! Three groups:
//!
//! * `gemm` — the bio1-shaped fp32 GEMMs, naive reference kernel vs the
//!   panel-packed register-tiled kernel (pre-packed weights, as the
//!   serving steady state runs them). This is the ≥2× single-thread
//!   speedup claim of the packed-GEMM rework, measured directly.
//! * `fp32_inference` — Bioformer bio1 per-window latency and per-batch
//!   throughput at batch 1/8/32, through the arena-threaded
//!   `forward_infer_in` path a serving worker uses (weights packed once,
//!   scratch recycled). TEMPONet rides along as the CNN baseline.
//! * `int8_inference` — the integer-only pipeline at batch 1/8/32, for the
//!   int8-vs-fp32 per-window comparison.
//!
//! Per-window numbers are the benchmark id's time divided by the batch
//! size (batch ids are suffixed `_bN`; the printed time is per *batch*).
//!
//! Run and compare against the committed baseline:
//!
//! ```text
//! CRITERION_SHIM_DIR=crates/bench/baselines cargo bench -p bioformer-bench \
//!     --bench inference -- --baseline inference --fail-threshold 50
//! ```
//!
//! Refresh the committed baseline after an intentional perf change:
//!
//! ```text
//! CRITERION_SHIM_DIR=crates/bench/baselines cargo bench -p bioformer-bench \
//!     --bench inference -- --save-baseline inference
//! ```

use bioformer_core::{Bioformer, BioformerConfig, TempoNet};
use bioformer_nn::serialize::state_dict;
use bioformer_nn::{InferForward, Model};
use bioformer_quant::QuantBioformer;
use bioformer_tensor::matmul::{matmul_naive, matmul_nt_naive};
use bioformer_tensor::pack::{gemm_packed, Epilogue, PackedB};
use bioformer_tensor::{parallel, Tensor, TensorArena};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn filled(dims: &[usize], seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(dims, |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

fn windows(batch: usize, seed: u64) -> Tensor {
    filled(&[batch, 14, 300], seed)
}

/// Naive-vs-packed at the GEMM shapes a bio1 forward actually issues:
/// `[seq+1, embed] × [inner, embed]ᵀ` projections (m=32, k=64, n=256), the
/// output projection (k=256, n=64) and the FFN (n=128), plus the batch-32
/// projection GEMM (m=1024 rows).
fn bench_gemm(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("gemm");
    for (label, m, k, n) in [
        ("qkv_32x64x256", 32usize, 64usize, 256usize),
        ("wo_32x256x64", 32, 256, 64),
        ("ffn_32x64x128", 32, 64, 128),
        ("qkv_b32_1024x64x256", 1024, 64, 256),
    ] {
        let a = filled(&[m, k], 1);
        let bt = filled(&[n, k], 2);
        g.bench_function(&format!("naive_{label}"), |b| {
            b.iter(|| black_box(matmul_nt_naive(black_box(&a), black_box(&bt))))
        });
        // Steady-state serving: the weight is packed once per layer, so
        // only the GEMM itself is on the clock.
        let packed = PackedB::from_b_t(bt.data(), n, k);
        let mut out = vec![0.0f32; m * n];
        g.bench_function(&format!("packed_{label}"), |b| {
            b.iter(|| {
                gemm_packed(
                    black_box(a.data()),
                    m,
                    k,
                    packed.as_slice(),
                    n,
                    &mut out,
                    Epilogue::None,
                );
                black_box(out[0])
            })
        });
        // The A·B orientation reference rides along for completeness.
        let bn = filled(&[k, n], 3);
        g.bench_function(&format!("naive_nn_{label}"), |b| {
            b.iter(|| black_box(matmul_naive(black_box(&a), black_box(&bn))))
        });
    }
    g.finish();
    parallel::set_max_threads(0);
}

fn bench_fp32(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("fp32_inference");
    let bio1 = Bioformer::new(&BioformerConfig::bio1());
    let mut arena = TensorArena::new();
    for batch in [1usize, 8, 32] {
        let x = windows(batch, batch as u64);
        // Warm the arena and the packed-weight caches outside the timer.
        let y = bio1.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
        g.bench_function(&format!("bio1_f10_b{batch}"), |b| {
            b.iter(|| {
                let y = bio1.forward_infer_in(black_box(&x), &mut arena);
                let first = y.data()[0];
                arena.recycle(y);
                black_box(first)
            })
        });
    }
    // Secondary configs at batch 1 (per-window latency comparison).
    let x1 = windows(1, 7);
    let bio2 = Bioformer::new(&BioformerConfig::bio2());
    let y = bio2.forward_infer_in(&x1, &mut arena);
    arena.recycle(y);
    g.bench_function("bio2_f10_b1", |b| {
        b.iter(|| {
            let y = bio2.forward_infer_in(black_box(&x1), &mut arena);
            let first = y.data()[0];
            arena.recycle(y);
            black_box(first)
        })
    });
    let mut tempo = TempoNet::new(0);
    g.bench_function("temponet_b1", |b| {
        b.iter(|| black_box(tempo.forward(black_box(&x1), false)))
    });
    g.finish();
    parallel::set_max_threads(0);
}

fn bench_int8(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("int8_inference");
    let cfg = BioformerConfig::bio1();
    let mut model = Bioformer::new(&cfg);
    let dict = state_dict(&mut model);
    let calib = windows(4, 11);
    let qmodel = QuantBioformer::convert(&cfg, &dict, &calib).expect("convert");
    for batch in [1usize, 8, 32] {
        let x = windows(batch, 13 + batch as u64);
        g.bench_function(&format!("bio1_f10_int8_b{batch}"), |b| {
            b.iter(|| black_box(qmodel.forward_batch(black_box(&x))))
        });
    }
    g.finish();
    parallel::set_max_threads(0);
}

criterion_group!(benches, bench_gemm, bench_fp32, bench_int8);
criterion_main!(benches);
