//! Single-replica vs sharded serving under concurrent client load.
//!
//! Each benchmark measures the wall-clock time for 1 / 4 / 16 closed-loop
//! clients to stream single-window requests through an engine:
//!
//! * `single-*` — one [`AsyncEngine`] replica (the PR 2 topology);
//! * `sharded-*` — a [`ShardedEngine`] pool with latency-aware routing
//!   and adaptive linger over heterogeneous replicas.
//!
//! Two regimes are covered, mirroring the paper's deployment story:
//!
//! * `cpu` — real inference on this host: a small fp32 Bioformer replica
//!   vs an fp32+int8 pool (the int8 replica is the same network
//!   quantized). Sharding pays off with spare cores to put replicas on;
//!   on a single-core host the replicas' worker threads contend for the
//!   one core and the pool trails the single replica — measuring that
//!   honestly is the point of this regime.
//! * `edge` — simulated GAP8-class offload replicas, where the host CPU is
//!   idle during offload and sharding shines even single-core: every
//!   backend invocation pays a fixed overhead (cluster wake-up, DMA/SPI
//!   round-trips) plus a per-window latency from the `bioformer-gap8`
//!   analytical model. `sharded-2x` doubles the offload lanes (the
//!   scaling story, ~1.7× at 16 clients); `sharded-het` adds a 2× slower
//!   Pareto sibling instead (latency-aware routing must exploit it at
//!   moderate load without letting it drag the pool at saturation).
//!
//! ```text
//! cargo bench -p bioformer-bench --bench serving                      # full
//! cargo bench -p bioformer-bench --bench serving -- --smoke           # CI sanity
//! cargo bench -p bioformer-bench --bench serving -- --save-baseline b # record
//! cargo bench -p bioformer-bench --bench serving -- --baseline b --fail-threshold 25
//! ```

use bioformer_core::descriptor::bioformer_descriptor;
use bioformer_core::{Bioformer, BioformerConfig};
use bioformer_gap8::deploy::analyze_default;
use bioformer_nn::serialize::state_dict;
use bioformer_quant::QuantBioformer;
use bioformers::serve::{
    AsyncEngine, AsyncEngineConfig, GestureClassifier, RoutingPolicy, ShardedEngine,
};
use bioformers::tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

/// Fixed cost per backend invocation in the simulated edge deployment:
/// waking the GAP8 cluster, DMAing activations in and logits out over SPI,
/// and re-arming the fabric controller.
const EDGE_INVOCATION_OVERHEAD: Duration = Duration::from_millis(2);

/// Requests each simulated client sends (closed loop: submit, wait, repeat).
const REQUESTS_PER_CLIENT: usize = 6;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

fn window(seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[1, 14, 300], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// A backend that models a GAP8-class accelerator behind a host interface:
/// sleeps for the invocation overhead plus a per-window latency, then
/// returns deterministic logits. Sleeping (not spinning) mirrors a host
/// blocked on an offload completion interrupt.
struct EdgeSim {
    per_window: Duration,
}

impl GestureClassifier for EdgeSim {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        let n = windows.dims()[0];
        std::thread::sleep(EDGE_INVOCATION_OVERHEAD + self.per_window * n as u32);
        Tensor::from_fn(&[n, 8], |i| (i % 8) as f32)
    }

    fn num_classes(&self) -> usize {
        8
    }

    fn name(&self) -> &str {
        "gap8-edge"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((14, 300))
    }
}

/// Small-but-real Bioformer config: big enough to cost real compute per
/// window, small enough for a benchmark iteration to stay sub-second.
fn small_config() -> BioformerConfig {
    BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 9,
        ..BioformerConfig::bio1()
    }
}

/// Closed-loop client load against any engine submit/wait closure.
fn drive_clients(clients: usize, classify: impl Fn(Tensor) + Sync) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            let classify = &classify;
            scope.spawn(move || {
                let w = window(c as u64 + 1);
                for _ in 0..REQUESTS_PER_CLIENT {
                    classify(w.clone());
                }
            });
        }
    });
}

fn replica_config() -> AsyncEngineConfig {
    AsyncEngineConfig::default()
        .with_workers(1)
        .with_micro_batch(16)
        .with_adaptive_linger(Duration::from_millis(2))
}

fn bench_cpu(c: &mut Criterion) {
    // One shared fp32 model + its int8 conversion back every engine in
    // this group (replicas add queues and workers, not weights).
    let cfg = small_config();
    let mut model = Bioformer::new(&cfg);
    let calib = Tensor::from_fn(&[8, cfg.channels, cfg.window], |i| {
        ((i % 13) as f32 - 6.0) / 6.0
    });
    let dict = state_dict(&mut model);
    let qmodel = Arc::new(QuantBioformer::convert(&cfg, &dict, &calib).expect("int8 conversion"));
    let model = Arc::new(model);

    let mut g = c.benchmark_group("serving-cpu");
    for clients in CLIENT_COUNTS {
        g.bench_function(&format!("single-fp32/{clients}clients"), |b| {
            b.iter(|| {
                let engine =
                    AsyncEngine::with_config(Box::new(Arc::clone(&model)), replica_config());
                drive_clients(clients, |w| {
                    engine.classify(w).expect("serve");
                });
            })
        });
        g.bench_function(&format!("sharded-fp32+int8/{clients}clients"), |b| {
            b.iter(|| {
                let pool = ShardedEngine::builder()
                    .with_policy(RoutingPolicy::LatencyAware)
                    .with_replica_config(replica_config())
                    .add_replica(Box::new(Arc::clone(&model)))
                    .add_replica(Box::new(Arc::clone(&qmodel)))
                    .build();
                drive_clients(clients, |w| {
                    pool.classify(w).expect("serve");
                });
            })
        });
    }
    g.finish();
}

fn bench_edge(c: &mut Criterion) {
    // Per-window latency from the analytical GAP8 model for the real bio1
    // network; the "slow" replica models a 2× heavier deployment sharing
    // the pool (the Pareto sibling).
    let per_window_ms = analyze_default(&bioformer_descriptor(&BioformerConfig::bio1())).latency_ms;
    let fast = Duration::from_secs_f64(per_window_ms / 1e3);
    let slow = fast * 2;

    let mut g = c.benchmark_group("serving-edge");
    for clients in CLIENT_COUNTS {
        g.bench_function(&format!("single-edge/{clients}clients"), |b| {
            b.iter(|| {
                let engine = AsyncEngine::with_config(
                    Box::new(EdgeSim { per_window: fast }),
                    replica_config(),
                );
                drive_clients(clients, |w| {
                    engine.classify(w).expect("serve");
                });
            })
        });
        // Two equal offload lanes: the pure scaling story.
        g.bench_function(&format!("sharded-2x-edge/{clients}clients"), |b| {
            b.iter(|| {
                let pool = ShardedEngine::builder()
                    .with_policy(RoutingPolicy::LatencyAware)
                    .with_replica_config(replica_config())
                    .add_replica(Box::new(EdgeSim { per_window: fast }))
                    .add_replica(Box::new(EdgeSim { per_window: fast }))
                    .build();
                drive_clients(clients, |w| {
                    pool.classify(w).expect("serve");
                });
            })
        });
        // Fast lane + a 2× slower Pareto sibling: latency-aware routing
        // must exploit the extra capacity without letting the slow lane
        // drag the pool below the single fast lane.
        g.bench_function(&format!("sharded-het-edge/{clients}clients"), |b| {
            b.iter(|| {
                let pool = ShardedEngine::builder()
                    .with_policy(RoutingPolicy::LatencyAware)
                    .with_replica_config(replica_config())
                    .add_replica(Box::new(EdgeSim { per_window: fast }))
                    .add_replica(Box::new(EdgeSim { per_window: slow }))
                    .build();
                drive_clients(clients, |w| {
                    pool.classify(w).expect("serve");
                });
            })
        });
    }
    g.finish();
}

criterion_group!(serving, bench_cpu, bench_edge);
criterion_main!(serving);
