//! Sync vs async serving throughput under concurrent client load.
//!
//! Simulates 1 / 4 / 16 closed-loop clients, each streaming single-window
//! requests, against two backends:
//!
//! * `bio1-fp32` — the real fp32 Bioformer running on this host. Its
//!   per-window cost is linear in the batch size (no fixed per-invocation
//!   overhead worth amortising on a CPU), so coalescing primarily buys
//!   per-request overhead amortisation; on single-core hosts expect parity
//!   rather than speedup.
//! * `gap8-edge` — a simulated GAP8-attached deployment, the regime the
//!   paper actually targets: every backend *invocation* pays a fixed
//!   overhead (cluster power-up, weight/config DMA, SPI result readback —
//!   see [`EDGE_INVOCATION_OVERHEAD`]) plus the per-window inference
//!   latency taken from the `bioformer-gap8` analytical model. Cross-request
//!   coalescing amortises the fixed cost across every rider, which is where
//!   the async engine's ≥2× throughput at high concurrency comes from.
//!
//! The sync baseline is the PR 1 contract: `InferenceEngine` serves one
//! caller at a time, so concurrent clients serialise behind a mutex.
//!
//! ```text
//! cargo bench -p bioformer-bench --bench serving
//! ```

use bioformer_core::descriptor::bioformer_descriptor;
use bioformer_core::{Bioformer, BioformerConfig};
use bioformer_gap8::deploy::analyze_default;
use bioformers::serve::{AsyncEngine, AsyncEngineConfig, GestureClassifier, InferenceEngine};
use bioformers::tensor::Tensor;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fixed cost per backend invocation in the simulated edge deployment:
/// waking the GAP8 cluster, DMAing activations in and logits out over SPI,
/// and re-arming the fabric controller. Milliseconds-scale is typical for
/// duty-cycled MCU offload; the exact value only shifts *where* coalescing
/// starts to pay, not whether it does.
const EDGE_INVOCATION_OVERHEAD: Duration = Duration::from_millis(4);

/// Requests each simulated client sends (closed loop: submit, wait, repeat).
const REQUESTS_PER_CLIENT: usize = 12;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

fn window(seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[1, 14, 300], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// A backend that models a GAP8-class accelerator behind a host interface:
/// sleeps for the invocation overhead plus the analytical per-window
/// latency, then returns deterministic logits. Sleeping (not spinning)
/// mirrors a host blocked on an offload completion interrupt.
struct EdgeSim {
    per_window: Duration,
}

impl GestureClassifier for EdgeSim {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        let n = windows.dims()[0];
        std::thread::sleep(EDGE_INVOCATION_OVERHEAD + self.per_window * n as u32);
        Tensor::from_fn(&[n, 8], |i| (i % 8) as f32)
    }

    fn num_classes(&self) -> usize {
        8
    }

    fn name(&self) -> &str {
        "gap8-edge"
    }
}

/// A factory producing fresh backend instances for one benchmark scenario.
type BackendFactory = Box<dyn Fn() -> Box<dyn GestureClassifier>>;

fn backends() -> Vec<(&'static str, BackendFactory)> {
    let per_window_ms = analyze_default(&bioformer_descriptor(&BioformerConfig::bio1())).latency_ms;
    vec![
        (
            "bio1-fp32",
            Box::new(|| -> Box<dyn GestureClassifier> {
                Box::new(Bioformer::new(&BioformerConfig::bio1()))
            }) as BackendFactory,
        ),
        (
            "gap8-edge",
            Box::new(move || -> Box<dyn GestureClassifier> {
                Box::new(EdgeSim {
                    per_window: Duration::from_secs_f64(per_window_ms / 1e3),
                })
            }),
        ),
    ]
}

/// Sync baseline: `clients` threads contend for one `InferenceEngine`
/// (one caller at a time); returns windows/second of wall time.
fn run_sync(backend: Box<dyn GestureClassifier>, clients: usize) -> f64 {
    let engine = Mutex::new(InferenceEngine::new(backend).with_micro_batch(16));
    let total = clients * REQUESTS_PER_CLIENT;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let engine = &engine;
            scope.spawn(move || {
                let w = window(c as u64 + 1);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let guard = engine.lock().unwrap();
                    let out = guard.serve(&w);
                    assert_eq!(out.predictions.len(), 1);
                }
            });
        }
    });
    total as f64 / t0.elapsed().as_secs_f64()
}

/// Async engine under the same client load; returns (windows/second,
/// mean requests per executed batch).
fn run_async(backend: Box<dyn GestureClassifier>, clients: usize) -> (f64, f64) {
    let engine = Arc::new(AsyncEngine::with_config(
        backend,
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_micro_batch(16)
            .with_linger(Duration::from_millis(1)),
    ));
    let total = clients * REQUESTS_PER_CLIENT;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let w = window(c as u64 + 1);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let out = engine.classify(w.clone()).unwrap();
                    assert_eq!(out.predictions.len(), 1);
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = Arc::into_inner(engine).unwrap().shutdown();
    assert_eq!(stats.requests, total);
    (total as f64 / elapsed, stats.requests_per_batch())
}

fn main() {
    println!("serving throughput: sync (mutexed InferenceEngine) vs async (AsyncEngine)");
    println!(
        "closed-loop single-window clients, {REQUESTS_PER_CLIENT} requests each; \
         edge overhead {EDGE_INVOCATION_OVERHEAD:?}/invocation\n"
    );
    println!(
        "{:<11} {:>8} {:>12} {:>13} {:>10} {:>10}",
        "backend", "clients", "sync win/s", "async win/s", "speedup", "req/batch"
    );
    for (name, make) in backends() {
        for clients in CLIENT_COUNTS {
            let sync_tput = run_sync(make(), clients);
            let (async_tput, coalesce) = run_async(make(), clients);
            println!(
                "{:<11} {:>8} {:>12.1} {:>13.1} {:>9.2}x {:>10.1}",
                name,
                clients,
                sync_tput,
                async_tput,
                async_tput / sync_tput,
                coalesce
            );
        }
    }
    println!(
        "\ncoalescing amortises per-invocation overhead; the win scales with\n\
         concurrency and vanishes when the backend has no fixed cost to share\n\
         (pure-CPU fp32 on a single core)."
    );
}
