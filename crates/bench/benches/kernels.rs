//! Criterion micro-benchmarks of the fp32 compute kernels (host-side
//! throughput; the on-device numbers come from the GAP8 model).

use bioformer_tensor::conv::{conv1d_forward, Conv1dSpec};
use bioformer_tensor::ops::{layernorm_forward, softmax_rows};
use bioformer_tensor::{parallel, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn t(dims: &[usize], seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(dims, |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

fn bench_matmul(c: &mut Criterion) {
    // Keep kernel benches single-threaded for stable numbers.
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("matmul");
    // QKV-projection shape of Bio1 at batch 1 (31 tokens).
    let a = t(&[31, 64], 1);
    let b = t(&[256, 64], 2);
    g.bench_function("qkv_31x64x256_nt", |bench| {
        bench.iter(|| black_box(a.matmul_nt(&b)))
    });
    // Attention score shape.
    let q = t(&[31, 32], 3);
    let k = t(&[31, 32], 4);
    g.bench_function("scores_31x32x31_nt", |bench| {
        bench.iter(|| black_box(q.matmul_nt(&k)))
    });
    // Batched linear (training shape).
    let xb = t(&[992, 64], 5);
    let w = t(&[128, 64], 6);
    g.bench_function("fc1_992x64x128_nt", |bench| {
        bench.iter(|| black_box(xb.matmul_nt(&w)))
    });
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("conv1d");
    let x = t(&[14, 300], 7);
    let w10 = t(&[64, 14, 10], 8);
    let b64 = Tensor::zeros(&[64]);
    g.bench_function("patch_f10", |bench| {
        bench.iter(|| black_box(conv1d_forward(&x, &w10, &b64, Conv1dSpec::patch(10))))
    });
    // TEMPONet-style dilated conv.
    let xt = t(&[32, 300], 9);
    let wt = t(&[32, 32, 3], 10);
    let bt = Tensor::zeros(&[32]);
    let spec = Conv1dSpec {
        stride: 1,
        padding: 2,
        dilation: 2,
    };
    g.bench_function("tcn_dilated_32x32x3", |bench| {
        bench.iter(|| black_box(conv1d_forward(&xt, &wt, &bt, spec)))
    });
    g.finish();
}

fn bench_rowwise(c: &mut Criterion) {
    parallel::set_max_threads(1);
    let mut g = c.benchmark_group("rowwise");
    let scores = t(&[248, 31], 11);
    g.bench_function("softmax_248x31", |bench| {
        bench.iter(|| black_box(softmax_rows(&scores)))
    });
    let x = t(&[31, 64], 12);
    let gamma = Tensor::ones(&[64]);
    let beta = Tensor::zeros(&[64]);
    g.bench_function("layernorm_31x64", |bench| {
        bench.iter(|| black_box(layernorm_forward(&x, &gamma, &beta)))
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_conv, bench_rowwise);
criterion_main!(benches);
