//! The Bioformer model (paper §III-A, Fig. 1 bottom).
//!
//! ```text
//! [B, 14, 300] ──Conv1d(k=f, stride=f)──▶ [B, 64, N] ──transpose──▶ [B, N, 64]
//!      └─ append class token ──▶ [B, N+1, 64] ──d× TransformerBlock──▶
//!      └─ take class row ──▶ LayerNorm ──▶ Linear(64→8) ──▶ logits
//! ```

use crate::config::BioformerConfig;
use bioformer_nn::linear::FusedActivation;
use bioformer_nn::{Conv1d, InferForward, LayerNorm, Linear, Model, Param, TransformerBlock};
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::conv::Conv1dSpec;
use bioformer_tensor::tune::GemmShape;
use bioformer_tensor::{Tensor, TensorArena};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The Bioformer tiny transformer for sEMG gesture recognition.
///
/// # Example
///
/// ```
/// use bioformer_core::{Bioformer, BioformerConfig};
/// use bioformer_nn::Model;
/// use bioformer_tensor::Tensor;
///
/// let mut model = Bioformer::new(&BioformerConfig::bio1());
/// let window = Tensor::zeros(&[2, 14, 300]);
/// let logits = model.forward(&window, false);
/// assert_eq!(logits.dims(), &[2, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Bioformer {
    cfg: BioformerConfig,
    patch: Conv1d,
    class_token: Param,
    blocks: Vec<TransformerBlock>,
    ln_final: LayerNorm,
    head: Linear,
    fwd_batch: Option<usize>,
    backend: Arc<dyn ComputeBackend>,
}

impl Bioformer {
    /// Builds a Bioformer with weights initialised from `cfg.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    pub fn new(cfg: &BioformerConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid BioformerConfig: {e}");
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let patch = Conv1d::new(
            "patch_embed",
            cfg.channels,
            cfg.embed,
            cfg.filter,
            Conv1dSpec::patch(cfg.filter),
            &mut rng,
        );
        // ViT initialises the class token from N(0, 0.02); we use a larger
        // 0.25 so the token is commensurate with the patch-embedding range.
        // This is neutral for fp32 training but crucial for int8 deployment:
        // the token shares the patch activations' per-tensor quantization
        // grid, and a 0.02-scale row would collapse to ±3 codes, destroying
        // the classification path (the class row is what the head reads).
        let class_token = Param::new(
            "class_token",
            bioformer_nn::init::normal(&mut rng, &[cfg.embed], 0.25),
        );
        let blocks = (0..cfg.depth)
            .map(|l| {
                TransformerBlock::new(
                    &format!("block{l}"),
                    cfg.embed,
                    cfg.heads,
                    cfg.head_dim,
                    cfg.hidden,
                    cfg.dropout,
                    &mut rng,
                )
            })
            .collect();
        let ln_final = LayerNorm::new("ln_final", cfg.embed);
        let head = Linear::new("head", cfg.embed, cfg.classes, &mut rng);
        Bioformer {
            cfg: cfg.clone(),
            patch,
            class_token,
            blocks,
            ln_final,
            head,
            fwd_batch: None,
            backend: default_backend(),
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &BioformerConfig {
        &self.cfg
    }

    /// Installs a compute backend on every GEMM-bearing layer (patch conv,
    /// all encoder blocks, the classifier head). Packed weights are re-built
    /// under the new backend's plans on next use.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.patch.set_backend(backend.clone());
        for blk in &mut self.blocks {
            blk.set_backend(backend.clone());
        }
        self.head.set_backend(backend.clone());
        self.backend = backend;
    }

    /// The compute backend the inference path routes through.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// One-line description of the installed backend (tuning state
    /// included) — surfaced through `EngineStats`.
    pub fn compute_report(&self) -> String {
        self.backend.describe()
    }

    /// Every distinct GEMM shape the inference path executes — the
    /// autotuner's work-list. Weight GEMMs use the `m = 0` wildcard (the
    /// row count varies with batch size); the per-head attention products
    /// have both operands shaped by the config, so they tune exactly.
    pub fn gemm_shapes(&self) -> Vec<GemmShape> {
        let c = &self.cfg;
        let s = c.seq_len();
        vec![
            GemmShape::fp32(0, c.channels * c.filter, c.embed), // patch conv lowering
            GemmShape::fp32(0, c.embed, c.inner()),             // wq / wk / wv
            GemmShape::fp32(s, c.head_dim, s),                  // per-head Q·Kᵀ
            GemmShape::fp32(s, s, c.head_dim),                  // per-head A·V
            GemmShape::fp32(0, c.inner(), c.embed),             // wo
            GemmShape::fp32(0, c.embed, c.hidden),              // fc1
            GemmShape::fp32(0, c.hidden, c.embed),              // fc2
            GemmShape::fp32(0, c.embed, c.classes),             // head
        ]
    }

    /// Transposes conv output `[B, E, N]` into token-major `[B, N, E]` and
    /// appends the class token at position `N`.
    fn tokenize(&self, conv_out: &Tensor) -> Tensor {
        let (b, e, n) = (conv_out.dims()[0], conv_out.dims()[1], conv_out.dims()[2]);
        let mut tokens = Tensor::zeros(&[b, n + 1, e]);
        self.tokenize_into(conv_out.data(), b, e, n, tokens.data_mut());
        tokens
    }

    /// Slice-level [`Bioformer::tokenize`] into a caller-provided
    /// `[B, N+1, E]` buffer (every element is written).
    fn tokenize_into(&self, src: &[f32], b: usize, e: usize, n: usize, dst: &mut [f32]) {
        let s = n + 1;
        for bi in 0..b {
            for ei in 0..e {
                let row = &src[(bi * e + ei) * n..(bi * e + ei + 1) * n];
                for (ni, &v) in row.iter().enumerate() {
                    dst[(bi * s + ni) * e + ei] = v;
                }
            }
            let cls = self.class_token.value.data();
            dst[(bi * s + n) * e..(bi * s + n + 1) * e].copy_from_slice(cls);
        }
    }

    /// Splits token gradients back into the conv layout and the class-token
    /// gradient (summed over the batch).
    fn detokenize_grad(&self, dtokens: &Tensor) -> (Tensor, Tensor) {
        let (b, s, e) = (dtokens.dims()[0], dtokens.dims()[1], dtokens.dims()[2]);
        let n = s - 1;
        let mut dconv = Tensor::zeros(&[b, e, n]);
        let mut dcls = Tensor::zeros(&[e]);
        let src = dtokens.data();
        let dst = dconv.data_mut();
        for bi in 0..b {
            for ni in 0..n {
                for ei in 0..e {
                    dst[(bi * e + ei) * n + ni] = src[(bi * s + ni) * e + ei];
                }
            }
            for ei in 0..e {
                dcls.data_mut()[ei] += src[(bi * s + n) * e + ei];
            }
        }
        (dconv, dcls)
    }

    /// Extracts the class-token rows `[B, E]` from `[B, S, E]`.
    fn class_rows(tokens: &Tensor) -> Tensor {
        let (b, s, e) = (tokens.dims()[0], tokens.dims()[1], tokens.dims()[2]);
        let mut out = Tensor::zeros(&[b, e]);
        for bi in 0..b {
            out.data_mut()[bi * e..(bi + 1) * e]
                .copy_from_slice(&tokens.data()[(bi * s + s - 1) * e..(bi * s + s) * e]);
        }
        out
    }
}

impl InferForward for Bioformer {
    /// Eval-mode forward through `&self`: bit-identical logits to
    /// [`Model::forward`]`(x, false)`, but with no cache writes, so one
    /// instance can be shared across serving workers without cloning.
    ///
    /// # Example
    ///
    /// ```
    /// use bioformer_core::{Bioformer, BioformerConfig};
    /// use bioformer_nn::InferForward;
    /// use bioformer_tensor::Tensor;
    ///
    /// let model = Bioformer::new(&BioformerConfig::bio1());
    /// let logits = model.forward_infer(&Tensor::zeros(&[2, 14, 300]));
    /// assert_eq!(logits.dims(), &[2, 8]);
    /// ```
    fn forward_infer(&self, x: &Tensor) -> Tensor {
        self.forward_infer_in(x, &mut TensorArena::new())
    }

    /// The arena-threaded eval forward: patch conv, tokenisation, every
    /// encoder block, the final LayerNorm and the classifier head all draw
    /// scratch from `arena` and recycle it, so a warmed arena makes the
    /// whole pass allocation-free. [`InferForward::forward_infer`] is this
    /// over a throwaway arena, which pins the two paths together.
    fn forward_infer_in(&self, x: &Tensor, arena: &mut TensorArena) -> Tensor {
        assert_eq!(
            x.dims()[1],
            self.cfg.channels,
            "Bioformer: channel mismatch"
        );
        assert_eq!(x.dims()[2], self.cfg.window, "Bioformer: window mismatch");
        let (b, e) = (x.dims()[0], self.cfg.embed);
        let conv_out = self.patch.forward_infer_in(x, arena);
        let n = conv_out.dims()[2];
        let mut tokens = arena.tensor(&[b, n + 1, e]);
        self.tokenize_into(conv_out.data(), b, e, n, tokens.data_mut());
        arena.recycle(conv_out);
        for blk in &self.blocks {
            let next = blk.forward_infer_in(&tokens, arena);
            arena.recycle(std::mem::replace(&mut tokens, next));
        }
        // Class rows → final LN → head, each in arena scratch.
        let s = n + 1;
        let mut cls = arena.tensor(&[b, e]);
        for bi in 0..b {
            cls.data_mut()[bi * e..(bi + 1) * e]
                .copy_from_slice(&tokens.data()[(bi * s + s - 1) * e..(bi * s + s) * e]);
        }
        arena.recycle(tokens);
        let mut normed = arena.tensor(&[b, e]);
        self.ln_final.infer_into(cls.data(), normed.data_mut());
        arena.recycle(cls);
        let logits = self
            .head
            .forward_infer_in(&normed, FusedActivation::None, arena);
        arena.recycle(normed);
        logits
    }
}

impl Model for Bioformer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        assert_eq!(
            x.dims()[1],
            self.cfg.channels,
            "Bioformer: channel mismatch"
        );
        assert_eq!(x.dims()[2], self.cfg.window, "Bioformer: window mismatch");
        let conv_out = self.patch.forward(x, true);
        let mut tokens = self.tokenize(&conv_out);
        for blk in &mut self.blocks {
            tokens = blk.forward(&tokens, true);
        }
        let cls = Self::class_rows(&tokens);
        let normed = self.ln_final.forward(&cls, true);
        let logits = self.head.forward(&normed, true);
        self.fwd_batch = Some(x.dims()[0]);
        logits
    }

    fn backward(&mut self, dlogits: &Tensor) {
        let batch = self
            .fwd_batch
            .expect("Bioformer: backward before training-mode forward");
        let (s, e) = (self.cfg.seq_len(), self.cfg.embed);
        let dnormed = self.head.backward(dlogits);
        let dcls_rows = self.ln_final.backward(&dnormed);
        // Scatter class-row gradients into an otherwise-zero token grad.
        let mut dtokens = Tensor::zeros(&[batch, s, e]);
        for bi in 0..batch {
            dtokens.data_mut()[(bi * s + s - 1) * e..(bi * s + s) * e]
                .copy_from_slice(&dcls_rows.data()[bi * e..(bi + 1) * e]);
        }
        for blk in self.blocks.iter_mut().rev() {
            dtokens = blk.backward(&dtokens);
        }
        let (dconv, dcls_token) = self.detokenize_grad(&dtokens);
        self.class_token.accumulate(&dcls_token);
        let _ = self.patch.backward(&dconv);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.patch.visit_params(f);
        f(&mut self.class_token);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_final.visit_params(f);
        self.head.visit_params(f);
    }

    fn clear_cache(&mut self) {
        self.patch.clear_cache();
        for blk in &mut self.blocks {
            blk.clear_cache();
        }
        self.ln_final.clear_cache();
        self.head.clear_cache();
        self.fwd_batch = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::bioformer_descriptor;
    use rand::Rng;

    fn small_cfg() -> BioformerConfig {
        BioformerConfig {
            channels: 3,
            window: 20,
            classes: 4,
            embed: 8,
            filter: 5,
            heads: 2,
            depth: 1,
            head_dim: 4,
            hidden: 16,
            dropout: 0.0,
            seed: 7,
        }
    }

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_shapes() {
        let mut m = Bioformer::new(&BioformerConfig::bio1());
        let x = filled(&[2, 14, 300], 0);
        let y = m.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn param_count_matches_descriptor() {
        for cfg in [
            BioformerConfig::bio1(),
            BioformerConfig::bio2(),
            BioformerConfig::bio1().with_filter(30),
        ] {
            let mut m = Bioformer::new(&cfg);
            let desc = bioformer_descriptor(&cfg);
            assert_eq!(
                m.num_params() as u64,
                desc.params(),
                "model/descriptor param mismatch for {}",
                desc.name
            );
        }
    }

    #[test]
    fn deterministic_init() {
        let mut a = Bioformer::new(&small_cfg());
        let mut b = Bioformer::new(&small_cfg());
        let x = filled(&[1, 3, 20], 1);
        assert!(a.forward(&x, false).allclose(&b.forward(&x, false), 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Bioformer::new(&small_cfg());
        let mut b = Bioformer::new(&small_cfg().with_seed(8));
        let x = filled(&[1, 3, 20], 1);
        assert!(!a.forward(&x, false).allclose(&b.forward(&x, false), 1e-6));
    }

    #[test]
    fn gradcheck_end_to_end() {
        let mut m = Bioformer::new(&small_cfg());
        let x = filled(&[2, 3, 20], 2);
        let y = m.forward(&x, true);
        let dy = filled(y.dims(), 3);
        m.zero_grad();
        m.backward(&dy);

        // Check a sample of parameter gradients against finite differences.
        let mut grads: Vec<(String, Tensor)> = Vec::new();
        m.visit_params(&mut |p| grads.push((p.name.clone(), p.grad.clone())));

        let objective =
            |m: &mut Bioformer, x: &Tensor| -> f32 { m.forward(x, false).mul(&dy).sum() };
        // Small eps: parameters like the class token are initialised at
        // scale 0.02, so a large probe step leaves the linear regime of the
        // downstream LayerNorm.
        let eps = 2e-3;
        for (pi, (name, grad)) in grads.iter().enumerate() {
            let n_elems = grad.len();
            for idx in (0..n_elems).step_by((n_elems / 3).max(1)) {
                let mut orig = 0.0;
                let mut count = 0usize;
                m.visit_params(&mut |p| {
                    if count == pi {
                        orig = p.value.data()[idx];
                        p.value.data_mut()[idx] = orig + eps;
                    }
                    count += 1;
                });
                let fp = objective(&mut m, &x);
                count = 0;
                m.visit_params(&mut |p| {
                    if count == pi {
                        p.value.data_mut()[idx] = orig - eps;
                    }
                    count += 1;
                });
                let fm = objective(&mut m, &x);
                count = 0;
                m.visit_params(&mut |p| {
                    if count == pi {
                        p.value.data_mut()[idx] = orig;
                    }
                    count += 1;
                });
                let num = (fp - fm) / (2.0 * eps);
                let got = grad.data()[idx];
                assert!(
                    (num - got).abs() < 0.08 * (1.0 + num.abs().max(got.abs())),
                    "{name}[{idx}]: fd={num} analytic={got}"
                );
            }
        }
    }

    #[test]
    fn class_token_receives_gradient() {
        let mut m = Bioformer::new(&small_cfg());
        let x = filled(&[2, 3, 20], 4);
        let y = m.forward(&x, true);
        m.zero_grad();
        m.backward(&Tensor::ones(y.dims()));
        assert!(
            m.class_token.grad.abs_max() > 0.0,
            "class token gradient is zero"
        );
    }

    #[test]
    fn forward_infer_matches_eval_forward_exactly() {
        let mut m = Bioformer::new(&small_cfg());
        let x = filled(&[3, 3, 20], 6);
        // Run a training-mode pass first so any cache state that could leak
        // into the shared-state path would be present.
        let _ = m.forward(&x, true);
        let eval = m.forward(&x, false);
        let infer = (&m as &Bioformer).forward_infer(&x);
        assert!(infer.allclose(&eval, 0.0), "infer path diverges from eval");
    }

    #[test]
    fn clone_then_clear_cache_still_forwards() {
        let mut m = Bioformer::new(&small_cfg());
        let x = filled(&[1, 3, 20], 5);
        let _ = m.forward(&x, true);
        let mut c = m.clone();
        c.clear_cache();
        let y = c.forward(&x, false);
        assert_eq!(y.dims(), &[1, 4]);
    }
}
