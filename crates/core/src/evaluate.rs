//! Evaluation utilities: per-session accuracy sweeps and confusion
//! matrices over the synthetic DB6.

use bioformer_nn::loss::ConfusionMatrix;
use bioformer_nn::trainer::evaluate;
use bioformer_nn::Model;
use bioformer_semg::{NinaproDb6, Normalizer, SemgDataset};

/// Accuracy on one test session (paper Fig. 2 plots these for sessions
/// 6–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionAccuracy {
    /// 0-based session index (the paper's session number minus one).
    pub session: usize,
    /// Classification accuracy on that session's windows.
    pub accuracy: f32,
}

/// Evaluates a model on every test session of `subject`, normalising with
/// the supplied (training-fitted) `normalizer`.
pub fn per_session_accuracy<M: Model>(
    model: &M,
    db: &NinaproDb6,
    subject: usize,
    normalizer: &Normalizer,
    batch_size: usize,
) -> Vec<SessionAccuracy> {
    db.spec()
        .test_sessions()
        .into_iter()
        .map(|session| {
            let data = normalizer.apply(&db.subject_session_dataset(subject, session));
            let (_, accuracy) = evaluate(model, data.x(), data.labels(), batch_size);
            SessionAccuracy { session, accuracy }
        })
        .collect()
}

/// Mean accuracy across a set of per-session results (the paper's
/// "average across patients / sessions" aggregate).
pub fn mean_accuracy(results: &[SessionAccuracy]) -> f32 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.accuracy).sum::<f32>() / results.len() as f32
}

/// Builds a confusion matrix of `model` over an (already normalised)
/// dataset.
pub fn confusion<M: Model>(model: &M, data: &SemgDataset, batch_size: usize) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new(bioformer_semg::GESTURE_CLASSES);
    let n = data.len();
    let mut worker = model.clone();
    worker.clear_cache();
    let mut off = 0usize;
    while off < n {
        let end = (off + batch_size).min(n);
        let indices: Vec<usize> = (off..end).collect();
        let bx = bioformer_nn::trainer::gather_batch(data.x(), &indices);
        let logits = worker.forward(&bx, false);
        cm.record_batch(&logits, &data.labels()[off..end]);
        off = end;
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioformer_nn::{Linear, Param};
    use bioformer_semg::DatasetSpec;
    use bioformer_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trivial linear model over flattened windows — enough to exercise the
    /// evaluation plumbing without slow training.
    #[derive(Clone)]
    struct Flat {
        lin: Linear,
    }

    impl Model for Flat {
        fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
            let b = x.dims()[0];
            let f = x.len() / b.max(1);
            self.lin.forward(&x.reshape(&[b, f]), train)
        }
        fn backward(&mut self, d: &Tensor) {
            let _ = self.lin.backward(d);
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            self.lin.visit_params(f);
        }
        fn clear_cache(&mut self) {
            self.lin.clear_cache();
        }
    }

    fn flat_model() -> Flat {
        let mut rng = StdRng::seed_from_u64(0);
        Flat {
            lin: Linear::new(
                "flat",
                bioformer_semg::CHANNELS * bioformer_semg::WINDOW,
                bioformer_semg::GESTURE_CLASSES,
                &mut rng,
            ),
        }
    }

    #[test]
    fn per_session_covers_test_sessions() {
        let db = NinaproDb6::generate(&DatasetSpec::tiny());
        let norm = Normalizer::fit(&db.train_dataset(0));
        let model = flat_model();
        let res = per_session_accuracy(&model, &db, 0, &norm, 64);
        assert_eq!(res.len(), db.spec().test_sessions().len());
        for r in &res {
            assert!((0.0..=1.0).contains(&r.accuracy));
        }
    }

    #[test]
    fn mean_accuracy_averages() {
        let rs = vec![
            SessionAccuracy {
                session: 0,
                accuracy: 0.5,
            },
            SessionAccuracy {
                session: 1,
                accuracy: 0.7,
            },
        ];
        assert!((mean_accuracy(&rs) - 0.6).abs() < 1e-6);
        assert_eq!(mean_accuracy(&[]), 0.0);
    }

    #[test]
    fn confusion_total_matches_dataset() {
        let db = NinaproDb6::generate(&DatasetSpec::tiny());
        let data = db.subject_session_dataset(0, 0);
        let cm = confusion(&flat_model(), &data, 32);
        let total: u32 = (0..8)
            .flat_map(|t| (0..8).map(move |p| (t, p)))
            .map(|(t, p)| cm.count(t, p))
            .sum();
        assert_eq!(total as usize, data.len());
    }
}
