//! Bioformer architecture hyper-parameters.

use bioformer_semg::{CHANNELS, GESTURE_CLASSES, WINDOW};

/// Hyper-parameters of a Bioformer (paper §III-A).
///
/// The two reference points the paper benchmarks are
/// [`BioformerConfig::bio1`] (one layer of eight heads) and
/// [`BioformerConfig::bio2`] (two layers of two heads); all other fields
/// are common: 64-wide token embedding produced by a **non-overlapping**
/// 1-D convolution (stride = filter width), per-head dimension `P = 32`,
/// FFN hidden width 128, and a learned class token appended to the
/// sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct BioformerConfig {
    /// Input electrode count (DB6: 14).
    pub channels: usize,
    /// Input window length in samples (DB6: 300 = 150 ms @ 2 kHz).
    pub window: usize,
    /// Output classes (DB6: 8).
    pub classes: usize,
    /// Token embedding width `C` (paper: 64).
    pub embed: usize,
    /// Patch-embedding filter width ∈ {1, 5, 10, 20, 30} in the paper's
    /// sweep; sets the token count `N = window / filter`.
    pub filter: usize,
    /// Attention heads per layer `H`.
    pub heads: usize,
    /// Number of encoder layers (depth `d`).
    pub depth: usize,
    /// Per-head projection width `P` (paper: 32).
    pub head_dim: usize,
    /// FFN hidden width (paper: 128).
    pub hidden: usize,
    /// Dropout probability inside encoder blocks (0 disables).
    pub dropout: f32,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for BioformerConfig {
    fn default() -> Self {
        BioformerConfig::bio1()
    }
}

impl BioformerConfig {
    /// Fields shared by every Bioformer in the paper.
    fn base() -> Self {
        BioformerConfig {
            channels: CHANNELS,
            window: WINDOW,
            classes: GESTURE_CLASSES,
            embed: 64,
            filter: 10,
            heads: 8,
            depth: 1,
            head_dim: 32,
            hidden: 128,
            dropout: 0.1,
            seed: 0xB10F,
        }
    }

    /// **Bio1**: 8 heads × depth 1 — the paper's most accurate Bioformer
    /// (65.73 % after pre-training; 3.3 MMAC, 94.2 kB at filter 10).
    pub fn bio1() -> Self {
        BioformerConfig {
            heads: 8,
            depth: 1,
            ..Self::base()
        }
    }

    /// **Bio2**: 2 heads × depth 2 — the paper's lightest Pareto Bioformer
    /// (2.5 MMAC, 78.3 kB at filter 10).
    pub fn bio2() -> Self {
        BioformerConfig {
            heads: 2,
            depth: 2,
            ..Self::base()
        }
    }

    /// Returns a copy with a different patch filter width (the Fig. 4
    /// sweep: {1, 5, 10, 20, 30}).
    pub fn with_filter(mut self, filter: usize) -> Self {
        self.filter = filter;
        self
    }

    /// Returns a copy with a different init seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of patch tokens `N` produced by the front-end
    /// (`window / filter`, non-overlapping).
    pub fn tokens(&self) -> usize {
        (self.window - self.filter) / self.filter + 1
    }

    /// Sequence length seen by the encoder (`N + 1` for the class token).
    pub fn seq_len(&self) -> usize {
        self.tokens() + 1
    }

    /// Total per-layer projection width `H·P`.
    pub fn inner(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.filter == 0 || self.filter > self.window {
            return Err(format!(
                "filter {} must be in 1..={}",
                self.filter, self.window
            ));
        }
        if !self.window.is_multiple_of(self.filter) {
            return Err(format!(
                "window {} must be a multiple of filter {} (non-overlapping patches)",
                self.window, self.filter
            ));
        }
        if self.heads == 0 || self.depth == 0 || self.embed == 0 || self.head_dim == 0 {
            return Err("heads, depth, embed and head_dim must be positive".into());
        }
        if self.classes < 2 {
            return Err("need at least two classes".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0,1)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        BioformerConfig::bio1().validate().unwrap();
        BioformerConfig::bio2().validate().unwrap();
        for f in [1usize, 5, 10, 20, 30] {
            BioformerConfig::bio1().with_filter(f).validate().unwrap();
        }
    }

    #[test]
    fn token_counts_match_paper() {
        // §IV-B: "the resulting input sequence length is 30 instead of 60
        // and 300 for filter sizes 10, 5 and 1".
        assert_eq!(BioformerConfig::bio1().with_filter(1).tokens(), 300);
        assert_eq!(BioformerConfig::bio1().with_filter(5).tokens(), 60);
        assert_eq!(BioformerConfig::bio1().with_filter(10).tokens(), 30);
        assert_eq!(BioformerConfig::bio1().with_filter(20).tokens(), 15);
        assert_eq!(BioformerConfig::bio1().with_filter(30).tokens(), 10);
    }

    #[test]
    fn seq_len_includes_class_token() {
        assert_eq!(BioformerConfig::bio1().seq_len(), 31);
    }

    #[test]
    fn inner_widths() {
        assert_eq!(BioformerConfig::bio1().inner(), 256);
        assert_eq!(BioformerConfig::bio2().inner(), 64);
    }

    #[test]
    fn invalid_filter_rejected() {
        assert!(BioformerConfig::bio1().with_filter(7).validate().is_err());
        assert!(BioformerConfig::bio1().with_filter(0).validate().is_err());
        assert!(BioformerConfig::bio1().with_filter(301).validate().is_err());
    }
}
