//! The paper's primary contribution: the **Bioformer** tiny-transformer
//! family for sEMG gesture recognition, with the TEMPONet TCN baseline, the
//! two-step training protocol and complexity accounting.
//!
//! * [`config`] — architecture hyper-parameters and the paper's two
//!   reference configs (Bio1 `h=8,d=1`, Bio2 `h=2,d=2`).
//! * [`bioformer`] — the model: non-overlapping 1D-conv patch embedding →
//!   class token → MHSA encoder block(s) → linear head.
//! * [`temponet`] — a TEMPONet-like temporal convolutional baseline
//!   (Zanghieri et al. 2019), ≈0.5 M params / ≈15 MMAC.
//! * [`waveformer`] — a WaveFormer-like model-zoo variant: fixed Haar
//!   wavelet-packet front-end → patch conv → transformer encoder.
//! * [`descriptor`] — a kernel-level description of each network, shared by
//!   the complexity counters and the GAP8 deployment model.
//! * [`complexity`] — analytic MAC/parameter counts (validated against the
//!   paper's Table I in the test-suite).
//! * [`protocol`] — standard subject-specific training and the paper's
//!   inter-subject pre-training + fine-tuning (§III-B).
//! * [`evaluate`] — per-session accuracy sweeps and confusion matrices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bioformer;
pub mod complexity;
pub mod config;
pub mod descriptor;
pub mod evaluate;
pub mod protocol;
pub mod temponet;
pub mod waveformer;

pub use bioformer::Bioformer;
pub use config::BioformerConfig;
pub use descriptor::{LayerDesc, NetworkDescriptor};
pub use temponet::TempoNet;
pub use waveformer::WaveFormer;
