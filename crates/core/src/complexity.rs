//! Analytic complexity accounting (MACs, parameters, deployed memory).
//!
//! Thin veneer over [`crate::descriptor`]; used by the Fig. 5 Pareto
//! harness and the GAP8 deployment model. The numbers are validated against
//! the paper's Table I in the descriptor test-suite.

use crate::config::BioformerConfig;
use crate::descriptor::{bioformer_descriptor, temponet_descriptor};
use std::fmt;

/// Inference complexity of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Complexity {
    /// Multiply-accumulate operations per inference.
    pub macs: u64,
    /// Trainable parameters.
    pub params: u64,
    /// Deployed weight memory in bytes (int8 weights, int32 biases).
    pub memory_bytes: u64,
}

impl Complexity {
    /// MACs in millions.
    pub fn mmacs(&self) -> f64 {
        self.macs as f64 / 1e6
    }

    /// Memory in kibibytes.
    pub fn memory_kb(&self) -> f64 {
        self.memory_bytes as f64 / 1024.0
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} MMAC, {} params, {:.1} kB",
            self.mmacs(),
            self.params,
            self.memory_kb()
        )
    }
}

/// Complexity of a Bioformer configuration.
///
/// # Panics
///
/// Panics if the config fails validation.
pub fn of_bioformer(cfg: &BioformerConfig) -> Complexity {
    let d = bioformer_descriptor(cfg);
    Complexity {
        macs: d.macs(),
        params: d.params(),
        memory_bytes: d.memory_bytes(),
    }
}

/// Complexity of the TEMPONet baseline.
pub fn of_temponet() -> Complexity {
    let d = temponet_descriptor();
    Complexity {
        macs: d.macs(),
        params: d.params(),
        memory_bytes: d.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_units() {
        let c = of_bioformer(&BioformerConfig::bio1());
        let s = c.to_string();
        assert!(s.contains("MMAC") && s.contains("kB"));
    }

    #[test]
    fn larger_filter_fewer_macs_more_params() {
        // Fig. 4 caption: "Increasing filter dimension reduces both the
        // number of parameters and the number of operations" — operations
        // fall because the token count shrinks; the *conv layer's* params
        // grow but attention dominates ops.
        let f10 = of_bioformer(&BioformerConfig::bio1().with_filter(10));
        let f30 = of_bioformer(&BioformerConfig::bio1().with_filter(30));
        assert!(f30.macs < f10.macs);
    }

    #[test]
    fn filter_sweep_monotone_in_macs() {
        let mut last = u64::MAX;
        for f in [1usize, 5, 10, 20, 30] {
            let c = of_bioformer(&BioformerConfig::bio1().with_filter(f));
            assert!(c.macs < last, "MACs must fall as filter grows");
            last = c.macs;
        }
    }

    #[test]
    fn temponet_dominated() {
        let bio = of_bioformer(&BioformerConfig::bio1());
        let tempo = of_temponet();
        assert!(tempo.macs > 4 * bio.macs);
        assert!(tempo.memory_bytes > 4 * bio.memory_bytes);
    }
}
