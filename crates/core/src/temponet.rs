//! TEMPONet-like temporal convolutional baseline.
//!
//! The paper compares Bioformers against **TEMPONet** (Zanghieri et al.,
//! "Robust real-time embedded EMG recognition framework using temporal
//! convolutional networks on a multicore IoT processor", TBioCAS 2019):
//! a TCN of three blocks — two dilated temporal convolutions plus a strided
//! down-sampling convolution each, channel widths 32/64/128, dilations
//! 2/4/8 — followed by a small fully-connected classifier.
//!
//! This reconstruction matches the published scale (paper Table I: 461 kB
//! int8, 16 MMAC; ours ≈435 kB / ≈15.3 MMAC — the original's batch-norm
//! layers are folded and its exact FC sizing is not public). The
//! original's BatchNorm is replaced by per-sample [`GroupNorm1d`]
//! (`groups = 1`): same deep-stack optimisation benefit, no running
//! statistics to synchronise across data-parallel training shards, and at
//! inference it folds into the convolutions exactly like BatchNorm, so
//! deployed MACs/memory are unchanged.

use bioformer_nn::{
    AvgPool1d, Conv1d, Dropout, GroupNorm1d, InferForward, Linear, Model, Param, Relu,
};
use bioformer_semg::{CHANNELS, GESTURE_CLASSES, WINDOW};
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::conv::Conv1dSpec;
use bioformer_tensor::tune::GemmShape;
use bioformer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One TCN block: two dilated same-length convolutions and a strided
/// down-sampling convolution, each followed by normalisation and ReLU.
/// (The original uses BatchNorm; see [`GroupNorm1d`] for why this
/// reconstruction normalises per sample — at inference both fold into the
/// convolution, so deployed complexity is identical.)
#[derive(Debug, Clone)]
struct TcnBlock {
    conv0: Conv1d,
    norm0: GroupNorm1d,
    relu0: Relu,
    conv1: Conv1d,
    norm1: GroupNorm1d,
    relu1: Relu,
    down: Conv1d,
    norm2: GroupNorm1d,
    relu2: Relu,
}

impl TcnBlock {
    fn new(name: &str, in_ch: usize, out_ch: usize, dilation: usize, rng: &mut impl Rng) -> Self {
        let same = Conv1dSpec {
            stride: 1,
            padding: dilation,
            dilation,
        };
        let down = Conv1dSpec {
            stride: 2,
            padding: 2,
            dilation: 1,
        };
        TcnBlock {
            conv0: Conv1d::new(&format!("{name}.conv0"), in_ch, out_ch, 3, same, rng),
            norm0: GroupNorm1d::new(&format!("{name}.norm0"), out_ch, 4),
            relu0: Relu::new(),
            conv1: Conv1d::new(&format!("{name}.conv1"), out_ch, out_ch, 3, same, rng),
            norm1: GroupNorm1d::new(&format!("{name}.norm1"), out_ch, 4),
            relu1: Relu::new(),
            down: Conv1d::new(&format!("{name}.down"), out_ch, out_ch, 5, down, rng),
            norm2: GroupNorm1d::new(&format!("{name}.norm2"), out_ch, 4),
            relu2: Relu::new(),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        let h = self.conv0.forward(x, true);
        let h = self.relu0.forward(&self.norm0.forward(&h, true), true);
        let h = self.conv1.forward(&h, true);
        let h = self.relu1.forward(&self.norm1.forward(&h, true), true);
        let h = self.down.forward(&h, true);
        self.relu2.forward(&self.norm2.forward(&h, true), true)
    }

    fn forward_infer(&self, x: &Tensor) -> Tensor {
        let h = self.conv0.forward_infer(x);
        let h = self.relu0.forward_infer(&self.norm0.forward_infer(&h));
        let h = self.conv1.forward_infer(&h);
        let h = self.relu1.forward_infer(&self.norm1.forward_infer(&h));
        let h = self.down.forward_infer(&h);
        self.relu2.forward_infer(&self.norm2.forward_infer(&h))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d = self.norm2.backward(&self.relu2.backward(dy));
        let d = self.down.backward(&d);
        let d = self.norm1.backward(&self.relu1.backward(&d));
        let d = self.conv1.backward(&d);
        let d = self.norm0.backward(&self.relu0.backward(&d));
        self.conv0.backward(&d)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv0.visit_params(f);
        self.norm0.visit_params(f);
        self.conv1.visit_params(f);
        self.norm1.visit_params(f);
        self.down.visit_params(f);
        self.norm2.visit_params(f);
    }

    fn clear_cache(&mut self) {
        self.conv0.clear_cache();
        self.norm0.clear_cache();
        self.relu0.clear_cache();
        self.conv1.clear_cache();
        self.norm1.clear_cache();
        self.relu1.clear_cache();
        self.down.clear_cache();
        self.norm2.clear_cache();
        self.relu2.clear_cache();
    }

    fn set_backend(&mut self, backend: &Arc<dyn ComputeBackend>) {
        self.conv0.set_backend(backend.clone());
        self.conv1.set_backend(backend.clone());
        self.down.set_backend(backend.clone());
    }

    /// The im2col GEMM shapes of the block's three convolutions
    /// (`m = 0` wildcard: the row count is the output length, which
    /// depends on batch slicing).
    fn gemm_shapes(&self, out: &mut Vec<GemmShape>) {
        for conv in [&self.conv0, &self.conv1, &self.down] {
            out.push(GemmShape::fp32(
                0,
                conv.in_channels() * conv.kernel(),
                conv.out_channels(),
            ));
        }
    }
}

/// The TEMPONet-like baseline model.
///
/// # Example
///
/// ```
/// use bioformer_core::TempoNet;
/// use bioformer_nn::Model;
/// use bioformer_tensor::Tensor;
///
/// let mut net = TempoNet::new(42);
/// let logits = net.forward(&Tensor::zeros(&[1, 14, 300]), false);
/// assert_eq!(logits.dims(), &[1, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct TempoNet {
    blocks: Vec<TcnBlock>,
    pool: AvgPool1d,
    fc1: Linear,
    relu_fc1: Relu,
    drop1: Dropout,
    fc2: Linear,
    relu_fc2: Relu,
    drop2: Dropout,
    head: Linear,
    fwd_shape: Option<(usize, usize, usize)>,
    backend: Arc<dyn ComputeBackend>,
}

/// Flattened feature width entering the classifier: 128 channels × 19
/// time steps (three stride-2 stages on a 300-sample window, then a 2×
/// average pool).
pub const TEMPONET_FLAT: usize = 128 * 19;

impl TempoNet {
    /// Builds the baseline with weights initialised from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = vec![
            TcnBlock::new("b0", CHANNELS, 32, 2, &mut rng),
            TcnBlock::new("b1", 32, 64, 4, &mut rng),
            TcnBlock::new("b2", 64, 128, 8, &mut rng),
        ];
        let drop_seed = rng.gen::<u64>();
        TempoNet {
            blocks,
            pool: AvgPool1d::new(2, 2),
            fc1: Linear::new("fc1", TEMPONET_FLAT, 96, &mut rng),
            relu_fc1: Relu::leaky(0.1),
            drop1: Dropout::new(0.3, drop_seed),
            fc2: Linear::new("fc2", 96, 48, &mut rng),
            relu_fc2: Relu::leaky(0.1),
            drop2: Dropout::new(0.3, drop_seed.wrapping_add(1)),
            head: Linear::new("head", 48, GESTURE_CLASSES, &mut rng),
            fwd_shape: None,
            backend: default_backend(),
        }
    }

    /// Installs a compute backend on every GEMM-bearing layer (all nine
    /// convolutions and the three classifier linears). Packed weights are
    /// re-built under the new backend's plans on next use.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        for blk in &mut self.blocks {
            blk.set_backend(&backend);
        }
        self.fc1.set_backend(backend.clone());
        self.fc2.set_backend(backend.clone());
        self.head.set_backend(backend.clone());
        self.backend = backend;
    }

    /// The compute backend the inference path routes through.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// One-line description of the installed backend (tuning state
    /// included) — surfaced through `EngineStats`.
    pub fn compute_report(&self) -> String {
        self.backend.describe()
    }

    /// Every distinct GEMM shape the inference path executes — the
    /// autotuner's work-list (all `m = 0` wildcards: conv output lengths
    /// and batch sizes both vary the row count).
    pub fn gemm_shapes(&self) -> Vec<GemmShape> {
        let mut shapes = Vec::new();
        for blk in &self.blocks {
            blk.gemm_shapes(&mut shapes);
        }
        shapes.push(GemmShape::fp32(0, TEMPONET_FLAT, 96));
        shapes.push(GemmShape::fp32(0, 96, 48));
        shapes.push(GemmShape::fp32(0, 48, GESTURE_CLASSES));
        shapes
    }
}

impl InferForward for TempoNet {
    /// Eval-mode forward through `&self` (dropout layers are the identity at
    /// inference and are skipped): bit-identical logits to
    /// [`Model::forward`]`(x, false)`, no cache writes.
    fn forward_infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims()[1], CHANNELS, "TempoNet: channel mismatch");
        assert_eq!(x.dims()[2], WINDOW, "TempoNet: window mismatch");
        let mut h = x.clone();
        for blk in &self.blocks {
            h = blk.forward_infer(&h);
        }
        let h = self.pool.forward_infer(&h);
        let (b, c, l) = (h.dims()[0], h.dims()[1], h.dims()[2]);
        let flat = h.reshape(&[b, c * l]);
        let f = self.relu_fc1.forward_infer(&self.fc1.forward_infer(&flat));
        let f = self.relu_fc2.forward_infer(&self.fc2.forward_infer(&f));
        self.head.forward_infer(&f)
    }
}

impl Model for TempoNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        assert_eq!(x.dims()[1], CHANNELS, "TempoNet: channel mismatch");
        assert_eq!(x.dims()[2], WINDOW, "TempoNet: window mismatch");
        let mut h = x.clone();
        for blk in &mut self.blocks {
            h = blk.forward(&h, true);
        }
        let h = self.pool.forward(&h, true);
        let (b, c, l) = (h.dims()[0], h.dims()[1], h.dims()[2]);
        self.fwd_shape = Some((b, c, l));
        let flat = h.reshape(&[b, c * l]);
        let f = self.relu_fc1.forward(&self.fc1.forward(&flat, true), true);
        let f = self.drop1.forward(&f, true);
        let f = self.relu_fc2.forward(&self.fc2.forward(&f, true), true);
        let f = self.drop2.forward(&f, true);
        self.head.forward(&f, true)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        let (b, c, l) = self
            .fwd_shape
            .expect("TempoNet: backward before training-mode forward");
        let d = self.head.backward(dlogits);
        let d = self.drop2.backward(&d);
        let d = self.fc2.backward(&self.relu_fc2.backward(&d));
        let d = self.drop1.backward(&d);
        let d = self.fc1.backward(&self.relu_fc1.backward(&d));
        let d = d.reshape(&[b, c, l]);
        let mut d = self.pool.backward(&d);
        for blk in self.blocks.iter_mut().rev() {
            d = blk.backward(&d);
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
        self.head.visit_params(f);
    }

    fn clear_cache(&mut self) {
        for blk in &mut self.blocks {
            blk.clear_cache();
        }
        self.pool.clear_cache();
        self.fc1.clear_cache();
        self.relu_fc1.clear_cache();
        self.drop1.clear_cache();
        self.fc2.clear_cache();
        self.relu_fc2.clear_cache();
        self.drop2.clear_cache();
        self.head.clear_cache();
        self.fwd_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::temponet_descriptor;

    #[test]
    fn forward_shape() {
        let mut net = TempoNet::new(0);
        let x = Tensor::zeros(&[2, CHANNELS, WINDOW]);
        let y = net.forward(&x, false);
        assert_eq!(y.dims(), &[2, GESTURE_CLASSES]);
    }

    #[test]
    fn param_count_matches_descriptor_plus_foldable_norms() {
        let mut net = TempoNet::new(1);
        // The descriptor counts deployed parameters; InstanceNorm affine
        // params (2 per channel, 3 norms per block) fold into the convs at
        // inference and do not ship.
        let norm_params: usize = 2 * 3 * (32 + 64 + 128);
        assert_eq!(
            net.num_params(),
            temponet_descriptor().params() as usize + norm_params
        );
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut net = TempoNet::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::from_fn(&[2, CHANNELS, WINDOW], |_| rng.gen_range(-1.0..1.0));
        let y = net.forward(&x, true);
        net.zero_grad();
        net.backward(&Tensor::ones(y.dims()));
        let mut nonzero = 0usize;
        let mut total = 0usize;
        net.visit_params(&mut |p| {
            total += 1;
            if p.grad.abs_max() > 0.0 {
                nonzero += 1;
            }
        });
        assert_eq!(nonzero, total, "{nonzero}/{total} params received gradient");
    }

    #[test]
    fn forward_infer_matches_eval_forward_exactly() {
        let mut net = TempoNet::new(5);
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::from_fn(&[2, CHANNELS, WINDOW], |_| rng.gen_range(-1.0..1.0));
        let eval = net.forward(&x, false);
        let infer = (&net as &TempoNet).forward_infer(&x);
        assert!(infer.allclose(&eval, 0.0), "infer path diverges from eval");
    }

    #[test]
    fn deterministic_inference_given_seed() {
        let mut a = TempoNet::new(7);
        let mut b = TempoNet::new(7);
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::from_fn(&[1, CHANNELS, WINDOW], |_| rng.gen_range(-1.0..1.0));
        assert!(a.forward(&x, false).allclose(&b.forward(&x, false), 0.0));
    }

    #[test]
    fn temponet_is_much_larger_than_bioformer() {
        let mut tempo = TempoNet::new(0);
        let mut bio = crate::Bioformer::new(&crate::BioformerConfig::bio1());
        let ratio = tempo.num_params() as f64 / bio.num_params() as f64;
        assert!(
            ratio > 3.5,
            "param ratio {ratio} should be large (paper: 4.9×)"
        );
    }
}
