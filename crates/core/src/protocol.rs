//! The paper's training protocols (§III-B).
//!
//! Two entry points, both generic over the model (Bioformer or TEMPONet —
//! the paper runs the protocol on both in Fig. 2):
//!
//! * [`run_standard`] — subject-specific training only: fit on the
//!   subject's sessions 1–5, test on 6–10.
//! * [`run_pretrained`] — the paper's novel two-step protocol: first an
//!   **inter-subject pre-training** on the training sessions of the nine
//!   other subjects (Adam, linear LR warm-up), then subject-specific
//!   fine-tuning (fixed LR, 10× decay partway), then the same session
//!   split evaluation.
//!
//! Epoch counts are scaled down from the paper's 100+20 so runs finish on
//! CPU; [`ProtocolConfig::paper`] restores the published constants.

use crate::evaluate::{mean_accuracy, per_session_accuracy, SessionAccuracy};
use bioformer_nn::optim::Adam;
use bioformer_nn::schedule::LrSchedule;
use bioformer_nn::trainer::{train, AugmentConfig, EpochStats, TrainConfig};
use bioformer_nn::Model;
use bioformer_semg::{NinaproDb6, Normalizer};

/// Hyper-parameters of the training protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Epochs of inter-subject pre-training (paper: 100).
    pub pretrain_epochs: usize,
    /// Epochs of subject-specific fine-tuning (paper: 20).
    pub finetune_epochs: usize,
    /// Epochs for the *standard* (no pre-training) baseline protocol.
    pub standard_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// LR schedule for pre-training (paper: linear warm-up 1e-7 → 5e-4).
    pub pretrain_schedule: LrSchedule,
    /// LR schedule for fine-tuning (paper: 1e-4, ×0.1 after 10 epochs).
    pub finetune_schedule: LrSchedule,
    /// LR schedule for standard training.
    pub standard_schedule: LrSchedule,
    /// Shuffle seed.
    pub seed: u64,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Training-time augmentation (substitutes for the data abundance of
    /// the real recordings; see [`AugmentConfig`]).
    pub augment: Option<AugmentConfig>,
}

impl Default for ProtocolConfig {
    /// CPU-scaled defaults: the paper's schedule *shapes* with fewer epochs
    /// and a proportionally higher plateau (fewer steps over less data need
    /// a larger step size to reach the same optimisation distance).
    fn default() -> Self {
        ProtocolConfig {
            pretrain_epochs: 8,
            finetune_epochs: 6,
            standard_epochs: 12,
            batch_size: 32,
            pretrain_schedule: LrSchedule::LinearWarmup {
                start: 1e-6,
                peak: 1e-3,
                warmup_steps: 60,
            },
            finetune_schedule: LrSchedule::StepDecay {
                initial: 3e-4,
                factor: 0.1,
                at_epoch: 4,
            },
            standard_schedule: LrSchedule::LinearWarmup {
                start: 1e-6,
                peak: 1e-3,
                warmup_steps: 40,
            },
            seed: 0x5EED,
            eval_batch: 256,
            augment: Some(AugmentConfig::default()),
        }
    }
}

impl ProtocolConfig {
    /// The paper's exact constants (§III-B): 100 pre-training epochs with
    /// warm-up 1e-7 → 5e-4, 20 fine-tuning epochs at 1e-4 with 10× decay
    /// after 10. Only practical with `--full` budgets.
    pub fn paper() -> Self {
        ProtocolConfig {
            pretrain_epochs: 100,
            finetune_epochs: 20,
            standard_epochs: 100,
            batch_size: 64,
            pretrain_schedule: LrSchedule::paper_pretrain(2000),
            finetune_schedule: LrSchedule::paper_finetune(),
            standard_schedule: LrSchedule::paper_pretrain(2000),
            ..ProtocolConfig::default()
        }
    }

    /// Seconds-scale configuration for tests.
    pub fn quick() -> Self {
        ProtocolConfig {
            pretrain_epochs: 4,
            finetune_epochs: 4,
            standard_epochs: 8,
            batch_size: 16,
            ..ProtocolConfig::default()
        }
    }
}

/// Everything measured for one subject under one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectOutcome {
    /// Subject index.
    pub subject: usize,
    /// Accuracy on each held-out test session.
    pub per_session: Vec<SessionAccuracy>,
    /// Mean over test sessions (the paper's headline per-subject number).
    pub overall: f32,
    /// Training-set statistics per epoch (last phase only).
    pub train_stats: Vec<EpochStats>,
}

fn train_cfg(
    epochs: usize,
    schedule: LrSchedule,
    batch: usize,
    seed: u64,
    augment: Option<AugmentConfig>,
) -> TrainConfig {
    TrainConfig {
        batch_size: batch,
        epochs,
        schedule,
        shuffle_seed: seed,
        shards: 0,
        max_grad_norm: Some(5.0),
        augment,
    }
}

/// Standard subject-specific protocol: train on the subject's first-half
/// sessions, evaluate per held-out session.
pub fn run_standard<M: Model>(
    model: &mut M,
    db: &NinaproDb6,
    subject: usize,
    cfg: &ProtocolConfig,
) -> SubjectOutcome {
    let train_raw = db.train_dataset(subject);
    let normalizer = Normalizer::fit(&train_raw);
    let train_data = normalizer.apply(&train_raw);
    drop(train_raw);

    let mut opt = Adam::default();
    let stats = train(
        model,
        &mut opt,
        train_data.x(),
        train_data.labels(),
        &train_cfg(
            cfg.standard_epochs,
            cfg.standard_schedule.clone(),
            cfg.batch_size,
            cfg.seed ^ subject as u64,
            cfg.augment,
        ),
    );
    let per_session = per_session_accuracy(model, db, subject, &normalizer, cfg.eval_batch);
    SubjectOutcome {
        subject,
        overall: mean_accuracy(&per_session),
        per_session,
        train_stats: stats,
    }
}

/// The paper's two-step protocol: inter-subject pre-training on the other
/// subjects' training sessions, then subject-specific fine-tuning.
pub fn run_pretrained<M: Model>(
    model: &mut M,
    db: &NinaproDb6,
    subject: usize,
    cfg: &ProtocolConfig,
) -> SubjectOutcome {
    // Phase 1: inter-subject pre-training.
    let pre_raw = db.pretrain_dataset(subject);
    let pre_norm = Normalizer::fit(&pre_raw);
    let pre_data = pre_norm.apply(&pre_raw);
    drop(pre_raw);
    let mut opt = Adam::default();
    let _ = train(
        model,
        &mut opt,
        pre_data.x(),
        pre_data.labels(),
        &train_cfg(
            cfg.pretrain_epochs,
            cfg.pretrain_schedule.clone(),
            cfg.batch_size,
            cfg.seed ^ 0xA5A5 ^ subject as u64,
            cfg.augment,
        ),
    );
    drop(pre_data);

    // Phase 2: subject-specific fine-tuning (fresh optimizer state, as when
    // reloading a checkpoint into a new training run).
    let train_raw = db.train_dataset(subject);
    let normalizer = Normalizer::fit(&train_raw);
    let train_data = normalizer.apply(&train_raw);
    drop(train_raw);
    let mut opt2 = Adam::default();
    let stats = train(
        model,
        &mut opt2,
        train_data.x(),
        train_data.labels(),
        &train_cfg(
            cfg.finetune_epochs,
            cfg.finetune_schedule.clone(),
            cfg.batch_size,
            cfg.seed ^ subject as u64,
            cfg.augment,
        ),
    );
    let per_session = per_session_accuracy(model, db, subject, &normalizer, cfg.eval_batch);
    SubjectOutcome {
        subject,
        overall: mean_accuracy(&per_session),
        per_session,
        train_stats: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bioformer::Bioformer;
    use crate::config::BioformerConfig;
    use bioformer_semg::DatasetSpec;

    fn tiny_db() -> NinaproDb6 {
        NinaproDb6::generate(&DatasetSpec::tiny())
    }

    fn tiny_model() -> Bioformer {
        // Small but real Bioformer: fewer heads, filter 30 → 10 tokens.
        let cfg = BioformerConfig {
            heads: 2,
            depth: 1,
            head_dim: 8,
            hidden: 32,
            filter: 30,
            dropout: 0.0,
            ..BioformerConfig::bio1()
        };
        Bioformer::new(&cfg)
    }

    #[test]
    fn standard_protocol_runs_and_beats_chance() {
        let db = tiny_db();
        let mut model = tiny_model();
        let out = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
        assert_eq!(out.per_session.len(), db.spec().test_sessions().len());
        // 8 classes → chance = 12.5 %. Even 2 quick epochs must beat it.
        assert!(
            out.overall > 0.125,
            "accuracy {} not above chance",
            out.overall
        );
        assert!(!out.train_stats.is_empty());
    }

    #[test]
    fn pretrained_protocol_runs() {
        let db = tiny_db();
        let mut model = tiny_model();
        let out = run_pretrained(&mut model, &db, 0, &ProtocolConfig::quick());
        assert!(out.overall > 0.125, "accuracy {}", out.overall);
    }

    #[test]
    fn paper_config_has_published_constants() {
        let p = ProtocolConfig::paper();
        assert_eq!(p.pretrain_epochs, 100);
        assert_eq!(p.finetune_epochs, 20);
        assert_eq!(
            p.finetune_schedule,
            LrSchedule::StepDecay {
                initial: 1e-4,
                factor: 0.1,
                at_epoch: 10
            }
        );
    }
}
