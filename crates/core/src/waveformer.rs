//! WaveFormer-like wavelet front-end transformer (model-zoo variant).
//!
//! The zoo's third architecture family: instead of learning the
//! tokenisation (Bioformer's strided patch conv over raw samples), the
//! front-end is a **fixed Haar wavelet-packet filter bank** — the window is
//! decomposed into `2^ℓ` frequency sub-bands before a small patch conv and
//! transformer encoder see it:
//!
//! ```text
//! [B, 14, 300] ─HaarWavelet1d(ℓ=2)─▶ [B, 56, 75]
//!     ─Conv1d(k=5, stride=5)─▶ [B, 32, 15] ─transpose─▶ [B, 15, 32]
//!     ─TransformerBlock─▶ mean over tokens ─▶ LayerNorm ─▶ Linear(32→8)
//! ```
//!
//! Rationale (PAPERS.md: WaveFormer / TEMGNet): sEMG discriminates largely
//! in the frequency envelope, and a parameter-free orthonormal front-end
//! (a) shrinks the learned patching problem — the conv reads 75-sample
//! band-major rows instead of 300 raw samples — and (b) preserves signal
//! energy exactly, keeping activation ranges stable for int8 deployment.
//! At ~19 k parameters the model is ~4× smaller than Bio1, which is what
//! makes it an interesting A/B candidate rather than a strict replacement.

use bioformer_nn::Conv1d;
use bioformer_nn::{
    HaarWavelet1d, InferForward, LayerNorm, Linear, Model, Param, TransformerBlock,
};
use bioformer_semg::{CHANNELS, GESTURE_CLASSES, WINDOW};
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::conv::Conv1dSpec;
use bioformer_tensor::tune::GemmShape;
use bioformer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Wavelet-packet depth: `[14, 300] → [56, 75]`.
pub const WAVEFORMER_LEVELS: usize = 2;
/// Patch width (and stride) of the band-major conv: 75 / 5 = 15 tokens.
pub const WAVEFORMER_PATCH: usize = 5;
/// Embedding width of the encoder.
pub const WAVEFORMER_EMBED: usize = 32;
/// Token count entering the encoder.
pub const WAVEFORMER_TOKENS: usize = (WINDOW >> WAVEFORMER_LEVELS) / WAVEFORMER_PATCH;

const HEADS: usize = 2;
const HEAD_DIM: usize = 16;
const HIDDEN: usize = 64;

/// The WaveFormer-like zoo variant.
///
/// # Example
///
/// ```
/// use bioformer_core::WaveFormer;
/// use bioformer_nn::Model;
/// use bioformer_tensor::Tensor;
///
/// let mut net = WaveFormer::new(42);
/// let logits = net.forward(&Tensor::zeros(&[1, 14, 300]), false);
/// assert_eq!(logits.dims(), &[1, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct WaveFormer {
    dwt: HaarWavelet1d,
    patch: Conv1d,
    block: TransformerBlock,
    ln_final: LayerNorm,
    head: Linear,
    fwd_shape: Option<(usize, usize)>,
    backend: Arc<dyn ComputeBackend>,
}

impl WaveFormer {
    /// Builds the variant with weights initialised from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bands = CHANNELS << WAVEFORMER_LEVELS;
        WaveFormer {
            dwt: HaarWavelet1d::new(WAVEFORMER_LEVELS),
            patch: Conv1d::new(
                "wf.patch",
                bands,
                WAVEFORMER_EMBED,
                WAVEFORMER_PATCH,
                Conv1dSpec::patch(WAVEFORMER_PATCH),
                &mut rng,
            ),
            block: TransformerBlock::new(
                "wf.block0",
                WAVEFORMER_EMBED,
                HEADS,
                HEAD_DIM,
                HIDDEN,
                0.0,
                &mut rng,
            ),
            ln_final: LayerNorm::new("wf.ln_final", WAVEFORMER_EMBED),
            head: Linear::new("wf.head", WAVEFORMER_EMBED, GESTURE_CLASSES, &mut rng),
            fwd_shape: None,
            backend: default_backend(),
        }
    }

    /// Installs a compute backend on every GEMM-bearing layer.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.patch.set_backend(backend.clone());
        self.block.set_backend(backend.clone());
        self.head.set_backend(backend.clone());
        self.backend = backend;
    }

    /// The compute backend the inference path routes through.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// One-line description of the installed backend (tuning state
    /// included) — surfaced through `EngineStats`.
    pub fn compute_report(&self) -> String {
        self.backend.describe()
    }

    /// Every distinct GEMM shape the inference path executes — the
    /// autotuner's work-list (`m = 0` wildcards vary with batch size).
    pub fn gemm_shapes(&self) -> Vec<GemmShape> {
        let bands = CHANNELS << WAVEFORMER_LEVELS;
        let s = WAVEFORMER_TOKENS;
        let inner = HEADS * HEAD_DIM;
        vec![
            GemmShape::fp32(0, bands * WAVEFORMER_PATCH, WAVEFORMER_EMBED), // patch lowering
            GemmShape::fp32(0, WAVEFORMER_EMBED, inner),                    // wq / wk / wv
            GemmShape::fp32(s, HEAD_DIM, s),                                // per-head Q·Kᵀ
            GemmShape::fp32(s, s, HEAD_DIM),                                // per-head A·V
            GemmShape::fp32(0, inner, WAVEFORMER_EMBED),                    // wo
            GemmShape::fp32(0, WAVEFORMER_EMBED, HIDDEN),                   // fc1
            GemmShape::fp32(0, HIDDEN, WAVEFORMER_EMBED),                   // fc2
            GemmShape::fp32(0, WAVEFORMER_EMBED, GESTURE_CLASSES),          // head
        ]
    }

    /// Transposes conv output `[B, E, N]` into token-major `[B, N, E]`.
    fn tokenize(conv_out: &Tensor) -> Tensor {
        let (b, e, n) = (conv_out.dims()[0], conv_out.dims()[1], conv_out.dims()[2]);
        let mut tokens = Tensor::zeros(&[b, n, e]);
        let src = conv_out.data();
        let dst = tokens.data_mut();
        for bi in 0..b {
            for ei in 0..e {
                let row = &src[(bi * e + ei) * n..(bi * e + ei + 1) * n];
                for (ni, &v) in row.iter().enumerate() {
                    dst[(bi * n + ni) * e + ei] = v;
                }
            }
        }
        tokens
    }

    /// Transposes token gradients `[B, N, E]` back into conv layout.
    fn detokenize_grad(dtokens: &Tensor) -> Tensor {
        let (b, n, e) = (dtokens.dims()[0], dtokens.dims()[1], dtokens.dims()[2]);
        let mut dconv = Tensor::zeros(&[b, e, n]);
        let src = dtokens.data();
        let dst = dconv.data_mut();
        for bi in 0..b {
            for ni in 0..n {
                for ei in 0..e {
                    dst[(bi * e + ei) * n + ni] = src[(bi * n + ni) * e + ei];
                }
            }
        }
        dconv
    }

    /// Mean over the token axis: `[B, N, E] → [B, E]`.
    fn pool_tokens(tokens: &Tensor) -> Tensor {
        let (b, n, e) = (tokens.dims()[0], tokens.dims()[1], tokens.dims()[2]);
        let mut out = Tensor::zeros(&[b, e]);
        let src = tokens.data();
        let dst = out.data_mut();
        let inv = 1.0 / n as f32;
        for bi in 0..b {
            for ni in 0..n {
                let row = &src[(bi * n + ni) * e..(bi * n + ni + 1) * e];
                for (ei, &v) in row.iter().enumerate() {
                    dst[bi * e + ei] += v * inv;
                }
            }
        }
        out
    }

    fn check_input(x: &Tensor) {
        assert_eq!(x.dims()[1], CHANNELS, "WaveFormer: channel mismatch");
        assert_eq!(x.dims()[2], WINDOW, "WaveFormer: window mismatch");
    }
}

impl InferForward for WaveFormer {
    /// Eval-mode forward through `&self`: bit-identical logits to
    /// [`Model::forward`]`(x, false)`, no cache writes, so one instance can
    /// be shared across serving workers without cloning.
    fn forward_infer(&self, x: &Tensor) -> Tensor {
        Self::check_input(x);
        let bands = self.dwt.forward_infer(x);
        let conv_out = self.patch.forward_infer(&bands);
        let tokens = Self::tokenize(&conv_out);
        let tokens = self.block.forward_infer(&tokens);
        let pooled = Self::pool_tokens(&tokens);
        let normed = self.ln_final.forward_infer(&pooled);
        self.head.forward_infer(&normed)
    }
}

impl Model for WaveFormer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        Self::check_input(x);
        let bands = self.dwt.forward(x, true);
        let conv_out = self.patch.forward(&bands, true);
        let tokens = Self::tokenize(&conv_out);
        self.fwd_shape = Some((tokens.dims()[0], tokens.dims()[1]));
        let tokens = self.block.forward(&tokens, true);
        let pooled = Self::pool_tokens(&tokens);
        let normed = self.ln_final.forward(&pooled, true);
        self.head.forward(&normed, true)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        let (b, n) = self
            .fwd_shape
            .expect("WaveFormer: backward before training-mode forward");
        let e = WAVEFORMER_EMBED;
        let dnormed = self.head.backward(dlogits);
        let dpooled = self.ln_final.backward(&dnormed);
        // Mean-pool backward: broadcast /N into every token row.
        let mut dtokens = Tensor::zeros(&[b, n, e]);
        let inv = 1.0 / n as f32;
        for bi in 0..b {
            for ni in 0..n {
                for ei in 0..e {
                    dtokens.data_mut()[(bi * n + ni) * e + ei] = dpooled.data()[bi * e + ei] * inv;
                }
            }
        }
        let dtokens = self.block.backward(&dtokens);
        let dconv = Self::detokenize_grad(&dtokens);
        let dbands = self.patch.backward(&dconv);
        let _ = self.dwt.backward(&dbands);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.patch.visit_params(f);
        self.block.visit_params(f);
        self.ln_final.visit_params(f);
        self.head.visit_params(f);
    }

    fn clear_cache(&mut self) {
        self.dwt.clear_cache();
        self.patch.clear_cache();
        self.block.clear_cache();
        self.ln_final.clear_cache();
        self.head.clear_cache();
        self.fwd_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_shape() {
        let mut net = WaveFormer::new(0);
        let y = net.forward(&Tensor::zeros(&[2, CHANNELS, WINDOW]), false);
        assert_eq!(y.dims(), &[2, GESTURE_CLASSES]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn token_geometry() {
        assert_eq!(WAVEFORMER_TOKENS, 15);
        let dwt = HaarWavelet1d::new(WAVEFORMER_LEVELS);
        assert_eq!(dwt.out_channels(CHANNELS), 56);
        assert_eq!(dwt.out_len(WINDOW), 75);
    }

    #[test]
    fn is_smaller_than_bioformer() {
        let mut wf = WaveFormer::new(0);
        let mut bio = crate::Bioformer::new(&crate::BioformerConfig::bio1());
        assert!(
            wf.num_params() * 2 < bio.num_params(),
            "WaveFormer {} params should be well under Bio1's {}",
            wf.num_params(),
            bio.num_params()
        );
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut net = WaveFormer::new(2);
        let x = filled(&[2, CHANNELS, WINDOW], 3);
        let y = net.forward(&x, true);
        net.zero_grad();
        net.backward(&Tensor::ones(y.dims()));
        let mut nonzero = 0usize;
        let mut total = 0usize;
        net.visit_params(&mut |p| {
            total += 1;
            if p.grad.abs_max() > 0.0 {
                nonzero += 1;
            }
        });
        assert_eq!(nonzero, total, "{nonzero}/{total} params received gradient");
    }

    #[test]
    fn gradcheck_spot_samples() {
        let mut net = WaveFormer::new(4);
        let x = filled(&[1, CHANNELS, WINDOW], 5);
        let y = net.forward(&x, true);
        let dy = filled(y.dims(), 6);
        net.zero_grad();
        net.backward(&dy);
        let mut grads: Vec<(String, Tensor)> = Vec::new();
        net.visit_params(&mut |p| grads.push((p.name.clone(), p.grad.clone())));
        let objective =
            |m: &mut WaveFormer, x: &Tensor| -> f32 { m.forward(x, false).mul(&dy).sum() };
        let eps = 2e-3;
        for (pi, (name, grad)) in grads.iter().enumerate() {
            let idx = grad.len() / 2;
            let mut orig = 0.0;
            let probe = |m: &mut WaveFormer, v: f32, orig: &mut f32, set: bool| {
                let mut count = 0usize;
                m.visit_params(&mut |p| {
                    if count == pi {
                        if set {
                            *orig = p.value.data()[idx];
                        }
                        p.value.data_mut()[idx] = v;
                    }
                    count += 1;
                });
            };
            probe(&mut net, 0.0, &mut orig, true);
            probe(&mut net, orig + eps, &mut 0.0, false);
            let fp = objective(&mut net, &x);
            probe(&mut net, orig - eps, &mut 0.0, false);
            let fm = objective(&mut net, &x);
            probe(&mut net, orig, &mut 0.0, false);
            let num = (fp - fm) / (2.0 * eps);
            let got = grad.data()[idx];
            assert!(
                (num - got).abs() < 0.08 * (1.0 + num.abs().max(got.abs())),
                "{name}[{idx}]: fd={num} analytic={got}"
            );
        }
    }

    #[test]
    fn forward_infer_matches_eval_forward_exactly() {
        let mut net = WaveFormer::new(7);
        let x = filled(&[2, CHANNELS, WINDOW], 8);
        let _ = net.forward(&x, true);
        let eval = net.forward(&x, false);
        let infer = (&net as &WaveFormer).forward_infer(&x);
        assert!(infer.allclose(&eval, 0.0), "infer path diverges from eval");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WaveFormer::new(9);
        let mut b = WaveFormer::new(9);
        let x = filled(&[1, CHANNELS, WINDOW], 10);
        assert!(a.forward(&x, false).allclose(&b.forward(&x, false), 0.0));
    }
}
