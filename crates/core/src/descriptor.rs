//! Kernel-level network descriptions.
//!
//! A [`NetworkDescriptor`] lists every compute kernel a network executes for
//! one inference, with enough shape information to derive
//!
//! * analytic MAC/parameter counts ([`crate::complexity`]), and
//! * per-kernel cycle/memory costs on the GAP8 model (`bioformer-gap8`).
//!
//! Keeping a single source of truth for both guarantees the Pareto plots
//! (Fig. 5) and the deployment table (Table I) describe the same networks.

use crate::config::BioformerConfig;

/// One kernel invocation in a network's inference schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerDesc {
    /// 1-D convolution over `[in_ch, len]`.
    Conv1d {
        /// Kernel label (e.g. `"patch_embed"`).
        name: String,
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Kernel width.
        kernel: usize,
        /// Output length (after stride/padding).
        out_len: usize,
        /// Whether the deployment kernel can lower this conv to a SIMD
        /// GEMM (true for the Bioformer's non-overlapping patch embedding;
        /// false for dilated/strided temporal convolutions, which run at
        /// scalar MAC rate on GAP8 — the root of TEMPONet's lower
        /// MAC/cycle in Table I).
        gemm_lowered: bool,
    },
    /// Affine layer applied to `rows` independent positions.
    Linear {
        /// Kernel label.
        name: String,
        /// Positions the layer is applied to (sequence length or 1).
        rows: usize,
        /// Input width.
        in_features: usize,
        /// Output width.
        out_features: usize,
        /// Core-parallelism granularity: 1 = rows spread freely over all
        /// cores; `h > 1` = the kernel library splits work by attention
        /// head, capping usable cores at `h` (MCU-Transformer kernels,
        /// Burrello et al. COINS 2021).
        groups: usize,
    },
    /// Parameter-free matrix product (attention scores / attention×values).
    MatMul {
        /// Kernel label.
        name: String,
        /// Output rows (aggregated over heads).
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Output columns.
        n: usize,
        /// Head-parallelism granularity (see [`LayerDesc::Linear::groups`]).
        groups: usize,
    },
    /// Row-wise softmax.
    Softmax {
        /// Kernel label.
        name: String,
        /// Rows.
        rows: usize,
        /// Columns (keys).
        cols: usize,
        /// Head-parallelism granularity (see [`LayerDesc::Linear::groups`]).
        groups: usize,
    },
    /// Row-wise LayerNorm.
    LayerNorm {
        /// Kernel label.
        name: String,
        /// Rows.
        rows: usize,
        /// Feature width (contributes 2×width parameters).
        width: usize,
    },
    /// Element-wise GELU.
    Gelu {
        /// Kernel label.
        name: String,
        /// Element count.
        elems: usize,
    },
    /// Element-wise ReLU.
    Relu {
        /// Kernel label.
        name: String,
        /// Element count.
        elems: usize,
    },
    /// Average pooling over the time axis.
    AvgPool {
        /// Kernel label.
        name: String,
        /// Channels.
        channels: usize,
        /// Output length.
        out_len: usize,
        /// Pooling window.
        kernel: usize,
    },
    /// Element-wise residual addition.
    Add {
        /// Kernel label.
        name: String,
        /// Element count.
        elems: usize,
    },
    /// Learned embedding rows stored with the weights (e.g. class token).
    Embedding {
        /// Kernel label.
        name: String,
        /// Stored elements.
        elems: usize,
    },
}

impl LayerDesc {
    /// Kernel label.
    pub fn name(&self) -> &str {
        match self {
            LayerDesc::Conv1d { name, .. }
            | LayerDesc::Linear { name, .. }
            | LayerDesc::MatMul { name, .. }
            | LayerDesc::Softmax { name, .. }
            | LayerDesc::LayerNorm { name, .. }
            | LayerDesc::Gelu { name, .. }
            | LayerDesc::Relu { name, .. }
            | LayerDesc::AvgPool { name, .. }
            | LayerDesc::Add { name, .. }
            | LayerDesc::Embedding { name, .. } => name,
        }
    }

    /// Multiply-accumulate operations for one inference.
    pub fn macs(&self) -> u64 {
        match *self {
            LayerDesc::Conv1d {
                in_ch,
                out_ch,
                kernel,
                out_len,
                ..
            } => (out_ch * out_len * in_ch * kernel) as u64,
            LayerDesc::Linear {
                rows,
                in_features,
                out_features,
                ..
            } => (rows * in_features * out_features) as u64,
            LayerDesc::MatMul { m, k, n, .. } => (m * k * n) as u64,
            // Non-MAC kernels are accounted in cycles by the GAP8 model but
            // contribute 0 to the paper's MAC metric.
            _ => 0,
        }
    }

    /// Trainable parameters held by this kernel.
    pub fn params(&self) -> u64 {
        match *self {
            LayerDesc::Conv1d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => (out_ch * in_ch * kernel + out_ch) as u64,
            LayerDesc::Linear {
                in_features,
                out_features,
                ..
            } => (in_features * out_features + out_features) as u64,
            LayerDesc::LayerNorm { width, .. } => 2 * width as u64,
            LayerDesc::Embedding { elems, .. } => elems as u64,
            _ => 0,
        }
    }

    /// Deployed size in bytes under the paper's int8 scheme: int8 weights,
    /// int32 biases, LayerNorm/embedding parameters kept at 32/8 bit as in
    /// I-BERT.
    pub fn memory_bytes(&self) -> u64 {
        match *self {
            LayerDesc::Conv1d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => (out_ch * in_ch * kernel) as u64 + 4 * out_ch as u64,
            LayerDesc::Linear {
                in_features,
                out_features,
                ..
            } => (in_features * out_features) as u64 + 4 * out_features as u64,
            LayerDesc::LayerNorm { width, .. } => 8 * width as u64,
            LayerDesc::Embedding { elems, .. } => elems as u64,
            _ => 0,
        }
    }

    /// Output activation elements produced by this kernel (int8 bytes on
    /// device).
    pub fn output_elems(&self) -> u64 {
        match *self {
            LayerDesc::Conv1d {
                out_ch, out_len, ..
            } => (out_ch * out_len) as u64,
            LayerDesc::Linear {
                rows, out_features, ..
            } => (rows * out_features) as u64,
            LayerDesc::MatMul { m, n, .. } => (m * n) as u64,
            LayerDesc::Softmax { rows, cols, .. } => (rows * cols) as u64,
            LayerDesc::LayerNorm { rows, width, .. } => (rows * width) as u64,
            LayerDesc::Gelu { elems, .. }
            | LayerDesc::Relu { elems, .. }
            | LayerDesc::Add { elems, .. } => elems as u64,
            LayerDesc::AvgPool {
                channels, out_len, ..
            } => (channels * out_len) as u64,
            LayerDesc::Embedding { elems, .. } => elems as u64,
        }
    }
}

/// A network's complete inference schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDescriptor {
    /// Network label (e.g. `"Bioformer(h=8,d=1,f=10)"`).
    pub name: String,
    /// Kernels in execution order.
    pub layers: Vec<LayerDesc>,
}

impl NetworkDescriptor {
    /// Total MACs per inference.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(LayerDesc::macs).sum()
    }

    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(LayerDesc::params).sum()
    }

    /// Total deployed weight memory in bytes (int8 scheme).
    pub fn memory_bytes(&self) -> u64 {
        self.layers.iter().map(LayerDesc::memory_bytes).sum()
    }

    /// Largest single activation produced by any kernel, in elements —
    /// a lower bound for on-device scratch sizing.
    pub fn peak_activation_elems(&self) -> u64 {
        self.layers
            .iter()
            .map(LayerDesc::output_elems)
            .max()
            .unwrap_or(0)
    }
}

/// Builds the kernel schedule of a Bioformer.
///
/// # Panics
///
/// Panics if the config fails validation.
pub fn bioformer_descriptor(cfg: &BioformerConfig) -> NetworkDescriptor {
    if let Err(e) = cfg.validate() {
        panic!("invalid BioformerConfig: {e}");
    }
    let n = cfg.tokens();
    let s = cfg.seq_len();
    let (c, hp, h, p) = (cfg.embed, cfg.inner(), cfg.heads, cfg.head_dim);
    let mut layers = vec![
        LayerDesc::Conv1d {
            name: "patch_embed".into(),
            in_ch: cfg.channels,
            out_ch: c,
            kernel: cfg.filter,
            out_len: n,
            gemm_lowered: true,
        },
        LayerDesc::Embedding {
            name: "class_token".into(),
            elems: c,
        },
    ];
    for l in 0..cfg.depth {
        let pre = |s: &str| format!("block{l}.{s}");
        layers.push(LayerDesc::LayerNorm {
            name: pre("ln1"),
            rows: s,
            width: c,
        });
        for proj in ["wq", "wk", "wv"] {
            layers.push(LayerDesc::Linear {
                name: pre(proj),
                rows: s,
                in_features: c,
                out_features: hp,
                groups: h,
            });
        }
        layers.push(LayerDesc::MatMul {
            name: pre("attn_scores"),
            m: h * s,
            k: p,
            n: s,
            groups: h,
        });
        layers.push(LayerDesc::Softmax {
            name: pre("attn_softmax"),
            rows: h * s,
            cols: s,
            groups: h,
        });
        layers.push(LayerDesc::MatMul {
            name: pre("attn_values"),
            m: h * s,
            k: s,
            n: p,
            groups: h,
        });
        layers.push(LayerDesc::Linear {
            name: pre("wo"),
            rows: s,
            in_features: hp,
            out_features: c,
            groups: 1,
        });
        layers.push(LayerDesc::Add {
            name: pre("residual1"),
            elems: s * c,
        });
        layers.push(LayerDesc::LayerNorm {
            name: pre("ln2"),
            rows: s,
            width: c,
        });
        layers.push(LayerDesc::Linear {
            name: pre("fc1"),
            rows: s,
            in_features: c,
            out_features: cfg.hidden,
            groups: 1,
        });
        layers.push(LayerDesc::Gelu {
            name: pre("gelu"),
            elems: s * cfg.hidden,
        });
        layers.push(LayerDesc::Linear {
            name: pre("fc2"),
            rows: s,
            in_features: cfg.hidden,
            out_features: c,
            groups: 1,
        });
        layers.push(LayerDesc::Add {
            name: pre("residual2"),
            elems: s * c,
        });
    }
    layers.push(LayerDesc::LayerNorm {
        name: "ln_final".into(),
        rows: 1,
        width: c,
    });
    layers.push(LayerDesc::Linear {
        name: "head".into(),
        rows: 1,
        in_features: c,
        out_features: cfg.classes,
        groups: 1,
    });
    NetworkDescriptor {
        name: format!(
            "Bioformer(h={},d={},f={})",
            cfg.heads, cfg.depth, cfg.filter
        ),
        layers,
    }
}

/// Builds the kernel schedule of the TEMPONet-like baseline
/// (see [`crate::temponet`] for the architecture rationale).
pub fn temponet_descriptor() -> NetworkDescriptor {
    let mut layers = Vec::new();
    // (name, in_ch, out_ch, kernel, out_len)
    let convs: [(&str, usize, usize, usize, usize); 9] = [
        ("b0.conv0", 14, 32, 3, 300),
        ("b0.conv1", 32, 32, 3, 300),
        ("b0.down", 32, 32, 5, 150),
        ("b1.conv0", 32, 64, 3, 150),
        ("b1.conv1", 64, 64, 3, 150),
        ("b1.down", 64, 64, 5, 75),
        ("b2.conv0", 64, 128, 3, 75),
        ("b2.conv1", 128, 128, 3, 75),
        ("b2.down", 128, 128, 5, 38),
    ];
    for (name, in_ch, out_ch, kernel, out_len) in convs {
        layers.push(LayerDesc::Conv1d {
            name: name.into(),
            in_ch,
            out_ch,
            kernel,
            out_len,
            // Dilated/strided temporal convolutions cannot use the 4×int8
            // SIMD dot product on GAP8 (non-contiguous taps).
            gemm_lowered: false,
        });
        layers.push(LayerDesc::Relu {
            name: format!("{name}.relu"),
            elems: out_ch * out_len,
        });
    }
    layers.push(LayerDesc::AvgPool {
        name: "pool".into(),
        channels: 128,
        out_len: 19,
        kernel: 2,
    });
    layers.push(LayerDesc::Linear {
        name: "fc1".into(),
        rows: 1,
        in_features: 128 * 19,
        out_features: 96,
        groups: 1,
    });
    layers.push(LayerDesc::Relu {
        name: "fc1.relu".into(),
        elems: 96,
    });
    layers.push(LayerDesc::Linear {
        name: "fc2".into(),
        rows: 1,
        in_features: 96,
        out_features: 48,
        groups: 1,
    });
    layers.push(LayerDesc::Relu {
        name: "fc2.relu".into(),
        elems: 48,
    });
    layers.push(LayerDesc::Linear {
        name: "head".into(),
        rows: 1,
        in_features: 48,
        out_features: 8,
        groups: 1,
    });
    NetworkDescriptor {
        name: "TEMPONet".into(),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bio1_f10_macs_match_table1() {
        // Table I: Bio1, wind=10 → 3.3 MMAC.
        let d = bioformer_descriptor(&BioformerConfig::bio1());
        let mmac = d.macs() as f64 / 1e6;
        assert!((mmac - 3.3).abs() < 0.2, "Bio1 f10: {mmac} MMAC");
    }

    #[test]
    fn bio1_filter_sweep_matches_table1() {
        for (f, expect) in [(20usize, 1.7f64), (30, 1.2)] {
            let d = bioformer_descriptor(&BioformerConfig::bio1().with_filter(f));
            let mmac = d.macs() as f64 / 1e6;
            assert!(
                (mmac - expect).abs() / expect < 0.1,
                "Bio1 f{f}: {mmac} MMAC (expect {expect})"
            );
        }
    }

    #[test]
    fn bio2_macs_match_table1() {
        for (f, expect) in [(10usize, 2.5f64), (30, 1.0)] {
            let d = bioformer_descriptor(&BioformerConfig::bio2().with_filter(f));
            let mmac = d.macs() as f64 / 1e6;
            assert!(
                (mmac - expect).abs() / expect < 0.1,
                "Bio2 f{f}: {mmac} MMAC (expect {expect})"
            );
        }
    }

    #[test]
    fn bio1_f10_memory_matches_table1() {
        // Table I: Bio1, wind=10 → 94.2 kB.
        let d = bioformer_descriptor(&BioformerConfig::bio1());
        let kb = d.memory_bytes() as f64 / 1024.0;
        assert!((kb - 94.2).abs() / 94.2 < 0.05, "Bio1 f10: {kb} kB");
    }

    #[test]
    fn bio_memory_sweep_close_to_table1() {
        for (cfg, f, expect) in [
            (BioformerConfig::bio1(), 20usize, 102.1f64),
            (BioformerConfig::bio1(), 30, 110.8),
            (BioformerConfig::bio2(), 10, 78.3),
            (BioformerConfig::bio2(), 30, 92.2),
        ] {
            let d = bioformer_descriptor(&cfg.with_filter(f));
            let kb = d.memory_bytes() as f64 / 1024.0;
            assert!(
                (kb - expect).abs() / expect < 0.10,
                "{}: {kb} kB (expect {expect})",
                d.name
            );
        }
    }

    #[test]
    fn temponet_scale_close_to_paper() {
        // Paper: 461 kB, 16 MMAC. Our reconstruction: within ~20 %.
        let d = temponet_descriptor();
        let mmac = d.macs() as f64 / 1e6;
        let kb = d.memory_bytes() as f64 / 1024.0;
        assert!((mmac - 16.0).abs() / 16.0 < 0.2, "TEMPONet {mmac} MMAC");
        assert!((kb - 461.0).abs() / 461.0 < 0.2, "TEMPONet {kb} kB");
    }

    #[test]
    fn ops_reduction_factor_vs_temponet() {
        // Abstract: "reducing the number of parameters and operations of 4.9×".
        let bio = bioformer_descriptor(&BioformerConfig::bio1());
        let tempo = temponet_descriptor();
        let factor = tempo.macs() as f64 / bio.macs() as f64;
        assert!(
            (3.9..6.0).contains(&factor),
            "ops reduction {factor} should be ≈4.9×"
        );
        let mem_factor = tempo.memory_bytes() as f64 / bio.memory_bytes() as f64;
        assert!(
            (3.9..6.0).contains(&mem_factor),
            "memory reduction {mem_factor} should be ≈4.9×"
        );
    }

    #[test]
    fn params_equal_memory_order() {
        // params ≈ memory_bytes (int8 weights dominate) for Bioformers.
        let d = bioformer_descriptor(&BioformerConfig::bio1());
        let ratio = d.memory_bytes() as f64 / d.params() as f64;
        assert!((0.9..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn descriptor_layer_names_unique() {
        let d = bioformer_descriptor(&BioformerConfig::bio2());
        let mut names: Vec<&str> = d.layers.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate kernel names");
    }

    #[test]
    fn peak_activation_reasonable() {
        let d = bioformer_descriptor(&BioformerConfig::bio1());
        // Largest activation: QKV output 31×256 = 7936 elems.
        assert_eq!(d.peak_activation_elems(), 7936);
    }
}
