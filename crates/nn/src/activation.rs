//! Element-wise activation layers (GELU, ReLU).

use bioformer_tensor::ops;
use bioformer_tensor::Tensor;

/// GELU activation layer (tanh approximation), used inside the Bioformer's
/// feed-forward blocks.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cached_input: Option<Tensor>,
}

impl Gelu {
    /// Creates the layer.
    pub fn new() -> Self {
        Gelu::default()
    }

    /// Forward pass (any shape).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        self.forward_infer(x)
    }

    /// Inference-only forward through `&self` (no cache writes).
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        x.map(ops::gelu)
    }

    /// Allocation-free inference: applies GELU to `x` in place. Inference
    /// activations are scratch tensors, so there is nothing to preserve —
    /// this is the arena-path counterpart of [`Gelu::forward_infer`]
    /// (bit-identical values; the hot path usually avoids even this by
    /// fusing GELU into the preceding GEMM's epilogue, see
    /// [`crate::linear::FusedActivation`]).
    pub fn forward_infer_in_place(&self, x: &mut Tensor) {
        x.map_in_place(ops::gelu);
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Gelu: backward before forward");
        dy.zip_with(&x.map(ops::gelu_grad), |g, d| g * d)
    }

    /// Drops the forward cache.
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

/// ReLU activation layer (optionally leaky), used by the TEMPONet
/// baseline. The leaky variant (`negative_slope > 0`) is used in its
/// fully-connected classifier, where there is no normalisation layer to
/// recover from dead units.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    negative_slope: f32,
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a standard ReLU.
    pub fn new() -> Self {
        Relu::default()
    }

    /// Creates a leaky ReLU with the given negative-side slope.
    pub fn leaky(negative_slope: f32) -> Self {
        Relu {
            negative_slope,
            cached_input: None,
        }
    }

    /// Forward pass (any shape).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        self.forward_infer(x)
    }

    /// Inference-only forward through `&self` (no cache writes).
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        let a = self.negative_slope;
        x.map(|v| if v > 0.0 { v } else { a * v })
    }

    /// Allocation-free inference: applies the (leaky) ReLU in place; see
    /// [`Gelu::forward_infer_in_place`] for the rationale.
    pub fn forward_infer_in_place(&self, x: &mut Tensor) {
        let a = self.negative_slope;
        x.map_in_place(|v| if v > 0.0 { v } else { a * v });
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Relu: backward before forward");
        let a = self.negative_slope;
        dy.zip_with(&x.map(|v| if v > 0.0 { 1.0 } else { a }), |g, d| g * d)
    }

    /// Drops the forward cache.
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn gelu_gradcheck() {
        let mut g = Gelu::new();
        let x = filled(&[2, 5], 0);
        let _ = g.forward(&x, true);
        let dy = filled(&[2, 5], 1);
        let dx = g.backward(&dy);
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (g.forward(&xp, false).mul(&dy).sum() - g.forward(&xm, false).mul(&dy).sum())
                / (2.0 * eps);
            assert!((num - dx.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0], &[1, 3]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0]);
        let dy = Tensor::ones(&[1, 3]);
        let dx = r.backward(&dy);
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0]);
    }
}
