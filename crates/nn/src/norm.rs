//! Per-sample group normalisation for convolutional stacks.

use crate::param::Param;
use bioformer_tensor::ops::{layernorm_backward, layernorm_forward, LayerNormCache};
use bioformer_tensor::Tensor;

/// Group normalisation over `[batch, channels, len]`: channels are split
/// into `groups`, each group's `(channels/groups) × len` slab is
/// standardised **within its own sample**, then a per-channel affine
/// (γ, β) is applied.
///
/// `groups == 1` normalises all channels jointly (preserving the relative
/// channel amplitudes that carry the gesture information in sEMG);
/// `groups == channels` is InstanceNorm. The TEMPONet reconstruction uses
/// `groups == 1` in place of the original's BatchNorm: it gives the same
/// deep-stack optimisation benefit, is independent of batch composition
/// (no running statistics to synchronise across data-parallel shards), and
/// folds into the preceding convolution at inference, so deployed MACs are
/// unchanged.
#[derive(Debug, Clone)]
pub struct GroupNorm1d {
    gamma: Param,
    beta: Param,
    channels: usize,
    groups: usize,
    cache: Option<(LayerNormCache, usize, usize)>,
}

impl GroupNorm1d {
    /// Creates a GroupNorm over `channels` channels in `groups` groups
    /// (γ=1, β=0).
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `channels`.
    pub fn new(name: &str, channels: usize, groups: usize) -> Self {
        assert!(
            groups > 0 && channels.is_multiple_of(groups),
            "groups must divide channels"
        );
        GroupNorm1d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            channels,
            groups,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Group count.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        2 * self.channels
    }

    /// Forward over `[batch, channels, len]`.
    ///
    /// # Panics
    ///
    /// Panics on channel-count mismatch.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        assert_eq!(x.dims()[1], self.channels, "GroupNorm1d: channel mismatch");
        let (b, c, len) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let cg = c / self.groups;
        let row_w = cg * len;
        // Normalise each (sample, group) slab.
        let rows = x.reshape(&[b * self.groups, row_w]);
        let ones = Tensor::ones(&[row_w]);
        let zeros = Tensor::zeros(&[row_w]);
        let (xhat, cache) = layernorm_forward(&rows, &ones, &zeros);
        // Per-channel affine: position p in a row belongs to channel
        // group_base + p / len. The backward pass reads x̂ from the cache,
        // so the affine is applied to a copy.
        let mut y = xhat.clone();
        self.affine(&mut y, b, len);
        self.cache = Some((cache, b, len));
        y.reshape(&[b, c, len])
    }

    /// Inference-only forward over `[batch, channels, len]` through `&self`
    /// (no cache writes): same arithmetic as `forward(x, false)`.
    ///
    /// # Panics
    ///
    /// Panics on channel-count mismatch.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims()[1], self.channels, "GroupNorm1d: channel mismatch");
        let (b, c, len) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let cg = c / self.groups;
        let row_w = cg * len;
        let rows = x.reshape(&[b * self.groups, row_w]);
        let ones = Tensor::ones(&[row_w]);
        let zeros = Tensor::zeros(&[row_w]);
        let (mut y, _) = layernorm_forward(&rows, &ones, &zeros);
        self.affine(&mut y, b, len);
        y.reshape(&[b, c, len])
    }

    /// Applies the per-channel affine `γ ⊙ x̂ + β` in place over
    /// `[b·groups, (channels/groups)·len]` rows.
    fn affine(&self, y: &mut Tensor, b: usize, len: usize) {
        let cg = self.channels / self.groups;
        for r in 0..b * self.groups {
            let group = r % self.groups;
            let row = y.row_mut(r);
            for (p, v) in row.iter_mut().enumerate() {
                let ch = group * cg + p / len;
                *v = self.gamma.value.data()[ch] * *v + self.beta.value.data()[ch];
            }
        }
    }

    /// Backward pass; returns `dx` of the input shape.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (cache, b, len) = self
            .cache
            .as_ref()
            .expect("GroupNorm1d: backward before forward");
        let (b, len) = (*b, *len);
        let c = self.channels;
        let cg = c / self.groups;
        let row_w = cg * len;
        let dy_rows = dy.reshape(&[b * self.groups, row_w]);
        // Affine backward: per-channel grads; scale upstream by γ.
        let mut dxhat = dy_rows.clone();
        for r in 0..b * self.groups {
            let group = r % self.groups;
            let xh_row = &cache.xhat.data()[r * row_w..(r + 1) * row_w];
            let row = dxhat.row_mut(r);
            for (p, v) in row.iter_mut().enumerate() {
                let ch = group * cg + p / len;
                self.gamma.grad.data_mut()[ch] += *v * xh_row[p];
                self.beta.grad.data_mut()[ch] += *v;
                *v *= self.gamma.value.data()[ch];
            }
        }
        // Normalisation backward (γ=1 path — the affine was folded above).
        let ones = Tensor::ones(&[row_w]);
        let (dx, _, _) = layernorm_backward(&dxhat, &ones, cache);
        dx.reshape(&[b, c, len])
    }

    /// Visits the affine parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    /// Drops the forward cache.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn single_group_preserves_channel_ratios() {
        let mut norm = GroupNorm1d::new("gn", 2, 1);
        // Channel 0 has 4× the amplitude of channel 1.
        let mut x = Tensor::zeros(&[1, 2, 64]);
        let mut rng = StdRng::seed_from_u64(0);
        for t in 0..64 {
            let v: f32 = rng.gen_range(-1.0..1.0);
            x.set(&[0, 0, t], 4.0 * v);
            x.set(&[0, 1, t], rng.gen_range(-1.0f32..1.0));
        }
        let y = norm.forward(&x, false);
        let rms = |c: usize| -> f32 {
            ((0..64).map(|t| y.at(&[0, c, t]).powi(2)).sum::<f32>() / 64.0).sqrt()
        };
        let ratio = rms(0) / rms(1);
        assert!(
            ratio > 2.5,
            "joint normalisation must keep channel amplitude ratio, got {ratio}"
        );
    }

    #[test]
    fn instance_mode_normalises_each_channel() {
        let mut norm = GroupNorm1d::new("gn", 3, 3);
        let x = filled(&[2, 3, 32], 1).scale(7.0);
        let y = norm.forward(&x, false);
        for b in 0..2 {
            for c in 0..3 {
                let mean: f32 = (0..32).map(|t| y.at(&[b, c, t])).sum::<f32>() / 32.0;
                assert!(mean.abs() < 1e-4, "b{b} c{c} mean {mean}");
            }
        }
    }

    #[test]
    fn affine_applies_per_channel() {
        let mut norm = GroupNorm1d::new("gn", 2, 1);
        norm.gamma.value.data_mut()[1] = 3.0;
        norm.beta.value.data_mut()[0] = -1.0;
        let x = filled(&[1, 2, 16], 2);
        let y = norm.forward(&x, false);
        // β shifts channel 0's mean; γ scales channel 1.
        let m0: f32 = (0..16).map(|t| y.at(&[0, 0, t])).sum::<f32>() / 16.0;
        let y0: Vec<f32> = {
            let mut n2 = GroupNorm1d::new("gn", 2, 1);
            let y = n2.forward(&x, false);
            (0..16).map(|t| y.at(&[0, 1, t])).collect()
        };
        for (t, &y0t) in y0.iter().enumerate() {
            assert!((y.at(&[0, 1, t]) - 3.0 * y0t).abs() < 1e-5);
        }
        // Channel 0 mean shifted by -1 relative to the unshifted layer.
        let base_m0: f32 = {
            let mut n2 = GroupNorm1d::new("gn", 2, 1);
            let y = n2.forward(&x, false);
            (0..16).map(|t| y.at(&[0, 0, t])).sum::<f32>() / 16.0
        };
        assert!((m0 - (base_m0 - 1.0)).abs() < 1e-5);
    }

    #[test]
    fn gradcheck_groups_1_and_2() {
        for groups in [1usize, 2] {
            let mut norm = GroupNorm1d::new("gn", 4, groups);
            let mut rng = StdRng::seed_from_u64(3);
            for v in norm.gamma.value.data_mut() {
                *v = rng.gen_range(0.5..1.5);
            }
            let x = filled(&[2, 4, 5], 4);
            let y = norm.forward(&x, true);
            let dy = filled(y.dims(), 5);
            norm.gamma.zero_grad();
            norm.beta.zero_grad();
            let dx = norm.backward(&dy);
            let dg = norm.gamma.grad.clone();

            let objective =
                |n: &mut GroupNorm1d, x: &Tensor| -> f32 { n.forward(x, false).mul(&dy).sum() };
            let eps = 1e-3;
            for idx in (0..x.len()).step_by(2) {
                let mut xp = x.clone();
                xp.data_mut()[idx] += eps;
                let mut xm = x.clone();
                xm.data_mut()[idx] -= eps;
                let num = (objective(&mut norm, &xp) - objective(&mut norm, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx.data()[idx]).abs() < 2e-2,
                    "groups={groups} dx[{idx}] fd={num} got={}",
                    dx.data()[idx]
                );
            }
            for idx in 0..dg.len() {
                let orig = norm.gamma.value.data()[idx];
                norm.gamma.value.data_mut()[idx] = orig + eps;
                let fp = objective(&mut norm, &x);
                norm.gamma.value.data_mut()[idx] = orig - eps;
                let fm = objective(&mut norm, &x);
                norm.gamma.value.data_mut()[idx] = orig;
                let num = (fp - fm) / (2.0 * eps);
                assert!(
                    (num - dg.data()[idx]).abs() < 1e-2,
                    "groups={groups} dγ[{idx}] fd={num} got={}",
                    dg.data()[idx]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "groups must divide channels")]
    fn bad_groups_rejected() {
        GroupNorm1d::new("gn", 6, 4);
    }
}
