//! Haar wavelet-packet front-end (WaveFormer-style).
//!
//! WaveFormer (Bian et al., "WaveFormer: transformer-based denoising
//! method for gravitational-wave data"; the sEMG adaptation appears in
//! PAPERS.md) replaces the learned strided-conv patching of a ViT with a
//! fixed multi-resolution wavelet decomposition, so the attention stack
//! sees frequency sub-bands instead of raw samples. The transform has no
//! parameters, costs `O(C·L)` adds per level, and — being orthonormal —
//! preserves signal energy exactly, which keeps downstream quantization
//! ranges stable.
//!
//! [`HaarWavelet1d`] implements the *packet* variant: every step maps
//! `[B, C, L] → [B, 2C, L/2]` (first `C` output channels are the
//! approximation band, next `C` the detail band) and the step is applied
//! recursively to **all** bands, so `levels = ℓ` yields `[B, C·2^ℓ, L/2^ℓ]`
//! — a uniform filter bank over `2^ℓ` frequency sub-bands.

use crate::param::Param;
use bioformer_tensor::Tensor;

const INV_SQRT2: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// Depth-`levels` Haar wavelet-packet analysis over the time axis.
///
/// # Example
///
/// ```
/// use bioformer_nn::HaarWavelet1d;
/// use bioformer_tensor::Tensor;
///
/// let mut dwt = HaarWavelet1d::new(2);
/// let x = Tensor::zeros(&[1, 14, 300]);
/// let y = dwt.forward(&x, false);
/// assert_eq!(y.dims(), &[1, 56, 75]);
/// ```
#[derive(Debug, Clone)]
pub struct HaarWavelet1d {
    levels: usize,
    fwd_dims: Option<(usize, usize, usize)>,
}

impl HaarWavelet1d {
    /// Creates a packet transform of `levels` analysis steps.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` (use the identity instead).
    pub fn new(levels: usize) -> Self {
        assert!(levels > 0, "HaarWavelet1d: levels must be >= 1");
        HaarWavelet1d {
            levels,
            fwd_dims: None,
        }
    }

    /// Number of analysis steps.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Output channel count for `c` input channels (`c·2^levels`).
    pub fn out_channels(&self, c: usize) -> usize {
        c << self.levels
    }

    /// Output length for input length `l` (`l / 2^levels`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is not divisible by `2^levels`.
    pub fn out_len(&self, l: usize) -> usize {
        assert_eq!(
            l % (1 << self.levels),
            0,
            "HaarWavelet1d: length {l} not divisible by 2^{}",
            self.levels
        );
        l >> self.levels
    }

    /// One analysis butterfly: `[B, C, L] → [B, 2C, L/2]`.
    fn step(src: &Tensor) -> Tensor {
        let (b, c, l) = (src.dims()[0], src.dims()[1], src.dims()[2]);
        assert_eq!(l % 2, 0, "HaarWavelet1d: odd length {l}");
        let half = l / 2;
        let mut dst = Tensor::zeros(&[b, 2 * c, half]);
        let s = src.data();
        let d = dst.data_mut();
        for bi in 0..b {
            for ci in 0..c {
                let row = &s[(bi * c + ci) * l..(bi * c + ci + 1) * l];
                let a0 = (bi * 2 * c + ci) * half;
                let d0 = (bi * 2 * c + c + ci) * half;
                for i in 0..half {
                    let lo = row[2 * i];
                    let hi = row[2 * i + 1];
                    d[a0 + i] = (lo + hi) * INV_SQRT2;
                    d[d0 + i] = (lo - hi) * INV_SQRT2;
                }
            }
        }
        dst
    }

    /// One synthesis butterfly: `[B, 2C, L/2] → [B, C, L]` — the exact
    /// inverse (and, being orthonormal, the transpose) of [`Self::step`].
    fn unstep(src: &Tensor) -> Tensor {
        let (b, c2, half) = (src.dims()[0], src.dims()[1], src.dims()[2]);
        assert_eq!(c2 % 2, 0, "HaarWavelet1d: odd channel count {c2}");
        let c = c2 / 2;
        let l = half * 2;
        let mut dst = Tensor::zeros(&[b, c, l]);
        let s = src.data();
        let d = dst.data_mut();
        for bi in 0..b {
            for ci in 0..c {
                let a0 = (bi * c2 + ci) * half;
                let d0 = (bi * c2 + c + ci) * half;
                let out = &mut d[(bi * c + ci) * l..(bi * c + ci + 1) * l];
                for i in 0..half {
                    let a = s[a0 + i];
                    let dt = s[d0 + i];
                    out[2 * i] = (a + dt) * INV_SQRT2;
                    out[2 * i + 1] = (a - dt) * INV_SQRT2;
                }
            }
        }
        dst
    }

    /// Analysis pass over `[batch, channels, length]`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not divisible by `2^levels`.
    pub fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.fwd_dims = Some((x.dims()[0], x.dims()[1], x.dims()[2]));
        self.forward_infer(x)
    }

    /// Analysis pass through `&self` (the transform is stateless).
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        let _ = self.out_len(x.dims()[2]);
        let mut h = Self::step(x);
        for _ in 1..self.levels {
            h = Self::step(&h);
        }
        h
    }

    /// Exact inverse of [`Self::forward_infer`] (synthesis filter bank).
    pub fn inverse(&self, y: &Tensor) -> Tensor {
        let mut h = Self::unstep(y);
        for _ in 1..self.levels {
            h = Self::unstep(&h);
        }
        h
    }

    /// Gradient of the analysis pass. Because the transform is orthonormal
    /// and parameter-free, the input gradient is the synthesis transform of
    /// the output gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (b, c, l) = self
            .fwd_dims
            .expect("HaarWavelet1d: backward before forward");
        let dx = self.inverse(dy);
        assert_eq!(dx.dims(), &[b, c, l], "HaarWavelet1d: gradient shape");
        dx
    }

    /// Visits trainable parameters (none — the filter bank is fixed).
    pub fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Drops cached forward state.
    pub fn clear_cache(&mut self) {
        self.fwd_dims = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn shapes() {
        let mut dwt = HaarWavelet1d::new(2);
        let y = dwt.forward(&Tensor::zeros(&[3, 14, 300]), false);
        assert_eq!(y.dims(), &[3, 56, 75]);
        assert_eq!(dwt.out_channels(14), 56);
        assert_eq!(dwt.out_len(300), 75);
    }

    #[test]
    fn roundtrip_is_exact_to_float_precision() {
        let dwt = HaarWavelet1d::new(2);
        let x = filled(&[2, 3, 16], 1);
        let back = dwt.inverse(&dwt.forward_infer(&x));
        assert!(back.allclose(&x, 1e-5), "analysis→synthesis diverges");
    }

    #[test]
    fn energy_preserved() {
        let dwt = HaarWavelet1d::new(3);
        let x = filled(&[1, 2, 64], 2);
        let y = dwt.forward_infer(&x);
        let ex: f32 = x.data().iter().map(|v| v * v).sum();
        let ey: f32 = y.data().iter().map(|v| v * v).sum();
        assert!(
            (ex - ey).abs() < 1e-3 * ex.max(1.0),
            "energy {ex} -> {ey} not preserved"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut dwt = HaarWavelet1d::new(2);
        let x = filled(&[1, 2, 8], 3);
        let y = dwt.forward(&x, true);
        let dy = filled(y.dims(), 4);
        let dx = dwt.backward(&dy);
        // d/dx_i of <forward(x), dy> — probe two positions.
        let eps = 1e-3;
        for idx in [0usize, 9] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp: f32 = dwt
                .forward_infer(&xp)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let fm: f32 = dwt
                .forward_infer(&xm)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let num = (fp - fm) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!((num - got).abs() < 1e-2, "fd={num} analytic={got}");
        }
    }

    #[test]
    fn constant_signal_concentrates_in_approximation_band() {
        let dwt = HaarWavelet1d::new(1);
        let x = Tensor::ones(&[1, 1, 8]);
        let y = dwt.forward_infer(&x);
        // Approximation band = sqrt(2), detail band = 0.
        for i in 0..4 {
            assert!((y.data()[i] - std::f32::consts::SQRT_2).abs() < 1e-6);
            assert!(y.data()[4 + i].abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_length_panics() {
        let mut dwt = HaarWavelet1d::new(2);
        let _ = dwt.forward(&Tensor::zeros(&[1, 1, 6]), false);
    }
}
