//! Learning-rate schedules used by the paper's two training phases.

/// A learning-rate schedule evaluated per optimizer step.
///
/// The paper (§III-B) uses:
/// * pre-training — Adam with a **linear warm-up** from `1e-7` to `5e-4`;
/// * fine-tuning — a fixed `1e-4`, **reduced 10×** after 10 epochs.
///
/// Both are expressible here; [`LrSchedule::paper_pretrain`] and
/// [`LrSchedule::paper_finetune`] build them with the paper's constants.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// A constant learning rate.
    Constant(f32),
    /// Linear ramp from `start` to `peak` over `warmup_steps` optimizer
    /// steps, constant at `peak` afterwards.
    LinearWarmup {
        /// Initial learning rate (paper: `1e-7`).
        start: f32,
        /// Rate reached at the end of the warm-up (paper: `5e-4`).
        peak: f32,
        /// Number of steps over which to ramp.
        warmup_steps: usize,
    },
    /// Multiply `initial` by `factor` once `epoch >= at_epoch`.
    StepDecay {
        /// Rate for the first `at_epoch` epochs (paper: `1e-4`).
        initial: f32,
        /// Multiplier applied afterwards (paper: `0.1`).
        factor: f32,
        /// Epoch index at which the decay kicks in (paper: `10`).
        at_epoch: usize,
    },
}

impl LrSchedule {
    /// The paper's pre-training schedule: linear warm-up `1e-7 → 5e-4`.
    pub fn paper_pretrain(warmup_steps: usize) -> Self {
        LrSchedule::LinearWarmup {
            start: 1e-7,
            peak: 5e-4,
            warmup_steps,
        }
    }

    /// The paper's fine-tuning schedule: `1e-4`, ×0.1 after 10 epochs.
    pub fn paper_finetune() -> Self {
        LrSchedule::StepDecay {
            initial: 1e-4,
            factor: 0.1,
            at_epoch: 10,
        }
    }

    /// Learning rate at optimizer `step` (0-based, global across epochs)
    /// and `epoch` (0-based).
    pub fn lr(&self, step: usize, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::LinearWarmup {
                start,
                peak,
                warmup_steps,
            } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    peak
                } else {
                    start + (peak - start) * (step as f32 / warmup_steps as f32)
                }
            }
            LrSchedule::StepDecay {
                initial,
                factor,
                at_epoch,
            } => {
                if epoch >= at_epoch {
                    initial * factor
                } else {
                    initial
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.01);
        assert_eq!(s.lr(0, 0), 0.01);
        assert_eq!(s.lr(1000, 99), 0.01);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::paper_pretrain(100);
        assert!((s.lr(0, 0) - 1e-7).abs() < 1e-9);
        let mid = s.lr(50, 0);
        assert!(mid > 1e-7 && mid < 5e-4);
        assert_eq!(s.lr(100, 1), 5e-4);
        assert_eq!(s.lr(10_000, 50), 5e-4);
    }

    #[test]
    fn warmup_is_monotonic() {
        let s = LrSchedule::paper_pretrain(10);
        let mut prev = 0.0;
        for step in 0..20 {
            let lr = s.lr(step, 0);
            assert!(lr >= prev, "lr not monotonic at step {step}");
            prev = lr;
        }
    }

    #[test]
    fn step_decay_drops_at_epoch() {
        let s = LrSchedule::paper_finetune();
        assert!((s.lr(0, 9) - 1e-4).abs() < 1e-9);
        assert!((s.lr(0, 10) - 1e-5).abs() < 1e-9);
    }

    #[test]
    fn zero_warmup_steps_is_peak_immediately() {
        let s = LrSchedule::LinearWarmup {
            start: 0.0,
            peak: 1.0,
            warmup_steps: 0,
        };
        assert_eq!(s.lr(0, 0), 1.0);
    }
}
