//! The [`Model`] and [`InferForward`] abstractions shared by trainers,
//! optimizers, protocols and the serving layer.

use crate::param::Param;
use bioformer_tensor::{Tensor, TensorArena};

/// An inference-only forward pass over shared model state.
///
/// [`Model::forward`] takes `&mut self` because training-mode passes stash
/// activation caches for backprop. Serving has no use for those caches, and
/// the `&mut` receiver forces engines to either lock or deep-copy the model
/// per request. Implementors of this trait provide the eval-mode forward
/// through `&self` — bit-identical logits to `Model::forward(x, false)`,
/// no cache writes — so a single model instance can be shared across a
/// worker pool (`Arc<M>`) with zero clones.
///
/// Every layer in this crate exposes a matching `forward_infer(&self, …)`
/// building block (e.g. [`crate::Linear::forward_infer`]).
pub trait InferForward {
    /// Eval-mode forward pass:
    /// `[batch, channels, samples] → [batch, classes]`.
    fn forward_infer(&self, x: &Tensor) -> Tensor;

    /// Eval-mode forward pass drawing every intermediate tensor from
    /// `arena` and recycling it before returning, so repeated calls with
    /// the same warmed arena perform **zero heap allocations** (see
    /// [`bioformer_tensor::arena`]).
    ///
    /// Must return logits bit-identical to [`InferForward::forward_infer`]
    /// — the arena changes where buffers come from, never what is computed.
    /// The returned tensor's buffer is arena-owned: callers that want the
    /// allocation-free steady state copy the logits out and
    /// [`TensorArena::recycle`] it.
    ///
    /// The default implementation ignores the arena and delegates to
    /// `forward_infer`, so models without an arena-threaded path (e.g.
    /// integer-only backends with their own scratch story) stay correct.
    fn forward_infer_in(&self, x: &Tensor, arena: &mut TensorArena) -> Tensor {
        let _ = arena;
        self.forward_infer(x)
    }
}

/// A trainable classifier over sEMG windows.
///
/// Models map a batch of windows `[batch, channels, samples]` to logits
/// `[batch, classes]`, own their parameters, and implement explicit
/// backward passes. `Clone + Send` enables the trainer's data-parallel
/// gradient computation (each shard runs on a deep copy; gradients are
/// summed back into the primary instance).
pub trait Model: Send + Clone {
    /// Forward pass: `[batch, channels, samples] → [batch, classes]`.
    /// With `train == true` the model caches activations for
    /// [`Model::backward`].
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass from the loss gradient w.r.t. the logits; accumulates
    /// parameter gradients.
    fn backward(&mut self, dlogits: &Tensor);

    /// Visits every parameter exactly once, in an order that is stable
    /// across clones of the same architecture (the optimizer and the
    /// gradient-merge step rely on this).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Drops forward caches (reduces clone cost; optional).
    fn clear_cache(&mut self) {}

    /// Number of trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Extracts a snapshot of all gradients, in visit order.
    fn grads(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.grad.clone()));
        out
    }

    /// Accumulates externally computed gradients (in visit order) into this
    /// model's parameters.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the parameter count or shapes.
    fn accumulate_grads(&mut self, grads: &[Tensor]) {
        let mut i = 0;
        self.visit_params(&mut |p| {
            assert!(i < grads.len(), "gradient list too short");
            p.accumulate(&grads[i]);
            i += 1;
        });
        assert_eq!(i, grads.len(), "gradient list too long");
    }
}
