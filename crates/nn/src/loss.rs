//! Classification losses and metrics.

use bioformer_tensor::ops::log_softmax_rows;
use bioformer_tensor::Tensor;

/// Mean cross-entropy between `logits` (`[batch, classes]`) and integer
/// `labels`, returning the loss value and its gradient w.r.t. the logits.
///
/// The gradient is the familiar `(softmax − one_hot)/batch`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), batch, "cross_entropy: label count mismatch");
    let logp = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    let mut dlogits = Tensor::zeros(&[batch, classes]);
    let inv_b = 1.0 / batch as f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "cross_entropy: label {label} out of range for {classes} classes"
        );
        loss -= logp.data()[r * classes + label];
        for c in 0..classes {
            let p = logp.data()[r * classes + c].exp();
            let onehot = if c == label { 1.0 } else { 0.0 };
            dlogits.data_mut()[r * classes + c] = (p - onehot) * inv_b;
        }
    }
    (loss * inv_b, dlogits)
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(labels.len(), preds.len(), "accuracy: label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// A `classes × classes` confusion matrix; `matrix[true][pred]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.classes && pred < self.classes);
        self.counts[truth * self.classes + pred] += 1;
    }

    /// Records a batch of predictions.
    pub fn record_batch(&mut self, logits: &Tensor, labels: &[usize]) {
        for (p, &t) in logits.argmax_rows().iter().zip(labels.iter()) {
            self.record(t, *p);
        }
    }

    /// Count at `(true, predicted)`.
    pub fn count(&self, truth: usize, pred: usize) -> u32 {
        self.counts[truth * self.classes + pred]
    }

    /// Overall accuracy (0.0 when empty).
    pub fn accuracy(&self) -> f32 {
        let total: u32 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u32 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (diagonal / row sum), `None` for unseen classes.
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u32 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn uniform_logits_loss_is_log_k() {
        let logits = Tensor::zeros(&[4, 8]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_fd() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.5, -0.2], &[2, 3]);
        let labels = [2usize, 0];
        let (_, d) = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (cross_entropy(&lp, &labels).0 - cross_entropy(&lm, &labels).0) / (2.0 * eps);
            assert!(
                (num - d.data()[idx]).abs() < 1e-3,
                "d[{idx}] fd={num} got={}",
                d.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.5, 1.5, -0.5, 0.0, 2.0, 1.0], &[2, 3]);
        let (_, d) = cross_entropy(&logits, &[1, 2]);
        for r in 0..2 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_bookkeeping() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(2, 2);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
        assert!((cm.recall(0).unwrap() - 0.5).abs() < 1e-6);
        assert_eq!(cm.recall(1), None);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn label_count_mismatch_panics() {
        cross_entropy(&Tensor::zeros(&[2, 2]), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }
}
