//! Pre-LN transformer encoder block.

use crate::activation::Gelu;
use crate::attention::MultiHeadSelfAttention;
use crate::dropout::Dropout;
use crate::layernorm::LayerNorm;
use crate::linear::{FusedActivation, Linear};
use crate::param::Param;
use bioformer_tensor::backend::ComputeBackend;
use bioformer_tensor::{Tensor, TensorArena};
use rand::Rng;
use std::sync::Arc;

/// One transformer encoder block in the pre-LN arrangement used by ViT
/// (which the Bioformer follows):
///
/// ```text
/// x ─▶ LN₁ ─▶ MHSA ─▶ Dropout ─▶ (+x) ─▶ LN₂ ─▶ FC₁ ─▶ GELU ─▶ FC₂ ─▶ Dropout ─▶ (+)
/// ```
///
/// The FFN hidden width is a free hyper-parameter (128 in the paper).
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    drop_attn: Dropout,
    ln2: LayerNorm,
    fc1: Linear,
    gelu: Gelu,
    fc2: Linear,
    drop_ffn: Dropout,
    embed: usize,
    fwd_shape: Option<(usize, usize)>,
}

impl TransformerBlock {
    /// Creates a block with `heads` attention heads of width `head_dim` and
    /// an FFN hidden width of `hidden`.
    pub fn new(
        name: &str,
        embed: usize,
        heads: usize,
        head_dim: usize,
        hidden: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let drop_seed = rng.gen::<u64>();
        TransformerBlock {
            ln1: LayerNorm::new(&format!("{name}.ln1"), embed),
            attn: MultiHeadSelfAttention::new(&format!("{name}.attn"), embed, heads, head_dim, rng),
            drop_attn: Dropout::new(dropout, drop_seed),
            ln2: LayerNorm::new(&format!("{name}.ln2"), embed),
            fc1: Linear::new(&format!("{name}.fc1"), embed, hidden, rng),
            gelu: Gelu::new(),
            fc2: Linear::new(&format!("{name}.fc2"), hidden, embed, rng),
            drop_ffn: Dropout::new(dropout, drop_seed.wrapping_add(0x9E37)),
            embed,
            fwd_shape: None,
        }
    }

    /// The attention sub-layer.
    pub fn attention(&self) -> &MultiHeadSelfAttention {
        &self.attn
    }

    /// Installs a compute backend on every GEMM-bearing sub-layer
    /// (attention projections + both FFN linears); packed weights are
    /// re-built under the new backend's plans on next use.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.attn.set_backend(backend.clone());
        self.fc1.set_backend(backend.clone());
        self.fc2.set_backend(backend);
    }

    /// FFN hidden width.
    pub fn hidden(&self) -> usize {
        self.fc1.out_features()
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.ln1.num_params()
            + self.attn.num_params()
            + self.ln2.num_params()
            + self.fc1.num_params()
            + self.fc2.num_params()
    }

    /// Forward pass over `[batch, seq, embed]`.
    ///
    /// # Panics
    ///
    /// Panics on embedding-width mismatch.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        let (batch, seq, embed) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(embed, self.embed, "TransformerBlock: width mismatch");
        let rows = batch * seq;
        let x2 = x.reshape(&[rows, embed]);

        // Attention branch.
        let a = self.ln1.forward(&x2, true);
        let a3 = a.reshape(&[batch, seq, embed]);
        let at = self.attn.forward(&a3, true);
        let at2 = at.reshape(&[rows, embed]);
        let at2 = self.drop_attn.forward(&at2, true);
        let r1 = x2.add(&at2);

        // FFN branch.
        let f = self.ln2.forward(&r1, true);
        let f = self.fc1.forward(&f, true);
        let f = self.gelu.forward(&f, true);
        let f = self.fc2.forward(&f, true);
        let f = self.drop_ffn.forward(&f, true);
        let out = r1.add(&f);

        self.fwd_shape = Some((batch, seq));
        out.reshape(&[batch, seq, embed])
    }

    /// Inference-only forward over `[batch, seq, embed]` through `&self`:
    /// same arithmetic as `forward(x, false)` (dropout is the identity at
    /// inference and is skipped outright), no cache writes, so one block
    /// can serve concurrent readers without cloning.
    ///
    /// Implemented as [`TransformerBlock::forward_infer_in`] over a
    /// throwaway arena, so the two paths cannot drift.
    ///
    /// # Panics
    ///
    /// Panics on embedding-width mismatch.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        self.forward_infer_in(x, &mut TensorArena::new())
    }

    /// Arena variant of [`TransformerBlock::forward_infer`]: intermediates
    /// come from `arena` and are recycled as consumed, the FFN's GELU is
    /// fused into `fc1`'s GEMM epilogue, and both residual adds run in
    /// place on arena buffers. Bit-identical output (the GELU fusion and
    /// in-place adds change where values live, not how they are computed).
    ///
    /// The returned tensor is arena-owned; recycle it when consumed.
    ///
    /// # Panics
    ///
    /// Panics on embedding-width mismatch.
    pub fn forward_infer_in(&self, x: &Tensor, arena: &mut TensorArena) -> Tensor {
        let (batch, seq, embed) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(embed, self.embed, "TransformerBlock: width mismatch");
        let rows = batch * seq;

        // Attention branch (dropout skipped: identity at inference).
        // x's [B,S,E] buffer doubles as the [rows, E] row view — the
        // layers below work on flattened rows, so no reshape copy is made.
        let mut a = arena.tensor(&[rows, embed]);
        self.ln1.infer_into(x.data(), a.data_mut());
        a.reshape_in_place(&[batch, seq, embed]);
        let at = self.attn.forward_infer_in(&a, arena);
        arena.recycle(a);
        // r1 = x + attn_out, in place on the attention output's buffer.
        let mut r1 = at;
        r1.reshape_in_place(&[rows, embed]);
        for (o, &xv) in r1.data_mut().iter_mut().zip(x.data().iter()) {
            *o += xv;
        }

        // FFN branch: GELU fused into fc1's store loop.
        let mut f = arena.tensor(&[rows, embed]);
        self.ln2.infer_into(r1.data(), f.data_mut());
        let h = self.fc1.forward_infer_in(&f, FusedActivation::Gelu, arena);
        arena.recycle(f);
        let f2 = self.fc2.forward_infer_in(&h, FusedActivation::None, arena);
        arena.recycle(h);
        // out = r1 + ffn_out, in place on r1's buffer.
        let mut out = r1;
        for (o, &fv) in out.data_mut().iter_mut().zip(f2.data().iter()) {
            *o += fv;
        }
        arena.recycle(f2);
        out.reshape_in_place(&[batch, seq, embed]);
        out
    }

    /// Backward pass; returns `dx` of shape `[batch, seq, embed]`.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (batch, seq) = self
            .fwd_shape
            .expect("TransformerBlock: backward before forward");
        let rows = batch * seq;
        let d = dy.reshape(&[rows, self.embed]);

        // FFN branch (residual: gradient flows both through the branch and
        // directly to r1).
        let df = self.drop_ffn.backward(&d);
        let df = self.fc2.backward(&df);
        let df = self.gelu.backward(&df);
        let df = self.fc1.backward(&df);
        let df = self.ln2.backward(&df);
        let mut dr1 = d.clone();
        dr1.add_assign(&df);

        // Attention branch.
        let dat = self.drop_attn.backward(&dr1);
        let dat3 = dat.reshape(&[batch, seq, self.embed]);
        let da3 = self.attn.backward(&dat3);
        let da2 = da3.reshape(&[rows, self.embed]);
        let da2 = self.ln1.backward(&da2);
        let mut dx = dr1;
        dx.add_assign(&da2);
        dx.reshape(&[batch, seq, self.embed])
    }

    /// Visits all parameters in deterministic order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    /// Drops all forward caches.
    pub fn clear_cache(&mut self) {
        self.ln1.clear_cache();
        self.attn.clear_cache();
        self.drop_attn.clear_cache();
        self.ln2.clear_cache();
        self.fc1.clear_cache();
        self.gelu.clear_cache();
        self.fc2.clear_cache();
        self.drop_ffn.clear_cache();
        self.fwd_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut blk = TransformerBlock::new("b", 16, 2, 8, 32, 0.0, &mut rng);
        let x = filled(&[2, 5, 16], 1);
        let y = blk.forward(&x, false);
        assert_eq!(y.dims(), &[2, 5, 16]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn paper_block_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        // Bio1 block: C=64, H=8, P=32, hidden=128.
        let blk = TransformerBlock::new("b", 64, 8, 32, 128, 0.0, &mut rng);
        // ln: 2·128 = 256; attn: 66368; ffn: 64·128+128 + 128·64+64 = 16576
        assert_eq!(blk.num_params(), 256 + 66_368 + 16_576);
    }

    #[test]
    fn gradcheck_through_block() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut blk = TransformerBlock::new("b", 6, 2, 3, 10, 0.0, &mut rng);
        let x = filled(&[2, 3, 6], 3);
        let y = blk.forward(&x, true);
        let dy = filled(y.dims(), 4);
        let dx = blk.backward(&dy);

        let eps = 1e-3;
        for idx in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = blk.forward(&xp, false).mul(&dy).sum();
            let fm = blk.forward(&xm, false).mul(&dy).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 3e-2,
                "dx[{idx}] fd={num} got={}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn residual_identity_at_zero_weights() {
        // If attention output proj and fc2 weights are zero, the block is an
        // identity (residual connections only).
        let mut rng = StdRng::seed_from_u64(5);
        let mut blk = TransformerBlock::new("b", 8, 2, 4, 16, 0.0, &mut rng);
        blk.visit_params(&mut |p| {
            if p.name.contains("wo") || p.name.contains("fc2") {
                p.value.data_mut().fill(0.0);
            }
        });
        let x = filled(&[1, 4, 8], 6);
        let y = blk.forward(&x, false);
        assert!(y.allclose(&x, 1e-5));
    }
}
