//! Average-pooling layer over the time axis.

use bioformer_tensor::conv::{avg_pool1d, avg_pool1d_backward};
use bioformer_tensor::Tensor;

/// Batched 1-D average pooling over `[batch, channels, len]`, used by the
/// TEMPONet baseline ahead of its classifier.
#[derive(Debug, Clone)]
pub struct AvgPool1d {
    kernel: usize,
    stride: usize,
    cached_len: Option<usize>,
}

impl AvgPool1d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "AvgPool1d: kernel/stride must be positive"
        );
        AvgPool1d {
            kernel,
            stride,
            cached_len: None,
        }
    }

    /// Pooling window width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output length for an input of `len` samples.
    pub fn out_len(&self, len: usize) -> usize {
        (len - self.kernel) / self.stride + 1
    }

    /// Forward over `[batch, channels, len]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is shorter than the kernel.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.forward_infer(x);
        if train {
            self.cached_len = Some(x.dims()[2]);
        }
        y
    }

    /// Inference-only forward over `[batch, channels, len]` through `&self`
    /// (no cache writes).
    ///
    /// # Panics
    ///
    /// Panics if the input is shorter than the kernel.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        let (b, c, len) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let out_len = self.out_len(len);
        let mut y = Tensor::zeros(&[b, c, out_len]);
        let sample = c * len;
        let out_sample = c * out_len;
        for i in 0..b {
            let xi = Tensor::from_vec(x.data()[i * sample..(i + 1) * sample].to_vec(), &[c, len]);
            let yi = avg_pool1d(&xi, self.kernel, self.stride);
            y.data_mut()[i * out_sample..(i + 1) * out_sample].copy_from_slice(yi.data());
        }
        y
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let len = self.cached_len.expect("AvgPool1d: backward before forward");
        let (b, c, out_len) = (dy.dims()[0], dy.dims()[1], dy.dims()[2]);
        let mut dx = Tensor::zeros(&[b, c, len]);
        let sample = c * len;
        let out_sample = c * out_len;
        for i in 0..b {
            let dyi = Tensor::from_vec(
                dy.data()[i * out_sample..(i + 1) * out_sample].to_vec(),
                &[c, out_len],
            );
            let dxi = avg_pool1d_backward(&dyi, self.kernel, self.stride, len);
            dx.data_mut()[i * sample..(i + 1) * sample].copy_from_slice(dxi.data());
        }
        dx
    }

    /// Drops the forward cache.
    pub fn clear_cache(&mut self) {
        self.cached_len = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_averages() {
        let mut p = AvgPool1d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0, 6.0, 8.0], &[1, 2, 4]);
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.data(), &[2.0, 6.0, 3.0, 7.0]);
    }

    #[test]
    fn gradcheck() {
        let mut p = AvgPool1d::new(2, 2);
        let x = Tensor::from_fn(&[2, 2, 6], |i| (i as f32).sin());
        let y = p.forward(&x, true);
        let dy = Tensor::from_fn(y.dims(), |i| (i as f32 * 0.7).cos());
        let dx = p.backward(&dy);
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = p.forward(&xp, false).mul(&dy).sum();
            let fm = p.forward(&xm, false).mul(&dy).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - dx.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_kernel_rejected() {
        AvgPool1d::new(0, 1);
    }
}
