//! Neural-network layers, optimizers and a training loop for the Bioformers
//! reproduction.
//!
//! Every layer owns its parameters ([`Param`]) and forward caches, and
//! implements an explicit backward pass (manual backprop — no tape). The
//! correctness of each backward pass is pinned by finite-difference gradient
//! checks in the test-suites.
//!
//! # Layer inventory
//!
//! * [`Linear`] — affine map with PyTorch `[out, in]` weight layout.
//! * [`Conv1d`] — batched 1-D convolution (stride/dilation/padding).
//! * [`LayerNorm`] — row-wise layer normalisation.
//! * [`Gelu`], [`Relu`], [`Dropout`] — activations and regularisation.
//! * [`MultiHeadSelfAttention`] — the paper's MHSA block (`H` heads of
//!   dimension `P`, `H·P` may differ from the embedding width).
//! * [`TransformerBlock`] — pre-LN block: `x + MHSA(LN(x))`,
//!   `x + FFN(LN(x))` with a GELU MLP.
//! * [`HaarWavelet1d`] — parameter-free wavelet-packet front-end
//!   (WaveFormer-style multi-resolution tokenisation).
//!
//! Every layer additionally exposes an inference-only `forward_infer(&self, …)`
//! path: the same eval-mode arithmetic as `forward(x, false)` but through a
//! shared reference, with no cache writes. Models assemble these into
//! [`InferForward`], which lets the serving layer share one model instance
//! across a worker pool without cloning.
//!
//! # Training
//!
//! [`optim::Adam`] / [`optim::Sgd`] update any [`Model`] through its
//! parameter visitor; [`trainer::train`] runs mini-batch epochs with
//! deterministic shuffling and data-parallel gradient computation across
//! batch shards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod attention;
pub mod block;
pub mod conv1d;
pub mod dropout;
pub mod init;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod model;
pub mod norm;
pub mod optim;
pub mod param;
pub mod pool;
pub mod schedule;
pub mod serialize;
pub mod trainer;
pub mod wavelet;

pub use activation::{Gelu, Relu};
pub use attention::MultiHeadSelfAttention;
pub use block::TransformerBlock;
pub use conv1d::Conv1d;
pub use dropout::Dropout;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use loss::cross_entropy;
pub use model::{InferForward, Model};
pub use norm::GroupNorm1d;
pub use param::Param;
pub use pool::AvgPool1d;
pub use wavelet::HaarWavelet1d;
