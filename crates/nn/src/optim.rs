//! First-order optimizers.
//!
//! Both optimizers treat a [`Model`] as an ordered parameter list (via
//! [`Model::visit_params`]) and keep per-parameter state vectors indexed by
//! that order, so the same optimizer instance must always be used with the
//! same model architecture.

use crate::model::Model;
use bioformer_tensor::Tensor;

/// Adam optimizer (Kingma & Ba), optionally with decoupled weight decay.
///
/// The paper uses Adam for both the inter-subject pre-training and the
/// subject-specific fine-tuning (§III-B), with the learning rate driven by a
/// [`crate::schedule::LrSchedule`] and passed per step.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new(0.9, 0.999, 1e-8, 0.0)
    }
}

impl Adam {
    /// Creates an Adam optimizer with the given moment coefficients,
    /// epsilon and decoupled weight decay.
    pub fn new(beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Adam {
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update with learning rate `lr` using the gradients
    /// accumulated in the model, then leaves gradients untouched (callers
    /// zero them).
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter shapes change between steps.
    pub fn step<M: Model>(&mut self, model: &mut M, lr: f32) {
        self.t += 1;
        let t = self.t as i32;
        let bias1 = 1.0 - self.beta1.powi(t);
        let bias2 = 1.0 - self.beta2.powi(t);
        let (beta1, beta2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
        let (m_state, v_state) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if m_state.len() == idx {
                m_state.push(Tensor::zeros(p.value.dims()));
                v_state.push(Tensor::zeros(p.value.dims()));
            }
            let m = &mut m_state[idx];
            let v = &mut v_state[idx];
            assert_eq!(
                m.dims(),
                p.value.dims(),
                "Adam: parameter {} changed shape",
                p.name
            );
            let g = p.grad.data();
            let mv = m.data_mut();
            let vv = v.data_mut();
            let pv = p.value.data_mut();
            for i in 0..g.len() {
                mv[i] = beta1 * mv[i] + (1.0 - beta1) * g[i];
                vv[i] = beta2 * vv[i] + (1.0 - beta2) * g[i] * g[i];
                let mhat = mv[i] / bias1;
                let vhat = vv[i] / bias2;
                pv[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * pv[i]);
            }
            idx += 1;
        });
    }
}

/// Plain SGD with optional momentum — kept as a simple baseline optimizer
/// and for the ablation benches.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd::new(0.0)
    }
}

impl Sgd {
    /// Creates an SGD optimizer with the given momentum coefficient.
    pub fn new(momentum: f32) -> Self {
        Sgd {
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter shapes change between steps.
    pub fn step<M: Model>(&mut self, model: &mut M, lr: f32) {
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if velocity.len() == idx {
                velocity.push(Tensor::zeros(p.value.dims()));
            }
            let vel = &mut velocity[idx];
            assert_eq!(
                vel.dims(),
                p.value.dims(),
                "Sgd: parameter {} changed shape",
                p.name
            );
            let g = p.grad.data();
            let vv = vel.data_mut();
            let pv = p.value.data_mut();
            for i in 0..g.len() {
                vv[i] = momentum * vv[i] + g[i];
                pv[i] -= lr * vv[i];
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use crate::param::Param;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Minimal model: a single linear layer classifier over flattened input.
    #[derive(Clone)]
    struct Toy {
        lin: Linear,
    }

    impl Model for Toy {
        fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
            let b = x.dims()[0];
            let features: usize = x.len() / b;
            self.lin.forward(&x.reshape(&[b, features]), train)
        }
        fn backward(&mut self, d: &Tensor) {
            let _ = self.lin.backward(d);
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            self.lin.visit_params(f);
        }
    }

    fn toy_problem() -> (Toy, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Toy {
            lin: Linear::new("toy", 4, 3, &mut rng),
        };
        // Linearly separable 3-class data.
        let n = 60;
        let mut x = Tensor::zeros(&[n, 1, 4]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            labels.push(class);
            for j in 0..4 {
                let base = if j == class { 2.0 } else { 0.0 };
                x.data_mut()[i * 4 + j] = base + rng.gen_range(-0.3f32..0.3);
            }
        }
        (model, x, labels)
    }

    fn train_loss<O: FnMut(&mut Toy)>(
        mut step: O,
        model: &mut Toy,
        x: &Tensor,
        labels: &[usize],
    ) -> f32 {
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            let logits = model.forward(x, true);
            let (loss, d) = cross_entropy(&logits, labels);
            model.zero_grad();
            model.backward(&d);
            step(model);
            last = loss;
        }
        last
    }

    #[test]
    fn adam_reduces_loss() {
        let (mut model, x, labels) = toy_problem();
        let initial = {
            let logits = model.forward(&x, false);
            cross_entropy(&logits, &labels).0
        };
        let mut adam = Adam::default();
        let final_loss = train_loss(|m| adam.step(m, 0.05), &mut model, &x, &labels);
        assert!(
            final_loss < initial * 0.2,
            "loss {initial} → {final_loss} did not drop enough"
        );
    }

    #[test]
    fn sgd_with_momentum_reduces_loss() {
        let (mut model, x, labels) = toy_problem();
        let initial = {
            let logits = model.forward(&x, false);
            cross_entropy(&logits, &labels).0
        };
        let mut sgd = Sgd::new(0.9);
        let final_loss = train_loss(|m| sgd.step(m, 0.05), &mut model, &x, &labels);
        assert!(final_loss < initial * 0.5, "loss {initial} → {final_loss}");
    }

    #[test]
    fn adam_weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Toy {
            lin: Linear::new("toy", 4, 3, &mut rng),
        };
        let norm_before: f32 = model.lin.weight().value.norm_sq();
        let mut adam = Adam::new(0.9, 0.999, 1e-8, 0.1);
        // Zero gradients: only weight decay acts.
        model.zero_grad();
        for _ in 0..20 {
            adam.step(&mut model, 0.01);
        }
        let norm_after: f32 = model.lin.weight().value.norm_sq();
        assert!(norm_after < norm_before, "{norm_before} → {norm_after}");
    }

    #[test]
    fn step_counter_increments() {
        let (mut model, _, _) = toy_problem();
        let mut adam = Adam::default();
        model.zero_grad();
        adam.step(&mut model, 0.1);
        adam.step(&mut model, 0.1);
        assert_eq!(adam.steps(), 2);
    }
}
